//! Quickstart: the three ICLs in one tour, on both backends.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The first half runs against the deterministic simulated OS (`simos`) so
//! the cache/layout/memory effects are visible and repeatable; the second
//! half drives the *real* operating system through the `hostos` backend in
//! a temp directory, proving the same library code runs unmodified against
//! an actual kernel.

use graybox_icl::apps::workload::make_files;
use graybox_icl::graybox::fccd::Fccd;
use graybox_icl::graybox::fldc::{Fldc, RefreshOrder};
use graybox_icl::graybox::mac::{Mac, MacParams};
use graybox_icl::graybox::os::{GrayBoxOs, GrayBoxOsExt};
use graybox_icl::simos::{Sim, SimConfig};

fn main() {
    println!("# {}", graybox_icl::PAPER);
    simulated_tour();
    host_tour();
}

fn simulated_tour() {
    println!("\n== Simulated OS tour ==");
    let mut sim = Sim::new(SimConfig::small());

    // --- FCCD: which files are in the cache? -------------------------
    let paths = sim.run_one(|os| make_files(os, "/data", 8, 2 << 20).unwrap());
    sim.flush_file_cache();
    // Warm two files, then ask FCCD to rank all eight.
    let warm = vec![paths[2].clone(), paths[5].clone()];
    sim.run_one({
        let warm = warm.clone();
        move |os| {
            for p in &warm {
                let fd = os.open(p).unwrap();
                os.read_discard(fd, 0, 2 << 20).unwrap();
                os.close(fd).unwrap();
            }
        }
    });
    let ranked = sim.run_one({
        let paths = paths.clone();
        move |os| {
            let params = graybox_icl::graybox::fccd::FccdParams {
                access_unit: 2 << 20,
                prediction_unit: 1 << 20,
                ..Default::default()
            };
            Fccd::new(os, params).classify_files(&paths)
        }
    });
    println!(
        "FCCD: predicted cached = {:?} (separation {:.2})",
        ranked
            .cached
            .iter()
            .map(|r| r.path.as_str())
            .collect::<Vec<_>>(),
        ranked.separation
    );

    // --- FLDC: what order are files laid out on disk? ----------------
    let layout = sim.run_one(|os| {
        let fldc = Fldc::new(os);
        let ranks = fldc.order_directory("/data").unwrap();
        let first = ranks.first().map(|r| (r.path.clone(), r.stat.ino));
        fldc.refresh_directory("/data", RefreshOrder::SmallestFirst)
            .unwrap();
        first
    });
    println!("FLDC: first file in layout order = {layout:?} (directory refreshed)");

    // --- MAC: how much memory is available right now? -----------------
    let estimate = sim.run_one(|os| {
        let mac = Mac::new(
            os,
            MacParams {
                initial_increment: 1 << 20,
                max_increment: 16 << 20,
                ..MacParams::default()
            },
        );
        mac.available_estimate(128 << 20).unwrap()
    });
    println!("MAC: available memory estimate = {} MB", estimate >> 20);
}

fn host_tour() {
    println!("\n== Real OS tour (hostos) ==");
    let root = std::env::temp_dir().join(format!("graybox-quickstart-{}", std::process::id()));
    let os = graybox_icl::hostos::HostOs::new(&root).expect("temp dir");

    os.mkdir("/demo").unwrap();
    for i in 0..5 {
        os.write_file(
            &format!("/demo/file{i}"),
            format!("contents {i}").as_bytes(),
        )
        .unwrap();
    }
    let fldc = Fldc::new(&os);
    let ranks = fldc.order_directory("/demo").unwrap();
    println!("FLDC on the real FS (i-number order):");
    for r in &ranks {
        println!("  ino {:>10}  {}", r.stat.ino, r.path);
    }

    // Time a warm read through the real page cache with the fast timer.
    let fd = os.open("/demo/file0").unwrap();
    let (_, cold_ish) = os.timed(|o| o.read_byte(fd, 0).unwrap());
    let (_, warm) = os.timed(|o| o.read_byte(fd, 1).unwrap());
    os.close(fd).unwrap();
    println!("hostos probe timings: first {cold_ish}, second {warm}");

    std::fs::remove_dir_all(&root).ok();
    println!("(scratch at {} removed)", root.display());
}
