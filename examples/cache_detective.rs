//! FCCD as a detective: plant a pattern of cached regions inside a big
//! file, then watch the detector recover it from timing alone — and score
//! the inference against the simulator's oracle (which the detector, of
//! course, never sees).
//!
//! Run with: `cargo run --example cache_detective`

use graybox_icl::apps::workload::make_file;
use graybox_icl::graybox::fccd::{Fccd, FccdParams};
use graybox_icl::graybox::os::GrayBoxOs;
use graybox_icl::simos::{Sim, SimConfig};

fn main() {
    let mut sim = Sim::new(SimConfig::small());
    let unit = 2u64 << 20;
    let units = 24u64;
    let size = unit * units;
    sim.run_one(|os| make_file(os, "/mystery", size).unwrap());
    sim.flush_file_cache();

    // Plant a pattern: warm every unit whose index is 0 or 1 mod 5.
    let planted: Vec<bool> = (0..units).map(|u| u % 5 < 2).collect();
    {
        let planted = planted.clone();
        sim.run_one(move |os| {
            let fd = os.open("/mystery").unwrap();
            for (u, &warm) in planted.iter().enumerate() {
                if warm {
                    os.read_discard(fd, u as u64 * unit, unit).unwrap();
                }
            }
            os.close(fd).unwrap();
        });
    }

    // The detector probes blind.
    let params = FccdParams {
        access_unit: unit,
        prediction_unit: unit / 2,
        ..FccdParams::default()
    };
    let report = sim.run_one(move |os| {
        let fccd = Fccd::new(os, params);
        let fd = os.open("/mystery").unwrap();
        let r = fccd.probe_file(fd, size);
        os.close(fd).unwrap();
        r
    });

    // Classify by clustering the unit probe times.
    let times: Vec<f64> = report
        .units
        .iter()
        .map(|u| u.probe_time.as_nanos() as f64)
        .collect();
    let clustering = graybox_icl::toolbox::two_means(&times);

    println!("unit  planted  probe-time      inferred");
    let mut correct = 0;
    for (u, unit_probe) in report.units.iter().enumerate() {
        let inferred = clustering.assignment[u] == 0;
        let ok = inferred == planted[u];
        correct += ok as usize;
        println!(
            "{u:>4}  {:>7}  {:>10}  {:>12}{}",
            if planted[u] { "warm" } else { "cold" },
            unit_probe.probe_time,
            if inferred { "in cache" } else { "on disk" },
            if ok { "" } else { "   <-- miss!" },
        );
    }
    println!(
        "\ninference accuracy: {correct}/{units} units \
         (separation {:.2}, {} probes issued)",
        clustering.separation(&times),
        report.total_probes()
    );
}
