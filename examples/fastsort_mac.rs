//! Memory-adaptive sorting with MAC: four competing `fastsort` processes
//! on one simulated machine, static pass sizes versus `gb-fastsort`
//! (the paper's Figure 7 scenario in miniature).
//!
//! Run with: `cargo run --example fastsort_mac`

use graybox_icl::apps::fastsort::{FastSort, PassPolicy, SortConfig, SortReport};
use graybox_icl::apps::workload::make_file;
use graybox_icl::graybox::mac::MacParams;
use graybox_icl::simos::exec::Workload;
use graybox_icl::simos::{DiskParams, Sim, SimConfig, SimProc};

const PROCS: usize = 4;
const DATA_PER_PROC: u64 = 24 << 20;

fn machine() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.disks = vec![DiskParams::small(); 5];
    cfg.swap_disk = 4;
    cfg.cpus = 2;
    cfg
}

fn run_policy(label: &str, policy: PassPolicy) {
    let mut sim = Sim::new(machine());
    let inputs: Vec<String> = (0..PROCS)
        .map(|i| {
            if i == 0 {
                "/in".into()
            } else {
                format!("/d{i}/in")
            }
        })
        .collect();
    for input in &inputs {
        let input = input.clone();
        sim.run_one(move |os| make_file(os, &input, DATA_PER_PROC).unwrap());
    }
    sim.flush_file_cache();

    let workloads: Vec<(String, Workload<'_, SortReport>)> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let input = input.clone();
            let output = if i == 0 {
                "/out".to_string()
            } else {
                format!("/d{i}/out")
            };
            let policy = policy.clone();
            let wl: Workload<'_, SortReport> = Box::new(move |os: &SimProc| {
                FastSort::new(os, SortConfig::new(&input, &output, policy))
                    .run_modelled()
                    .unwrap()
            });
            (format!("sort{i}"), wl)
        })
        .collect();
    let reports = sim.run(workloads);
    let swap_outs = sim.oracle().stats().swap_outs;
    let slowest = reports
        .iter()
        .map(|r| r.total.as_secs_f64())
        .fold(0.0, f64::max);
    let mean_pass: u64 = reports.iter().map(|r| r.mean_pass()).sum::<u64>() / reports.len() as u64;
    println!(
        "{label:<18} makespan {slowest:7.2}s  mean pass {:>5} MB  swap-outs {swap_outs}",
        mean_pass >> 20
    );
}

fn main() {
    println!(
        "4 competing sorts of {} MB each; usable memory {} MB; swap on its own disk\n",
        DATA_PER_PROC >> 20,
        (machine().usable_pages() * 4096) >> 20
    );
    for pass in [4u64 << 20, 8 << 20, 12 << 20, 16 << 20] {
        run_policy(
            &format!("static {:>2} MB", pass >> 20),
            PassPolicy::Static(pass),
        );
    }
    run_policy(
        "gb-fastsort (MAC)",
        PassPolicy::GrayBox {
            mac: MacParams {
                initial_increment: 1 << 20,
                max_increment: 16 << 20,
                ..MacParams::default()
            },
            min: 4 << 20,
        },
    );
    println!("\nNote how oversized static passes page (swap-outs) and collapse,");
    println!("while gb-fastsort adapts its pass size and never pages.");
}
