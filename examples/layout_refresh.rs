//! File-system aging and the FLDC directory refresh (the paper's
//! Figure 6 scenario): watch i-number ordering decay as a directory
//! churns, then snap back after a refresh.
//!
//! Run with: `cargo run --example layout_refresh`

use gray_toolbox::rng::SeedableRng;
use gray_toolbox::rng::StdRng;
use graybox_icl::apps::workload::{age_epoch, make_files, read_files_in_order, shuffled};
use graybox_icl::graybox::fldc::{Fldc, RefreshOrder};
use graybox_icl::simos::{Sim, SimConfig};

fn main() {
    let mut sim = Sim::new(SimConfig::small());
    sim.run_one(|os| make_files(os, "/dir", 100, 8 << 10).unwrap());
    let mut rng = StdRng::seed_from_u64(99);

    println!("epoch  random-order   inumber-order   (100 x 8 KB files, 5 churned per epoch)");
    for epoch in 0..=16u64 {
        if epoch == 12 {
            let n = sim.run_one(|os| {
                Fldc::new(os)
                    .refresh_directory("/dir", RefreshOrder::SmallestFirst)
                    .unwrap()
            });
            println!("---- refresh: rewrote {n} files into a fresh cylinder group ----");
        }
        if epoch > 0 {
            let mut erng = StdRng::seed_from_u64(
                0x1000 + epoch + {
                    use gray_toolbox::rng::RngExt;
                    rng.random_range(0..1u64 << 32)
                },
            );
            sim.run_one(|os| {
                age_epoch(os, "/dir", 5, 8 << 10, epoch, &mut erng).unwrap();
            });
        }
        let paths: Vec<String> = sim.run_one(|os| {
            use graybox_icl::graybox::os::{GrayBoxOs, GrayBoxOsExt};
            os.list_dir("/dir")
                .unwrap()
                .into_iter()
                .map(|n| os.join("/dir", &n))
                .collect()
        });

        sim.flush_file_cache();
        let random_order = shuffled(&paths, epoch);
        let t_rand = sim.run_one(move |os| read_files_in_order(os, &random_order).unwrap());

        sim.flush_file_cache();
        let scrambled = shuffled(&paths, epoch + 7777);
        let t_ino = sim.run_one(move |os| {
            let (ranks, _) = Fldc::new(os).order_by_inumber(&scrambled);
            let order: Vec<String> = ranks.into_iter().map(|r| r.path).collect();
            read_files_in_order(os, &order).unwrap()
        });

        println!("{epoch:>5}  {t_rand:>12}  {t_ino:>14}");
    }
    println!("\nRandom order stays poor; i-number order degrades with age and");
    println!("returns to fresh performance right after the refresh.");
}
