//! The paper's motivating workload: repeated `grep` over a file set that
//! just exceeds the file cache (`grep <arg> *` with different arguments).
//!
//! Run with: `cargo run --example grep_scan`
//!
//! Shows all four orderings side by side — unmodified, gb-grep (FCCD),
//! layout-only (FLDC), and the composed FCCD+FLDC ordering — over repeated
//! warm-cache runs, plus the gbp pipeline for unmodified binaries.

use graybox_icl::apps::gbp::{Gbp, GbpMode};
use graybox_icl::apps::grep::{Grep, GrepMode, GrepOptions, Needle};
use graybox_icl::apps::workload::make_files;
use graybox_icl::graybox::fccd::FccdParams;
use graybox_icl::graybox::os::GrayBoxOs;
use graybox_icl::simos::{Sim, SimConfig};

fn params() -> FccdParams {
    FccdParams {
        access_unit: 2 << 20,
        prediction_unit: 1 << 20,
        ..FccdParams::default()
    }
}

fn main() {
    let mut sim = Sim::new(SimConfig::small());
    // 40 x 2 MB = 80 MB of files against a ~56 MB cache.
    let paths = sim.run_one(|os| make_files(os, "/corpus", 40, 2 << 20).unwrap());
    println!("corpus: 40 x 2 MB files; usable memory 56 MB");

    let needle = Needle::SyntheticIn(None);
    let runs = 3;

    for (label, mode) in [
        ("unmodified", GrepMode::Unmodified),
        ("gb-grep (FCCD)", GrepMode::GrayBox(params())),
        ("layout (FLDC)", GrepMode::Layout),
        ("composed (FCCD+FLDC)", GrepMode::Composed(params())),
    ] {
        sim.flush_file_cache();
        let mut last = None;
        for _ in 0..runs {
            let paths = paths.clone();
            let needle = needle.clone();
            let mode = mode.clone();
            let r = sim.run_one(move |os| {
                Grep::new(os, GrepOptions::default())
                    .run(&paths, &needle, &mode)
                    .unwrap()
            });
            last = Some(r);
        }
        let r = last.unwrap();
        println!(
            "{label:<22} warm run: {:>10}  ({} files, {} MB)",
            r.elapsed,
            r.files_scanned,
            r.bytes >> 20
        );
    }

    // The gbp pipeline: unmodified grep consuming `gbp -mem` output.
    sim.flush_file_cache();
    let mut last = None;
    for _ in 0..runs {
        let paths = paths.clone();
        let needle = needle.clone();
        let r = sim.run_one(move |os| {
            let t0 = os.now();
            let ordered = Gbp::new(os, params())
                .order_files(&paths, GbpMode::Mem)
                .unwrap();
            let rep = Grep::new(os, GrepOptions::default())
                .run(&ordered, &needle, &GrepMode::Unmodified)
                .unwrap();
            (os.now().since(t0), rep)
        });
        last = Some(r);
    }
    let (elapsed, rep) = last.unwrap();
    println!(
        "{:<22} warm run: {:>10}  ({} files, {} MB)",
        "gbp | grep",
        elapsed,
        rep.files_scanned,
        rep.bytes >> 20
    );
}
