//! Applications from the paper's evaluation, generic over any
//! [`graybox::os::GrayBoxOs`] backend.
//!
//! - [`scan`] — single-file and multi-file scans, linear and gray-box
//!   (Figures 2 and 4);
//! - [`grep`] — the string-search application in its three forms:
//!   unmodified, `gb-grep` (linked against the ICLs), and unmodified grep
//!   fed by the `gbp` utility (Figure 3);
//! - [`fastsort`] — the two-pass disk-to-disk sort, static pass size or
//!   MAC-adaptive `gb-fastsort` (Figures 3 and 7);
//! - [`gbp`] — the command-line pipeline utility that lets *unmodified*
//!   applications benefit from gray-box knowledge;
//! - [`workload`] — synthetic file-set and aging generators used by the
//!   experiments.
//!
//! Applications charge their CPU costs explicitly through
//! [`graybox::os::GrayBoxOs::compute`] when `model_cpu` is set (the
//! simulated backend advances virtual time; on the host backend you would
//! normally turn this off and let real CPU burn).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fastsort;
pub mod gbp;
pub mod grep;
pub mod scan;
pub mod workload;

pub use fastsort::{FastSort, PassPolicy, SortConfig, SortReport};
pub use gbp::{Gbp, GbpMode};
pub use grep::{Grep, GrepMode, GrepReport, Needle};
pub use scan::{graybox_scan, linear_scan, ScanReport};
