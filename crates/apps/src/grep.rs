//! The `grep` application in its three forms (paper Section 4.1.3,
//! Figure 3, and the Figure 4 "search" benchmark).
//!
//! - **Unmodified**: scans the files in command-line order.
//! - **gb-grep**: the ~20-line modification — reorder the file list with
//!   the gray-box library before scanning (cached files first, optionally
//!   composed with i-number order).
//! - **gbp pipeline**: the unmodified binary fed by `gbp` (see
//!   [`crate::gbp`]); gets almost all the benefit, minus fork/exec and the
//!   redundant opens.
//!
//! Two needle modes support both real and modelled workloads: a literal
//! byte pattern genuinely searched in file contents, or a synthetic oracle
//! ("the match is in file X") for bulk experiments whose files carry fill
//! content.

use gray_toolbox::GrayDuration;
use graybox::compose::ComposedOrderer;
use graybox::fccd::{Fccd, FccdParams};
use graybox::fldc::Fldc;
use graybox::os::{GrayBoxOs, OsResult};

/// What grep is looking for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Needle {
    /// A literal byte pattern, really searched in the data read.
    Literal(Vec<u8>),
    /// Modelled search: the match (if any) lives in the named file; data
    /// is read and scan CPU charged, but no bytes are inspected.
    SyntheticIn(Option<String>),
}

/// How the file list is ordered before scanning.
#[derive(Debug, Clone, PartialEq)]
pub enum GrepMode {
    /// Command-line order (the unmodified application).
    Unmodified,
    /// Reordered by FCCD: predicted-cached files first.
    GrayBox(FccdParams),
    /// Reordered by FCCD + FLDC composition (cached first, then i-number).
    Composed(FccdParams),
    /// Reordered by FLDC only (i-number order).
    Layout,
}

/// Tunables for the scanner.
#[derive(Debug, Clone, PartialEq)]
pub struct GrepOptions {
    /// Read-buffer size per `read` call.
    pub chunk: u64,
    /// Whether to stop at the first matching file (the Figure 4 search
    /// benchmark) or scan everything (the Figure 3 throughput benchmark).
    pub stop_at_first_match: bool,
    /// Charge scan CPU through `compute` (keep on for the simulator, off
    /// on the host where real cycles burn).
    pub model_cpu: bool,
    /// Modelled scan cost per byte (PIII-era grep ≈ 80 MB/s).
    pub scan_cost_per_byte: GrayDuration,
}

impl Default for GrepOptions {
    fn default() -> Self {
        GrepOptions {
            chunk: 256 << 10,
            stop_at_first_match: false,
            model_cpu: true,
            scan_cost_per_byte: GrayDuration::from_nanos(12), // ~80 MB/s
        }
    }
}

/// Result of a grep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrepReport {
    /// Total elapsed time including any reordering probes.
    pub elapsed: GrayDuration,
    /// Files fully or partially scanned.
    pub files_scanned: usize,
    /// Bytes read.
    pub bytes: u64,
    /// Files containing a match, in the order found.
    pub matches: Vec<String>,
}

/// The grep application.
pub struct Grep<'a, O: GrayBoxOs> {
    os: &'a O,
    options: GrepOptions,
}

impl<'a, O: GrayBoxOs> Grep<'a, O> {
    /// Creates a grep over the backend.
    pub fn new(os: &'a O, options: GrepOptions) -> Self {
        assert!(options.chunk > 0, "chunk must be positive");
        Grep { os, options }
    }

    /// Runs the search over `paths` in the order implied by `mode`.
    pub fn run(&self, paths: &[String], needle: &Needle, mode: &GrepMode) -> OsResult<GrepReport> {
        let t0 = self.os.now();
        let ordered = self.order(paths, mode)?;
        let mut report = GrepReport {
            elapsed: GrayDuration::ZERO,
            files_scanned: 0,
            bytes: 0,
            matches: Vec::new(),
        };
        for path in &ordered {
            let matched = self.scan_one(path, needle)?;
            report.files_scanned += 1;
            report.bytes += self.os.stat(path).map(|s| s.size).unwrap_or(0);
            if matched {
                report.matches.push(path.clone());
                if self.options.stop_at_first_match {
                    break;
                }
            }
        }
        report.elapsed = self.os.now().since(t0);
        Ok(report)
    }

    fn order(&self, paths: &[String], mode: &GrepMode) -> OsResult<Vec<String>> {
        Ok(match mode {
            GrepMode::Unmodified => paths.to_vec(),
            GrepMode::GrayBox(params) => {
                let fccd = Fccd::new(self.os, params.clone());
                fccd.order_files(paths)
                    .into_iter()
                    .map(|r| r.path)
                    .collect()
            }
            GrepMode::Composed(params) => {
                let fccd = Fccd::new(self.os, params.clone());
                let fldc = Fldc::new(self.os);
                ComposedOrderer::new(&fccd, &fldc)
                    .order_files(paths)?
                    .into_iter()
                    .map(|r| r.path)
                    .collect()
            }
            GrepMode::Layout => {
                let fldc = Fldc::new(self.os);
                let (ranks, _) = fldc.order_by_inumber(paths);
                let mut out: Vec<String> = ranks.into_iter().map(|r| r.path).collect();
                // Unstat-able paths still get scanned, last.
                for p in paths {
                    if !out.contains(p) {
                        out.push(p.clone());
                    }
                }
                out
            }
        })
    }

    /// Scans one file; returns whether it matched.
    fn scan_one(&self, path: &str, needle: &Needle) -> OsResult<bool> {
        let Ok(fd) = self.os.open(path) else {
            return Ok(false);
        };
        let size = self.os.file_size(fd)?;
        let mut matched = match needle {
            Needle::SyntheticIn(Some(p)) => p == path,
            Needle::SyntheticIn(None) => false,
            Needle::Literal(_) => false,
        };
        let mut off = 0u64;
        let mut carry: Vec<u8> = Vec::new();
        let mut buf = vec![0u8; self.options.chunk as usize];
        while off < size {
            let want = self.options.chunk.min(size - off) as usize;
            let n = match needle {
                Needle::Literal(pattern) => {
                    let n = self.os.read_at(fd, off, &mut buf[..want])?;
                    if n > 0 {
                        // Search carry + buf so matches spanning chunk
                        // boundaries are found.
                        let mut window = std::mem::take(&mut carry);
                        window.extend_from_slice(&buf[..n]);
                        if find(&window, pattern) {
                            matched = true;
                        }
                        let keep = pattern.len().saturating_sub(1).min(window.len());
                        carry = window[window.len() - keep..].to_vec();
                    }
                    n as u64
                }
                Needle::SyntheticIn(_) => self.os.read_discard(fd, off, want as u64)?,
            };
            if n == 0 {
                break;
            }
            if self.options.model_cpu {
                self.os.compute(self.options.scan_cost_per_byte * n);
            }
            off += n;
        }
        self.os.close(fd)?;
        Ok(matched)
    }
}

/// Naive substring search (pattern sizes are tiny).
fn find(haystack: &[u8], pattern: &[u8]) -> bool {
    if pattern.is_empty() || pattern.len() > haystack.len() {
        return false;
    }
    haystack.windows(pattern.len()).any(|w| w == pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::make_files;
    use graybox::os::GrayBoxOsExt;
    use simos::{Sim, SimConfig};

    fn small_fccd() -> FccdParams {
        // One or two probes per small file: probing must stay sparse or
        // its cold-miss cost swamps the benefit (the paper's 5 MB units).
        FccdParams {
            access_unit: 2 << 20,
            prediction_unit: 1 << 20,
            ..FccdParams::default()
        }
    }

    #[test]
    fn literal_search_finds_real_matches() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            os.mkdir("/t").unwrap();
            os.write_file("/t/a", b"nothing here").unwrap();
            os.write_file("/t/b", b"xx the needle yy").unwrap();
            let grep = Grep::new(os, GrepOptions::default());
            let report = grep
                .run(
                    &["/t/a".to_string(), "/t/b".to_string()],
                    &Needle::Literal(b"needle".to_vec()),
                    &GrepMode::Unmodified,
                )
                .unwrap();
            assert_eq!(report.matches, vec!["/t/b"]);
            assert_eq!(report.files_scanned, 2);
        });
    }

    #[test]
    fn literal_search_spans_chunk_boundaries() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            // Place the pattern exactly across the chunk boundary.
            let chunk = 8192usize;
            let mut data = vec![b'.'; chunk - 3];
            data.extend_from_slice(b"needle");
            data.extend(vec![b'.'; 100]);
            os.write_file("/f", &data).unwrap();
            let grep = Grep::new(
                os,
                GrepOptions {
                    chunk: chunk as u64,
                    ..GrepOptions::default()
                },
            );
            let report = grep
                .run(
                    &["/f".to_string()],
                    &Needle::Literal(b"needle".to_vec()),
                    &GrepMode::Unmodified,
                )
                .unwrap();
            assert_eq!(report.matches.len(), 1);
        });
    }

    #[test]
    fn graybox_grep_beats_unmodified_on_warm_cache() {
        // 30 x 2 MB files, 56 MB usable memory: about half the set fits.
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let paths = sim.run_one(|os| make_files(os, "/corpus", 30, 2 << 20).unwrap());
        sim.flush_file_cache();
        let needle = Needle::SyntheticIn(None);

        // Warm up with a gray-box pass, then measure both modes from the
        // same warm state.
        let gb_mode = GrepMode::GrayBox(small_fccd());
        sim.run_one(|os| {
            Grep::new(os, GrepOptions::default())
                .run(&paths, &needle, &gb_mode)
                .unwrap()
        });
        let gb = sim.run_one(|os| {
            Grep::new(os, GrepOptions::default())
                .run(&paths, &needle, &gb_mode)
                .unwrap()
        });

        let mut sim2 = Sim::new(SimConfig::small().without_noise());
        let paths2 = sim2.run_one(|os| make_files(os, "/corpus", 30, 2 << 20).unwrap());
        sim2.flush_file_cache();
        sim2.run_one(|os| {
            Grep::new(os, GrepOptions::default())
                .run(&paths2, &needle, &GrepMode::Unmodified)
                .unwrap()
        });
        let un = sim2.run_one(|os| {
            Grep::new(os, GrepOptions::default())
                .run(&paths2, &needle, &GrepMode::Unmodified)
                .unwrap()
        });

        assert!(
            gb.elapsed < un.elapsed.mul_f64(0.75),
            "gray-box {} vs unmodified {}",
            gb.elapsed,
            un.elapsed
        );
    }

    #[test]
    fn search_stops_early_when_match_is_cached() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let paths = sim.run_one(|os| make_files(os, "/corpus", 10, 1 << 20).unwrap());
        sim.flush_file_cache();
        // Warm the last file — where the match lives.
        let target = paths.last().unwrap().clone();
        sim.run_one(|os| {
            let fd = os.open(&target).unwrap();
            os.read_discard(fd, 0, 1 << 20).unwrap();
            os.close(fd).unwrap();
        });
        let needle = Needle::SyntheticIn(Some(target.clone()));
        let opts = GrepOptions {
            stop_at_first_match: true,
            ..GrepOptions::default()
        };
        let gb = sim.run_one(|os| {
            Grep::new(os, opts.clone())
                .run(&paths, &needle, &GrepMode::GrayBox(small_fccd()))
                .unwrap()
        });
        assert_eq!(gb.files_scanned, 1, "cached match must be found first");
        let un = sim.run_one(|os| {
            Grep::new(os, opts.clone())
                .run(&paths, &needle, &GrepMode::Unmodified)
                .unwrap()
        });
        assert_eq!(un.files_scanned, 10, "unmodified scans in given order");
        assert!(gb.elapsed < un.elapsed);
    }

    #[test]
    fn layout_mode_orders_by_inumber() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            let paths = make_files(os, "/d", 5, 8192).unwrap();
            let scrambled = crate::workload::shuffled(&paths, 1);
            let grep = Grep::new(os, GrepOptions::default());
            let report = grep
                .run(&scrambled, &Needle::SyntheticIn(None), &GrepMode::Layout)
                .unwrap();
            assert_eq!(report.files_scanned, 5);
        });
    }
}
