//! Single-file scans: the traditional linear scan versus the gray-box scan
//! (paper Section 4.1.3, Figure 2).
//!
//! The gray-box scan first asks FCCD which access units of the file are in
//! the cache, then reads the predicted-cached units before the rest. Over
//! repeated runs this is also the paper's *positive feedback* control: the
//! file is accessed in access-unit-sized chunks, so access-unit-sized
//! chunks are what ends up cached, stabilizing the prediction.

use gray_toolbox::GrayDuration;
use graybox::fccd::{Fccd, FccdParams};
use graybox::os::{GrayBoxOs, OsResult};

/// Result of one scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanReport {
    /// Total elapsed time, including any probing.
    pub elapsed: GrayDuration,
    /// Time spent probing (zero for the linear scan).
    pub probe_time: GrayDuration,
    /// Bytes covered.
    pub bytes: u64,
}

/// Reads the whole file front to back in `chunk`-byte reads.
pub fn linear_scan<O: GrayBoxOs>(os: &O, path: &str, chunk: u64) -> OsResult<ScanReport> {
    assert!(chunk > 0, "chunk must be positive");
    let t0 = os.now();
    let fd = os.open(path)?;
    let size = os.file_size(fd)?;
    let mut off = 0u64;
    while off < size {
        let want = chunk.min(size - off);
        let n = os.read_discard(fd, off, want)?;
        if n == 0 {
            break;
        }
        off += n;
    }
    os.close(fd)?;
    Ok(ScanReport {
        elapsed: os.now().since(t0),
        probe_time: GrayDuration::ZERO,
        bytes: off,
    })
}

/// Probes the file with FCCD, then reads its access units fastest-first
/// (each unit is itself read sequentially in `chunk`-byte reads).
pub fn graybox_scan<O: GrayBoxOs>(
    os: &O,
    path: &str,
    params: FccdParams,
    chunk: u64,
) -> OsResult<ScanReport> {
    assert!(chunk > 0, "chunk must be positive");
    let t0 = os.now();
    let fccd = Fccd::new(os, params);
    let fd = os.open(path)?;
    let size = os.file_size(fd)?;
    let probe_t0 = os.now();
    let plan = fccd.plan_file(fd, size);
    let probe_time = os.now().since(probe_t0);
    let mut bytes = 0u64;
    for extent in plan {
        let mut off = extent.offset;
        let end = extent.offset + extent.len;
        while off < end {
            let want = chunk.min(end - off);
            let n = os.read_discard(fd, off, want)?;
            if n == 0 {
                break;
            }
            off += n;
            bytes += n;
        }
    }
    os.close(fd)?;
    Ok(ScanReport {
        elapsed: os.now().since(t0),
        probe_time,
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::make_file;
    use simos::{Sim, SimConfig};

    fn small_fccd() -> FccdParams {
        // Probes must stay sparse (paper: 4 per access unit): 8 MB access
        // units with 2 MB prediction units over a 64 MB file ≈ 32 probes.
        FccdParams {
            access_unit: 8 << 20,
            prediction_unit: 2 << 20,
            ..FccdParams::default()
        }
    }

    #[test]
    fn both_scans_cover_the_whole_file() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let size = 6u64 << 20;
        sim.run_one(|os| make_file(os, "/f", size).unwrap());
        sim.flush_file_cache();
        let lin = sim.run_one(|os| linear_scan(os, "/f", 1 << 20).unwrap());
        assert_eq!(lin.bytes, size);
        sim.flush_file_cache();
        let gb = sim.run_one(|os| graybox_scan(os, "/f", small_fccd(), 1 << 20).unwrap());
        assert_eq!(gb.bytes, size);
    }

    #[test]
    fn graybox_scan_wins_on_warm_cache_when_file_exceeds_cache() {
        // 64 MB RAM (56 MB usable cache) and a 64 MB file: a repeated
        // linear scan is the LRU worst case; the gray-box scan keeps
        // hitting whatever survived.
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let size = 64u64 << 20;
        sim.run_one(|os| make_file(os, "/big", size).unwrap());
        sim.flush_file_cache();
        // Warm-up run for each strategy, then a measured run.
        sim.run_one(|os| linear_scan(os, "/big", 1 << 20).unwrap());
        let lin = sim.run_one(|os| linear_scan(os, "/big", 1 << 20).unwrap());
        sim.flush_file_cache();
        sim.run_one(|os| graybox_scan(os, "/big", small_fccd(), 1 << 20).unwrap());
        let gb = sim.run_one(|os| graybox_scan(os, "/big", small_fccd(), 1 << 20).unwrap());
        assert!(
            gb.elapsed < lin.elapsed.mul_f64(0.8),
            "gray-box {} vs linear {}",
            gb.elapsed,
            lin.elapsed
        );
    }

    #[test]
    fn file_smaller_than_cache_needs_no_gray_box() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let size = 8u64 << 20;
        sim.run_one(|os| make_file(os, "/small", size).unwrap());
        sim.flush_file_cache();
        sim.run_one(|os| linear_scan(os, "/small", 1 << 20).unwrap());
        let warm = sim.run_one(|os| linear_scan(os, "/small", 1 << 20).unwrap());
        // Entirely cached: memory-speed rescan.
        let rate = size as f64 / warm.elapsed.as_secs_f64() / (1 << 20) as f64;
        assert!(rate > 100.0, "warm rescan {rate:.0} MB/s");
    }
}
