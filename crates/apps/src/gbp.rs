//! `gbp` — the command-line utility that gives *unmodified* applications
//! gray-box benefits (paper Section 4.1.2).
//!
//! Two usage patterns from the paper:
//!
//! - ``grep foo `gbp -mem *` `` — gbp prints the file list in predicted
//!   best order; the unmodified application consumes it. Costs an extra
//!   fork/exec plus redundant opens (gbp probes, then the app re-opens).
//! - ``gbp -mem -out infile | app -`` — gbp probes a single file, reads
//!   its data blocks in best probe order, and streams them to stdout, so
//!   an unmodified filter gets intra-file reordering at the price of one
//!   extra copy of all data through the pipe.
//!
//! The pipe copy and fork/exec are modelled as explicit CPU charges (they
//! are pure memory/CPU costs), while all file I/O is real against the
//! backend.

use gray_toolbox::GrayDuration;
use graybox::compose::ComposedOrderer;
use graybox::fccd::{Fccd, FccdParams};
use graybox::fldc::Fldc;
use graybox::os::{GrayBoxOs, OsResult};

/// Which ordering gbp applies (its command-line flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GbpMode {
    /// `-mem`: order by predicted cache residency (FCCD).
    Mem,
    /// `-file`: order by predicted disk layout (FLDC i-numbers).
    File,
    /// `-compose`: cached files first, i-number order within groups.
    Compose,
}

/// The gbp utility.
pub struct Gbp<'a, O: GrayBoxOs> {
    os: &'a O,
    fccd_params: FccdParams,
    /// Modelled cost of fork+exec of the utility.
    pub fork_exec_cost: GrayDuration,
    /// Modelled pipe copy bandwidth (extra copy through the kernel).
    pub pipe_bandwidth: u64,
    /// Whether to charge the modelled costs.
    pub model_cpu: bool,
}

impl<'a, O: GrayBoxOs> Gbp<'a, O> {
    /// Creates the utility with the paper-era cost model.
    pub fn new(os: &'a O, fccd_params: FccdParams) -> Self {
        Gbp {
            os,
            fccd_params,
            fork_exec_cost: GrayDuration::from_millis(3),
            pipe_bandwidth: 200 << 20,
            model_cpu: true,
        }
    }

    /// `gbp [mode] <files…>`: returns the file list in predicted best
    /// order, charging the fork/exec overhead of running the utility.
    pub fn order_files(&self, paths: &[String], mode: GbpMode) -> OsResult<Vec<String>> {
        if self.model_cpu {
            self.os.compute(self.fork_exec_cost);
        }
        match mode {
            GbpMode::Mem => {
                let fccd = Fccd::new(self.os, self.fccd_params.clone());
                Ok(fccd
                    .order_files(paths)
                    .into_iter()
                    .map(|r| r.path)
                    .collect())
            }
            GbpMode::File => {
                let fldc = Fldc::new(self.os);
                let (ranks, _) = fldc.order_by_inumber(paths);
                let mut out: Vec<String> = ranks.into_iter().map(|r| r.path).collect();
                for p in paths {
                    if !out.contains(p) {
                        out.push(p.clone());
                    }
                }
                Ok(out)
            }
            GbpMode::Compose => {
                let fccd = Fccd::new(self.os, self.fccd_params.clone());
                let fldc = Fldc::new(self.os);
                Ok(ComposedOrderer::new(&fccd, &fldc)
                    .order_files(paths)?
                    .into_iter()
                    .map(|r| r.path)
                    .collect())
            }
        }
    }

    /// `gbp -mem -out <file>`: probes the file, then streams its access
    /// units to `consume` in best probe order. Returns total bytes
    /// streamed. The consumer sees the extents (offset, data) so a real
    /// filter can process them; modelled pipelines pass a no-op.
    pub fn stream_file(&self, path: &str, mut consume: impl FnMut(u64, &[u8])) -> OsResult<u64> {
        if self.model_cpu {
            self.os.compute(self.fork_exec_cost);
        }
        let fccd = Fccd::new(self.os, self.fccd_params.clone());
        let fd = self.os.open(path)?;
        let size = self.os.file_size(fd)?;
        let plan = fccd.plan_file(fd, size);
        let mut total = 0u64;
        let chunk = 1u64 << 20;
        let mut buf = vec![0u8; chunk as usize];
        for extent in plan {
            let mut off = extent.offset;
            let end = extent.offset + extent.len;
            while off < end {
                let want = chunk.min(end - off) as usize;
                let n = self.os.read_at(fd, off, &mut buf[..want])?;
                if n == 0 {
                    break;
                }
                // The extra copy through the pipe.
                if self.model_cpu {
                    self.os.compute(GrayDuration::from_secs_f64(
                        n as f64 / self.pipe_bandwidth as f64,
                    ));
                }
                consume(off, &buf[..n]);
                off += n as u64;
                total += n as u64;
            }
        }
        self.os.close(fd)?;
        Ok(total)
    }

    /// Like [`Gbp::stream_file`] but discards data (modelled pipelines);
    /// still charges the pipe copy.
    pub fn stream_file_discard(&self, path: &str) -> OsResult<u64> {
        if self.model_cpu {
            self.os.compute(self.fork_exec_cost);
        }
        let fccd = Fccd::new(self.os, self.fccd_params.clone());
        let fd = self.os.open(path)?;
        let size = self.os.file_size(fd)?;
        let plan = fccd.plan_file(fd, size);
        let mut total = 0u64;
        for extent in plan {
            let n = self.os.read_discard(fd, extent.offset, extent.len)?;
            if self.model_cpu {
                self.os.compute(GrayDuration::from_secs_f64(
                    n as f64 / self.pipe_bandwidth as f64,
                ));
            }
            total += n;
        }
        self.os.close(fd)?;
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::make_files;
    use graybox::os::GrayBoxOsExt;
    use simos::{Sim, SimConfig};

    fn small_fccd() -> FccdParams {
        FccdParams {
            access_unit: 64 << 10,
            prediction_unit: 16 << 10,
            ..FccdParams::default()
        }
    }

    #[test]
    fn mem_mode_puts_cached_files_first() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let paths = sim.run_one(|os| make_files(os, "/d", 6, 256 << 10).unwrap());
        sim.flush_file_cache();
        // Warm file 4.
        sim.run_one(|os| {
            let fd = os.open(&paths[4]).unwrap();
            os.read_discard(fd, 0, 256 << 10).unwrap();
            os.close(fd).unwrap();
        });
        let paths2 = paths.clone();
        let ordered = sim.run_one(move |os| {
            Gbp::new(os, small_fccd())
                .order_files(&paths2, GbpMode::Mem)
                .unwrap()
        });
        assert_eq!(ordered[0], paths[4]);
        assert_eq!(ordered.len(), 6);
    }

    #[test]
    fn file_mode_is_inumber_order() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            let paths = make_files(os, "/d", 5, 8192).unwrap();
            let scrambled = crate::workload::shuffled(&paths, 9);
            let ordered = Gbp::new(os, small_fccd())
                .order_files(&scrambled, GbpMode::File)
                .unwrap();
            assert_eq!(ordered, paths, "creation order == i-number order");
        });
    }

    #[test]
    fn stream_delivers_every_byte_exactly_once() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
            os.write_file("/f", &data).unwrap();
            let gbp = Gbp::new(os, small_fccd());
            let mut seen = vec![false; data.len()];
            let mut payload = vec![0u8; data.len()];
            let total = gbp
                .stream_file("/f", |off, bytes| {
                    for (i, &b) in bytes.iter().enumerate() {
                        let idx = off as usize + i;
                        assert!(!seen[idx], "byte {idx} delivered twice");
                        seen[idx] = true;
                        payload[idx] = b;
                    }
                })
                .unwrap();
            assert_eq!(total, data.len() as u64);
            assert!(seen.iter().all(|&s| s));
            assert_eq!(payload, data);
        });
    }

    #[test]
    fn compose_mode_orders_cached_then_by_inumber() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let paths = sim.run_one(|os| make_files(os, "/d", 6, 256 << 10).unwrap());
        sim.flush_file_cache();
        // Warm files 4 and 1: compose must yield [1, 4, 0, 2, 3, 5].
        sim.run_one({
            let warm = vec![paths[4].clone(), paths[1].clone()];
            move |os| {
                for p in &warm {
                    let fd = os.open(p).unwrap();
                    os.read_discard(fd, 0, 256 << 10).unwrap();
                    os.close(fd).unwrap();
                }
            }
        });
        let scrambled = crate::workload::shuffled(&paths, 44);
        let ordered = sim.run_one(move |os| {
            Gbp::new(os, small_fccd())
                .order_files(&scrambled, GbpMode::Compose)
                .unwrap()
        });
        assert_eq!(
            ordered,
            vec![
                paths[1].clone(),
                paths[4].clone(),
                paths[0].clone(),
                paths[2].clone(),
                paths[3].clone(),
                paths[5].clone(),
            ]
        );
    }

    #[test]
    fn stream_discard_covers_whole_file_and_charges_pipe() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            use graybox::os::GrayBoxOsExt;
            os.write_file("/f", &vec![3u8; 300_000]).unwrap();
            let gbp = Gbp::new(os, small_fccd());
            let t0 = os.now();
            let total = gbp.stream_file_discard("/f").unwrap();
            let t = os.now().since(t0);
            assert_eq!(total, 300_000);
            // Fork/exec (3 ms) plus pipe copy must show up in the clock.
            assert!(t >= gray_toolbox::GrayDuration::from_millis(3));
        });
    }

    #[test]
    fn pipeline_costs_more_than_direct_library_use() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| make_files(os, "/d", 4, 1 << 20).unwrap());
        let paths: Vec<String> = (0..4).map(|i| format!("/d/f{i:04}")).collect();
        // Direct FCCD ordering:
        let p2 = paths.clone();
        let direct = sim.run_one(move |os| {
            let t0 = os.now();
            let fccd = Fccd::new(os, small_fccd());
            let _ = fccd.order_files(&p2);
            os.now().since(t0)
        });
        // Via gbp (fork/exec charged):
        let p3 = paths.clone();
        let via_gbp = sim.run_one(move |os| {
            let t0 = os.now();
            let _ = Gbp::new(os, small_fccd())
                .order_files(&p3, GbpMode::Mem)
                .unwrap();
            os.now().since(t0)
        });
        assert!(via_gbp > direct, "gbp {via_gbp} vs direct {direct}");
    }
}
