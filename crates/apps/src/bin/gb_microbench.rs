//! `gb-microbench` — runs the configuration microbenchmarks on the real
//! OS and publishes the results in the shared parameter repository
//! (paper Section 5: "each microbenchmark then only needs to be run
//! once").
//!
//! ```text
//! gb-microbench [repo-file] [scratch-mb]
//! ```
//!
//! Defaults: `./graybox-params.repo`, 64 MB of scratch. Run on an idle
//! machine; the scratch file should exceed your page cache for honest
//! miss numbers (pass a larger size if it does not).

use std::process::ExitCode;

use gray_toolbox::ParamRepository;
use graybox::microbench::Microbench;
use hostos::HostOs;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let repo_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "graybox-params.repo".to_string());
    let scratch_mb: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);

    let os = match HostOs::new(std::env::current_dir().expect("cwd")) {
        Ok(os) => os,
        Err(e) => {
            eprintln!("gb-microbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut repo = match ParamRepository::load(&repo_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gb-microbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("measuring page costs and disk profile ({scratch_mb} MB scratch)...");
    let mb = Microbench::new(&os);
    if let Err(e) = mb.run_all("/", scratch_mb << 20, &mut repo) {
        eprintln!("gb-microbench: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = repo.save() {
        eprintln!("gb-microbench: {e}");
        return ExitCode::FAILURE;
    }
    println!("# written to {repo_path}");
    for (k, v) in repo.iter() {
        println!("{k} = {v}");
    }
    ExitCode::SUCCESS
}
