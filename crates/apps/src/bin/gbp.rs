//! `gbp` — the paper's command-line utility, on the real OS.
//!
//! Lets *unmodified* applications benefit from gray-box knowledge:
//!
//! ```text
//! grep foo $(gbp -mem *.log)        # scan cached files first
//! tar cf - $(gbp -file src/*)      # read in on-disk order
//! gbp -mem -out big.dat | wc -c    # intra-file reordering via a pipe
//! ```
//!
//! Modes: `-mem` (FCCD cache order), `-file` (FLDC i-number order),
//! `-compose` (cached first, i-number within groups), `-mtime` (LFS-style
//! write-time order). With `-out` and exactly one file, streams the
//! file's bytes to stdout in predicted-fastest order instead of printing
//! names. Paths are interpreted relative to the current directory.

use std::io::Write;
use std::process::ExitCode;

use gray_apps::gbp::{Gbp, GbpMode};
use graybox::fccd::FccdParams;
use graybox::fldc::Fldc;
use hostos::HostOs;

fn usage() -> ExitCode {
    eprintln!("usage: gbp [-mem|-file|-compose|-mtime] [-out] <files...>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None;
    let mut out = false;
    let mut files = Vec::new();
    for a in &args {
        match a.as_str() {
            "-mem" => mode = Some(GbpMode::Mem),
            "-file" => mode = Some(GbpMode::File),
            "-compose" => mode = Some(GbpMode::Compose),
            "-mtime" => mode = None, // handled specially below
            "-out" => out = true,
            _ if a.starts_with('-') => return usage(),
            _ => files.push(a.clone()),
        }
    }
    if files.is_empty() {
        return usage();
    }
    let mtime_mode = args.iter().any(|a| a == "-mtime");
    let os = match HostOs::new(std::env::current_dir().expect("cwd")) {
        Ok(os) => os,
        Err(e) => {
            eprintln!("gbp: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Host paths are confined under the cwd root; present them as
    // absolute gray-box paths.
    let gb_paths: Vec<String> = files.iter().map(|f| format!("/{f}")).collect();

    // Real-OS probing wants real timing behavior: keep the paper's default
    // unit sizes, and do not charge modelled CPU.
    let params = FccdParams::default();
    let mut gbp = Gbp::new(&os, params.clone());
    gbp.model_cpu = false;

    if out {
        if gb_paths.len() != 1 {
            eprintln!("gbp: -out takes exactly one file");
            return ExitCode::from(2);
        }
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        match gbp.stream_file(&gb_paths[0], |_off, bytes| {
            let _ = lock.write_all(bytes);
        }) {
            Ok(_) => return ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gbp: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let ordered = if mtime_mode {
        let (ranks, _missing) = Fldc::new(&os).order_by_mtime(&gb_paths);
        Ok(ranks.into_iter().map(|r| r.path).collect::<Vec<_>>())
    } else {
        gbp.order_files(&gb_paths, mode.unwrap_or(GbpMode::Mem))
    };
    match ordered {
        Ok(list) => {
            for p in list {
                // Strip the synthetic leading slash back off.
                println!("{}", p.trim_start_matches('/'));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gbp: {e}");
            ExitCode::FAILURE
        }
    }
}
