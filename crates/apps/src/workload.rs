//! Synthetic workload generators for the experiments.

use gray_toolbox::rng::SliceRandom;
use gray_toolbox::rng::StdRng;
use gray_toolbox::rng::{RngExt, SeedableRng};
use graybox::os::{GrayBoxOs, GrayBoxOsExt, OsResult};

/// Creates a file of `bytes` synthetic bytes at `path` (chunked
/// `write_fill`, so no host memory is proportional to the size).
pub fn make_file<O: GrayBoxOs>(os: &O, path: &str, bytes: u64) -> OsResult<()> {
    let fd = os.create(path)?;
    let mut off = 0u64;
    while off < bytes {
        let chunk = (bytes - off).min(8 << 20);
        os.write_fill(fd, off, chunk)?;
        off += chunk;
    }
    os.close(fd)
}

/// Creates `count` files of `bytes` each under `dir`, named `f000…`,
/// returning their paths in creation order.
pub fn make_files<O: GrayBoxOs>(
    os: &O,
    dir: &str,
    count: usize,
    bytes: u64,
) -> OsResult<Vec<String>> {
    if os.stat(dir).is_err() {
        os.mkdir(dir)?;
    }
    let mut paths = Vec::with_capacity(count);
    for i in 0..count {
        let path = os.join(dir, &format!("f{i:04}"));
        make_file(os, &path, bytes)?;
        paths.push(path);
    }
    Ok(paths)
}

/// One aging epoch (paper Figure 6): delete `churn` random files from
/// `dir` and create `churn` new ones of `bytes` each. Returns the
/// directory's current paths in directory order.
pub fn age_epoch<O: GrayBoxOs>(
    os: &O,
    dir: &str,
    churn: usize,
    bytes: u64,
    epoch: u64,
    rng: &mut StdRng,
) -> OsResult<Vec<String>> {
    let names = os.list_dir(dir)?;
    let mut victims: Vec<&String> = names.iter().collect();
    victims.shuffle(rng);
    for name in victims.into_iter().take(churn) {
        os.unlink(&os.join(dir, name))?;
    }
    for i in 0..churn {
        let path = os.join(dir, &format!("e{epoch:03}_{i}"));
        make_file(os, &path, bytes)?;
    }
    Ok(os
        .list_dir(dir)?
        .into_iter()
        .map(|n| os.join(dir, &n))
        .collect())
}

/// A deterministic shuffled copy of `paths`.
pub fn shuffled(paths: &[String], seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = paths.to_vec();
    out.shuffle(&mut rng);
    out
}

/// Reads every file fully, in the given order, returning total elapsed
/// time (the inner loop of the small-file experiments).
pub fn read_files_in_order<O: GrayBoxOs>(
    os: &O,
    paths: &[String],
) -> OsResult<gray_toolbox::GrayDuration> {
    let t0 = os.now();
    for path in paths {
        let fd = os.open(path)?;
        let size = os.file_size(fd)?;
        os.read_discard(fd, 0, size)?;
        os.close(fd)?;
    }
    Ok(os.now().since(t0))
}

/// Touches a random subset of a file so that roughly `fraction` of it is
/// cached (experiment setup for classifier tests).
pub fn warm_fraction<O: GrayBoxOs>(
    os: &O,
    path: &str,
    fraction: f64,
    rng: &mut StdRng,
) -> OsResult<()> {
    let fd = os.open(path)?;
    let size = os.file_size(fd)?;
    let page = os.page_size();
    let pages = size.div_ceil(page);
    for p in 0..pages {
        if rng.random_range(0.0..1.0) < fraction {
            os.read_discard(fd, p * page, 1)?;
        }
    }
    os.close(fd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Sim, SimConfig};

    #[test]
    fn make_files_creates_in_order() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            let paths = make_files(os, "/data", 5, 8192).unwrap();
            assert_eq!(paths.len(), 5);
            let names = os.list_dir("/data").unwrap();
            assert_eq!(names, vec!["f0000", "f0001", "f0002", "f0003", "f0004"]);
            for p in &paths {
                assert_eq!(os.stat(p).unwrap().size, 8192);
            }
        });
    }

    #[test]
    fn age_epoch_keeps_population_constant() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            make_files(os, "/d", 20, 4096).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            let after = age_epoch(os, "/d", 5, 4096, 1, &mut rng).unwrap();
            assert_eq!(after.len(), 20);
            // Five new files bear the epoch prefix.
            let new = after.iter().filter(|p| p.contains("e001")).count();
            assert_eq!(new, 5);
        });
    }

    #[test]
    fn shuffled_is_deterministic() {
        let paths: Vec<String> = (0..10).map(|i| format!("/f{i}")).collect();
        assert_eq!(shuffled(&paths, 3), shuffled(&paths, 3));
        assert_ne!(shuffled(&paths, 3), paths);
    }

    #[test]
    fn read_files_in_order_takes_longer_cold_than_warm() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let paths = sim.run_one(|os| make_files(os, "/d", 10, 32 * 1024).unwrap());
        sim.flush_file_cache();
        let cold = sim.run_one(|os| read_files_in_order(os, &paths).unwrap());
        let warm = sim.run_one(|os| read_files_in_order(os, &paths).unwrap());
        assert!(cold > warm * 5, "cold {cold} vs warm {warm}");
    }
}
