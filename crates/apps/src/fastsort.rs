//! `fastsort` — the highly tuned two-pass disk-to-disk sort (paper
//! Sections 4.1.3 and 4.3.3; after Agarwal's SIGMOD'96 super-scalar sort).
//!
//! Pass one reads runs of records (each run sized to fit in memory), sorts
//! them, and writes sorted runs to disk; pass two merges. The paper's
//! Figure 7 question is *how big should a run be?* — guess too high in a
//! multiprogrammed system and the machine thrashes; `gb-fastsort` instead
//! asks MAC for however much memory is actually available
//! (`gb_alloc(min, max, record)`), freeing it between passes so it can
//! never deadlock.
//!
//! Two operating modes:
//!
//! - [`FastSort::run_modelled`] moves synthetic bulk data and charges
//!   realistic CPU/memory costs — this is what the figure-scale
//!   experiments use (gigabytes of "data" at megabytes of host memory).
//!   Memory traffic is real in the sense that matters: every buffer page
//!   is write-touched as records land and re-touched during sorting, so an
//!   oversized run genuinely thrashes the simulated VM.
//! - [`FastSort::run_real`] sorts actual bytes (any `GrayBoxOs` backend)
//!   with a k-way merge — used by tests and the host-backend example to
//!   prove the application logic is real.

use gray_toolbox::GrayDuration;
use graybox::mac::{Mac, MacParams, MacStats};
use graybox::os::{Fd, GrayBoxOs, OsError, OsResult};

/// How pass sizes are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum PassPolicy {
    /// A fixed pass size in bytes (the unmodified application, Figure 7's
    /// x-axis).
    Static(u64),
    /// Ask MAC: `gb_alloc(min, remaining, record)` before every pass.
    GrayBox {
        /// MAC tuning.
        mac: MacParams,
        /// Minimum acceptable pass size in bytes (the paper used 100 MB).
        min: u64,
    },
}

/// Sort configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SortConfig {
    /// Input file of records.
    pub input: String,
    /// Output file (merged) — or run-file prefix in modelled mode.
    pub output: String,
    /// Record size in bytes (the paper's 100).
    pub record_bytes: u64,
    /// Key prefix length for real sorting (the classic 10).
    pub key_bytes: usize,
    /// Pass-size policy.
    pub pass_policy: PassPolicy,
    /// Charge modelled CPU costs through `compute`.
    pub model_cpu: bool,
    /// CPU cost per record per sort pass (PIII-era ≈ 300 ns).
    pub sort_cost_per_record: GrayDuration,
    /// Read/write chunk for streaming I/O.
    pub chunk: u64,
    /// Upper bound on one `mem_probe_batch` issued by the modelled sort.
    /// Batching amortizes syscall dispatch, but a batch is also one
    /// scheduling point in the simulator — an unbounded whole-buffer sweep
    /// would let four competing sorts reclaim each other's pages in
    /// lock-step convoys instead of the fine-grained interleaving a real
    /// touch loop produces. Calibrate with
    /// [`SortConfig::with_repository`] (key `sched.sub_batch_pages`).
    pub touch_batch: u64,
}

impl SortConfig {
    /// A reasonable default configuration for `input` → `output`.
    pub fn new(input: &str, output: &str, pass_policy: PassPolicy) -> Self {
        SortConfig {
            input: input.to_string(),
            output: output.to_string(),
            record_bytes: 100,
            key_bytes: 10,
            pass_policy,
            model_cpu: true,
            sort_cost_per_record: GrayDuration::from_nanos(300),
            chunk: 1 << 20,
            touch_batch: 64,
        }
    }

    /// Replaces the compile-time touch-batch default with the measured
    /// `sched.sub_batch_pages` bound, when the repository has one.
    pub fn with_repository(mut self, repo: &gray_toolbox::ParamRepository) -> Self {
        use gray_toolbox::repository::keys;
        if let Ok(Some(batch)) = repo.get_u64(keys::SCHED_SUB_BATCH_PAGES) {
            if batch > 0 {
                self.touch_batch = batch;
            }
        }
        self
    }
}

/// Timing breakdown of a sort run (paper Figure 7 reports read / sort /
/// write / overhead components).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SortReport {
    /// Total elapsed time.
    pub total: GrayDuration,
    /// Time in the read phase (the phase Figures 3 and 7 report).
    pub read_time: GrayDuration,
    /// Time sorting in memory.
    pub sort_time: GrayDuration,
    /// Time writing runs.
    pub write_time: GrayDuration,
    /// MAC overhead: probing.
    pub probe_time: GrayDuration,
    /// MAC overhead: waiting for memory.
    pub wait_time: GrayDuration,
    /// Actual pass sizes used, in bytes.
    pub passes: Vec<u64>,
}

impl SortReport {
    /// Mean pass size in bytes (0 when no passes ran).
    pub fn mean_pass(&self) -> u64 {
        if self.passes.is_empty() {
            0
        } else {
            self.passes.iter().sum::<u64>() / self.passes.len() as u64
        }
    }
}

/// The fastsort application.
pub struct FastSort<'a, O: GrayBoxOs> {
    os: &'a O,
    cfg: SortConfig,
}

impl<'a, O: GrayBoxOs> FastSort<'a, O> {
    /// Creates a sorter.
    pub fn new(os: &'a O, cfg: SortConfig) -> Self {
        assert!(cfg.record_bytes > 0, "record size must be positive");
        assert!(cfg.chunk >= cfg.record_bytes, "chunk smaller than a record");
        FastSort { os, cfg }
    }

    /// Runs pass one (read → sort → write runs) over synthetic data,
    /// which is what the paper's Figure 7 measures. Run files are written
    /// as `<output>.run<k>`.
    pub fn run_modelled(&self) -> OsResult<SortReport> {
        let t_start = self.os.now();
        let mut report = SortReport::default();
        let in_fd = self.os.open(&self.cfg.input)?;
        let input_size = self.os.file_size(in_fd)?;
        let total_records = input_size / self.cfg.record_bytes;
        let total_bytes = total_records * self.cfg.record_bytes;
        let page = self.os.page_size();

        let mac = match &self.cfg.pass_policy {
            PassPolicy::GrayBox { mac, .. } => Some(Mac::new(self.os, mac.clone())),
            PassPolicy::Static(_) => None,
        };

        let mut offset = 0u64;
        let mut run_idx = 0usize;
        while offset < total_bytes {
            let remaining = total_bytes - offset;
            // Decide the pass size (and acquire its memory).
            let (pass_bytes, region, alloc) = match &self.cfg.pass_policy {
                PassPolicy::Static(bytes) => {
                    let pass = round_to(*bytes, self.cfg.record_bytes).min(remaining);
                    let pass = round_to(pass, self.cfg.record_bytes).max(self.cfg.record_bytes);
                    let region = self.os.mem_alloc(pass.max(page))?;
                    (pass, region, None)
                }
                PassPolicy::GrayBox { mac: _, min } => {
                    let mac_ref = mac.as_ref().expect("constructed above");
                    let min = (*min).min(remaining);
                    let got = loop {
                        match mac_ref.gb_alloc(min, remaining, self.cfg.record_bytes)? {
                            Some(a) => break a,
                            None => {
                                // Wait for memory, then try again — the
                                // admission-control loop.
                                self.os.sleep(GrayDuration::from_millis(500));
                            }
                        }
                    };
                    let bytes = got.bytes.min(remaining);
                    (bytes, got.region, Some(got))
                }
            };
            report.passes.push(pass_bytes);
            let buf_pages = pass_bytes.div_ceil(page);

            // Read phase: stream records in, touching buffer pages as they
            // fill.
            let t0 = self.os.now();
            let mut done = 0u64;
            while done < pass_bytes {
                let want = self.cfg.chunk.min(pass_bytes - done);
                let n = self.os.read_discard(in_fd, offset + done, want)?;
                if n == 0 {
                    return Err(OsError::Io("input truncated".into()));
                }
                let first_page = done / page;
                let last_page = (done + n - 1) / page;
                let touch_batch = self.cfg.touch_batch.max(1);
                for batch_start in (first_page..=last_page).step_by(touch_batch as usize) {
                    let batch_end = (batch_start + touch_batch - 1).min(last_page);
                    let plan: Vec<u64> = (batch_start..=batch_end).collect();
                    if self.os.mem_probe_batch(region, &plan).iter().any(|s| !s.ok) {
                        return Err(OsError::InvalidArgument);
                    }
                }
                done += n;
            }
            report.read_time += self.os.now().since(t0);

            // Sort phase: CPU plus two more sweeps of memory traffic.
            let t0 = self.os.now();
            let records = pass_bytes / self.cfg.record_bytes;
            if self.cfg.model_cpu && records > 1 {
                let log2 = 64 - (records - 1).leading_zeros() as u64;
                self.os
                    .compute(self.cfg.sort_cost_per_record * records * log2.max(1) / 8);
            }
            let touch_batch = self.cfg.touch_batch.max(1);
            for _ in 0..2 {
                for batch_start in (0..buf_pages).step_by(touch_batch as usize) {
                    let batch_end = (batch_start + touch_batch).min(buf_pages);
                    let sweep: Vec<u64> = (batch_start..batch_end).collect();
                    if self
                        .os
                        .mem_probe_batch(region, &sweep)
                        .iter()
                        .any(|s| !s.ok)
                    {
                        return Err(OsError::InvalidArgument);
                    }
                }
            }
            report.sort_time += self.os.now().since(t0);

            // Write phase: stream the sorted run out, re-reading buffer
            // pages as records drain.
            let t0 = self.os.now();
            let run_path = format!("{}.run{}", self.cfg.output, run_idx);
            let out_fd = self.os.create(&run_path)?;
            let mut written = 0u64;
            while written < pass_bytes {
                let want = self.cfg.chunk.min(pass_bytes - written);
                self.os.write_fill(out_fd, written, want)?;
                let first_page = written / page;
                let last_page = (written + want - 1) / page;
                for p in first_page..=last_page {
                    self.os.mem_touch_read(region, p)?;
                }
                written += want;
            }
            self.os.close(out_fd)?;
            report.write_time += self.os.now().since(t0);

            // Free the pass buffer (gb-fastsort's no-deadlock discipline).
            match alloc {
                Some(a) => mac.as_ref().expect("gray-box mode").gb_free(a)?,
                None => self.os.mem_free(region)?,
            }
            offset += pass_bytes;
            run_idx += 1;
        }
        self.os.close(in_fd)?;

        if let Some(mac) = &mac {
            let stats: MacStats = mac.take_stats();
            report.probe_time = stats.probe_time;
            report.wait_time = stats.wait_time;
        }
        report.total = self.os.now().since(t_start);
        Ok(report)
    }

    /// Sorts real bytes: reads records, sorts each pass in host memory,
    /// writes real runs, then k-way merges into `output`.
    pub fn run_real(&self) -> OsResult<SortReport> {
        let t_start = self.os.now();
        let mut report = SortReport::default();
        let rec = self.cfg.record_bytes as usize;
        let in_fd = self.os.open(&self.cfg.input)?;
        let input_size = self.os.file_size(in_fd)?;
        if input_size % self.cfg.record_bytes != 0 {
            return Err(OsError::InvalidArgument);
        }

        let mac = match &self.cfg.pass_policy {
            PassPolicy::GrayBox { mac, .. } => Some(Mac::new(self.os, mac.clone())),
            PassPolicy::Static(_) => None,
        };

        // Pass one: sorted runs.
        let mut runs: Vec<String> = Vec::new();
        let mut offset = 0u64;
        while offset < input_size {
            let remaining = input_size - offset;
            let (pass_bytes, alloc) = match &self.cfg.pass_policy {
                PassPolicy::Static(bytes) => {
                    (round_to(*bytes, self.cfg.record_bytes).min(remaining), None)
                }
                PassPolicy::GrayBox { min, .. } => {
                    let mac_ref = mac.as_ref().expect("constructed above");
                    let min = (*min).min(remaining);
                    let a = loop {
                        match mac_ref.gb_alloc(min, remaining, self.cfg.record_bytes)? {
                            Some(a) => break a,
                            None => self.os.sleep(GrayDuration::from_millis(500)),
                        }
                    };
                    (a.bytes.min(remaining), Some(a))
                }
            };
            let pass_bytes = pass_bytes.max(self.cfg.record_bytes);
            report.passes.push(pass_bytes);

            let t0 = self.os.now();
            let mut data = vec![0u8; pass_bytes as usize];
            let mut got = 0usize;
            while (got as u64) < pass_bytes {
                let n = self
                    .os
                    .read_at(in_fd, offset + got as u64, &mut data[got..])?;
                if n == 0 {
                    break;
                }
                got += n;
            }
            data.truncate(got - got % rec);
            report.read_time += self.os.now().since(t0);

            let t0 = self.os.now();
            let key = self.cfg.key_bytes.min(rec);
            let mut order: Vec<usize> = (0..data.len() / rec).collect();
            order.sort_by(|&a, &b| data[a * rec..a * rec + key].cmp(&data[b * rec..b * rec + key]));
            let mut sorted = Vec::with_capacity(data.len());
            for idx in &order {
                sorted.extend_from_slice(&data[idx * rec..(idx + 1) * rec]);
            }
            report.sort_time += self.os.now().since(t0);

            let t0 = self.os.now();
            let run_path = format!("{}.run{}", self.cfg.output, runs.len());
            let out = self.os.create(&run_path)?;
            let mut written = 0usize;
            while written < sorted.len() {
                let n = self.os.write_at(out, written as u64, &sorted[written..])?;
                written += n;
            }
            self.os.close(out)?;
            report.write_time += self.os.now().since(t0);

            if let Some(a) = alloc {
                mac.as_ref().expect("gray-box mode").gb_free(a)?;
            }
            runs.push(run_path);
            offset += sorted.len() as u64;
        }
        self.os.close(in_fd)?;

        // Pass two: k-way merge.
        self.merge_runs(&runs)?;
        for run in &runs {
            self.os.unlink(run)?;
        }
        if let Some(mac) = &mac {
            let stats = mac.take_stats();
            report.probe_time = stats.probe_time;
            report.wait_time = stats.wait_time;
        }
        report.total = self.os.now().since(t_start);
        Ok(report)
    }

    fn merge_runs(&self, runs: &[String]) -> OsResult<()> {
        struct Cursor {
            fd: Fd,
            offset: u64,
            size: u64,
            current: Vec<u8>,
        }
        let rec = self.cfg.record_bytes as usize;
        let key = self.cfg.key_bytes.min(rec);
        let mut cursors = Vec::new();
        for run in runs {
            let fd = self.os.open(run)?;
            let size = self.os.file_size(fd)?;
            let mut cur = Cursor {
                fd,
                offset: 0,
                size,
                current: vec![0u8; rec],
            };
            if advance(self.os, &mut cur)? {
                cursors.push(cur);
            } else {
                self.os.close(fd)?;
            }
        }
        let out = self.os.create(&self.cfg.output)?;
        let mut out_off = 0u64;
        while !cursors.is_empty() {
            let (best, _) = cursors
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.current[..key].cmp(&b.current[..key]))
                .expect("non-empty");
            let n = self.os.write_at(out, out_off, &cursors[best].current)?;
            debug_assert_eq!(n, rec);
            out_off += rec as u64;
            if !advance(self.os, &mut cursors[best])? {
                let done = cursors.swap_remove(best);
                self.os.close(done.fd)?;
            }
        }
        self.os.close(out)?;

        fn advance<O: GrayBoxOs>(os: &O, cur: &mut Cursor) -> OsResult<bool> {
            if cur.offset >= cur.size {
                return Ok(false);
            }
            let mut got = 0usize;
            while got < cur.current.len() {
                let n = os.read_at(cur.fd, cur.offset + got as u64, &mut cur.current[got..])?;
                if n == 0 {
                    return Ok(false);
                }
                got += n;
            }
            cur.offset += cur.current.len() as u64;
            Ok(true)
        }
        Ok(())
    }
}

fn round_to(x: u64, m: u64) -> u64 {
    (x / m * m).max(m)
}

/// Generates `n` random records of `record_bytes` bytes at `path`
/// (real content, for `run_real` and tests).
pub fn make_records<O: GrayBoxOs>(
    os: &O,
    path: &str,
    n: u64,
    record_bytes: u64,
    seed: u64,
) -> OsResult<()> {
    use gray_toolbox::rng::StdRng;
    use gray_toolbox::rng::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let fd = os.create(path)?;
    let mut buf = vec![0u8; (record_bytes * n.min(1024)) as usize];
    let mut written = 0u64;
    let total = n * record_bytes;
    while written < total {
        let want = buf.len().min((total - written) as usize);
        for b in &mut buf[..want] {
            *b = rng.random_range(b'a'..=b'z');
        }
        let put = os.write_at(fd, written, &buf[..want])?;
        written += put as u64;
    }
    os.close(fd)
}

/// Verifies that `path` holds records sorted by their key prefix.
pub fn verify_sorted<O: GrayBoxOs>(
    os: &O,
    path: &str,
    record_bytes: u64,
    key_bytes: usize,
) -> OsResult<bool> {
    let fd = os.open(path)?;
    let size = os.file_size(fd)?;
    let rec = record_bytes as usize;
    let key = key_bytes.min(rec);
    let mut prev: Option<Vec<u8>> = None;
    let mut offset = 0u64;
    let mut buf = vec![0u8; rec];
    while offset < size {
        let mut got = 0usize;
        while got < rec {
            let n = os.read_at(fd, offset + got as u64, &mut buf[got..])?;
            if n == 0 {
                self_close(os, fd)?;
                return Ok(false);
            }
            got += n;
        }
        if let Some(p) = &prev {
            if buf[..key] < p[..key] {
                self_close(os, fd)?;
                return Ok(false);
            }
        }
        prev = Some(buf[..key].to_vec());
        offset += rec as u64;
    }
    self_close(os, fd)?;
    Ok(true)
}

fn self_close<O: GrayBoxOs>(os: &O, fd: Fd) -> OsResult<()> {
    os.close(fd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::make_file;
    use simos::{Sim, SimConfig};

    #[test]
    fn real_sort_single_pass_sorts() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            make_records(os, "/in", 500, 100, 42).unwrap();
            let cfg = SortConfig::new("/in", "/out", PassPolicy::Static(1 << 20));
            FastSort::new(os, cfg).run_real().unwrap();
            assert!(verify_sorted(os, "/out", 100, 10).unwrap());
            assert_eq!(os.stat("/out").unwrap().size, 500 * 100);
        });
    }

    #[test]
    fn real_sort_multi_run_merge_sorts() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            make_records(os, "/in", 1000, 100, 7).unwrap();
            // Pass of 20 KB → 5 runs of 200 records each.
            let cfg = SortConfig::new("/in", "/out", PassPolicy::Static(20_000));
            let report = FastSort::new(os, cfg).run_real().unwrap();
            assert_eq!(report.passes.len(), 5);
            assert!(verify_sorted(os, "/out", 100, 10).unwrap());
            assert_eq!(os.stat("/out").unwrap().size, 1000 * 100);
        });
    }

    #[test]
    fn real_sort_with_mac_policy_completes() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            make_records(os, "/in", 2000, 100, 3).unwrap();
            let cfg = SortConfig::new(
                "/in",
                "/out",
                PassPolicy::GrayBox {
                    mac: MacParams {
                        initial_increment: 16 * 4096,
                        max_increment: 256 * 4096,
                        ..MacParams::default()
                    },
                    min: 50_000,
                },
            );
            let report = FastSort::new(os, cfg).run_real().unwrap();
            assert!(verify_sorted(os, "/out", 100, 10).unwrap());
            assert!(report.probe_time > GrayDuration::ZERO);
        });
    }

    #[test]
    fn modelled_sort_reports_phases_and_runs() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            make_file(os, "/in", 4 << 20).unwrap();
            let cfg = SortConfig::new("/in", "/out", PassPolicy::Static(1 << 20));
            let report = FastSort::new(os, cfg).run_modelled().unwrap();
            assert!(report.passes.len() >= 4, "passes: {:?}", report.passes);
            assert!(report.read_time > GrayDuration::ZERO);
            assert!(report.sort_time > GrayDuration::ZERO);
            assert!(report.write_time > GrayDuration::ZERO);
            // Run files exist.
            assert!(os.stat("/out.run0").is_ok());
        });
    }

    #[test]
    fn oversized_static_pass_thrashes() {
        // Usable memory is 56 MB; sorting 24 MB with a 24 MB pass (fits)
        // versus a 80 MB request (thrashes against itself via buffer +
        // cache interplay is mild here, so compare against a pass bigger
        // than physical memory).
        let cfg_sim = SimConfig::small().without_noise();
        let mut sim = Sim::new(cfg_sim.clone());
        let fits = sim.run_one(|os| {
            make_file(os, "/in", 60 << 20).unwrap();
            let cfg = SortConfig::new("/in", "/out", PassPolicy::Static(20 << 20));
            FastSort::new(os, cfg).run_modelled().unwrap()
        });
        let mut sim = Sim::new(cfg_sim);
        let thrash = sim.run_one(|os| {
            make_file(os, "/in", 60 << 20).unwrap();
            // One 60 MB pass on a 56 MB machine: every sweep swaps.
            let cfg = SortConfig::new("/in", "/out", PassPolicy::Static(80 << 20));
            FastSort::new(os, cfg).run_modelled().unwrap()
        });
        assert!(
            thrash.total > fits.total.mul_f64(1.5),
            "thrash {} vs fits {}",
            thrash.total,
            fits.total
        );
    }

    #[test]
    fn graybox_sort_avoids_thrashing_automatically() {
        let cfg_sim = SimConfig::small().without_noise();
        let mut sim = Sim::new(cfg_sim);
        let report = sim.run_one(|os| {
            make_file(os, "/in", 24 << 20).unwrap();
            let cfg = SortConfig::new(
                "/in",
                "/out",
                PassPolicy::GrayBox {
                    mac: MacParams {
                        initial_increment: 1 << 20,
                        max_increment: 16 << 20,
                        ..MacParams::default()
                    },
                    min: 4 << 20,
                },
            );
            FastSort::new(os, cfg).run_modelled().unwrap()
        });
        // Every admitted pass must fit comfortably under 56 MB usable.
        for &pass in &report.passes {
            assert!(
                pass <= 56 << 20,
                "MAC admitted an impossible pass of {} bytes",
                pass
            );
        }
        assert!(report.probe_time > GrayDuration::ZERO);
    }

    #[test]
    fn touch_batch_comes_from_repository() {
        use gray_toolbox::repository::keys;
        use gray_toolbox::ParamRepository;
        let base = SortConfig::new("/in", "/out", PassPolicy::Static(1 << 20));
        assert_eq!(base.touch_batch, 64);
        let mut repo = ParamRepository::in_memory();
        repo.set_raw(keys::SCHED_SUB_BATCH_PAGES, 32u64);
        assert_eq!(base.clone().with_repository(&repo).touch_batch, 32);
        // An empty repository leaves the default alone.
        let empty = ParamRepository::in_memory();
        assert_eq!(base.with_repository(&empty).touch_batch, 64);
    }

    #[test]
    fn verify_sorted_detects_disorder() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| {
            use graybox::os::GrayBoxOsExt;
            let mut data = Vec::new();
            data.extend_from_slice(&[b'z'; 100]);
            data.extend_from_slice(&[b'a'; 100]);
            os.write_file("/bad", &data).unwrap();
            assert!(!verify_sorted(os, "/bad", 100, 10).unwrap());
        });
    }
}
