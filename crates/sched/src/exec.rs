//! Plan executors: how a wave of plans becomes running probes.
//!
//! The scheduler is backend-agnostic; an executor maps one *wave* (a set
//! of plans meant to run concurrently) onto a backend's notion of
//! concurrency:
//!
//! - [`InlineExecutor`] runs plans sequentially on a borrowed backend —
//!   the degenerate executor, and the reference for the concurrency-1
//!   equivalence tests;
//! - [`SimExecutor`] turns each plan into one `simos` process and runs the
//!   wave through [`Sim::run`], so probe latency overlaps disk service in
//!   virtual time;
//! - [`HostExecutor`] gives each plan a real thread with its own
//!   [`HostOs`] view over a shared root.

use gray_toolbox::GrayDuration;
use graybox::os::GrayBoxOs;
use hostos::HostOs;
use simos::exec::Workload;
use simos::{Sim, SimProc};

use crate::plan::{execute_plan, PlanResult, ProbePlan};

/// The result of running one wave.
#[derive(Debug)]
pub struct WaveOutcome {
    /// One result per plan, in wave order.
    pub results: Vec<PlanResult>,
    /// Wall-clock span of the wave as the backend experiences time
    /// (virtual under `simos`, host time under `hostos`), measured from
    /// *outside* the worker processes so it adds no syscalls to them.
    /// `None` when the executor has no out-of-band clock (inline).
    pub span: Option<GrayDuration>,
}

/// Turns waves of plans into executed probes.
pub trait PlanExecutor {
    /// Runs every plan of `wave` (concurrently, if the backend can) and
    /// returns their results in wave order.
    fn run_wave(&mut self, wave: &[ProbePlan]) -> WaveOutcome;
}

/// Runs plans one after another on a borrowed backend.
///
/// No concurrency, no extra processes, no extra syscalls: a wave of N
/// plans issues exactly the syscalls of N direct dispatches. Use it where
/// the probing must happen inside an existing process (mock tests, or a
/// `run_one` workload under simos).
pub struct InlineExecutor<'a, O: GrayBoxOs> {
    os: &'a O,
}

impl<'a, O: GrayBoxOs> InlineExecutor<'a, O> {
    /// Creates an executor over the borrowed backend.
    pub fn new(os: &'a O) -> Self {
        InlineExecutor { os }
    }
}

impl<O: GrayBoxOs> PlanExecutor for InlineExecutor<'_, O> {
    fn run_wave(&mut self, wave: &[ProbePlan]) -> WaveOutcome {
        let results = wave.iter().map(|p| execute_plan(self.os, p)).collect();
        WaveOutcome {
            results,
            span: None,
        }
    }
}

/// Runs each plan of a wave as one simulated process via [`Sim::run`].
///
/// All processes of a wave start at the same virtual instant; the
/// simulator's conservative discrete-event executor then interleaves them
/// by virtual time, so plans probing files on different disks genuinely
/// overlap their disk service. The wave span is measured from the kernel
/// clock outside any process (no syscalls are added to the workers).
pub struct SimExecutor<'a> {
    sim: &'a mut Sim,
}

impl<'a> SimExecutor<'a> {
    /// Creates an executor over the simulation.
    pub fn new(sim: &'a mut Sim) -> Self {
        SimExecutor { sim }
    }

    /// The underlying simulation (for cache flushes between experiments).
    pub fn sim(&mut self) -> &mut Sim {
        self.sim
    }
}

impl PlanExecutor for SimExecutor<'_> {
    fn run_wave(&mut self, wave: &[ProbePlan]) -> WaveOutcome {
        let t0 = self.sim.now();
        let workloads: Vec<(String, Workload<'_, PlanResult>)> = wave
            .iter()
            .map(|plan| {
                let plan = plan.clone();
                let name = plan.path.clone();
                let w: Workload<'_, PlanResult> =
                    Box::new(move |os: &SimProc| execute_plan(os, &plan));
                (name, w)
            })
            .collect();
        // A dead plan process is a bug in the plan or the ICL under it;
        // surface pid + plan path instead of a bare unwrap.
        let results = self
            .sim
            .try_run(workloads)
            .unwrap_or_else(|p| panic!("probe plan process died: {p}"));
        let span = self.sim.now().since(t0);
        WaveOutcome {
            results,
            span: Some(span),
        }
    }
}

/// Runs each plan of a wave on its own thread against the real OS.
///
/// [`HostOs`] keeps per-process state in `RefCell`s, so instances cannot
/// be shared across threads; instead every worker gets its own
/// [`HostOs::fork_view`] over the shared root — same files, same page
/// cache underneath, private descriptor tables.
pub struct HostExecutor {
    root: HostOs,
}

impl HostExecutor {
    /// Creates an executor whose workers fork views of `root`.
    pub fn new(root: HostOs) -> Self {
        HostExecutor { root }
    }
}

impl PlanExecutor for HostExecutor {
    fn run_wave(&mut self, wave: &[ProbePlan]) -> WaveOutcome {
        let t0 = std::time::Instant::now();
        let results: Vec<PlanResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = wave
                .iter()
                .map(|plan| {
                    let view = self.root.fork_view();
                    scope.spawn(move || match view {
                        Ok(os) => execute_plan(&os, plan),
                        Err(e) => PlanResult {
                            path: plan.path.clone(),
                            size: 0,
                            samples: Vec::new(),
                            error: Some(graybox::os::OsError::Io(e.to_string())),
                        },
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("probe worker panicked"))
                .collect()
        });
        let span = GrayDuration::from_nanos(t0.elapsed().as_nanos() as u64);
        WaveOutcome {
            results,
            span: Some(span),
        }
    }
}
