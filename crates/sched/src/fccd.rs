//! FCCD over the scheduler: multi-file cache-content detection whose
//! probes run concurrently instead of file-after-file.
//!
//! [`FccdFleet`] is the scheduler-side twin of `graybox::Fccd`: the same
//! OS-free `FccdPlanner` draws the probe offsets and folds the samples,
//! but dispatch goes through a [`Scheduler`] so that N candidate files can
//! be probed at once. When the files live on different disks (or the
//! backend has real parallelism), probe latency overlaps disk service and
//! the whole classification finishes in roughly the time of the slowest
//! file instead of the sum of all of them.

use graybox::fccd::FccdParams;
use graybox::fccd::{classify_ranks, sort_ranks, Classified, FccdFilePlan, FccdPlanner, FileRank};
use graybox::os::GrayBoxOs;

use crate::exec::PlanExecutor;
use crate::plan::ProbePlan;
use crate::Scheduler;

/// FCCD classification of many files through the probe scheduler.
///
/// Plans are drawn client-side (RNG, parameters, and fold all stay here);
/// workers only open/probe/close. Files are handed in as `(path, size)`
/// pairs because planning precedes the worker's `file_size` observation —
/// the fold afterwards uses the size the *worker* saw, so a stale caller
/// size only mildly skews offset placement, never correctness.
pub struct FccdFleet {
    planner: FccdPlanner,
    sub_batch: usize,
    page_size: u64,
}

/// Submitted-but-unfolded probe plans from
/// [`submit_files`](FccdFleet::submit_files): one `(handle, plan, path)`
/// per file, in input order. Opaque so the fold stays the fleet's job.
pub struct PendingFiles {
    pending: Vec<(crate::PlanHandle, FccdFilePlan, String)>,
}

impl PendingFiles {
    /// Number of files awaiting fold.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing was submitted.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

impl FccdFleet {
    /// Creates a fleet detector over the given backend's geometry.
    ///
    /// Reads the clock once, exactly like `Fccd::new`, so a fleet and an
    /// inline detector built back-to-back issue identical syscall
    /// sequences (the equivalence tests compare runs syscall for
    /// syscall). `sub_batch` bounds specs per `probe_batch` call; 0 sends
    /// each file's plan as one batch.
    pub fn new<O: GrayBoxOs>(os: &O, params: FccdParams, sub_batch: usize) -> Self {
        let planner = FccdPlanner::new(params, os.now());
        FccdFleet {
            planner,
            sub_batch,
            page_size: os.page_size(),
        }
    }

    /// Creates a fleet whose probe offsets depend only on `params.seed`,
    /// mirroring `Fccd::with_fixed_seed` (including the clock read, kept
    /// for syscall-sequence parity). For tests needing bit-exact offsets.
    pub fn with_fixed_seed<O: GrayBoxOs>(os: &O, params: FccdParams, sub_batch: usize) -> Self {
        let fleet = FccdFleet::new(os, params, sub_batch);
        let params = fleet.planner.params().clone();
        FccdFleet {
            planner: FccdPlanner::with_fixed_seed(params),
            ..fleet
        }
    }

    /// The OS-free planner half.
    pub fn planner(&self) -> &FccdPlanner {
        &self.planner
    }

    /// Draws one file's probe plan and wraps it for the scheduler.
    fn plan_for(&self, path: &str, size: u64) -> (FccdFilePlan, ProbePlan) {
        let plan = self.planner.draw_plan(size, self.page_size);
        gray_toolbox::trace::emit_with(|| gray_toolbox::trace::TraceEvent::ProbePlanned {
            target: path.to_string(),
            probes: plan.specs.len() as u64,
        });
        let probe = ProbePlan {
            path: path.to_string(),
            specs: plan.specs.clone(),
            sub_batch: self.sub_batch,
        };
        (plan, probe)
    }

    /// Draws and submits one plan per file, without dispatching.
    ///
    /// Offsets are drawn per file in input order (one `draw_plan` each —
    /// the same RNG consumption as ranking the files inline one by one).
    /// Callers that pool probes across independent queries — the `gbd`
    /// daemon batches every tenant's FCCD misses into shared waves —
    /// submit each query's files, dispatch the scheduler once, then fold
    /// each query with [`fold_files`](FccdFleet::fold_files).
    pub fn submit_files(&self, sched: &mut Scheduler, files: &[(String, u64)]) -> PendingFiles {
        let mut pending = Vec::with_capacity(files.len());
        for (path, size) in files {
            let (plan, probe) = self.plan_for(path, *size);
            let handle = sched.submit(probe);
            pending.push((handle, plan, path.clone()));
        }
        PendingFiles { pending }
    }

    /// Folds dispatched probe results back into ranks, fastest first.
    /// Files whose worker failed to open them sort last with the
    /// small-file penalty, exactly as in the inline path.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler has not dispatched the submitted plans.
    pub fn fold_files(&self, sched: &mut Scheduler, submitted: PendingFiles) -> Vec<FileRank> {
        let mut ranks: Vec<FileRank> = submitted
            .pending
            .into_iter()
            .map(|(handle, plan, path)| {
                let result = sched
                    .take(handle)
                    .expect("dispatch resolves every submitted handle");
                if result.error.is_some() {
                    self.planner.rank_unopenable(&path)
                } else {
                    let report = self.planner.fold(&plan, &result.samples);
                    self.planner.rank(&path, result.size, &report)
                }
            })
            .collect();
        sort_ranks(&mut ranks);
        ranks
    }

    /// Ranks `files` by predicted access cost, fastest first, probing
    /// through the scheduler: submit, dispatch, fold.
    pub fn order_files<E: PlanExecutor>(
        &self,
        sched: &mut Scheduler,
        exec: &mut E,
        files: &[(String, u64)],
    ) -> Vec<FileRank> {
        let submitted = self.submit_files(sched, files);
        sched.dispatch(exec);
        self.fold_files(sched, submitted)
    }

    /// Splits `files` into predicted-cached and predicted-uncached groups
    /// (two-means over the fleet-probed mean probe times), mirroring
    /// `Fccd::classify_files`.
    pub fn classify_files<E: PlanExecutor>(
        &self,
        sched: &mut Scheduler,
        exec: &mut E,
        files: &[(String, u64)],
    ) -> Classified {
        classify_ranks(self.order_files(sched, exec, files))
    }
}
