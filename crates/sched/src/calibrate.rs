//! Concurrency calibration: how many plans per wave actually helps?
//!
//! The right concurrency cap is a property of the machine under the
//! gray-box layer — disk count, CPU count, cache behaviour — none of
//! which the layer can read directly. So, in the spirit of every other
//! parameter in this repo, it is *measured*: run the same probe workload
//! at doubling concurrency levels and keep raising the cap while the
//! wave span keeps shrinking meaningfully.

use gray_toolbox::repository::{keys, ParamRepository};

use crate::exec::PlanExecutor;
use crate::plan::ProbePlan;

/// A wave must finish in at most this fraction of the previous level's
/// span for the doubling to count as an improvement. 20% slack: halving
/// the workers' serialization should roughly halve the span when the
/// bottleneck is parallel (independent disks), and barely move it when it
/// is not.
const IMPROVEMENT: f64 = 0.8;

/// Measures the useful concurrency level for `exec` and publishes it as
/// `sched.concurrency_cap`.
///
/// `make_wave(n)` must build a wave of `n` plans that are *independent
/// and comparable* across calls — e.g. FCCD plans over distinct cold
/// files, a fresh set per call so earlier trials do not warm the later
/// ones. Levels double from 1 up to `max_cap`; the first level that fails
/// to beat its predecessor by [`IMPROVEMENT`] ends the search, and the
/// best level so far wins.
///
/// Span source: the executor's wave span where available (virtual time
/// under simos); executors without an out-of-band clock fall back to the
/// summed per-probe sample times, which measures the same contention,
/// just without the overlap credit.
pub fn calibrate_concurrency<E: PlanExecutor>(
    exec: &mut E,
    mut make_wave: impl FnMut(usize) -> Vec<ProbePlan>,
    max_cap: usize,
    repo: &mut ParamRepository,
) -> usize {
    let max_cap = max_cap.max(1);
    let mut best = 1usize;
    let mut prev_per_plan = f64::INFINITY;
    let mut level = 1usize;
    while level <= max_cap {
        let wave = make_wave(level);
        assert_eq!(wave.len(), level, "make_wave must honor the level");
        let outcome = exec.run_wave(&wave);
        let span_ns = match outcome.span {
            Some(span) => span.as_nanos() as f64,
            None => outcome
                .results
                .iter()
                .flat_map(|r| r.samples.iter())
                .map(|s| s.elapsed.as_nanos() as f64)
                .sum(),
        };
        // Compare per-plan cost: a level earns its keep only if running
        // `level` plans together costs meaningfully less per plan than
        // the previous level did.
        let per_plan = span_ns / level as f64;
        if per_plan <= prev_per_plan * IMPROVEMENT {
            best = level;
            prev_per_plan = per_plan;
            level *= 2;
        } else {
            break;
        }
    }
    repo.set_raw(keys::SCHED_CONCURRENCY_CAP, best as u64);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::WaveOutcome;
    use crate::plan::PlanResult;
    use gray_toolbox::GrayDuration;

    /// Span model: `serial_frac` of each plan's work serializes, the rest
    /// overlaps perfectly. Plan cost 1000 ns.
    struct ModelExecutor {
        serial_frac: f64,
    }

    impl PlanExecutor for ModelExecutor {
        fn run_wave(&mut self, wave: &[ProbePlan]) -> WaveOutcome {
            let n = wave.len() as f64;
            let span = 1000.0 * (self.serial_frac * n + (1.0 - self.serial_frac));
            WaveOutcome {
                results: wave
                    .iter()
                    .map(|p| PlanResult {
                        path: p.path.clone(),
                        size: 0,
                        samples: Vec::new(),
                        error: None,
                    })
                    .collect(),
                span: Some(GrayDuration::from_nanos(span as u64)),
            }
        }
    }

    fn waves(n: usize) -> Vec<ProbePlan> {
        (0..n)
            .map(|i| ProbePlan {
                path: format!("/f{i}"),
                specs: Vec::new(),
                sub_batch: 0,
            })
            .collect()
    }

    #[test]
    fn parallel_backend_earns_a_high_cap() {
        let mut repo = ParamRepository::in_memory();
        let mut exec = ModelExecutor { serial_frac: 0.05 };
        let cap = calibrate_concurrency(&mut exec, waves, 8, &mut repo);
        assert!(
            cap >= 4,
            "nearly-parallel backend should calibrate high, got {cap}"
        );
        assert_eq!(
            repo.get_u64(keys::SCHED_CONCURRENCY_CAP).unwrap(),
            Some(cap as u64)
        );
    }

    #[test]
    fn serial_backend_stays_at_one() {
        let mut repo = ParamRepository::in_memory();
        let mut exec = ModelExecutor { serial_frac: 1.0 };
        let cap = calibrate_concurrency(&mut exec, waves, 8, &mut repo);
        assert_eq!(cap, 1, "fully serial backend must not raise the cap");
    }
}
