//! gray-sched: a shared probe-scheduler runtime for gray-box ICLs.
//!
//! ICLs learn about the OS by *probing* it — timed reads (FCCD), page
//! touches (MAC) — and until now every ICL dispatched its own probes
//! inline, serially. This crate centralises dispatch: clients describe
//! probes as inert [`ProbePlan`]s, submit them to a [`Scheduler`], and the
//! scheduler fans waves of plans out across processes (simulated processes
//! under `simos`, real threads under `hostos`) through a [`PlanExecutor`].
//! Results come back through completion handles.
//!
//! Three properties matter more than raw throughput:
//!
//! 1. **Equivalence at concurrency 1.** A scheduler with one worker issues
//!    the same syscalls in the same order as direct dispatch, so every
//!    classification an ICL makes through the scheduler is bit-identical
//!    to the PR 3 inline path (`tests/sched_equivalence.rs` pins this).
//! 2. **Overlap where the bottleneck allows it.** Plans probing files on
//!    different disks overlap their disk service; the FCCD fleet path
//!    ([`fccd::FccdFleet`]) exploits this for multi-file classification.
//! 3. **Self-restraint.** Probes measure the system; concurrent probes can
//!    measure *each other*. The scheduler watches the dispersion of
//!    per-plan probe times within each wave and backs concurrency off
//!    (multiplicatively, AIMD-style — the same shape MAC uses for memory)
//!    when plans start interfering.
//!
//! Tunables (`sched.concurrency_cap`, `sched.sub_batch_pages`) come from
//! the parameter repository, populated by `Microbench` and
//! [`calibrate::calibrate_concurrency`] rather than compile-time constants.

use std::collections::{BTreeMap, VecDeque};

use gray_toolbox::metrics;
use gray_toolbox::repository::{keys, ParamRepository};
use gray_toolbox::trace::{self, TraceEvent};
use gray_toolbox::GrayDuration;

pub mod admission;
pub mod calibrate;
pub mod exec;
pub mod fccd;
pub mod plan;

pub use admission::{AdmissionRequest, AdmissionTicket, MacAdmissionQueue};
pub use exec::{HostExecutor, InlineExecutor, PlanExecutor, SimExecutor, WaveOutcome};
pub use fccd::{FccdFleet, PendingFiles};
pub use plan::{execute_plan, PlanResult, ProbePlan};

/// Completion handle for a submitted plan; redeem with [`Scheduler::take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanHandle(u64);

impl PlanHandle {
    /// Reconstructs a handle from its raw id (handles count up from 0 in
    /// submission order). For tooling that iterates results positionally.
    pub fn from_raw(id: u64) -> Self {
        PlanHandle(id)
    }
}

/// Self-interference guard tuning.
#[derive(Debug, Clone, Copy)]
pub struct GuardParams {
    /// Coefficient of variation (stddev / mean) of per-plan mean probe
    /// times above which a wave is judged self-interfering. Cached-vs-
    /// uncached timing differences within a *single* plan do not trip
    /// this: the guard compares plan-level means, and genuinely
    /// independent plans (distinct disks) land close together while
    /// contending plans spread out as queueing delays pile onto some of
    /// them.
    pub cv_threshold: f64,
    /// Concurrency never drops below this (1 = always make progress).
    pub min_concurrency: usize,
}

impl Default for GuardParams {
    fn default() -> Self {
        GuardParams {
            cv_threshold: 0.5,
            min_concurrency: 1,
        }
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Concurrency cap: the most plans ever dispatched in one wave.
    pub concurrency: usize,
    /// Sub-batch bound stamped onto dispatched plans that ask for one
    /// (`ProbePlan.sub_batch` is left alone; this is the default used by
    /// plan builders such as [`FccdFleet`]).
    pub sub_batch: usize,
    /// Self-interference guard tuning.
    pub guard: GuardParams,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            concurrency: 4,
            sub_batch: 64,
            guard: GuardParams::default(),
        }
    }
}

impl SchedConfig {
    /// Builds a config from the parameter repository, falling back to
    /// defaults for keys that are absent or zero. `sched.concurrency_cap`
    /// is published by [`calibrate::calibrate_concurrency`];
    /// `sched.sub_batch_pages` by `Microbench::run_all`.
    pub fn from_repository(repo: &ParamRepository) -> Self {
        let mut cfg = SchedConfig::default();
        if let Ok(Some(cap)) = repo.get_u64(keys::SCHED_CONCURRENCY_CAP) {
            if cap > 0 {
                cfg.concurrency = cap as usize;
            }
        }
        if let Ok(Some(sb)) = repo.get_u64(keys::SCHED_SUB_BATCH_PAGES) {
            if sb > 0 {
                cfg.sub_batch = sb as usize;
            }
        }
        cfg
    }
}

/// What one dispatched wave looked like, for observability and benchmarks.
#[derive(Debug, Clone)]
pub struct WaveStat {
    /// Number of plans in the wave.
    pub plans: usize,
    /// Concurrency level the wave ran at (== `plans` unless the queue ran
    /// short).
    pub concurrency: usize,
    /// Backend-time span of the wave (virtual under simos); `None` for
    /// executors without an out-of-band clock.
    pub span: Option<GrayDuration>,
    /// Coefficient of variation of per-plan mean probe times (0.0 for
    /// waves with fewer than two measurable plans).
    pub cv: f64,
}

/// The probe scheduler: a work queue of plans, dispatched in waves.
///
/// Submission and dispatch are decoupled so unrelated clients can pool
/// their probes into shared waves: submit any number of plans, then call
/// [`dispatch`](Scheduler::dispatch) with an executor; redeem each
/// [`PlanHandle`] with [`take`](Scheduler::take).
pub struct Scheduler {
    cfg: SchedConfig,
    queue: VecDeque<(u64, ProbePlan)>,
    done: BTreeMap<u64, PlanResult>,
    next_handle: u64,
    /// Live concurrency level: starts at the cap, moves with the guard.
    concurrency: usize,
    waves: Vec<WaveStat>,
}

impl Scheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(cfg: SchedConfig) -> Self {
        assert!(cfg.concurrency >= 1, "concurrency cap must be >= 1");
        assert!(
            cfg.guard.min_concurrency >= 1,
            "min concurrency must be >= 1"
        );
        let concurrency = cfg.concurrency;
        Scheduler {
            cfg,
            queue: VecDeque::new(),
            done: BTreeMap::new(),
            next_handle: 0,
            concurrency,
            waves: Vec::new(),
        }
    }

    /// The configured default sub-batch bound for plan builders.
    pub fn sub_batch(&self) -> usize {
        self.cfg.sub_batch
    }

    /// Enqueues a plan; the handle redeems its result after dispatch.
    pub fn submit(&mut self, plan: ProbePlan) -> PlanHandle {
        let id = self.next_handle;
        self.next_handle += 1;
        self.queue.push_back((id, plan));
        PlanHandle(id)
    }

    /// Number of plans waiting for dispatch.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Drains the queue through `exec` in waves of at most the current
    /// concurrency level, adjusting concurrency between waves via the
    /// self-interference guard.
    ///
    /// Guard rule (AIMD, echoing MAC's memory ramp): after each wave of
    /// two or more measurable plans, compute the coefficient of variation
    /// of per-plan mean probe times. Above the threshold, halve
    /// concurrency (floored at the guard minimum) — the plans were timing
    /// each other, not the OS. Otherwise recover additively, one worker
    /// per clean wave, up to the configured cap.
    pub fn dispatch<E: PlanExecutor>(&mut self, exec: &mut E) {
        while !self.queue.is_empty() {
            let n = self.concurrency.min(self.queue.len());
            let mut ids = Vec::with_capacity(n);
            let mut wave = Vec::with_capacity(n);
            for _ in 0..n {
                let (id, plan) = self.queue.pop_front().expect("non-empty queue");
                ids.push(id);
                wave.push(plan);
            }
            let concurrency = self.concurrency;
            trace::set_wave(self.waves.len() as u64);
            let outcome = exec.run_wave(&wave);
            assert_eq!(
                outcome.results.len(),
                wave.len(),
                "executor must return one result per plan"
            );
            let cv = wave_cv(&outcome.results);
            self.waves.push(WaveStat {
                plans: wave.len(),
                concurrency,
                span: outcome.span,
                cv,
            });
            for (id, result) in ids.into_iter().zip(outcome.results) {
                self.done.insert(id, result);
            }
            if wave.len() >= 2 {
                if cv > self.cfg.guard.cv_threshold {
                    self.concurrency = (self.concurrency / 2).max(self.cfg.guard.min_concurrency);
                } else if self.concurrency < self.cfg.concurrency {
                    self.concurrency += 1;
                }
            }
            let reg = metrics::global();
            reg.counter("sched.waves").inc();
            reg.counter("sched.plans_dispatched").add(wave.len() as u64);
            if self.concurrency < concurrency {
                reg.counter("sched.guard_backoffs").inc();
            }
            reg.gauge("sched.concurrency").set(self.concurrency as i64);
            // One transition per wave, even when the count holds, so the
            // worker level over time reconstructs from the trace alone.
            let workers = self.concurrency;
            trace::emit_with(|| TraceEvent::GuardTransition {
                cv,
                workers_before: concurrency,
                workers,
            });
        }
        trace::clear_wave();
    }

    /// Removes and returns the result for `handle`, or `None` if the plan
    /// has not been dispatched (or was already taken).
    pub fn take(&mut self, handle: PlanHandle) -> Option<PlanResult> {
        self.done.remove(&handle.0)
    }

    /// The live concurrency level (cap minus guard backoff).
    pub fn current_concurrency(&self) -> usize {
        self.concurrency
    }

    /// Per-wave statistics for every wave dispatched so far.
    pub fn waves(&self) -> &[WaveStat] {
        &self.waves
    }

    /// Removes and returns the wave statistics accumulated since the last
    /// call (or since construction). Long-running clients — the `gbd`
    /// daemon couples its query-admission AIMD to the guard's verdicts —
    /// read each wave exactly once this way without the stat vector
    /// growing for the life of the scheduler.
    pub fn take_waves(&mut self) -> Vec<WaveStat> {
        std::mem::take(&mut self.waves)
    }
}

/// Coefficient of variation of per-plan mean probe times across a wave.
/// Returns 0.0 when fewer than two plans produced measurable probes.
fn wave_cv(results: &[PlanResult]) -> f64 {
    let means: Vec<f64> = results.iter().filter_map(|r| r.mean_probe_ns()).collect();
    if means.len() < 2 {
        return 0.0;
    }
    let n = means.len() as f64;
    let mean = means.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = means.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use gray_toolbox::GrayDuration;
    use graybox::os::ProbeSample;

    fn result(path: &str, probe_ns: &[u64]) -> PlanResult {
        PlanResult {
            path: path.to_string(),
            size: 4096,
            samples: probe_ns
                .iter()
                .map(|&ns| ProbeSample {
                    offset: 0,
                    elapsed: GrayDuration::from_nanos(ns),
                    ok: true,
                })
                .collect(),
            error: None,
        }
    }

    /// An executor that fabricates results with scripted probe times, so
    /// guard behaviour is testable without an OS backend.
    struct ScriptedExecutor {
        /// Per-wave per-plan probe time; the last row repeats once waves
        /// outnumber rows.
        rows: Vec<Vec<u64>>,
        next: usize,
    }

    impl PlanExecutor for ScriptedExecutor {
        fn run_wave(&mut self, wave: &[ProbePlan]) -> WaveOutcome {
            let row = self.rows[self.next.min(self.rows.len() - 1)].clone();
            self.next += 1;
            let results = wave
                .iter()
                .enumerate()
                .map(|(i, p)| result(&p.path, &[row[i % row.len()]]))
                .collect();
            WaveOutcome {
                results,
                span: None,
            }
        }
    }

    fn plan(path: &str) -> ProbePlan {
        ProbePlan {
            path: path.to_string(),
            specs: Vec::new(),
            sub_batch: 0,
        }
    }

    #[test]
    fn handles_redeem_in_submit_order_across_waves() {
        let mut sched = Scheduler::new(SchedConfig {
            concurrency: 2,
            ..SchedConfig::default()
        });
        let handles: Vec<_> = (0..5)
            .map(|i| sched.submit(plan(&format!("/f{i}"))))
            .collect();
        let mut exec = ScriptedExecutor {
            rows: vec![vec![100, 100]],
            next: 0,
        };
        sched.dispatch(&mut exec);
        assert_eq!(sched.pending(), 0);
        for (i, h) in handles.into_iter().enumerate() {
            let r = sched.take(h).expect("result present");
            assert_eq!(r.path, format!("/f{i}"));
            assert!(sched.take(h).is_none(), "take is consuming");
        }
        assert_eq!(sched.waves().len(), 3); // 2 + 2 + 1
    }

    #[test]
    fn guard_halves_on_high_dispersion_and_recovers_additively() {
        let mut sched = Scheduler::new(SchedConfig {
            concurrency: 4,
            ..SchedConfig::default()
        });
        for i in 0..12 {
            sched.submit(plan(&format!("/f{i}")));
        }
        // Wave 1: wildly dispersed (CV >> 0.5) -> halve 4 -> 2.
        // Waves 2..: uniform -> +1 per wave back toward the cap.
        let mut exec = ScriptedExecutor {
            rows: vec![vec![100, 10_000, 100, 10_000], vec![100, 100, 100, 100]],
            next: 0,
        };
        sched.dispatch(&mut exec);
        let sizes: Vec<usize> = sched.waves().iter().map(|w| w.plans).collect();
        assert_eq!(sizes, vec![4, 2, 3, 3]);
        assert!(sched.waves()[0].cv > 0.5);
        assert_eq!(sched.current_concurrency(), 4);
    }

    #[test]
    fn guard_never_drops_below_minimum() {
        let mut sched = Scheduler::new(SchedConfig {
            concurrency: 2,
            ..SchedConfig::default()
        });
        for i in 0..8 {
            sched.submit(plan(&format!("/f{i}")));
        }
        // Every wave dispersed: 2 -> 1, then stays at 1 (single-plan waves
        // never trip the guard, and CV of one plan is 0).
        let mut exec = ScriptedExecutor {
            rows: vec![vec![10, 100_000]],
            next: 0,
        };
        sched.dispatch(&mut exec);
        assert!(sched.current_concurrency() >= 1);
        assert!(sched.waves().iter().all(|w| w.plans >= 1));
    }

    #[test]
    fn config_from_repository_reads_sched_keys() {
        let mut repo = ParamRepository::in_memory();
        repo.set_raw(keys::SCHED_CONCURRENCY_CAP, 8u64);
        repo.set_raw(keys::SCHED_SUB_BATCH_PAGES, 32u64);
        let cfg = SchedConfig::from_repository(&repo);
        assert_eq!(cfg.concurrency, 8);
        assert_eq!(cfg.sub_batch, 32);
        // Absent keys -> defaults.
        let cfg = SchedConfig::from_repository(&ParamRepository::in_memory());
        assert_eq!(cfg.concurrency, SchedConfig::default().concurrency);
        assert_eq!(cfg.sub_batch, SchedConfig::default().sub_batch);
    }

    #[test]
    fn wave_cv_ignores_unmeasurable_plans() {
        let rs = vec![
            result("/a", &[100]),
            result("/b", &[]),
            result("/c", &[100]),
        ];
        assert_eq!(wave_cv(&rs), 0.0);
        let rs = vec![result("/a", &[100]), result("/b", &[300])];
        assert!(wave_cv(&rs) > 0.4);
    }
}
