//! Probe plans and their results — the unit of work the scheduler moves.

use graybox::os::{Fd, GrayBoxOs, OsError, ProbeSample, ProbeSpec};

/// One file's worth of probes, ready for dispatch to a worker process.
///
/// A plan is inert data: the client (an ICL) draws every offset up front
/// — FCCD via `FccdPlanner::draw_plan` — and the worker merely executes
/// them. This is what lets probing leave the client's process: the RNG,
/// the parameters, and the fold all stay client-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbePlan {
    /// The file to open in the worker.
    pub path: String,
    /// Probe offsets in issue order.
    pub specs: Vec<ProbeSpec>,
    /// Upper bound on specs per `probe_batch` syscall; `0` means the
    /// whole plan goes down as one batch. Bounded sub-batches keep each
    /// batch one *scheduling point* rather than an atomic sweep, which is
    /// what preserves multi-process interleaving (and, for MAC, prompt
    /// page-daemon detection). Sourced from `sched.sub_batch_pages` in
    /// the parameter repository.
    pub sub_batch: usize,
}

/// What came back from executing one [`ProbePlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanResult {
    /// The plan's file path (so results are interpretable standalone).
    pub path: String,
    /// File size observed by the worker (0 if the open failed).
    pub size: u64,
    /// One sample per spec, in spec order. Empty if the open failed.
    pub samples: Vec<ProbeSample>,
    /// Why the plan could not run (open failure); `None` on success.
    pub error: Option<OsError>,
}

impl PlanResult {
    /// Mean per-probe time in nanoseconds over the `ok` samples, or
    /// `None` if no probe succeeded. This is the signal the scheduler's
    /// self-interference guard compares across the plans of a wave.
    pub fn mean_probe_ns(&self) -> Option<f64> {
        let ok: Vec<u64> = self
            .samples
            .iter()
            .filter(|s| s.ok)
            .map(|s| s.elapsed.as_nanos())
            .collect();
        if ok.is_empty() {
            return None;
        }
        Some(ok.iter().sum::<u64>() as f64 / ok.len() as f64)
    }
}

/// Executes one plan against a backend: open, size, probe in sub-batches,
/// close.
///
/// The syscall sequence is exactly what FCCD's direct `rank_one` path
/// issues — open, `file_size`, one `probe_batch` (or bounded sub-batches,
/// which backends service with per-probe timing identical to one batch),
/// close — so a concurrency-1 scheduler run is syscall-for-syscall the
/// same as direct dispatch. The equivalence tests pin this.
pub fn execute_plan<O: GrayBoxOs>(os: &O, plan: &ProbePlan) -> PlanResult {
    // Runs on the worker (one simulated process per plan under simos), so
    // the span names the plan on every backend-emitted probe event.
    let _span = gray_toolbox::trace::span("plan", || plan.path.clone());
    let fd: Fd = match os.open(&plan.path) {
        Ok(fd) => fd,
        Err(e) => {
            return PlanResult {
                path: plan.path.clone(),
                size: 0,
                samples: Vec::new(),
                error: Some(e),
            }
        }
    };
    let size = os.file_size(fd).unwrap_or(0);
    let mut samples = Vec::with_capacity(plan.specs.len());
    if !plan.specs.is_empty() {
        if plan.sub_batch == 0 {
            samples = os.probe_batch(fd, &plan.specs);
        } else {
            for chunk in plan.specs.chunks(plan.sub_batch) {
                samples.extend(os.probe_batch(fd, chunk));
            }
        }
    }
    let _ = os.close(fd);
    PlanResult {
        path: plan.path.clone(),
        size,
        samples,
        error: None,
    }
}
