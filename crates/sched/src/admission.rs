//! MAC admission queue: pending `gb_alloc` requests share one
//! probe-and-verify calibration pass.
//!
//! When several gray-box allocators call `Mac::gb_alloc` back to back,
//! each runs its own availability probe — and each probe *allocates and
//! touches* memory, perturbing exactly the quantity the next caller is
//! about to measure. The admission queue fixes the stampede: requests
//! accumulate, then [`MacAdmissionQueue::admit_all`] runs a single
//! `available_estimate` probe pass and carves FIFO grants out of that one
//! estimate via `Mac::gb_alloc_admitted` (which still first-touches and
//! verifies residency per grant, so stale estimates fail closed instead
//! of overcommitting).

use gray_toolbox::metrics;
use gray_toolbox::trace::{self, TraceEvent};
use graybox::mac::{GbAlloc, Mac};
use graybox::os::{GrayBoxOs, OsResult};

/// One pending `gb_alloc`-shaped request: at least `min`, at most `max`,
/// in units of `multiple` (all in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionRequest {
    /// Smallest useful grant; the request fails rather than take less.
    pub min: u64,
    /// Largest useful grant.
    pub max: u64,
    /// Grants are rounded down to a multiple of this (e.g. a sort's
    /// record size). Must be positive.
    pub multiple: u64,
}

/// Redeems one request's slot in the result of
/// [`MacAdmissionQueue::admit_all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionTicket(usize);

impl AdmissionTicket {
    /// The request's index into the `admit_all` result vector.
    pub fn index(self) -> usize {
        self.0
    }
}

/// FIFO queue of allocation requests admitted against one shared probe.
#[derive(Debug, Default)]
pub struct MacAdmissionQueue {
    requests: Vec<AdmissionRequest>,
}

impl MacAdmissionQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        MacAdmissionQueue::default()
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if `multiple` is zero or `min > max` (same contract as
    /// `Mac::gb_alloc`).
    pub fn submit(&mut self, req: AdmissionRequest) -> AdmissionTicket {
        assert!(req.multiple > 0, "multiple must be positive");
        assert!(req.min <= req.max, "min exceeds max");
        self.requests.push(req);
        AdmissionTicket(self.requests.len() - 1)
    }

    /// Number of requests waiting.
    pub fn pending(&self) -> usize {
        self.requests.len()
    }

    /// Admits every queued request against one shared availability probe.
    ///
    /// Runs a single `available_estimate` pass bounded by the sum of the
    /// (rounded) maxima, then grants FIFO: each request gets
    /// `min(remaining, max)` rounded down to its multiple, provided that
    /// still covers its minimum. Each grant is materialized through
    /// `Mac::gb_alloc_admitted`, which first-touches with page-daemon
    /// detection and verifies residency — a grant that comes back `None`
    /// means the shared estimate went stale (memory was taken between the
    /// probe and the grant), so the queue halves its remaining budget
    /// before continuing: the conservative reaction to discovering the
    /// estimate overstated reality.
    ///
    /// Returns one slot per request, in submission order (index with the
    /// ticket): `Some(alloc)` on success, `None` if the request was not
    /// admitted or its grant went stale. The queue is drained.
    pub fn admit_all<O: GrayBoxOs>(&mut self, mac: &Mac<'_, O>) -> OsResult<Vec<Option<GbAlloc>>> {
        let requests = std::mem::take(&mut self.requests);
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let reg = metrics::global();
        let granted_ctr = reg.counter("sched.admission.granted");
        let denied_ctr = reg.counter("sched.admission.denied");
        let stale_ctr = reg.counter("sched.admission.stale_grants");
        let granted_bytes = reg.counter("sched.admission.granted_bytes");
        let ceiling: u64 = requests.iter().map(|r| round_down(r.max, r.multiple)).sum();
        if ceiling == 0 {
            return Ok(requests.iter().map(|_| None).collect());
        }
        let mut remaining = mac.available_estimate(ceiling)?;
        let mut grants = Vec::with_capacity(requests.len());
        for req in &requests {
            let min = round_up(req.min.max(req.multiple), req.multiple);
            let max = round_down(req.max, req.multiple);
            if max == 0 || min > max {
                denied_ctr.inc();
                trace::emit_with(|| TraceEvent::AdmissionDecision {
                    source: "sched.admission",
                    requested: req.max,
                    granted: 0,
                });
                grants.push(None);
                continue;
            }
            let grant = round_down(remaining.min(max), req.multiple);
            if grant < min {
                denied_ctr.inc();
                trace::emit_with(|| TraceEvent::AdmissionDecision {
                    source: "sched.admission",
                    requested: req.max,
                    granted: 0,
                });
                grants.push(None);
                continue;
            }
            match mac.gb_alloc_admitted(grant)? {
                Some(alloc) => {
                    remaining -= alloc.bytes;
                    granted_ctr.inc();
                    granted_bytes.add(alloc.bytes);
                    trace::emit_with(|| TraceEvent::AdmissionDecision {
                        source: "sched.admission",
                        requested: req.max,
                        granted: alloc.bytes,
                    });
                    grants.push(Some(alloc));
                }
                None => {
                    remaining /= 2;
                    stale_ctr.inc();
                    denied_ctr.inc();
                    trace::emit_with(|| TraceEvent::ThresholdCrossed {
                        what: "sched.admission.stale_grant",
                        value: grant as f64,
                        threshold: remaining as f64,
                    });
                    trace::emit_with(|| TraceEvent::AdmissionDecision {
                        source: "sched.admission",
                        requested: req.max,
                        granted: 0,
                    });
                    grants.push(None);
                }
            }
        }
        Ok(grants)
    }
}

fn round_up(x: u64, m: u64) -> u64 {
    x.div_ceil(m) * m
}

fn round_down(x: u64, m: u64) -> u64 {
    (x / m) * m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_index_submission_order() {
        let mut q = MacAdmissionQueue::new();
        let a = q.submit(AdmissionRequest {
            min: 10,
            max: 20,
            multiple: 1,
        });
        let b = q.submit(AdmissionRequest {
            min: 5,
            max: 5,
            multiple: 1,
        });
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(q.pending(), 2);
    }

    #[test]
    #[should_panic(expected = "multiple must be positive")]
    fn zero_multiple_rejected() {
        MacAdmissionQueue::new().submit(AdmissionRequest {
            min: 1,
            max: 2,
            multiple: 0,
        });
    }

    #[test]
    fn rounding_helpers() {
        assert_eq!(round_up(10, 4), 12);
        assert_eq!(round_up(12, 4), 12);
        assert_eq!(round_down(10, 4), 8);
        assert_eq!(round_down(3, 4), 0);
    }
}
