//! `hostos` — the real operating system as a gray box.
//!
//! This crate implements the `graybox::os::GrayBoxOs` surface over `std`'s
//! POSIX facilities, so every ICL and application in the workspace runs
//! unmodified against the actual kernel underneath: `stat(2)` really
//! returns i-numbers, one-byte reads really hit or miss the real page
//! cache, and memory touches really fault pages in.
//!
//! The paper's experiments are reproduced on the deterministic `simos`
//! substrate instead (container timing is not publishable), but this
//! backend is the proof that the library is not simulation-bound — the
//! `quickstart` example drives it end to end.
//!
//! All file paths are confined to a root directory chosen at construction
//! ([`HostOs::new`]), both for hygiene and so examples can run in a
//! scratch space.

#![warn(missing_docs)]

mod timer;

pub use timer::FastTimer;

use std::cell::RefCell;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use gray_toolbox::{GrayDuration, Nanos};
use graybox::os::{Fd, GrayBoxOs, MemRegion, OsError, OsResult, ProbeSample, ProbeSpec, Stat};

#[cfg(unix)]
use std::os::unix::fs::{FileExt, MetadataExt};

/// A memory region backed by host memory.
struct HostRegion {
    /// Zero-initialized lazily by the host kernel (`alloc_zeroed` →
    /// `mmap`), so pages fault in on first touch like real `malloc`.
    bytes: Box<[u8]>,
}

/// The real-OS backend. One instance per scratch root.
pub struct HostOs {
    root: PathBuf,
    timer: FastTimer,
    files: RefCell<HashMap<u32, fs::File>>,
    next_fd: RefCell<u32>,
    regions: RefCell<HashMap<u64, HostRegion>>,
    next_region: RefCell<u64>,
    page_size: u64,
}

impl HostOs {
    /// Creates a backend rooted at `root` (created if missing).
    pub fn new(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        if gray_toolbox::trace::enabled() {
            // Give the tracer this backend's clock, so records emitted
            // outside the probe loop (plans, verdicts, guard moves) share
            // a timebase with the probe events' fast-timer stamps.
            let timer = FastTimer::new();
            gray_toolbox::trace::set_clock(move || timer.now());
        }
        Ok(HostOs {
            root,
            timer: FastTimer::new(),
            files: RefCell::new(HashMap::new()),
            next_fd: RefCell::new(3),
            regions: RefCell::new(HashMap::new()),
            next_region: RefCell::new(1),
            page_size: 4096,
        })
    }

    /// The scratch root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Creates an independent backend instance over the *same* scratch
    /// root — a worker's view for thread-pool dispatch.
    ///
    /// `HostOs` holds its descriptor and region tables in `RefCell`s (the
    /// gray-box surface takes `&self`), so one instance must not be
    /// shared across threads. The `gray-sched` host executor instead
    /// gives each worker thread its own view: same files underneath —
    /// and therefore the same page cache, which is the whole point of
    /// concurrent probing — but private descriptor state.
    pub fn fork_view(&self) -> io::Result<HostOs> {
        HostOs::new(&self.root)
    }

    /// Maps a gray-box path (`/a/b`) onto the scratch root, rejecting
    /// escapes.
    fn host_path(&self, path: &str) -> OsResult<PathBuf> {
        if !path.starts_with('/') {
            return Err(OsError::InvalidArgument);
        }
        let mut out = self.root.clone();
        for comp in path.split('/') {
            match comp {
                "" | "." => {}
                ".." => return Err(OsError::InvalidArgument),
                c => out.push(c),
            }
        }
        Ok(out)
    }

    fn register(&self, file: fs::File) -> Fd {
        let mut next = self.next_fd.borrow_mut();
        let fd = *next;
        *next += 1;
        self.files.borrow_mut().insert(fd, file);
        Fd(fd)
    }
}

fn map_err(e: io::Error) -> OsError {
    match e.kind() {
        io::ErrorKind::NotFound => OsError::NotFound,
        io::ErrorKind::AlreadyExists => OsError::AlreadyExists,
        io::ErrorKind::DirectoryNotEmpty => OsError::NotEmpty,
        io::ErrorKind::NotADirectory => OsError::NotADirectory,
        io::ErrorKind::IsADirectory => OsError::IsADirectory,
        io::ErrorKind::InvalidInput => OsError::InvalidArgument,
        io::ErrorKind::StorageFull => OsError::NoSpace,
        io::ErrorKind::OutOfMemory => OsError::OutOfMemory,
        _ => OsError::Io(e.to_string()),
    }
}

impl GrayBoxOs for HostOs {
    fn now(&self) -> Nanos {
        self.timer.now()
    }

    fn page_size(&self) -> u64 {
        self.page_size
    }

    fn open(&self, path: &str) -> OsResult<Fd> {
        let p = self.host_path(path)?;
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(p)
            .map_err(map_err)?;
        Ok(self.register(file))
    }

    fn create(&self, path: &str) -> OsResult<Fd> {
        let p = self.host_path(path)?;
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(p)
            .map_err(map_err)?;
        Ok(self.register(file))
    }

    fn close(&self, fd: Fd) -> OsResult<()> {
        self.files
            .borrow_mut()
            .remove(&fd.0)
            .map(|_| ())
            .ok_or(OsError::BadFd)
    }

    #[cfg(unix)]
    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> OsResult<usize> {
        let files = self.files.borrow();
        let file = files.get(&fd.0).ok_or(OsError::BadFd)?;
        file.read_at(buf, offset).map_err(map_err)
    }

    #[cfg(not(unix))]
    fn read_at(&self, _fd: Fd, _offset: u64, _buf: &mut [u8]) -> OsResult<usize> {
        Err(OsError::Unsupported)
    }

    fn read_discard(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64> {
        let mut scratch = vec![0u8; len.min(1 << 20) as usize];
        let mut covered = 0u64;
        while covered < len {
            let want = (len - covered).min(scratch.len() as u64) as usize;
            let n = self.read_at(fd, offset + covered, &mut scratch[..want])?;
            if n == 0 {
                break;
            }
            covered += n as u64;
        }
        Ok(covered)
    }

    #[cfg(unix)]
    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> OsResult<usize> {
        let files = self.files.borrow();
        let file = files.get(&fd.0).ok_or(OsError::BadFd)?;
        file.write_at(data, offset).map_err(map_err)
    }

    #[cfg(not(unix))]
    fn write_at(&self, _fd: Fd, _offset: u64, _data: &[u8]) -> OsResult<usize> {
        Err(OsError::Unsupported)
    }

    fn write_fill(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64> {
        let chunk = vec![0xA5u8; len.min(1 << 20) as usize];
        let mut done = 0u64;
        while done < len {
            let want = (len - done).min(chunk.len() as u64) as usize;
            let n = self.write_at(fd, offset + done, &chunk[..want])?;
            if n == 0 {
                return Err(OsError::Io("short write".into()));
            }
            done += n as u64;
        }
        Ok(done)
    }

    fn file_size(&self, fd: Fd) -> OsResult<u64> {
        let files = self.files.borrow();
        let file = files.get(&fd.0).ok_or(OsError::BadFd)?;
        file.metadata().map(|m| m.len()).map_err(map_err)
    }

    fn sync(&self) -> OsResult<()> {
        // Without libc there is no global sync(2); flushing every open
        // descriptor is the closest std-only approximation.
        for file in self.files.borrow().values() {
            file.sync_all().map_err(map_err)?;
        }
        Ok(())
    }

    #[cfg(unix)]
    fn stat(&self, path: &str) -> OsResult<Stat> {
        let p = self.host_path(path)?;
        let md = fs::metadata(&p).map_err(map_err)?;
        Ok(Stat {
            ino: md.ino(),
            dev: md.dev(),
            size: md.len(),
            is_dir: md.is_dir(),
            atime: Nanos(md.atime().max(0) as u64 * 1_000_000_000 + md.atime_nsec().max(0) as u64),
            mtime: Nanos(md.mtime().max(0) as u64 * 1_000_000_000 + md.mtime_nsec().max(0) as u64),
        })
    }

    #[cfg(not(unix))]
    fn stat(&self, _path: &str) -> OsResult<Stat> {
        Err(OsError::Unsupported)
    }

    fn list_dir(&self, path: &str) -> OsResult<Vec<String>> {
        let p = self.host_path(path)?;
        let mut names = Vec::new();
        // readdir order is physical directory order on most UNIX file
        // systems — exactly the signal FLDC wants — so no sorting here.
        for entry in fs::read_dir(&p).map_err(map_err)? {
            let entry = entry.map_err(map_err)?;
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn mkdir(&self, path: &str) -> OsResult<()> {
        fs::create_dir(self.host_path(path)?).map_err(map_err)
    }

    fn rmdir(&self, path: &str) -> OsResult<()> {
        fs::remove_dir(self.host_path(path)?).map_err(map_err)
    }

    fn unlink(&self, path: &str) -> OsResult<()> {
        fs::remove_file(self.host_path(path)?).map_err(map_err)
    }

    fn rename(&self, from: &str, to: &str) -> OsResult<()> {
        fs::rename(self.host_path(from)?, self.host_path(to)?).map_err(map_err)
    }

    fn set_times(&self, path: &str, atime: Nanos, mtime: Nanos) -> OsResult<()> {
        let p = self.host_path(path)?;
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&p)
            .map_err(map_err)?;
        let times = fs::FileTimes::new()
            .set_accessed(std::time::UNIX_EPOCH + std::time::Duration::from_nanos(atime.0))
            .set_modified(std::time::UNIX_EPOCH + std::time::Duration::from_nanos(mtime.0));
        file.set_times(times).map_err(map_err)
    }

    fn mem_alloc(&self, bytes: u64) -> OsResult<MemRegion> {
        if bytes == 0 {
            return Err(OsError::InvalidArgument);
        }
        // `vec![0; n]` goes through `alloc_zeroed`, which large allocators
        // satisfy with fresh anonymous mappings: pages are not faulted in
        // until touched, preserving malloc-like laziness.
        let region = HostRegion {
            bytes: vec![0u8; bytes as usize].into_boxed_slice(),
        };
        let mut next = self.next_region.borrow_mut();
        let id = *next;
        *next += 1;
        self.regions.borrow_mut().insert(id, region);
        Ok(MemRegion(id))
    }

    fn mem_free(&self, region: MemRegion) -> OsResult<()> {
        self.regions
            .borrow_mut()
            .remove(&region.0)
            .map(|_| ())
            .ok_or(OsError::BadRegion)
    }

    fn mem_touch_write(&self, region: MemRegion, page: u64) -> OsResult<()> {
        let mut regions = self.regions.borrow_mut();
        let r = regions.get_mut(&region.0).ok_or(OsError::BadRegion)?;
        let idx = (page * self.page_size) as usize;
        if idx >= r.bytes.len() {
            return Err(OsError::InvalidArgument);
        }
        // SAFETY: `idx` is bounds-checked above, and the pointer derives
        // from a live allocation; a volatile store of one `u8` is sound.
        // Volatile stops the optimizer from eliding the store, which *is*
        // the probe.
        unsafe {
            std::ptr::write_volatile(r.bytes.as_mut_ptr().add(idx), 0x5A);
        }
        Ok(())
    }

    fn mem_touch_read(&self, region: MemRegion, page: u64) -> OsResult<u8> {
        let regions = self.regions.borrow();
        let r = regions.get(&region.0).ok_or(OsError::BadRegion)?;
        let idx = (page * self.page_size) as usize;
        if idx >= r.bytes.len() {
            return Err(OsError::InvalidArgument);
        }
        // SAFETY: `idx` is bounds-checked above; volatile read of one `u8`
        // from a live allocation.
        Ok(unsafe { std::ptr::read_volatile(r.bytes.as_ptr().add(idx)) })
    }

    /// Batched probes amortize the per-probe bookkeeping the scalar path
    /// pays on every call: the descriptor table is borrowed once for the
    /// whole batch, one stack byte serves every read, and the only
    /// allocation is the result vector. Each probe is still individually
    /// timed with the fast timer and still faults its page through the real
    /// kernel, so the measured signal is unchanged.
    #[cfg(unix)]
    fn probe_batch(&self, fd: Fd, specs: &[ProbeSpec]) -> Vec<ProbeSample> {
        let files = self.files.borrow();
        let Some(file) = files.get(&fd.0) else {
            // A dead descriptor fails every probe; timing still reflects
            // the (cheap) lookup so callers see a sample per spec.
            return specs
                .iter()
                .map(|s| ProbeSample {
                    offset: s.offset,
                    elapsed: GrayDuration::ZERO,
                    ok: false,
                })
                .collect();
        };
        let mut out = Vec::with_capacity(specs.len());
        let mut byte = [0u8; 1];
        for spec in specs {
            let t0 = self.timer.now();
            let res = file.read_at(&mut byte, spec.offset);
            let t1 = self.timer.now();
            let elapsed = t1.since(t0);
            // Trace timestamps come from the calibrated fast timer — the
            // same clock that timed the probe — not the tracer's default.
            gray_toolbox::trace::emit_with_at(t1, || {
                gray_toolbox::trace::TraceEvent::ProbeIssued {
                    offset: spec.offset,
                    latency_ns: elapsed.as_nanos(),
                }
            });
            out.push(ProbeSample {
                offset: spec.offset,
                elapsed,
                ok: matches!(res, Ok(n) if n > 0),
            });
        }
        out
    }

    /// Like [`HostOs::probe_batch`]: one region-table borrow and one
    /// bounds-checked base pointer for the whole batch, volatile per-page
    /// stores so every probe still faults real memory.
    fn mem_probe_batch(&self, region: MemRegion, pages: &[u64]) -> Vec<ProbeSample> {
        let mut regions = self.regions.borrow_mut();
        let Some(r) = regions.get_mut(&region.0) else {
            return pages
                .iter()
                .map(|&page| ProbeSample {
                    offset: page,
                    elapsed: GrayDuration::ZERO,
                    ok: false,
                })
                .collect();
        };
        let len = r.bytes.len();
        let base = r.bytes.as_mut_ptr();
        let mut out = Vec::with_capacity(pages.len());
        for &page in pages {
            let idx = (page * self.page_size) as usize;
            let t0 = self.timer.now();
            let ok = idx < len;
            if ok {
                // SAFETY: `idx` is bounds-checked against the live
                // allocation's length; volatile store of one `u8` is sound.
                unsafe {
                    std::ptr::write_volatile(base.add(idx), 0x5A);
                }
            }
            let t1 = self.timer.now();
            out.push(ProbeSample {
                offset: page,
                elapsed: t1.since(t0),
                ok,
            });
        }
        out
    }

    fn compute(&self, work: GrayDuration) {
        let start = self.timer.now();
        while self.timer.now().since(start) < work {
            std::hint::spin_loop();
        }
    }

    fn sleep(&self, d: GrayDuration) {
        std::thread::sleep(std::time::Duration::from_nanos(d.as_nanos()));
    }

    fn yield_now(&self) {
        std::thread::yield_now();
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use graybox::os::GrayBoxOsExt;

    fn host() -> HostOs {
        let dir = std::env::temp_dir().join(format!(
            "hostos-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        HostOs::new(dir).unwrap()
    }

    #[test]
    fn file_round_trip() {
        let os = host();
        os.write_file("/f.txt", b"real bytes").unwrap();
        assert_eq!(os.read_to_vec("/f.txt").unwrap(), b"real bytes");
    }

    #[test]
    fn stat_returns_distinct_inodes() {
        let os = host();
        os.write_file("/a", b"1").unwrap();
        os.write_file("/b", b"2").unwrap();
        let sa = os.stat("/a").unwrap();
        let sb = os.stat("/b").unwrap();
        assert_ne!(sa.ino, sb.ino);
        assert_eq!(sa.dev, sb.dev);
    }

    #[test]
    fn clock_is_monotone() {
        let os = host();
        let a = os.now();
        let b = os.now();
        assert!(b >= a);
    }

    #[test]
    fn timed_read_completes() {
        let os = host();
        os.write_file("/t", &vec![7u8; 8192]).unwrap();
        let fd = os.open("/t").unwrap();
        let (byte, t) = os.timed(|o| o.read_byte(fd, 4096).unwrap());
        assert_eq!(byte, 7);
        assert!(t > GrayDuration::ZERO);
    }

    #[test]
    fn memory_touches_work() {
        let os = host();
        let r = os.mem_alloc(4096 * 8).unwrap();
        os.mem_touch_write(r, 3).unwrap();
        assert_eq!(os.mem_touch_read(r, 3).unwrap(), 0x5A);
        assert_eq!(os.mem_touch_read(r, 4).unwrap(), 0);
        assert!(os.mem_touch_write(r, 8).is_err());
        os.mem_free(r).unwrap();
        assert!(os.mem_touch_write(r, 0).is_err());
    }

    #[test]
    fn path_escapes_are_rejected() {
        let os = host();
        assert_eq!(os.stat("/../etc/passwd"), Err(OsError::InvalidArgument));
        assert_eq!(os.stat("relative"), Err(OsError::InvalidArgument));
    }

    #[test]
    fn rename_and_times() {
        let os = host();
        os.write_file("/x", b"1").unwrap();
        os.set_times("/x", Nanos::from_secs(1000), Nanos::from_secs(2000))
            .unwrap();
        os.rename("/x", "/y").unwrap();
        let st = os.stat("/y").unwrap();
        assert_eq!(st.mtime, Nanos::from_secs(2000));
    }

    #[test]
    fn fldc_runs_against_the_real_os() {
        let os = host();
        os.mkdir("/dir").unwrap();
        for i in 0..10 {
            os.write_file(&format!("/dir/f{i}"), b"x").unwrap();
        }
        let fldc = graybox::fldc::Fldc::new(&os);
        let ranks = fldc.order_directory("/dir").unwrap();
        assert_eq!(ranks.len(), 10);
        for w in ranks.windows(2) {
            assert!(w[0].stat.ino <= w[1].stat.ino);
        }
    }

    #[test]
    fn fccd_runs_against_the_real_os() {
        let os = host();
        os.write_file("/data", &vec![1u8; 64 * 1024]).unwrap();
        let params = graybox::fccd::FccdParams {
            access_unit: 16 * 4096,
            prediction_unit: 4 * 4096,
            ..Default::default()
        };
        let fccd = graybox::fccd::Fccd::new(&os, params);
        let plan = fccd.plan_path("/data").unwrap();
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn compute_spins_for_requested_time() {
        let os = host();
        let t0 = os.now();
        os.compute(GrayDuration::from_micros(500));
        assert!(os.now().since(t0) >= GrayDuration::from_micros(500));
    }
}
