//! Fast platform-specific timers (paper Section 5, "Measuring Output").
//!
//! Timing is added to *many* operations by an ICL, so the timer must be
//! cheap, and probes complete in microseconds, so it must be fine-grained.
//! On x86_64 this uses the `rdtsc` cycle counter (the paper: "on Intel
//! machines, we use the rdtsc instruction"), calibrated once against the
//! OS monotonic clock; elsewhere it falls back to `std::time::Instant`.

use std::time::Instant;

use gray_toolbox::Nanos;

/// A calibrated high-resolution timer.
pub struct FastTimer {
    base: Instant,
    #[cfg(target_arch = "x86_64")]
    tsc: Option<TscCalibration>,
}

#[cfg(target_arch = "x86_64")]
struct TscCalibration {
    base_ticks: u64,
    nanos_per_tick: f64,
}

impl FastTimer {
    /// Creates and (on x86_64) calibrates the timer. Calibration spins for
    /// about a millisecond.
    pub fn new() -> Self {
        let base = Instant::now();
        #[cfg(target_arch = "x86_64")]
        {
            let tsc = Self::calibrate(base);
            FastTimer { base, tsc }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            FastTimer { base }
        }
    }

    /// Reads the timer.
    pub fn now(&self) -> Nanos {
        #[cfg(target_arch = "x86_64")]
        if let Some(tsc) = &self.tsc {
            // SAFETY: `_rdtsc` has no preconditions; it reads the CPU
            // timestamp counter and is available whenever calibration
            // succeeded at startup.
            let ticks = unsafe { core::arch::x86_64::_rdtsc() };
            let delta = ticks.saturating_sub(tsc.base_ticks);
            return Nanos((delta as f64 * tsc.nanos_per_tick) as u64);
        }
        Nanos(self.base.elapsed().as_nanos() as u64)
    }

    #[cfg(target_arch = "x86_64")]
    fn calibrate(base: Instant) -> Option<TscCalibration> {
        // SAFETY: see `now`; reading the TSC is side-effect free.
        let t0 = unsafe { core::arch::x86_64::_rdtsc() };
        let i0 = Instant::now();
        // Spin for ~1 ms of wall time.
        while i0.elapsed().as_micros() < 1000 {
            std::hint::spin_loop();
        }
        // SAFETY: see `now`.
        let t1 = unsafe { core::arch::x86_64::_rdtsc() };
        let elapsed_ns = i0.elapsed().as_nanos() as f64;
        let ticks = t1.saturating_sub(t0);
        if ticks == 0 {
            return None; // TSC not usable (emulator, weird virtualization).
        }
        let nanos_per_tick = elapsed_ns / ticks as f64;
        if !(0.01..=100.0).contains(&nanos_per_tick) {
            return None;
        }
        // Re-anchor so now() starts near zero relative to `base`.
        let offset_ns = base.elapsed().as_nanos() as f64;
        let base_ticks = t1.saturating_sub((offset_ns / nanos_per_tick) as u64);
        Some(TscCalibration {
            base_ticks,
            nanos_per_tick,
        })
    }
}

impl Default for FastTimer {
    fn default() -> Self {
        FastTimer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotone_nondecreasing() {
        let t = FastTimer::new();
        let mut last = t.now();
        for _ in 0..1000 {
            let now = t.now();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn timer_tracks_wall_time_roughly() {
        let t = FastTimer::new();
        let a = t.now();
        std::thread::sleep(std::time::Duration::from_millis(10));
        let b = t.now();
        let elapsed_ms = b.since(a).as_millis_f64();
        assert!(
            (5.0..500.0).contains(&elapsed_ms),
            "10ms sleep measured as {elapsed_ms}ms"
        );
    }

    #[test]
    fn timer_resolution_is_sub_microsecond() {
        // Two adjacent reads should usually differ by well under 1 us.
        let t = FastTimer::new();
        let mut min_delta = u64::MAX;
        for _ in 0..100 {
            let a = t.now();
            let b = t.now();
            min_delta = min_delta.min(b.since(a).as_nanos());
        }
        assert!(min_delta < 1_000, "adjacent reads {min_delta}ns apart");
    }
}
