//! `covert` — the adversarial covert-channel subsystem.
//!
//! The reproduced paper's central claim is that hidden OS state leaks
//! through observable side effects. This crate turns that claim into an
//! adversarial experiment: one simulated process **transmits** a seeded
//! bit-string by steering shared-file page-cache and dirty-page state,
//! another **infers** it back with the gray-box detectors (FCCD for the
//! read-side cache channel, WBD for the write-side dirty-residue channel),
//! and a pluggable **defender** runs as a third process trying to degrade
//! the channel. All three are ordinary `simos` processes under the event
//! executor, so every run is bit-identical and the channel's capacity is a
//! deterministic, CI-gateable number.
//!
//! - [`channel`] — the time-slotted transmit/infer protocol and the
//!   per-cell runner ([`ChannelSpec::run`]);
//! - [`defender`] — the defender taxonomy (idle baseline, random-touch
//!   noise, eager flush);
//! - [`score`] — oracle join, bit-error rate, and entropy-discounted
//!   channel capacity in bits per virtual second;
//! - [`grid`] — the covert/defender scenario grid (platform × channel ×
//!   defender), pool-parallel and worker-count-invariant like the main
//!   scenario matrix.
//!
//! # Quick start
//!
//! ```
//! use covert::{ChannelKind, ChannelSpec, DefenderKind};
//! use gray_toolbox::GrayDuration;
//! use simos::Platform;
//!
//! let score = ChannelSpec {
//!     index: 0,
//!     platform: Platform::LinuxLike,
//!     channel: ChannelKind::Fccd,
//!     defender: DefenderKind::Idle,
//!     bits: 8,
//!     slot: GrayDuration::from_millis(50),
//!     pages_per_bit: 4,
//!     seed: 7,
//! }
//! .run();
//! assert_eq!(score.errors, 0, "quiet channel is error-free");
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod defender;
pub mod grid;
pub mod score;

pub use channel::{message_bits, ChannelKind, ChannelSpec};
pub use defender::DefenderKind;
pub use grid::{grid_digest, run_grid, CovertGridConfig};
pub use score::{binary_entropy, join_errors, ChannelScore};
