//! The covert/defender scenario grid: platform × channel × defender.
//!
//! The main scenario matrix (`simos::scenario::matrix`) sweeps the
//! *cooperative* axes — platform, aging, noise, workload mix. The covert
//! axes are adversarial and depend on the ICL layer (`graybox::wbd`), so
//! the grid lives here, above both: `simos` cannot depend on `covert`
//! without a cycle, and a channel cell is a different experiment from a
//! fleet cell anyway. The machinery mirrors the matrix exactly — fixed
//! axis expansion order, per-cell seeds by splitmix64, pool-parallel
//! execution with nothing shared between cells, and a grid digest that is
//! bit-identical for 1 worker or N.

use gray_toolbox::metrics;
use gray_toolbox::pool::{JobPanic, Pool};
use gray_toolbox::rng::splitmix64;
use gray_toolbox::GrayDuration;
use simos::Platform;

use crate::channel::{ChannelKind, ChannelSpec};
use crate::defender::DefenderKind;
use crate::score::ChannelScore;

/// The axes of the sweep plus the shared channel knobs.
#[derive(Debug, Clone)]
pub struct CovertGridConfig {
    /// Platform cache policies to sweep.
    pub platforms: Vec<Platform>,
    /// Channel kinds to sweep.
    pub channels: Vec<ChannelKind>,
    /// Defenders to sweep.
    pub defenders: Vec<DefenderKind>,
    /// Message length in bits.
    pub bits: usize,
    /// Slot length (also the flusher interval).
    pub slot: GrayDuration,
    /// Pages per slot group.
    pub pages_per_bit: u64,
    /// Grid seed; each cell derives its own seed from this and its index.
    pub seed: u64,
}

impl CovertGridConfig {
    /// The full baseline grid: 3 platforms × 2 channels × 3 defenders =
    /// 18 cells, 32 bits each.
    pub fn full() -> Self {
        CovertGridConfig {
            platforms: vec![
                Platform::LinuxLike,
                Platform::NetBsdLike,
                Platform::SolarisLike,
            ],
            channels: vec![ChannelKind::Fccd, ChannelKind::Wbd],
            defenders: vec![
                DefenderKind::Idle,
                DefenderKind::Noise,
                DefenderKind::EagerFlush,
            ],
            bits: 32,
            slot: GrayDuration::from_millis(50),
            pages_per_bit: 4,
            seed: 0x636F_7665_7274, // "covert"
        }
    }

    /// A small grid for CI smoke runs: the quiet platform only, both
    /// channels, all defenders, 16 bits (6 cells).
    pub fn smoke() -> Self {
        CovertGridConfig {
            platforms: vec![Platform::LinuxLike],
            bits: 16,
            ..CovertGridConfig::full()
        }
    }

    /// Number of cells the config expands to.
    pub fn cells(&self) -> usize {
        self.platforms.len() * self.channels.len() * self.defenders.len()
    }

    /// Expands the cross product into self-contained cell specs, in a
    /// fixed axis order (platform outermost, defender innermost).
    pub fn expand(&self) -> Vec<ChannelSpec> {
        let mut specs = Vec::with_capacity(self.cells());
        for &platform in &self.platforms {
            for &channel in &self.channels {
                for &defender in &self.defenders {
                    let index = specs.len();
                    let mut state = self.seed ^ (index as u64).wrapping_mul(0x9E37);
                    let seed = splitmix64(&mut state);
                    specs.push(ChannelSpec {
                        index,
                        platform,
                        channel,
                        defender,
                        bits: self.bits,
                        slot: self.slot,
                        pages_per_bit: self.pages_per_bit,
                        seed,
                    });
                }
            }
        }
        specs
    }
}

/// Runs every cell of `cfg` through `pool`, returning results in grid
/// order. A panicking cell yields a structured [`JobPanic`] in its own
/// slot; sibling cells are unaffected. Output is worker-count-invariant.
///
/// Each finished cell also publishes its bit/error tallies and its
/// capacity (in milli-bits/s, gauges being integral) into the global
/// metrics registry as `covert.*{cell-label}` series, so a metrics
/// snapshot taken after a grid run carries the per-cell capacity/BER
/// table without re-deriving it from the score vector.
pub fn run_grid(cfg: &CovertGridConfig, pool: &Pool) -> Vec<Result<ChannelScore, JobPanic>> {
    let cells = pool.map(cfg.expand(), |_idx, spec| spec.run());
    let reg = metrics::global();
    for score in cells.iter().flatten() {
        reg.counter_labeled("covert.cell_bits", &score.label)
            .add(score.bits);
        reg.counter_labeled("covert.cell_errors", &score.label)
            .add(score.errors);
        reg.gauge_labeled("covert.cell_capacity_mbps", &score.label)
            .set((score.capacity_bps * 1000.0) as i64);
        reg.gauge_labeled("covert.cell_ber_ppm", &score.label)
            .set((score.ber * 1e6) as i64);
    }
    cells
}

/// One fingerprint for a whole grid run — what the bench baseline pins
/// across worker counts. Panicked cells fold in their index and message,
/// so even failure modes are compared deterministically.
pub fn grid_digest(cells: &[Result<ChannelScore, JobPanic>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for cell in cells {
        match cell {
            Ok(c) => h = (h ^ c.digest).wrapping_mul(0x100_0000_01b3),
            Err(p) => {
                h = (h ^ p.index as u64).wrapping_mul(0x100_0000_01b3);
                for b in p.message.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CovertGridConfig {
        CovertGridConfig {
            platforms: vec![Platform::LinuxLike],
            channels: vec![ChannelKind::Fccd, ChannelKind::Wbd],
            defenders: vec![DefenderKind::Idle, DefenderKind::EagerFlush],
            bits: 8,
            slot: GrayDuration::from_millis(50),
            pages_per_bit: 4,
            seed: 11,
        }
    }

    #[test]
    fn expansion_is_stable_and_complete() {
        let cfg = CovertGridConfig::full();
        let specs = cfg.expand();
        assert_eq!(specs.len(), cfg.cells());
        assert_eq!(specs.len(), 18);
        let labels: std::collections::BTreeSet<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len(), "labels must be unique");
        assert_eq!(cfg.expand(), specs, "expansion must be deterministic");
        let seeds: std::collections::BTreeSet<u64> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), specs.len());
    }

    #[test]
    fn grid_is_worker_count_invariant() {
        let cfg = tiny();
        let one = run_grid(&cfg, &Pool::with_workers(1));
        let two = run_grid(&cfg, &Pool::with_workers(2));
        assert_eq!(one, two);
        assert_eq!(grid_digest(&one), grid_digest(&two));
        assert_eq!(one.len(), cfg.cells());
    }
}
