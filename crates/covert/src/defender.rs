//! The defender taxonomy: a third process trying to degrade the channel.
//!
//! Defenders are deliberately *channel-agnostic* — they do not know the
//! protocol, the slot phase, or the group layout. They model the two
//! realistic countermeasure families from the page-cache side-channel
//! literature, plus the do-nothing baseline:
//!
//! - [`DefenderKind::Idle`] — the baseline: sleeps through the whole
//!   transmission. Zero cost, zero degradation.
//! - [`DefenderKind::Noise`] — random-touch noise: four times per slot it
//!   reads random pages of the shared file (warming pages the transmitter
//!   left cold — false 1s on the FCCD channel) and dirties a page of its
//!   own scratch file (residue the receiver's `sync` cannot tell from the
//!   transmitter's — false 1s on the WBD channel).
//! - [`DefenderKind::EagerFlush`] — eager writeback: syncs four times per
//!   slot, draining the dirty residue before the receiver can sample it.
//!   Kills the WBD channel; harmless to the FCCD channel (sync does not
//!   evict), which is exactly the asymmetry the taxonomy should expose.
//!
//! Bursts run at phase slot/8 + j·slot/4, offset from both the
//! transmitter (phase 0) and the receiver (phase slot/2) so no two
//! processes ever act at the same virtual instant. Unlike the protocol
//! endpoints, a defender has no deadline — it is an interval daemon like
//! the kernel flusher — so when a burst overruns its phase (four cold
//! seeks can exceed slot/4) it *self-paces*: it skips the missed phases
//! and resumes on the next future one instead of racing to catch up.
//! Defender pacing therefore never counts toward `late_wakeups`, which
//! pins the transmitter/receiver schedule only.

use gray_toolbox::rng::{RngExt, SeedableRng, StdRng};
use gray_toolbox::trace::{self, TraceEvent};
use graybox::os::GrayBoxOs;
use simos::exec::Workload;
use simos::SimProc;

use crate::channel::{sleep_until, ProcOut};

/// Who tries to degrade the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenderKind {
    /// No defense: sleeps through the transmission (the baseline).
    Idle,
    /// Random-touch noise: warms random shared pages and dirties scratch
    /// pages, confusing both channels.
    Noise,
    /// Eager writeback: frequent `sync`s drain the dirty residue the WBD
    /// channel carries bits in.
    EagerFlush,
}

impl DefenderKind {
    /// Short tag for labels and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            DefenderKind::Idle => "none",
            DefenderKind::Noise => "noise",
            DefenderKind::EagerFlush => "flush",
        }
    }
}

/// Pages of random-touch reads per noise burst.
const NOISE_TOUCHES: u64 = 4;
/// Pages in the noise defender's scratch file (dirtied round-robin).
const NOISE_SCRATCH_PAGES: u64 = 8;

/// Builds the defender's workload: a process that wakes four times per
/// slot from `base` until `end` and runs its burst, accounting its own
/// virtual cost.
#[allow(clippy::too_many_arguments)]
pub(crate) fn defender_workload(
    kind: DefenderKind,
    data_path: &'static str,
    region_pages: u64,
    page: u64,
    base: u64,
    slot: u64,
    end: u64,
    seed: u64,
) -> Workload<'static, ProcOut> {
    Box::new(move |os: &SimProc| {
        let _span = trace::span("covert", || "def".to_string());
        let mut work_ns = 0u64;
        let mut late = 0u64;
        match kind {
            DefenderKind::Idle => {
                late += sleep_until(os, end) as u64;
            }
            DefenderKind::Noise => {
                let fd = os.open(data_path).unwrap();
                let scratch = os.create("/.defender-noise").unwrap();
                os.write_fill(scratch, 0, NOISE_SCRATCH_PAGES * page)
                    .unwrap();
                // The scratch setup must not linger as residue the
                // receiver would count before the first burst.
                os.sync().unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let mut j = 0u64;
                loop {
                    let t = base + slot / 8 + j * (slot / 4);
                    if t >= end {
                        break;
                    }
                    sleep_until(os, t);
                    let (_, d) = os.timed(|os| {
                        for _ in 0..NOISE_TOUCHES {
                            let p = rng.random_range(0..region_pages);
                            os.read_byte(fd, p * page).unwrap();
                        }
                        os.write_fill(scratch, (j % NOISE_SCRATCH_PAGES) * page, page)
                            .unwrap();
                    });
                    work_ns += d.as_nanos();
                    trace::emit_with(|| TraceEvent::ProbeIssued {
                        offset: j,
                        latency_ns: d.as_nanos(),
                    });
                    // Self-pace: a burst of cold seeks can overrun its
                    // phase; skip the missed phases instead of racing.
                    let now = os.now().as_nanos();
                    j += 1;
                    while base + slot / 8 + j * (slot / 4) <= now {
                        j += 1;
                    }
                }
                os.close(fd).unwrap();
                os.close(scratch).unwrap();
            }
            DefenderKind::EagerFlush => {
                let mut j = 0u64;
                loop {
                    let t = base + slot / 8 + j * (slot / 4);
                    if t >= end {
                        break;
                    }
                    sleep_until(os, t);
                    let (_, d) = os.timed(|os| os.sync().unwrap());
                    work_ns += d.as_nanos();
                    trace::emit_with(|| TraceEvent::ProbeIssued {
                        offset: j,
                        latency_ns: d.as_nanos(),
                    });
                    let now = os.now().as_nanos();
                    j += 1;
                    while base + slot / 8 + j * (slot / 4) <= now {
                        j += 1;
                    }
                }
            }
        }
        ProcOut::Def { work_ns, late }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let names: Vec<&str> = [
            DefenderKind::Idle,
            DefenderKind::Noise,
            DefenderKind::EagerFlush,
        ]
        .iter()
        .map(|d| d.name())
        .collect();
        assert_eq!(names, vec!["none", "noise", "flush"]);
    }
}
