//! The time-slotted transmit/infer channel.
//!
//! # Protocol
//!
//! Time is divided into fixed slots of [`ChannelSpec::slot`] virtual
//! nanoseconds, one message bit per slot. A shared file holds
//! `pages_per_bit` pages per slot ("the slot's group") plus two
//! calibration groups and three guard pages at the tail; slot `i` uses
//! group `i` and **groups are never reused**, so the receiver's own
//! probes (the Heisenberg effect) cannot poison later slots.
//!
//! - **FCCD channel** (read side): at the start of slot `i` the
//!   transmitter *reads* group `i` iff the bit is 1, warming its pages.
//!   Mid-slot, the receiver times a one-byte read of the group's **last**
//!   page and compares it against a cold/warm threshold calibrated before
//!   the first slot. The last page is probed because a cold probe triggers
//!   an initial readahead fetch of up to `RA_INITIAL` pages — probing the
//!   last page keeps that spill inside the *next* group's leading pages,
//!   never reaching any future probe page (hence `pages_per_bit >= 4`).
//!
//!   The cold side of the threshold must be the probe-cost **floor**, not
//!   a typical cold read: seek distance dominates a random cold fetch, so
//!   a single calibration read (which pays a long seek) would put the
//!   threshold *above* the cost of a steady-state cold probe that streams
//!   at media rate right behind the previous probe's disk position. The
//!   receiver therefore reads the tail calibration groups back to back:
//!   the first pays the seek, the second streams — a pure
//!   `pages_per_bit`-page media-rate transfer, the cheapest a cold probe
//!   can ever be. The threshold sits halfway between that floor and a
//!   warm (in-cache) read.
//! - **WBD channel** (write side): at the start of slot `i` the
//!   transmitter *writes* group `i` iff the bit is 1, leaving
//!   `pages_per_bit` dirty pages. Mid-slot, the receiver estimates the
//!   dirty residue with a calibrated timed `sync`
//!   ([`graybox::wbd::Wbd::residue_pages`]); at least half a group
//!   decodes as a 1. The probe's `sync` also drains the residue,
//!   resetting the channel for the next slot.
//!
//! # Alignment with the writeback daemon
//!
//! The kernel flusher runs with its interval set to the slot length, so
//! its epochs land at a *fixed phase* inside every slot. The schedule
//! base is chosen ≡ slot/4 (mod slot), which puts every flusher epoch at
//! phase 3·slot/4 — after the mid-slot sample. The daemon therefore runs
//! for real (the no-defender score reports its `flusher_runs`) without
//! racing the receiver; only an *eager-flush defender*, which syncs
//! inside the transmit→sample window, can drain the residue early.
//!
//! The receiver calibrates in two dedicated windows before the first
//! slot, phase-aligned the same way so calibration measurements cannot
//! straddle a flusher epoch. Readahead is clamped to one page
//! (`readahead_pages = 1`) because sequential-stream detection otherwise
//! couples adjacent groups: a transmitter read of group `i` would prefetch
//! into group `i+1` and flip its bit.

use gray_toolbox::rng::splitmix64;
use gray_toolbox::trace::{self, TraceEvent};
use gray_toolbox::GrayDuration;
use graybox::os::GrayBoxOs;
use graybox::wbd::{Wbd, WbdParams};
use simos::exec::Workload;
use simos::{Platform, Sim, SimConfig, SimProc};

use crate::defender::{defender_workload, DefenderKind};
use crate::score::{join_errors, ChannelScore};

/// Which side effect carries the bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// Page-cache residency, inferred by timed one-byte reads (FCCD's
    /// probe primitive).
    Fccd,
    /// Dirty-page residue, inferred by calibrated timed `sync` (the WBD
    /// ICL).
    Wbd,
}

impl ChannelKind {
    /// Short tag for labels and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ChannelKind::Fccd => "fccd",
            ChannelKind::Wbd => "wbd",
        }
    }
}

/// The seeded message: bit `i` of an `n`-bit transmission. Both the
/// transmitter and the scoring join regenerate it from the seed, so the
/// oracle is never carried through the channel.
pub fn message_bits(seed: u64, n: usize) -> Vec<bool> {
    (0..n)
        .map(|i| {
            let mut state = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            splitmix64(&mut state) & 1 == 1
        })
        .collect()
}

/// Sleeps until the absolute virtual instant `target_ns`. Returns `true`
/// if the caller was already past the target (a schedule overrun).
pub(crate) fn sleep_until(os: &SimProc, target_ns: u64) -> bool {
    let now = os.now().as_nanos();
    if now >= target_ns {
        return now > target_ns;
    }
    os.sleep(GrayDuration::from_nanos(target_ns - now));
    false
}

/// What each of the three processes reports back.
pub(crate) enum ProcOut {
    /// Transmitter: virtual time spent encoding, schedule overruns.
    Tx { work_ns: u64, late: u64 },
    /// Receiver: the decoded bits, schedule overruns.
    Rx { received: Vec<bool>, late: u64 },
    /// Defender: virtual time spent degrading. Interval defenders
    /// self-pace (skipping overrun phases), so `late` stays 0 unless the
    /// idle baseline somehow oversleeps.
    Def { work_ns: u64, late: u64 },
}

/// One fully-specified channel cell. Self-contained: everything needed to
/// boot, run, and score the cell without shared state, so grids fan cells
/// across host cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelSpec {
    /// Position in the expanded grid (also the result's slot).
    pub index: usize,
    /// Platform cache policy.
    pub platform: Platform,
    /// Which side effect carries the bits.
    pub channel: ChannelKind,
    /// Who tries to degrade the channel.
    pub defender: DefenderKind,
    /// Message length in bits (one slot each).
    pub bits: usize,
    /// Slot length in virtual time; also the flusher interval.
    pub slot: GrayDuration,
    /// Pages per slot group (at least 4 — see the module docs).
    pub pages_per_bit: u64,
    /// Seed: drives the message bits, the machine, and the defender RNG.
    pub seed: u64,
}

/// Stable tag for a platform (mirrors the scenario matrix's labels).
fn platform_tag(platform: Platform) -> &'static str {
    match platform {
        Platform::LinuxLike => "linux",
        Platform::NetBsdLike => "netbsd",
        Platform::SolarisLike => "solaris",
    }
}

impl ChannelSpec {
    /// Cell coordinates as a stable label, e.g. `linux/wbd/flush/b32`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/b{}",
            platform_tag(self.platform),
            self.channel.name(),
            self.defender.name(),
            self.bits
        )
    }

    /// Builds, runs, and scores this cell. Deterministic: depends only on
    /// the spec (virtual time throughout, no host state, no global
    /// tracer).
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (no bits, a zero slot, or a
    /// group smaller than the initial readahead window).
    pub fn run(&self) -> ChannelScore {
        assert!(self.bits > 0, "at least one bit");
        assert!(
            self.pages_per_bit >= 4,
            "probe page must clear the initial readahead window"
        );
        let s = self.slot.as_nanos();
        assert!(s >= 8, "slot too short to phase-align");

        let mut cfg = SimConfig::small()
            .with_platform(self.platform)
            .with_seed(self.seed)
            .without_noise()
            .with_writeback(self.slot);
        // One-page readahead: stream detection must not couple adjacent
        // slot groups (see the module docs).
        cfg.readahead_pages = 1;
        let page = cfg.page_size;
        let mut sim = Sim::new(cfg);
        let t0 = sim.now();

        let k = self.pages_per_bit;
        let bits_n = self.bits;
        let region_pages = bits_n as u64 * k;
        let data_path = "/covert.dat";

        // Setup: materialize the shared file (bit groups, 2 calibration
        // groups, 3 guard pages so the second calibration fetch spans a
        // full probe-sized run), drain the dirty residue, start cold.
        sim.run_one(|os| {
            let fd = os.create(data_path).unwrap();
            os.write_fill(fd, 0, (region_pages + 2 * k + 3) * page)
                .unwrap();
            os.sync().unwrap();
            os.close(fd).unwrap();
        });
        sim.flush_file_cache();

        // Schedule base ≡ s/4 (mod s): flusher epochs land at phase 3s/4
        // of every slot and calibration window. Two windows before `base`
        // belong to the receiver's calibration.
        let now = sim.now().as_nanos();
        let base = (now / s + 4) * s + s / 4;
        let end = base + bits_n as u64 * s;

        let sent = message_bits(self.seed, bits_n);

        let kind = self.channel;
        let tx_bits = sent.clone();
        let tx: Workload<'static, ProcOut> = Box::new(move |os: &SimProc| {
            let _span = trace::span("covert", || "tx".to_string());
            let fd = os.open(data_path).unwrap();
            let mut work_ns = 0u64;
            let mut late = 0u64;
            for (i, &bit) in tx_bits.iter().enumerate() {
                late += sleep_until(os, base + i as u64 * s) as u64;
                if bit {
                    let off = i as u64 * k * page;
                    let (_, d) = os.timed(|os| match kind {
                        ChannelKind::Fccd => {
                            os.read_discard(fd, off, k * page).unwrap();
                        }
                        ChannelKind::Wbd => {
                            os.write_fill(fd, off, k * page).unwrap();
                        }
                    });
                    work_ns += d.as_nanos();
                    trace::emit_with(|| TraceEvent::ProbeIssued {
                        offset: off,
                        latency_ns: d.as_nanos(),
                    });
                }
            }
            os.close(fd).unwrap();
            ProcOut::Tx { work_ns, late }
        });

        let rx: Workload<'static, ProcOut> = Box::new(move |os: &SimProc| {
            let _span = trace::span("covert", || "rx".to_string());
            let mut late = 0u64;
            let mut received = Vec::with_capacity(bits_n);
            match kind {
                ChannelKind::Fccd => {
                    let fd = os.open(data_path).unwrap();
                    // Calibration window: back-to-back cold reads of the
                    // two tail groups. The first pays the seek; the second
                    // streams at media rate — the cold-probe cost floor
                    // (see the module docs). A warm re-read of the same
                    // page gives the in-cache side.
                    late += sleep_until(os, base - 2 * s) as u64;
                    let calib_a = (region_pages + k - 1) * page;
                    let calib_b = (region_pages + 2 * k - 1) * page;
                    os.read_byte(fd, calib_a).unwrap();
                    let (_, cold) = os.timed(|os| os.read_byte(fd, calib_b).unwrap());
                    let (_, warm) = os.timed(|os| os.read_byte(fd, calib_b).unwrap());
                    let threshold = warm + cold.saturating_sub(warm) / 2;
                    for i in 0..bits_n {
                        late += sleep_until(os, base + i as u64 * s + s / 2) as u64;
                        let probe_off = (i as u64 * k + (k - 1)) * page;
                        let (_, t) = os.timed(|os| os.read_byte(fd, probe_off).unwrap());
                        trace::emit_with(|| TraceEvent::ProbeIssued {
                            offset: probe_off,
                            latency_ns: t.as_nanos(),
                        });
                        trace::emit_with(|| TraceEvent::ThresholdCrossed {
                            what: "covert.bit",
                            value: t.as_nanos() as f64,
                            threshold: threshold.as_nanos() as f64,
                        });
                        received.push(t < threshold);
                    }
                    os.close(fd).unwrap();
                }
                ChannelKind::Wbd => {
                    // Calibration window: the WBD ICL learns the sync cost
                    // model with a scratch group of exactly `k` pages.
                    late += sleep_until(os, base - 2 * s) as u64;
                    let wbd = Wbd::new(
                        os,
                        WbdParams {
                            scratch_path: "/.wbd-cal".to_string(),
                            calib_pages: k,
                            ..WbdParams::default()
                        },
                    );
                    let cal = wbd.calibrate().unwrap();
                    for i in 0..bits_n {
                        late += sleep_until(os, base + i as u64 * s + s / 2) as u64;
                        let residue = wbd.residue_pages(&cal).unwrap();
                        trace::emit_with(|| TraceEvent::ThresholdCrossed {
                            what: "covert.bit",
                            value: residue as f64,
                            threshold: k as f64 / 2.0,
                        });
                        received.push(residue * 2 >= k);
                    }
                }
            }
            ProcOut::Rx { received, late }
        });

        let def = defender_workload(
            self.defender,
            data_path,
            region_pages,
            page,
            base,
            s,
            end,
            self.seed ^ 0x6465_6665_6e64, // "defend"
        );

        let outs = sim.run(vec![
            ("covert-tx".to_string(), tx),
            ("covert-rx".to_string(), rx),
            ("covert-def".to_string(), def),
        ]);

        let mut tx_work_ns = 0u64;
        let mut def_work_ns = 0u64;
        let mut late = 0u64;
        let mut received = Vec::new();
        for out in outs {
            match out {
                ProcOut::Tx { work_ns, late: l } => {
                    tx_work_ns = work_ns;
                    late += l;
                }
                ProcOut::Rx {
                    received: r,
                    late: l,
                } => {
                    received = r;
                    late += l;
                }
                ProcOut::Def { work_ns, late: l } => {
                    def_work_ns = work_ns;
                    late += l;
                }
            }
        }

        let errors = join_errors(&sent, &received);
        ChannelScore::new(
            self.label(),
            &received,
            errors,
            self.slot,
            tx_work_ns,
            def_work_ns,
            sim.oracle().stats().flusher_runs,
            sim.now().since(t0).as_nanos(),
            late,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(channel: ChannelKind, defender: DefenderKind) -> ChannelSpec {
        ChannelSpec {
            index: 0,
            platform: Platform::LinuxLike,
            channel,
            defender,
            bits: 16,
            slot: GrayDuration::from_millis(50),
            pages_per_bit: 4,
            seed: 0xC0DE,
        }
    }

    #[test]
    fn message_bits_are_deterministic_and_mixed() {
        let a = message_bits(7, 64);
        assert_eq!(a, message_bits(7, 64));
        assert_ne!(a, message_bits(8, 64));
        let ones = a.iter().filter(|&&b| b).count();
        assert!((8..56).contains(&ones), "seeded message must be mixed");
    }

    #[test]
    fn quiet_fccd_channel_is_error_free() {
        let score = spec(ChannelKind::Fccd, DefenderKind::Idle).run();
        assert_eq!(score.errors, 0, "{score:?}");
        assert_eq!(score.late_wakeups, 0, "schedule must hold: {score:?}");
        assert!(score.capacity_bps > 0.0);
    }

    #[test]
    fn quiet_wbd_channel_is_error_free_with_the_flusher_on() {
        let score = spec(ChannelKind::Wbd, DefenderKind::Idle).run();
        assert_eq!(score.errors, 0, "{score:?}");
        assert_eq!(score.late_wakeups, 0, "schedule must hold: {score:?}");
        assert!(
            score.flusher_runs > 0,
            "the writeback daemon must actually run: {score:?}"
        );
    }

    #[test]
    fn channel_runs_are_bit_identical() {
        let a = spec(ChannelKind::Wbd, DefenderKind::Noise).run();
        let b = spec(ChannelKind::Wbd, DefenderKind::Noise).run();
        assert_eq!(a, b);
    }

    #[test]
    fn noise_defender_degrades_the_fccd_channel() {
        let quiet = spec(ChannelKind::Fccd, DefenderKind::Idle).run();
        let noisy = spec(ChannelKind::Fccd, DefenderKind::Noise).run();
        assert!(noisy.errors > 0, "{noisy:?}");
        assert!(noisy.capacity_bps < quiet.capacity_bps);
        assert!(noisy.defender_work_ns > 0);
    }

    #[test]
    fn eager_flush_defender_kills_the_wbd_channel() {
        let quiet = spec(ChannelKind::Wbd, DefenderKind::Idle).run();
        let flushed = spec(ChannelKind::Wbd, DefenderKind::EagerFlush).run();
        assert!(flushed.errors > 0, "{flushed:?}");
        assert!(flushed.capacity_bps < quiet.capacity_bps);
        assert!(flushed.defender_work_ns > 0);
    }
}
