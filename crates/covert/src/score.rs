//! Oracle join and capacity scoring for a channel run.
//!
//! The transmitted message is regenerated from the seed (the oracle side
//! of the join — the channel itself never carries it) and compared bit by
//! bit against what the receiver decoded. The headline number is the
//! **entropy-discounted capacity** in bits per virtual second:
//!
//! ```text
//! capacity = raw_rate · (1 − H₂(BER))
//! ```
//!
//! where `raw_rate = bits / (bits · slot)` is the signalling rate and
//! `H₂` is the binary entropy function — the Shannon capacity of a binary
//! symmetric channel with the measured crossover probability. A BER of
//! 0.5 (the receiver might as well guess) scores zero capacity no matter
//! how fast the slots tick, which is exactly how a defender should be
//! credited.
//!
//! The digest folds only integer-valued fields (received bits, error
//! count, virtual times, flusher activity) so baseline comparisons never
//! depend on floating-point transcendentals.

use gray_toolbox::GrayDuration;

/// Counts positions where `sent` and `received` disagree.
///
/// # Panics
///
/// Panics if the two sides have different lengths — a length mismatch
/// means the receiver lost slot alignment entirely, which the
/// determinism tests must surface, not paper over.
pub fn join_errors(sent: &[bool], received: &[bool]) -> u64 {
    assert_eq!(
        sent.len(),
        received.len(),
        "oracle join requires one received bit per transmitted bit"
    );
    sent.iter().zip(received).filter(|(s, r)| s != r).count() as u64
}

/// Binary entropy H₂(p) in bits; 0 at the endpoints.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// FNV-1a fold helper shared by the run digest.
fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

/// Scores and fingerprints from one executed channel cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelScore {
    /// Human-readable cell coordinates.
    pub label: String,
    /// Message length in bits.
    pub bits: u64,
    /// Bits the receiver decoded wrongly.
    pub errors: u64,
    /// Bit-error rate: `errors / bits`.
    pub ber: f64,
    /// Raw signalling rate in bits per virtual second (one bit per slot).
    pub raw_bps: f64,
    /// Entropy-discounted capacity in bits per virtual second.
    pub capacity_bps: f64,
    /// Virtual time the transmitter spent encoding.
    pub transmitter_work_ns: u64,
    /// Virtual time the defender spent degrading (0 for the idle
    /// baseline) — the defender's cost axis.
    pub defender_work_ns: u64,
    /// Writeback-daemon epochs that fired during the run.
    pub flusher_runs: u64,
    /// Virtual makespan of the whole cell, setup included.
    pub virtual_ns: u64,
    /// Protocol schedule overruns — transmitter and receiver slots (0 on
    /// a sound run). Defenders are interval daemons with no deadline;
    /// they self-pace rather than running late.
    pub late_wakeups: u64,
    /// FNV fingerprint of the run's observable behavior (integer fields
    /// plus every received bit).
    pub digest: u64,
}

impl ChannelScore {
    /// Assembles the score from a run's raw outputs.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        label: String,
        received: &[bool],
        errors: u64,
        slot: GrayDuration,
        transmitter_work_ns: u64,
        defender_work_ns: u64,
        flusher_runs: u64,
        virtual_ns: u64,
        late_wakeups: u64,
    ) -> Self {
        let bits = received.len() as u64;
        let ber = if bits == 0 {
            0.0
        } else {
            errors as f64 / bits as f64
        };
        let raw_bps = 1e9 / slot.as_nanos() as f64;
        let capacity_bps = raw_bps * (1.0 - binary_entropy(ber)).max(0.0);

        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for &b in received {
            digest = fnv(digest, b as u64);
        }
        for v in [
            bits,
            errors,
            transmitter_work_ns,
            defender_work_ns,
            flusher_runs,
            virtual_ns,
            late_wakeups,
        ] {
            digest = fnv(digest, v);
        }

        ChannelScore {
            label,
            bits,
            errors,
            ber,
            raw_bps,
            capacity_bps,
            transmitter_work_ns,
            defender_work_ns,
            flusher_runs,
            virtual_ns,
            late_wakeups,
            digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_counts_disagreements() {
        let sent = vec![true, false, true, false];
        assert_eq!(join_errors(&sent, &sent), 0);
        assert_eq!(join_errors(&sent, &[true, true, true, true]), 2);
        assert_eq!(join_errors(&sent, &[false, true, false, true]), 4);
    }

    #[test]
    #[should_panic(expected = "one received bit per transmitted bit")]
    fn join_rejects_length_mismatch() {
        join_errors(&[true], &[true, false]);
    }

    #[test]
    fn entropy_is_zero_at_endpoints_and_one_at_half() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(0.1) - binary_entropy(0.9)).abs() < 1e-12);
    }

    #[test]
    fn capacity_collapses_at_half_ber() {
        let slot = GrayDuration::from_millis(50);
        let clean = ChannelScore::new("a".into(), &[true; 16], 0, slot, 0, 0, 0, 1, 0);
        let coin = ChannelScore::new("b".into(), &[true; 16], 8, slot, 0, 0, 0, 1, 0);
        assert!((clean.capacity_bps - clean.raw_bps).abs() < 1e-9);
        assert!(coin.capacity_bps < 1e-9, "BER 0.5 must score ~0 capacity");
        assert_ne!(clean.digest, coin.digest);
    }
}
