//! One-dimensional clustering for differentiating measurement populations.
//!
//! Section 4.2.4 of the paper composes FCCD with FLDC by clustering probe
//! times "into two groups, minimizing the intragroup variance and maximizing
//! the intergroup variance": the fast cluster is predicted in-cache, the
//! slow cluster on-disk. Because the data is one-dimensional and k is tiny,
//! clustering can be done *exactly* (not Lloyd's heuristic) by sorting and
//! scanning all k-1 split points — deterministic, permutation-invariant, and
//! O(n log n).

/// The result of clustering one-dimensional data into `k` groups.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// For each input index, the cluster id in `0..k`, ordered so that
    /// cluster 0 has the smallest centroid.
    pub assignment: Vec<usize>,
    /// Cluster centroids in ascending order.
    pub centroids: Vec<f64>,
    /// Per-cluster population counts.
    pub sizes: Vec<usize>,
    /// Total within-cluster sum of squared deviations.
    pub within_ss: f64,
}

impl Clustering {
    /// Indices of the inputs assigned to `cluster`.
    pub fn members(&self, cluster: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c == cluster).then_some(i))
            .collect()
    }

    /// A separation score in [0, 1]: 1 - within_ss / total_ss. A score near
    /// 1 means the clusters are well separated; near 0 means the split is
    /// arbitrary (e.g. all points are on disk). ICLs use this to decide
    /// whether to trust a two-way split at all.
    pub fn separation(&self, data: &[f64]) -> f64 {
        let n = data.len();
        if n < 2 {
            return 0.0;
        }
        let mean = data.iter().sum::<f64>() / n as f64;
        let total_ss: f64 = data.iter().map(|x| (x - mean) * (x - mean)).sum();
        if total_ss == 0.0 {
            return 0.0;
        }
        (1.0 - self.within_ss / total_ss).clamp(0.0, 1.0)
    }
}

/// Exact two-means clustering of one-dimensional data.
///
/// Sorts the data and chooses the split point that minimizes the total
/// within-cluster sum of squares. This is the clustering the paper uses to
/// discern in-cache from on-disk probe times.
///
/// # Examples
///
/// ```
/// use gray_toolbox::two_means;
///
/// // Three microsecond-scale hits and two millisecond-scale misses.
/// let times = [2.0, 3.0, 2.5, 4000.0, 5000.0];
/// let c = two_means(&times);
/// assert_eq!(c.assignment, vec![0, 0, 0, 1, 1]);
/// assert_eq!(c.sizes, vec![3, 2]);
/// ```
pub fn two_means(data: &[f64]) -> Clustering {
    kmeans1d(data, 2)
}

/// Exact k-means clustering of one-dimensional data for small `k`.
///
/// For `k == 2` this scans every split point of the sorted data (O(n) after
/// sorting, using prefix sums). For larger `k` it uses interval dynamic
/// programming, O(k·n²), which is fine for the toolbox's measurement-sized
/// inputs. With fewer distinct points than clusters, the extra clusters come
/// back empty (size 0, centroid repeated).
///
/// # Panics
///
/// Panics if `k == 0` or `data` is empty.
pub fn kmeans1d(data: &[f64], k: usize) -> Clustering {
    assert!(k > 0, "k must be positive");
    assert!(!data.is_empty(), "cannot cluster an empty data set");

    // Sort indices by value so clusters are contiguous runs.
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.sort_by(|&a, &b| {
        data[a]
            .partial_cmp(&data[b])
            .expect("clustering rejects NaN inputs")
            .then(a.cmp(&b))
    });
    let sorted: Vec<f64> = order.iter().map(|&i| data[i]).collect();
    let n = sorted.len();

    // Prefix sums for O(1) interval cost queries.
    let mut pre = vec![0.0f64; n + 1];
    let mut pre2 = vec![0.0f64; n + 1];
    for i in 0..n {
        pre[i + 1] = pre[i] + sorted[i];
        pre2[i + 1] = pre2[i] + sorted[i] * sorted[i];
    }
    // Within-SS of the half-open interval [lo, hi).
    let cost = |lo: usize, hi: usize| -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let cnt = (hi - lo) as f64;
        let s = pre[hi] - pre[lo];
        let s2 = pre2[hi] - pre2[lo];
        (s2 - s * s / cnt).max(0.0)
    };

    let k_eff = k.min(n);
    // boundaries[j] = start of cluster j (in the sorted order); cluster j is
    // [boundaries[j], boundaries[j + 1]).
    let boundaries = if k_eff == 1 {
        vec![0, n]
    } else {
        // DP over (clusters used, prefix length): dp[j][i] = best within-SS
        // of splitting sorted[..i] into j clusters.
        let mut dp = vec![vec![f64::INFINITY; n + 1]; k_eff + 1];
        let mut arg = vec![vec![0usize; n + 1]; k_eff + 1];
        dp[0][0] = 0.0;
        for j in 1..=k_eff {
            for i in j..=n {
                for split in (j - 1)..i {
                    let c = dp[j - 1][split] + cost(split, i);
                    if c < dp[j][i] {
                        dp[j][i] = c;
                        arg[j][i] = split;
                    }
                }
            }
        }
        let mut bounds = vec![0usize; k_eff + 1];
        bounds[k_eff] = n;
        let mut i = n;
        for j in (1..=k_eff).rev() {
            i = arg[j][i];
            bounds[j - 1] = i;
        }
        bounds
    };

    let mut centroids = Vec::with_capacity(k);
    let mut sizes = Vec::with_capacity(k);
    let mut within_ss = 0.0;
    let mut assignment_sorted = vec![0usize; n];
    for j in 0..k_eff {
        let (lo, hi) = (boundaries[j], boundaries[j + 1]);
        let cnt = hi - lo;
        let centroid = if cnt == 0 {
            *centroids.last().unwrap_or(&sorted[0])
        } else {
            (pre[hi] - pre[lo]) / cnt as f64
        };
        centroids.push(centroid);
        sizes.push(cnt);
        within_ss += cost(lo, hi);
        for slot in assignment_sorted.iter_mut().take(hi).skip(lo) {
            *slot = j;
        }
    }
    // Pad out degenerate clusters when k > number of points.
    while centroids.len() < k {
        centroids.push(*centroids.last().expect("k_eff >= 1"));
        sizes.push(0);
    }

    // Undo the sort permutation.
    let mut assignment = vec![0usize; n];
    for (pos, &orig) in order.iter().enumerate() {
        assignment[orig] = assignment_sorted[pos];
    }

    Clustering {
        assignment,
        centroids,
        sizes,
        within_ss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_means_separates_bimodal_data() {
        let data = [1.0, 1.1, 0.9, 100.0, 101.0, 99.5];
        let c = two_means(&data);
        assert_eq!(c.assignment, vec![0, 0, 0, 1, 1, 1]);
        assert!((c.centroids[0] - 1.0).abs() < 0.1);
        assert!((c.centroids[1] - 100.0).abs() < 1.0);
        assert!(c.separation(&data) > 0.99);
    }

    #[test]
    fn two_means_is_permutation_invariant() {
        let a = [5.0, 6.0, 50.0, 51.0];
        let b = [51.0, 5.0, 50.0, 6.0];
        let ca = two_means(&a);
        let cb = two_means(&b);
        assert_eq!(ca.centroids, cb.centroids);
        assert_eq!(ca.sizes, cb.sizes);
        // b[1] and b[3] are the small values.
        assert_eq!(cb.assignment, vec![1, 0, 1, 0]);
    }

    #[test]
    fn identical_points_have_zero_separation() {
        let data = [7.0; 5];
        let c = two_means(&data);
        assert_eq!(c.within_ss, 0.0);
        assert_eq!(c.separation(&data), 0.0);
    }

    #[test]
    fn single_point_clusters() {
        let c = two_means(&[42.0]);
        assert_eq!(c.assignment, vec![0]);
        assert_eq!(c.sizes, vec![1, 0]);
        assert_eq!(c.centroids[0], 42.0);
    }

    #[test]
    fn kmeans_three_way() {
        // Memory, disk, tape — the multi-level store from the paper.
        let data = [1.0, 2.0, 1000.0, 1100.0, 1e6, 1e6 + 100.0];
        let c = kmeans1d(&data, 3);
        assert_eq!(c.assignment, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(c.sizes, vec![2, 2, 2]);
    }

    #[test]
    fn kmeans_one_cluster_is_mean() {
        let data = [1.0, 2.0, 3.0];
        let c = kmeans1d(&data, 1);
        assert_eq!(c.centroids, vec![2.0]);
        assert_eq!(c.sizes, vec![3]);
    }

    #[test]
    fn members_returns_original_indices() {
        let data = [100.0, 1.0, 101.0, 2.0];
        let c = two_means(&data);
        assert_eq!(c.members(0), vec![1, 3]);
        assert_eq!(c.members(1), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_panics() {
        let _ = two_means(&[]);
    }

    #[test]
    fn optimal_split_beats_naive_midpoint() {
        // A case where splitting at the numeric midpoint is suboptimal:
        // {0, 1, 2, 10}: best 2-split is {0,1,2} | {10}.
        let c = two_means(&[0.0, 1.0, 2.0, 10.0]);
        assert_eq!(c.assignment, vec![0, 0, 0, 1]);
    }
}
