//! A deterministic in-process request/response mailbox.
//!
//! Long-running services inside the workspace (the `gbd` inference daemon)
//! need a channel between many client handles and one server loop, with
//! three properties `std::sync::mpsc` does not give directly:
//!
//! 1. **Determinism.** Requests drain in exactly the order they were
//!    enqueued, across all clients, so a run is a pure function of the
//!    enqueue order (which callers keep deterministic themselves).
//! 2. **Reply routing.** Every request yields a [`Ticket`]; the server
//!    replies to the ticket and the client redeems it, so one server loop
//!    can serve many logical conversations without per-client channels.
//! 3. **Tick operation.** The server drains a whole batch at once
//!    ([`Mailbox::drain`]) rather than blocking per message — the daemon's
//!    serve loop works in ticks because only one simulated process can run
//!    at a time.
//!
//! Everything lives behind one mutex; there is no blocking send or
//! receive, so the mailbox cannot deadlock against the simulator's own
//! thread choreography.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Redeemable receipt for an enqueued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(u64);

impl Ticket {
    /// The ticket's raw sequence number (tickets count up from 0 in
    /// enqueue order, across all clients).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One drained request, with the coordinates the server needs to reply.
#[derive(Debug, Clone)]
pub struct Envelope<Req> {
    /// Which client sent it (dense ids in [`MailboxClient`] creation order).
    pub client: u64,
    /// The receipt the sender holds; reply to this.
    pub ticket: Ticket,
    /// The request itself.
    pub req: Req,
}

#[derive(Debug)]
struct State<Req, Resp> {
    next_ticket: u64,
    next_client: u64,
    inbox: Vec<Envelope<Req>>,
    replies: BTreeMap<u64, Resp>,
}

/// The server side: create clients, drain requests, post replies.
#[derive(Debug)]
pub struct Mailbox<Req, Resp> {
    shared: Arc<Mutex<State<Req, Resp>>>,
}

/// A cloneable client handle: enqueue requests, redeem replies.
#[derive(Debug)]
pub struct MailboxClient<Req, Resp> {
    id: u64,
    shared: Arc<Mutex<State<Req, Resp>>>,
}

impl<Req, Resp> Clone for MailboxClient<Req, Resp> {
    fn clone(&self) -> Self {
        MailboxClient {
            id: self.id,
            shared: Arc::clone(&self.shared),
        }
    }
}

fn lock<Req, Resp>(m: &Arc<Mutex<State<Req, Resp>>>) -> MutexGuard<'_, State<Req, Resp>> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<Req, Resp> Default for Mailbox<Req, Resp> {
    fn default() -> Self {
        Mailbox::new()
    }
}

impl<Req, Resp> Mailbox<Req, Resp> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            shared: Arc::new(Mutex::new(State {
                next_ticket: 0,
                next_client: 0,
                inbox: Vec::new(),
                replies: BTreeMap::new(),
            })),
        }
    }

    /// Creates a new client handle with the next dense client id.
    pub fn client(&self) -> MailboxClient<Req, Resp> {
        let mut st = lock(&self.shared);
        let id = st.next_client;
        st.next_client += 1;
        MailboxClient {
            id,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Takes every pending request, in enqueue order across all clients.
    pub fn drain(&self) -> Vec<Envelope<Req>> {
        std::mem::take(&mut lock(&self.shared).inbox)
    }

    /// Number of requests waiting to be drained.
    pub fn pending(&self) -> usize {
        lock(&self.shared).inbox.len()
    }

    /// Posts the reply for a ticket. Replaces any prior reply to the same
    /// ticket (servers reply at most once in practice).
    pub fn reply(&self, ticket: Ticket, resp: Resp) {
        lock(&self.shared).replies.insert(ticket.0, resp);
    }

    /// Number of posted replies not yet redeemed.
    pub fn unredeemed(&self) -> usize {
        lock(&self.shared).replies.len()
    }
}

impl<Req, Resp> MailboxClient<Req, Resp> {
    /// This client's dense id (creation order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Enqueues a request; redeem the ticket after the server's next tick.
    pub fn send(&self, req: Req) -> Ticket {
        let mut st = lock(&self.shared);
        let ticket = Ticket(st.next_ticket);
        st.next_ticket += 1;
        let client = self.id;
        st.inbox.push(Envelope {
            client,
            ticket,
            req,
        });
        ticket
    }

    /// Redeems a reply, if the server has posted one. Consuming: a second
    /// call for the same ticket returns `None`.
    pub fn try_take(&self, ticket: Ticket) -> Option<Resp> {
        lock(&self.shared).replies.remove(&ticket.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_drain_in_enqueue_order_across_clients() {
        let mbox: Mailbox<&'static str, u64> = Mailbox::new();
        let a = mbox.client();
        let b = mbox.client();
        assert_eq!((a.id(), b.id()), (0, 1));
        let t0 = a.send("a0");
        let t1 = b.send("b0");
        let t2 = a.send("a1");
        assert_eq!(mbox.pending(), 3);
        let batch = mbox.drain();
        assert_eq!(mbox.pending(), 0);
        let order: Vec<(u64, &str)> = batch.iter().map(|e| (e.client, e.req)).collect();
        assert_eq!(order, vec![(0, "a0"), (1, "b0"), (0, "a1")]);
        assert_eq!(
            batch.iter().map(|e| e.ticket).collect::<Vec<_>>(),
            vec![t0, t1, t2]
        );
    }

    #[test]
    fn replies_route_by_ticket_and_are_consuming() {
        let mbox: Mailbox<u64, u64> = Mailbox::new();
        let a = mbox.client();
        let b = a.clone();
        let t0 = a.send(10);
        let t1 = b.send(20);
        for env in mbox.drain() {
            mbox.reply(env.ticket, env.req * 2);
        }
        assert_eq!(mbox.unredeemed(), 2);
        assert_eq!(b.try_take(t1), Some(40));
        assert_eq!(a.try_take(t0), Some(20));
        assert_eq!(a.try_take(t0), None, "redeem is consuming");
        assert_eq!(mbox.unredeemed(), 0);
    }

    #[test]
    fn unserved_ticket_is_none_until_replied() {
        let mbox: Mailbox<(), &'static str> = Mailbox::new();
        let c = mbox.client();
        let t = c.send(());
        assert_eq!(c.try_take(t), None);
        mbox.drain();
        mbox.reply(t, "done");
        assert_eq!(c.try_take(t), Some("done"));
    }
}
