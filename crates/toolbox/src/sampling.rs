//! Streaming samplers and estimators for long-running observation.
//!
//! Section 5 of the paper nominates "Douceur and Bolosky's statistical
//! sampler" (from MS Manners) for the gray toolbox: ICLs observe
//! unbounded measurement streams but can afford only bounded state, and
//! the operations "must be performed incrementally". This module provides
//! the two standard tools for that: a fixed-size uniform **reservoir
//! sample** of an unbounded stream, and an **incremental least-squares
//! regression** whose state is five running sums.

use crate::rng::StdRng;
use crate::rng::{RngExt, SeedableRng};

/// A fixed-capacity uniform random sample of an unbounded stream
/// (Vitter's Algorithm R, seeded for reproducibility).
///
/// After `n ≥ capacity` observations, every observation seen so far has
/// probability `capacity / n` of being in the sample.
///
/// # Examples
///
/// ```
/// use gray_toolbox::sampling::Reservoir;
///
/// let mut r = Reservoir::new(16, 42);
/// for x in 0..10_000 {
///     r.push(x as f64);
/// }
/// assert_eq!(r.sample().len(), 16);
/// assert_eq!(r.seen(), 10_000);
/// ```
#[derive(Debug)]
pub struct Reservoir {
    sample: Vec<f64>,
    capacity: usize,
    seen: u64,
    rng: StdRng,
}

impl Reservoir {
    /// Creates a reservoir holding at most `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            sample: Vec::with_capacity(capacity),
            capacity,
            seen: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Offers one observation to the reservoir.
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(x);
        } else {
            let j = self.rng.random_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.sample[j as usize] = x;
            }
        }
    }

    /// The current sample (unordered).
    pub fn sample(&self) -> &[f64] {
        &self.sample
    }

    /// Total observations offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Summary statistics of the current sample.
    pub fn summary(&self) -> crate::stats::Summary {
        crate::stats::Summary::new(&self.sample)
    }
}

/// Incremental ordinary-least-squares regression `y = slope·x +
/// intercept` over a stream of `(x, y)` pairs — O(1) state, O(1) update.
///
/// MS Manners regresses progress counters against time to estimate the
/// uncontended baseline rate; MAC's calibration can regress touch time
/// against page index to detect drift.
///
/// # Examples
///
/// ```
/// use gray_toolbox::sampling::StreamingRegression;
///
/// let mut reg = StreamingRegression::new();
/// for i in 0..100 {
///     reg.push(i as f64, 3.0 * i as f64 + 7.0);
/// }
/// let (slope, intercept) = reg.line();
/// assert!((slope - 3.0).abs() < 1e-9);
/// assert!((intercept - 7.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingRegression {
    n: u64,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
    syy: f64,
}

impl StreamingRegression {
    /// Creates an empty regression.
    pub fn new() -> Self {
        StreamingRegression::default()
    }

    /// Adds one `(x, y)` observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
        self.syy += y * y;
    }

    /// The number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The fitted `(slope, intercept)`; a degenerate `x` spread yields a
    /// horizontal line through the mean, and an empty regression yields
    /// `(0, 0)`.
    pub fn line(&self) -> (f64, f64) {
        if self.n == 0 {
            return (0.0, 0.0);
        }
        let n = self.n as f64;
        let denom = self.sxx - self.sx * self.sx / n;
        if denom.abs() < f64::EPSILON * (1.0 + self.sxx.abs()) {
            return (0.0, self.sy / n);
        }
        let slope = (self.sxy - self.sx * self.sy / n) / denom;
        let intercept = (self.sy - slope * self.sx) / n;
        (slope, intercept)
    }

    /// The predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        let (m, b) = self.line();
        m * x + b
    }

    /// The coefficient of determination R² in [0, 1] (0 when undefined).
    pub fn r_squared(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let ss_tot = self.syy - self.sy * self.sy / n;
        if ss_tot <= 0.0 {
            return 0.0;
        }
        let (m, b) = self.line();
        // SS_res = Σ(y − (mx+b))².
        let ss_res = self.syy - 2.0 * m * self.sxy - 2.0 * b * self.sy
            + m * m * self.sxx
            + 2.0 * m * b * self.sx
            + n * b * b;
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_keeps_everything_below_capacity() {
        let mut r = Reservoir::new(10, 1);
        for x in 0..5 {
            r.push(x as f64);
        }
        assert_eq!(r.sample(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        // Stream 0..10_000; the sample mean should approximate the stream
        // mean (4999.5) rather than the head or tail.
        let mut r = Reservoir::new(256, 7);
        for x in 0..10_000 {
            r.push(x as f64);
        }
        let mean = r.summary().mean();
        assert!(
            (3800.0..6200.0).contains(&mean),
            "reservoir mean {mean} too far from 4999.5"
        );
    }

    #[test]
    fn reservoir_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut r = Reservoir::new(8, seed);
            for x in 0..1000 {
                r.push(x as f64);
            }
            r.sample().to_vec()
        };
        assert_eq!(collect(3), collect(3));
        assert_ne!(collect(3), collect(4));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Reservoir::new(0, 0);
    }

    #[test]
    fn regression_matches_batch_fit() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -2.5 * x + 11.0).collect();
        let mut reg = StreamingRegression::new();
        for (x, y) in xs.iter().zip(&ys) {
            reg.push(*x, *y);
        }
        let (m_stream, b_stream) = reg.line();
        let (m_batch, b_batch) = crate::stats::linear_regression(&xs, &ys);
        assert!((m_stream - m_batch).abs() < 1e-9);
        assert!((b_stream - b_batch).abs() < 1e-9);
        assert!(reg.r_squared() > 0.999999);
    }

    #[test]
    fn regression_degenerate_cases() {
        let empty = StreamingRegression::new();
        assert_eq!(empty.line(), (0.0, 0.0));
        let mut vertical = StreamingRegression::new();
        vertical.push(2.0, 1.0);
        vertical.push(2.0, 5.0);
        let (m, b) = vertical.line();
        assert_eq!(m, 0.0);
        assert_eq!(b, 3.0);
        assert_eq!(vertical.r_squared(), 0.0);
    }

    #[test]
    fn noisy_regression_has_lower_r_squared() {
        let mut clean = StreamingRegression::new();
        let mut noisy = StreamingRegression::new();
        for i in 0..200 {
            let x = i as f64;
            clean.push(x, 2.0 * x);
            // Deterministic "noise" with large amplitude.
            let jitter = if i % 2 == 0 { 50.0 } else { -50.0 };
            noisy.push(x, 2.0 * x + jitter);
        }
        assert!(clean.r_squared() > noisy.r_squared());
        assert!(noisy.r_squared() > 0.5, "signal still dominates");
    }

    #[test]
    fn predict_interpolates() {
        let mut reg = StreamingRegression::new();
        reg.push(0.0, 0.0);
        reg.push(10.0, 20.0);
        assert!((reg.predict(5.0) - 10.0).abs() < 1e-9);
    }
}
