//! gray-trace: structured tracing and metrics for the probe lifecycle.
//!
//! Every ICL inference rests on a chain of small decisions — an offset was
//! drawn, a probe was timed, a unit was classified, a guard backed off —
//! and when an inference goes wrong the figure output alone cannot say
//! which link broke. This module records that chain as typed events:
//!
//! - [`TraceEvent::ProbePlanned`] — an ICL drew a probe plan for a target;
//! - [`TraceEvent::ProbeIssued`] — one probe executed, with its latency
//!   (emitted by the backends: virtual time under simos, `FastTimer` time
//!   under hostos);
//! - [`TraceEvent::Classified`] — a prediction unit received a verdict;
//! - [`TraceEvent::ThresholdCrossed`] — a detector tripped (page-daemon
//!   slow-run, two-means separation, admission budget halving);
//! - [`TraceEvent::GuardTransition`] — the scheduler's AIMD guard moved
//!   (or held) its worker count after a wave;
//! - [`TraceEvent::AdmissionDecision`] — a memory request was granted or
//!   denied, and for how many bytes;
//! - [`TraceEvent::Estimated`] — an ICL published a scalar estimate
//!   (e.g. MAC's available-memory figure), joinable against oracle truth;
//! - [`TraceEvent::RepositoryMiss`] — a calibration key was read before
//!   anything wrote it (the caller silently fell back to a default);
//! - [`TraceEvent::CacheAccess`] — a service-side inference cache answered
//!   (or declined to answer) a query: hit, miss, expired, churned.
//!
//! # Cost model
//!
//! The subsystem is designed to be compiled in everywhere and *always on*
//! in the sense that call sites never need `#[cfg]`s: when tracing is
//! disabled (the default), [`emit_with`] is one relaxed atomic load and a
//! branch — no allocation, no lock, and the event-constructing closure is
//! never called. When enabled, records go through one mutex into a bounded
//! ring buffer (and, if configured, a buffered JSONL sink), and counters
//! plus a log2 latency histogram aggregate alongside. "Lock-free-ish":
//! the fast path (disabled check) is lock-free; recording is not.
//!
//! # Identity
//!
//! Each record carries three coordinates so a timeline can be
//! reconstructed per wave, per plan, and per process:
//!
//! - `wave` — the scheduler stamps the current wave index process-wide
//!   while a wave is in flight ([`set_wave`]);
//! - `span` — a thread-local stack of `kind:label` segments pushed by
//!   [`span`] guards (e.g. `plan:/f3`); simulated processes are real
//!   threads, so a span pushed inside a worker names that worker's plan;
//! - `lane` — a small per-thread integer; under simos one lane is one
//!   simulated process.
//!
//! # Sinks
//!
//! The ring buffer ([`drain`]) serves in-process consumers: tests, the
//! accuracy scorer, and [`render_timeline`]. The JSONL sink
//! ([`enable_jsonl`], or `GRAY_TRACE=path` via [`init_from_env`]) streams
//! every record as one JSON object per line, so rare-but-important events
//! (guard transitions) survive even when probe events wrap the ring.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::stats::Log2Histogram;
use crate::time::Nanos;

/// Default ring-buffer capacity (records). Probe-heavy runs wrap; the
/// JSONL sink, when configured, still sees every record.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// A classification verdict attached to a [`TraceEvent::Classified`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Predicted resident in the cache.
    Cached,
    /// Predicted not resident.
    Uncached,
    /// A single probed page was observed present.
    Present,
    /// A single probed page was observed absent.
    Absent,
}

impl Verdict {
    /// The verdict's JSONL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Cached => "cached",
            Verdict::Uncached => "uncached",
            Verdict::Present => "present",
            Verdict::Absent => "absent",
        }
    }
}

/// One typed event in the probe lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An ICL drew a probe plan: `probes` offsets against `target`.
    ProbePlanned {
        /// What will be probed (a file path, or a memory-region tag).
        target: String,
        /// Number of probe offsets in the plan.
        probes: u64,
    },
    /// One probe executed. Emitted by the backend that serviced it, with
    /// the backend's own clock (virtual nanoseconds under simos).
    ProbeIssued {
        /// Byte offset probed.
        offset: u64,
        /// Observed service latency in nanoseconds.
        latency_ns: u64,
    },
    /// A prediction unit received a verdict.
    Classified {
        /// The unit's identity (a file path for FCCD; `pu:<i>` for
        /// per-unit probes in fig1).
        unit: String,
        /// The verdict.
        verdict: Verdict,
    },
    /// A detector compared a value against its threshold and tripped.
    ThresholdCrossed {
        /// Which detector (e.g. `mac.page_daemon`, `fccd.separation`).
        what: &'static str,
        /// The observed value.
        value: f64,
        /// The threshold it was compared against.
        threshold: f64,
    },
    /// The scheduler's AIMD guard finished judging a wave. Emitted once
    /// per wave even when the worker count holds, so the full worker
    /// count over time can be reconstructed from the event stream alone.
    GuardTransition {
        /// Coefficient of variation of per-plan mean probe times.
        cv: f64,
        /// Worker count the wave ran at.
        workers_before: usize,
        /// Worker count after the guard's verdict.
        workers: usize,
    },
    /// A memory request was admitted (or not).
    AdmissionDecision {
        /// Who decided (e.g. `mac.gb_alloc`, `sched.admission`).
        source: &'static str,
        /// Bytes requested.
        requested: u64,
        /// Bytes granted; 0 means denied.
        granted: u64,
    },
    /// An ICL published a scalar estimate of hidden OS state.
    Estimated {
        /// The quantity (e.g. `mac.available_bytes`).
        quantity: &'static str,
        /// The estimate's value.
        value: f64,
    },
    /// A repository key was read before calibration wrote it.
    RepositoryMiss {
        /// The key that was missing.
        key: String,
    },
    /// A service-side inference cache was consulted.
    CacheAccess {
        /// The cache key (a query fingerprint).
        key: String,
        /// What happened: `hit`, `miss`, `expired`, `churned`, `reinfer`,
        /// `evicted` (capacity bound displaced the oldest entry).
        outcome: &'static str,
    },
}

impl TraceEvent {
    /// The event's type name, as spelled in JSONL and counter keys.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ProbePlanned { .. } => "ProbePlanned",
            TraceEvent::ProbeIssued { .. } => "ProbeIssued",
            TraceEvent::Classified { .. } => "Classified",
            TraceEvent::ThresholdCrossed { .. } => "ThresholdCrossed",
            TraceEvent::GuardTransition { .. } => "GuardTransition",
            TraceEvent::AdmissionDecision { .. } => "AdmissionDecision",
            TraceEvent::Estimated { .. } => "Estimated",
            TraceEvent::RepositoryMiss { .. } => "RepositoryMiss",
            TraceEvent::CacheAccess { .. } => "CacheAccess",
        }
    }

    /// The event's payload as JSON object fields (no braces), e.g.
    /// `"offset":4096,"latency_ns":2500`.
    pub fn payload_json(&self) -> String {
        match self {
            TraceEvent::ProbePlanned { target, probes } => {
                format!("\"target\":{},\"probes\":{probes}", json_string(target))
            }
            TraceEvent::ProbeIssued { offset, latency_ns } => {
                format!("\"offset\":{offset},\"latency_ns\":{latency_ns}")
            }
            TraceEvent::Classified { unit, verdict } => {
                format!(
                    "\"unit\":{},\"verdict\":\"{}\"",
                    json_string(unit),
                    verdict.as_str()
                )
            }
            TraceEvent::ThresholdCrossed {
                what,
                value,
                threshold,
            } => format!(
                "\"what\":{},\"value\":{},\"threshold\":{}",
                json_string(what),
                json_f64(*value),
                json_f64(*threshold)
            ),
            TraceEvent::GuardTransition {
                cv,
                workers_before,
                workers,
            } => format!(
                "\"cv\":{},\"workers_before\":{workers_before},\"workers\":{workers}",
                json_f64(*cv)
            ),
            TraceEvent::AdmissionDecision {
                source,
                requested,
                granted,
            } => format!(
                "\"source\":{},\"requested\":{requested},\"granted\":{granted}",
                json_string(source)
            ),
            TraceEvent::Estimated { quantity, value } => format!(
                "\"quantity\":{},\"value\":{}",
                json_string(quantity),
                json_f64(*value)
            ),
            TraceEvent::RepositoryMiss { key } => format!("\"key\":{}", json_string(key)),
            TraceEvent::CacheAccess { key, outcome } => {
                format!("\"key\":{},\"outcome\":\"{outcome}\"", json_string(key))
            }
        }
    }
}

/// One recorded event with its identity coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Timestamp in nanoseconds. From the emitting backend's clock when
    /// the site used [`emit_with_at`]; otherwise host-monotonic
    /// nanoseconds since the tracer first initialised.
    pub ts: Nanos,
    /// Scheduler wave index in flight when the event fired, if any.
    pub wave: Option<u64>,
    /// `/`-joined span path from the emitting thread's span stack
    /// (empty when no span was open).
    pub span: String,
    /// Small per-thread lane id (one simulated process = one lane).
    pub lane: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders the record as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"ts_ns\":{},\"lane\":{}",
            self.seq,
            self.ts.as_nanos(),
            self.lane
        );
        if let Some(w) = self.wave {
            s.push_str(&format!(",\"wave\":{w}"));
        }
        if !self.span.is_empty() {
            s.push_str(&format!(",\"span\":{}", json_string(&self.span)));
        }
        s.push_str(&format!(
            ",\"type\":\"{}\",{}}}",
            self.event.kind(),
            self.event.payload_json()
        ));
        s
    }
}

/// Aggregated counters and histograms, snapshotted by [`metrics`].
#[derive(Debug, Clone, Default)]
pub struct TraceMetrics {
    /// Event count per event kind.
    pub counts: BTreeMap<&'static str, u64>,
    /// Log2 histogram of [`TraceEvent::ProbeIssued`] latencies (ns).
    pub probe_latency: Log2Histogram,
    /// Records evicted from the bounded ring before anyone drained them.
    /// Non-zero means in-process consumers saw a truncated history (the
    /// JSONL sink, when configured, still received every record).
    pub records_dropped: u64,
}

/// Bounded ring of records: pushes evict the oldest once full.
#[derive(Debug)]
struct Ring {
    buf: Vec<TraceRecord>,
    capacity: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    /// Total records ever pushed (so tests can observe eviction).
    pushed: u64,
    /// Records overwritten before being drained — the silent-loss
    /// counter surfaced as [`TraceMetrics::records_dropped`].
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            pushed: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, rec: TraceRecord) {
        self.pushed += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.dropped += 1;
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn drain(&mut self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = self.buf.drain(self.head..).collect();
        out.append(&mut self.buf);
        self.head = 0;
        out
    }
}

struct TracerState {
    seq: u64,
    ring: Ring,
    sink: Option<BufWriter<File>>,
    metrics: TraceMetrics,
    clock: Option<Box<dyn Fn() -> Nanos + Send>>,
}

impl TracerState {
    fn new(capacity: usize) -> Self {
        TracerState {
            seq: 0,
            ring: Ring::new(capacity),
            sink: None,
            metrics: TraceMetrics::default(),
            clock: None,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CURRENT_WAVE: AtomicU64 = AtomicU64::new(u64::MAX);
static NEXT_LANE: AtomicU64 = AtomicU64::new(0);

fn state() -> &'static Mutex<TracerState> {
    static STATE: OnceLock<Mutex<TracerState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(TracerState::new(DEFAULT_RING_CAPACITY)))
}

fn lock_state() -> MutexGuard<'static, TracerState> {
    match state().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    static LANE: Cell<u64> = const { Cell::new(u64::MAX) };
}

fn lane_id() -> u64 {
    LANE.with(|c| {
        if c.get() == u64::MAX {
            c.set(NEXT_LANE.fetch_add(1, Ordering::Relaxed));
        }
        c.get()
    })
}

/// This thread's lane id (allocated lazily), for the profiler's per-lane
/// attribution table.
pub(crate) fn current_lane() -> u64 {
    lane_id()
}

/// A copy of this thread's open span stack, root first, for the
/// profiler's attribution path.
pub(crate) fn span_segments() -> Vec<String> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

/// Reserves a fresh lane id without binding it to any thread. Services
/// that multiplex many logical clients over one thread (the `gbd` daemon
/// serving its tenants) allocate one lane per client and switch the
/// emitting thread onto it with [`lane_scope`].
pub fn allocate_lane() -> u64 {
    NEXT_LANE.fetch_add(1, Ordering::Relaxed)
}

/// Overrides this thread's lane id until the guard drops, then restores
/// the previous binding. Records emitted inside the scope carry `lane` —
/// this is how per-tenant telemetry falls out of a single daemon thread.
pub fn lane_scope(lane: u64) -> LaneGuard {
    let prev = LANE.with(|c| c.replace(lane));
    LaneGuard { prev }
}

/// Guard returned by [`lane_scope`]; restores the previous lane on drop.
pub struct LaneGuard {
    prev: u64,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        LANE.with(|c| c.set(self.prev));
    }
}

/// A detached copy of this thread's per-context trace identity: the open
/// span stack and the lane binding. Executors that multiplex many
/// logical processes over one driver thread (the event-driven `simos`
/// backend) keep one `TraceCtx` per process and [`swap_ctx`] it in
/// around every resume, so spans opened by one process never leak into
/// another's records and each process keeps a stable lane.
#[derive(Debug, Default)]
pub struct TraceCtx {
    spans: Vec<String>,
    lane: u64,
}

impl TraceCtx {
    /// A fresh context: no open spans, lane unbound (lazily allocated on
    /// first record, exactly like a fresh thread).
    pub fn new() -> Self {
        TraceCtx {
            spans: Vec::new(),
            lane: u64::MAX,
        }
    }
}

/// Exchanges this thread's span stack and lane with `ctx`. Call once to
/// install a context before resuming its process and once after it
/// suspends to stow it away again; the pairing restores the caller's own
/// identity in between. Swapping (rather than set/clear) makes the
/// operation self-inverse and allocation-free.
pub fn swap_ctx(ctx: &mut TraceCtx) {
    SPAN_STACK.with(|s| std::mem::swap(&mut *s.borrow_mut(), &mut ctx.spans));
    ctx.lane = LANE.with(|c| c.replace(ctx.lane));
}

/// Whether tracing is currently enabled. One relaxed atomic load — this
/// is the entire cost of every instrumentation site in a disabled build.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records an event if tracing is enabled; the closure is never called
/// (and nothing allocates) when it is not. Timestamped from the
/// registered clock, or host-monotonic time by default.
#[inline]
pub fn emit_with(f: impl FnOnce() -> TraceEvent) {
    if !enabled() {
        return;
    }
    record(None, f());
}

/// Like [`emit_with`], but the caller supplies the timestamp — used by
/// backends whose probes are timed on their own clock (simos virtual
/// time, hostos `FastTimer`).
#[inline]
pub fn emit_with_at(ts: Nanos, f: impl FnOnce() -> TraceEvent) {
    if !enabled() {
        return;
    }
    record(Some(ts), f());
}

fn record(ts: Option<Nanos>, event: TraceEvent) {
    let lane = lane_id();
    let span = SPAN_STACK.with(|s| s.borrow().join("/"));
    let wave = match CURRENT_WAVE.load(Ordering::Relaxed) {
        u64::MAX => None,
        w => Some(w),
    };
    let mut st = lock_state();
    let ts = ts.unwrap_or_else(|| match &st.clock {
        Some(clock) => clock(),
        None => Nanos(epoch().elapsed().as_nanos() as u64),
    });
    let seq = st.seq;
    st.seq += 1;
    *st.metrics.counts.entry(event.kind()).or_insert(0) += 1;
    if let TraceEvent::ProbeIssued { latency_ns, .. } = event {
        st.metrics.probe_latency.record(latency_ns);
    }
    let rec = TraceRecord {
        seq,
        ts,
        wave,
        span,
        lane,
        event,
    };
    if let Some(sink) = st.sink.as_mut() {
        let _ = writeln!(sink, "{}", rec.to_json());
    }
    st.ring.push(rec);
}

/// Enables tracing into the in-process ring buffer only.
pub fn enable() {
    enable_with_capacity(DEFAULT_RING_CAPACITY);
}

/// Enables tracing with an explicit ring capacity (tests exercise
/// wraparound with small rings).
pub fn enable_with_capacity(capacity: usize) {
    let mut st = lock_state();
    st.ring = Ring::new(capacity);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Enables tracing and streams every record to `path` as JSONL, in
/// addition to the ring buffer. Ring capacity honours the
/// `GRAY_TRACE_CAP` environment override (see [`ring_capacity_from_env`]).
pub fn enable_jsonl(path: &str) -> io::Result<()> {
    enable_jsonl_with_capacity(path, ring_capacity_from_env())
}

/// Like [`enable_jsonl`], with an explicit ring capacity.
pub fn enable_jsonl_with_capacity(path: &str, capacity: usize) -> io::Result<()> {
    let file = File::create(path)?;
    let mut st = lock_state();
    st.ring = Ring::new(capacity);
    st.sink = Some(BufWriter::new(file));
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// The ring capacity requested by the `GRAY_TRACE_CAP` environment
/// variable, or [`DEFAULT_RING_CAPACITY`] when unset or unparsable
/// (a malformed value is reported, not silently zeroed).
pub fn ring_capacity_from_env() -> usize {
    match std::env::var("GRAY_TRACE_CAP") {
        Ok(raw) if !raw.is_empty() => match raw.parse::<usize>() {
            Ok(cap) => cap.max(1),
            Err(_) => {
                eprintln!("gray-trace: ignoring unparsable GRAY_TRACE_CAP={raw:?}");
                DEFAULT_RING_CAPACITY
            }
        },
        _ => DEFAULT_RING_CAPACITY,
    }
}

/// Enables the JSONL sink if the `GRAY_TRACE` environment variable names
/// a path (ring capacity from `GRAY_TRACE_CAP`, when set). Returns the
/// path when tracing was turned on.
pub fn init_from_env() -> Option<String> {
    let path = std::env::var("GRAY_TRACE").ok()?;
    if path.is_empty() {
        return None;
    }
    match enable_jsonl(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("gray-trace: cannot open GRAY_TRACE={path}: {e}");
            None
        }
    }
}

/// Flushes the JSONL sink (no-op without one).
pub fn flush() {
    let mut st = lock_state();
    if let Some(sink) = st.sink.as_mut() {
        let _ = sink.flush();
    }
}

/// Disables tracing, writes the accounting footer to the JSONL sink,
/// flushes and closes it, and clears the registered clock. Ring contents
/// survive until [`drain`].
///
/// The footer is one final JSON line,
/// `{"type":"Footer","records":N,"ring_dropped":M,"ring_capacity":C}`,
/// so a consumer can verify it received every record and see whether the
/// in-process ring lost history.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Relaxed);
    CURRENT_WAVE.store(u64::MAX, Ordering::Relaxed);
    let mut st = lock_state();
    let (records, dropped, capacity) = (st.seq, st.ring.dropped, st.ring.capacity);
    if let Some(mut sink) = st.sink.take() {
        let _ = writeln!(
            sink,
            "{{\"type\":\"Footer\",\"records\":{records},\"ring_dropped\":{dropped},\"ring_capacity\":{capacity}}}"
        );
        let _ = sink.flush();
    }
    st.clock = None;
}

/// Registers the default timestamp source for records emitted without an
/// explicit time (e.g. hostos registers its calibrated `FastTimer`).
pub fn set_clock(clock: impl Fn() -> Nanos + Send + 'static) {
    lock_state().clock = Some(Box::new(clock));
}

/// Stamps the scheduler wave index onto subsequently emitted records,
/// process-wide (the scheduler dispatches waves one at a time).
pub fn set_wave(index: u64) {
    CURRENT_WAVE.store(index, Ordering::Relaxed);
}

/// Clears the wave stamp after dispatch finishes.
pub fn clear_wave() {
    CURRENT_WAVE.store(u64::MAX, Ordering::Relaxed);
}

/// Pushes a `kind:label` span segment onto this thread's span stack; the
/// guard pops it on drop. When neither tracing nor the virtual-time
/// profiler is enabled nothing is pushed and the label closure is never
/// called. (The profiler reads the same span stack for its attribution
/// tree, so spans must open whenever either consumer is live.)
pub fn span(kind: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() && !crate::profile::enabled() {
        return SpanGuard { pushed: false };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(format!("{kind}:{}", label())));
    SpanGuard { pushed: true }
}

/// Guard returned by [`span`]; pops its segment when dropped.
pub struct SpanGuard {
    pushed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.pushed {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Removes and returns every record in the ring, oldest first.
pub fn drain() -> Vec<TraceRecord> {
    lock_state().ring.drain()
}

/// Total records ever pushed (drained or evicted records included).
pub fn records_pushed() -> u64 {
    lock_state().ring.pushed
}

/// Records evicted from the bounded ring before being drained.
pub fn records_dropped() -> u64 {
    lock_state().ring.dropped
}

/// Snapshot of the aggregated counters and latency histogram.
pub fn metrics() -> TraceMetrics {
    let st = lock_state();
    let mut m = st.metrics.clone();
    m.records_dropped = st.ring.dropped;
    m
}

/// Resets counters and histograms (records are untouched).
pub fn reset_metrics() {
    lock_state().metrics = TraceMetrics::default();
}

fn capture_lock() -> &'static Mutex<()> {
    static CAPTURE: OnceLock<Mutex<()>> = OnceLock::new();
    CAPTURE.get_or_init(|| Mutex::new(()))
}

/// Exclusive tracing session for tests and in-process scorers.
///
/// The global tracer is process-wide state; concurrent tests that each
/// enabled it would interleave their events. `capture()` serialises such
/// users behind one lock, clears the ring and metrics, enables tracing,
/// and disables it again when the guard drops (panic-safe). Callers
/// [`drain`] before dropping the guard.
pub fn capture() -> CaptureGuard {
    let lock = match capture_lock().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    {
        let mut st = lock_state();
        st.ring = Ring::new(DEFAULT_RING_CAPACITY);
        st.metrics = TraceMetrics::default();
    }
    ENABLED.store(true, Ordering::Relaxed);
    CaptureGuard { _lock: lock }
}

/// Guard returned by [`capture`]; ends the tracing session on drop.
pub struct CaptureGuard {
    _lock: MutexGuard<'static, ()>,
}

impl CaptureGuard {
    /// This thread's lane id, for filtering records down to events the
    /// capturing test emitted itself (other test threads in the same
    /// process may emit while the session is open).
    pub fn lane(&self) -> u64 {
        lane_id()
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
        CURRENT_WAVE.store(u64::MAX, Ordering::Relaxed);
    }
}

/// Renders records as a per-wave lane view: one section per scheduler
/// wave (plus one for out-of-wave events), one lane per span/thread, with
/// probe counts, latency ranges, and the wave's guard verdict.
pub fn render_timeline(records: &[TraceRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut waves: Vec<Option<u64>> = records.iter().map(|r| r.wave).collect();
    waves.sort();
    waves.dedup();
    for wave in waves {
        match wave {
            Some(w) => {
                let _ = writeln!(out, "wave {w}");
            }
            None => {
                let _ = writeln!(out, "(no wave)");
            }
        }
        let in_wave: Vec<&TraceRecord> = records.iter().filter(|r| r.wave == wave).collect();
        // Lanes keyed by span (falling back to the thread lane id).
        let mut lanes: Vec<String> = in_wave
            .iter()
            .map(|r| {
                if r.span.is_empty() {
                    format!("lane {}", r.lane)
                } else {
                    r.span.clone()
                }
            })
            .collect();
        lanes.sort();
        lanes.dedup();
        for lane in &lanes {
            let recs: Vec<&&TraceRecord> = in_wave
                .iter()
                .filter(|r| {
                    let key = if r.span.is_empty() {
                        format!("lane {}", r.lane)
                    } else {
                        r.span.clone()
                    };
                    key == *lane
                })
                .collect();
            let probes: Vec<u64> = recs
                .iter()
                .filter_map(|r| match r.event {
                    TraceEvent::ProbeIssued { latency_ns, .. } => Some(latency_ns),
                    _ => None,
                })
                .collect();
            let mut line = format!("  {lane:<24}");
            if probes.is_empty() {
                line.push_str(" (no probes)");
            } else {
                let min = probes.iter().min().copied().unwrap_or(0);
                let max = probes.iter().max().copied().unwrap_or(0);
                let _ = write!(
                    line,
                    " {:>4} probes  {:>9}ns..{:<9}ns ",
                    probes.len(),
                    min,
                    max
                );
                // A crude magnitude bar: one '#' per log2 of max latency.
                let bar = (64 - max.leading_zeros()) as usize;
                line.push_str(&"#".repeat(bar.min(32)));
            }
            let _ = writeln!(out, "{line}");
            for r in &recs {
                match &r.event {
                    TraceEvent::Classified { unit, verdict } => {
                        let _ = writeln!(out, "    classified {unit} -> {}", verdict.as_str());
                    }
                    TraceEvent::ThresholdCrossed {
                        what,
                        value,
                        threshold,
                    } => {
                        let _ = writeln!(out, "    threshold {what}: {value:.3} vs {threshold:.3}");
                    }
                    TraceEvent::AdmissionDecision {
                        source,
                        requested,
                        granted,
                    } => {
                        let _ =
                            writeln!(out, "    admission {source}: {granted}/{requested} bytes");
                    }
                    _ => {}
                }
            }
        }
        for r in &in_wave {
            if let TraceEvent::GuardTransition {
                cv,
                workers_before,
                workers,
            } = r.event
            {
                let _ = writeln!(
                    out,
                    "  guard: cv={cv:.3} workers {workers_before} -> {workers}"
                );
            }
        }
    }
    out
}

/// Escapes `s` as a JSON string literal (with quotes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as valid JSON (non-finite values become 0).
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `{}` on a whole f64 prints no decimal point; keep it a JSON
        // number either way (integers are valid JSON numbers).
        s
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emit_is_inert_and_closure_never_runs() {
        // Not under `capture()`: tracing must be off unless some other
        // test holds the capture lock — so take it to be sure.
        let guard = capture();
        drop(guard); // now definitely disabled, and we still hold no lock
        let mut ran = false;
        emit_with(|| {
            ran = true;
            TraceEvent::RepositoryMiss { key: String::new() }
        });
        assert!(!ran, "closure must not run while disabled");
    }

    #[test]
    fn ring_wraps_and_drains_in_order() {
        let mut ring = Ring::new(4);
        for i in 0..7u64 {
            ring.push(TraceRecord {
                seq: i,
                ts: Nanos(i),
                wave: None,
                span: String::new(),
                lane: 0,
                event: TraceEvent::ProbeIssued {
                    offset: i,
                    latency_ns: 1,
                },
            });
        }
        assert_eq!(ring.pushed, 7);
        let seqs: Vec<u64> = ring.drain().into_iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6], "oldest evicted, order kept");
        assert!(ring.drain().is_empty(), "drain empties the ring");
    }

    #[test]
    fn ring_eviction_is_accounted() {
        let guard = capture();
        enable_with_capacity(4); // shrink the session's ring
        let lane = guard.lane();
        for i in 0..7u64 {
            emit_with_at(Nanos(i), || TraceEvent::ProbeIssued {
                offset: i,
                latency_ns: 1,
            });
        }
        let m = metrics();
        assert!(
            m.records_dropped >= 3,
            "7 pushes into a 4-slot ring must drop >= 3, saw {}",
            m.records_dropped
        );
        assert_eq!(records_dropped(), m.records_dropped);
        let mine = drain().into_iter().filter(|r| r.lane == lane).count();
        assert!(mine <= 4, "ring holds at most its capacity");
    }

    #[test]
    fn env_cap_parses_and_falls_back() {
        // Serialise with other capture users; env is process-global.
        let _guard = capture();
        std::env::remove_var("GRAY_TRACE_CAP");
        assert_eq!(ring_capacity_from_env(), DEFAULT_RING_CAPACITY);
        std::env::set_var("GRAY_TRACE_CAP", "128");
        assert_eq!(ring_capacity_from_env(), 128);
        std::env::set_var("GRAY_TRACE_CAP", "0");
        assert_eq!(ring_capacity_from_env(), 1, "zero clamps to one slot");
        std::env::set_var("GRAY_TRACE_CAP", "not-a-number");
        assert_eq!(ring_capacity_from_env(), DEFAULT_RING_CAPACITY);
        std::env::remove_var("GRAY_TRACE_CAP");
    }

    #[test]
    fn capture_records_and_counts() {
        let guard = capture();
        let lane = guard.lane();
        emit_with(|| TraceEvent::Classified {
            unit: "/f0".to_string(),
            verdict: Verdict::Cached,
        });
        emit_with_at(Nanos(42), || TraceEvent::ProbeIssued {
            offset: 4096,
            latency_ns: 2500,
        });
        let recs: Vec<TraceRecord> = drain().into_iter().filter(|r| r.lane == lane).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].ts, Nanos(42), "explicit ts honoured");
        let m = metrics();
        assert!(m.counts["Classified"] >= 1);
        assert!(m.counts["ProbeIssued"] >= 1);
        assert!(m.probe_latency.count() >= 1);
    }

    #[test]
    fn spans_nest_and_pop() {
        let guard = capture();
        let lane = guard.lane();
        {
            let _wave = span("wave", || "7".to_string());
            let _plan = span("plan", || "/f1".to_string());
            emit_with(|| TraceEvent::ProbePlanned {
                target: "/f1".to_string(),
                probes: 3,
            });
        }
        emit_with(|| TraceEvent::ProbePlanned {
            target: "/f2".to_string(),
            probes: 3,
        });
        let recs: Vec<TraceRecord> = drain().into_iter().filter(|r| r.lane == lane).collect();
        assert_eq!(recs[0].span, "wave:7/plan:/f1");
        assert_eq!(recs[1].span, "", "span popped after guard drop");
    }

    #[test]
    fn lane_scope_overrides_and_restores() {
        let guard = capture();
        let thread_lane = guard.lane();
        let tenant = allocate_lane();
        assert_ne!(tenant, thread_lane);
        {
            let _scope = lane_scope(tenant);
            emit_with(|| TraceEvent::CacheAccess {
                key: "fccd:/a".to_string(),
                outcome: "hit",
            });
        }
        emit_with(|| TraceEvent::CacheAccess {
            key: "fccd:/a".to_string(),
            outcome: "miss",
        });
        let recs: Vec<TraceRecord> = drain()
            .into_iter()
            .filter(|r| matches!(r.event, TraceEvent::CacheAccess { .. }))
            .filter(|r| r.lane == tenant || r.lane == thread_lane)
            .collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].lane, tenant, "scoped record on the tenant lane");
        assert_eq!(recs[1].lane, thread_lane, "lane restored after drop");
    }

    #[test]
    fn jsonl_footer_reports_drop_accounting() {
        let _guard = capture();
        let path =
            std::env::temp_dir().join(format!("gray_trace_footer_{}.jsonl", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        enable_jsonl_with_capacity(&path_s, 2).unwrap();
        for i in 0..5u64 {
            emit_with_at(Nanos(i), || TraceEvent::ProbeIssued {
                offset: i,
                latency_ns: 1,
            });
        }
        shutdown();
        let text = std::fs::read_to_string(&path_s).unwrap();
        let _ = std::fs::remove_file(&path_s);
        assert!(
            text.lines().count() >= 6,
            "sink keeps every record plus the footer"
        );
        let last = text.lines().last().unwrap();
        assert!(
            last.starts_with("{\"type\":\"Footer\""),
            "footer line: {last}"
        );
        assert!(last.contains("\"ring_dropped\":3"), "footer line: {last}");
        assert!(last.contains("\"ring_capacity\":2"), "footer line: {last}");
    }

    #[test]
    fn cache_access_serializes() {
        let rec = TraceRecord {
            seq: 0,
            ts: Nanos(7),
            wave: None,
            span: String::new(),
            lane: 3,
            event: TraceEvent::CacheAccess {
                key: "mac.available:1024".to_string(),
                outcome: "expired",
            },
        };
        assert_eq!(
            rec.to_json(),
            "{\"seq\":0,\"ts_ns\":7,\"lane\":3,\"type\":\"CacheAccess\",\
             \"key\":\"mac.available:1024\",\"outcome\":\"expired\"}"
        );
    }

    #[test]
    fn json_lines_are_well_formed() {
        let rec = TraceRecord {
            seq: 3,
            ts: Nanos(100),
            wave: Some(2),
            span: "plan:/a \"b\"".to_string(),
            lane: 1,
            event: TraceEvent::GuardTransition {
                cv: 0.75,
                workers_before: 4,
                workers: 2,
            },
        };
        let line = rec.to_json();
        assert_eq!(
            line,
            "{\"seq\":3,\"ts_ns\":100,\"lane\":1,\"wave\":2,\
             \"span\":\"plan:/a \\\"b\\\"\",\"type\":\"GuardTransition\",\
             \"cv\":0.75,\"workers_before\":4,\"workers\":2}"
        );
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
    }

    #[test]
    fn timeline_renders_waves_and_guard() {
        let recs = vec![
            TraceRecord {
                seq: 0,
                ts: Nanos(0),
                wave: Some(0),
                span: "plan:/f0".to_string(),
                lane: 1,
                event: TraceEvent::ProbeIssued {
                    offset: 0,
                    latency_ns: 3000,
                },
            },
            TraceRecord {
                seq: 1,
                ts: Nanos(5),
                wave: Some(0),
                span: String::new(),
                lane: 0,
                event: TraceEvent::GuardTransition {
                    cv: 0.1,
                    workers_before: 2,
                    workers: 3,
                },
            },
        ];
        let text = render_timeline(&recs);
        assert!(text.contains("wave 0"));
        assert!(text.contains("plan:/f0"));
        assert!(text.contains("workers 2 -> 3"));
    }
}
