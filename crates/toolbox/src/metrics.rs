//! gray-metrics: a typed, lock-cheap metrics registry.
//!
//! The trace module answers "what happened, in order" — this module
//! answers "how much, in aggregate". Call sites hold typed handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) obtained once from a
//! [`Registry`]; every subsequent update is a single relaxed atomic
//! operation with no lock and no allocation, so handles are cheap enough
//! to bump inside the simulator's charging path or a probe loop.
//!
//! # Shape
//!
//! - **Counter** — monotonically increasing `u64` (events, bytes,
//!   evictions).
//! - **Gauge** — instantaneous `i64` (queue depth, worker count,
//!   admission budget).
//! - **Histogram** — 65 power-of-two buckets matching
//!   [`Log2Histogram`]'s layout, recorded atomically and snapshotted
//!   back into a [`Log2Histogram`] for percentile math.
//! - **Labeled families** — `family{label}` keys minted by the
//!   `*_labeled` constructors, so per-tenant or per-cell series share a
//!   family name while remaining distinct rows.
//!
//! # Snapshots
//!
//! [`Registry::snapshot`] captures every metric into an immutable
//! [`Snapshot`] (a `BTreeMap`, so iteration order — and therefore JSON
//! export — is deterministic). [`Snapshot::diff`] subtracts an earlier
//! snapshot to get a rate window, which is what a `gray-top`-style
//! dashboard renders each refresh. [`Snapshot::to_json`] emits one JSON
//! object, hand-rolled like every other serializer in this workspace.
//!
//! There is one process-wide [`global`] registry for library
//! instrumentation (scheduler waves, admission decisions, covert cells);
//! tests that need isolation construct their own `Registry`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::stats::Log2Histogram;
use crate::trace::{json_f64, json_string};

/// A monotonically increasing counter handle. Clones share the cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed gauge handle. Clones share the cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Atomic bucket array behind a [`Histogram`] handle. Bucket layout is
/// identical to [`Log2Histogram`]: bucket `i` covers `[2^(i-1), 2^i)`.
#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; 65],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn snapshot(&self) -> Log2Histogram {
        let buckets: [u64; 65] = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        Log2Histogram::from_buckets(buckets)
    }
}

/// A log2 histogram handle recording one atomic bump per value. Clones
/// share the buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots the buckets into a [`Log2Histogram`] for percentile
    /// math and merging.
    pub fn snapshot(&self) -> Log2Histogram {
        self.0.snapshot()
    }
}

#[derive(Debug, Clone)]
enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
        }
    }
}

/// One captured metric value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's level.
    Gauge(i64),
    /// A histogram's buckets (boxed: a `Log2Histogram` is 65 buckets
    /// wide, and boxing keeps counter/gauge snapshots word-sized).
    Histogram(Box<Log2Histogram>),
}

/// A typed metrics registry. The registry lock is taken only to mint or
/// look up handles and to snapshot — never on the update path.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn entry_or_insert(&self, name: &str, make: impl FnOnce() -> Entry) -> Entry {
        let mut map = match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Returns the counter named `name`, minting it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type — a
    /// call-site bug the registry refuses to paper over.
    pub fn counter(&self, name: &str) -> Counter {
        match self.entry_or_insert(name, || {
            Entry::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Entry::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge named `name`, minting it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.entry_or_insert(name, || Entry::Gauge(Gauge(Arc::new(AtomicI64::new(0))))) {
            Entry::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram named `name`, minting it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different type.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.entry_or_insert(name, || {
            Entry::Histogram(Histogram(Arc::new(HistogramCore::new())))
        }) {
            Entry::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// A labeled member of a counter family, keyed `family{label}`.
    pub fn counter_labeled(&self, family: &str, label: &str) -> Counter {
        self.counter(&family_key(family, label))
    }

    /// A labeled member of a gauge family, keyed `family{label}`.
    pub fn gauge_labeled(&self, family: &str, label: &str) -> Gauge {
        self.gauge(&family_key(family, label))
    }

    /// A labeled member of a histogram family, keyed `family{label}`.
    pub fn histogram_labeled(&self, family: &str, label: &str) -> Histogram {
        self.histogram(&family_key(family, label))
    }

    /// Captures every registered metric into an immutable [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let map = match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let values = map
            .iter()
            .map(|(name, entry)| {
                let value = match entry {
                    Entry::Counter(c) => MetricValue::Counter(c.get()),
                    Entry::Gauge(g) => MetricValue::Gauge(g.get()),
                    Entry::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { values }
    }
}

/// Builds the `family{label}` key used by the `*_labeled` constructors.
pub fn family_key(family: &str, label: &str) -> String {
    format!("{family}{{{label}}}")
}

/// The process-wide registry used by library instrumentation.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// An immutable, deterministic capture of a registry's metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Metric values keyed by name, in sorted order.
    pub values: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Subtracts `earlier` from `self`, metric by metric: counters
    /// saturate at zero, gauges subtract signed, histograms subtract
    /// bucket-wise (saturating). Metrics absent from `earlier` pass
    /// through unchanged; metrics absent from `self` are dropped. The
    /// result is the activity window between the two captures.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let values = self
            .values
            .iter()
            .map(|(name, now)| {
                let value = match (now, earlier.values.get(name)) {
                    (MetricValue::Counter(n), Some(MetricValue::Counter(e))) => {
                        MetricValue::Counter(n.saturating_sub(*e))
                    }
                    (MetricValue::Gauge(n), Some(MetricValue::Gauge(e))) => {
                        MetricValue::Gauge(n - e)
                    }
                    (MetricValue::Histogram(n), Some(MetricValue::Histogram(e))) => {
                        let now_b = n.buckets();
                        let then_b = e.buckets();
                        let buckets: [u64; 65] =
                            std::array::from_fn(|i| now_b[i].saturating_sub(then_b[i]));
                        MetricValue::Histogram(Box::new(Log2Histogram::from_buckets(buckets)))
                    }
                    (now, _) => now.clone(),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { values }
    }

    /// The counter named `name`, or 0 when absent or not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    /// The gauge named `name`, or 0 when absent or not a gauge.
    pub fn gauge(&self, name: &str) -> i64 {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram named `name`, or an empty one when absent.
    pub fn histogram(&self, name: &str) -> Log2Histogram {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => h.as_ref().clone(),
            _ => Log2Histogram::new(),
        }
    }

    /// Renders the snapshot as one JSON object. Counters and gauges
    /// become numbers; histograms become
    /// `{"count":n,"p50":b,"p99":b,"buckets":"…"}` with percentile
    /// *bounds* (powers of two) and the compact bucket summary.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            match value {
                MetricValue::Counter(n) => out.push_str(&format!("{n}")),
                MetricValue::Gauge(v) => out.push_str(&format!("{v}")),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"p50\":{},\"p99\":{},\"buckets\":{}}}",
                        h.count(),
                        h.percentile_bound(50.0),
                        h.percentile_bound(99.0),
                        json_string(&h.summary())
                    ));
                }
            }
        }
        out.push('}');
        out
    }

    /// Renders `name rate/s` style lines for a dashboard: every counter
    /// in the window divided by `window_secs`, sorted by name.
    pub fn render_rates(&self, window_secs: f64) -> String {
        let mut out = String::new();
        for (name, value) in &self.values {
            if let MetricValue::Counter(n) = value {
                let rate = if window_secs > 0.0 {
                    *n as f64 / window_secs
                } else {
                    0.0
                };
                out.push_str(&format!("  {name:<40} {n:>10}  {}/s\n", json_f64(rate)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn handles_share_cells_and_families_are_distinct() {
        let reg = Registry::new();
        let a = reg.counter("waves");
        let b = reg.counter("waves");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("waves").get(), 4);

        let t0 = reg.counter_labeled("tenant.queries", "t0");
        let t1 = reg.counter_labeled("tenant.queries", "t1");
        t0.add(5);
        t1.add(7);
        assert_eq!(reg.counter("tenant.queries{t0}").get(), 5);
        assert_eq!(reg.counter("tenant.queries{t1}").get(), 7);

        let g = reg.gauge("budget");
        g.set(16);
        g.add(-6);
        assert_eq!(g.get(), 10);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_confusion_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_matches_log2_reference() {
        let reg = Registry::new();
        let h = reg.histogram("latency");
        let mut reference = Log2Histogram::new();
        for v in [0u64, 1, 2, 900, 1100, 950_000, u64::MAX] {
            h.record(v);
            reference.record(v);
        }
        assert_eq!(h.snapshot(), reference);
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let reg = Registry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        thread::scope(|scope| {
            for t in 0..threads {
                let c = reg.counter("hits");
                let h = reg.histogram("lat");
                let g = reg.gauge("depth");
                scope.spawn(move || {
                    for i in 0..per_thread {
                        c.inc();
                        h.record(i + t);
                        g.add(1);
                        g.add(-1);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), threads * per_thread);
        assert_eq!(snap.histogram("lat").count(), threads * per_thread);
        assert_eq!(snap.gauge("depth"), 0);
    }

    #[test]
    fn snapshot_diff_and_json_are_deterministic() {
        let reg = Registry::new();
        reg.counter("b.count").add(10);
        reg.gauge("a.level").set(-2);
        reg.histogram("c.lat").record(1000);
        let before = reg.snapshot();

        reg.counter("b.count").add(5);
        reg.gauge("a.level").set(3);
        reg.histogram("c.lat").record(2000);
        reg.histogram("c.lat").record(2100);
        let after = reg.snapshot();

        let window = after.diff(&before);
        assert_eq!(window.counter("b.count"), 5);
        assert_eq!(window.gauge("a.level"), 5);
        assert_eq!(window.histogram("c.lat").count(), 2);

        // Same operations, fresh registry: byte-identical JSON.
        let reg2 = Registry::new();
        reg2.counter("b.count").add(15);
        reg2.gauge("a.level").set(3);
        for v in [1000u64, 2000, 2100] {
            reg2.histogram("c.lat").record(v);
        }
        assert_eq!(after.to_json(), reg2.snapshot().to_json());
        // Keys are sorted: gauge `a.level` leads despite insert order.
        assert!(after.to_json().starts_with("{\"a.level\":3,"));
    }

    #[test]
    fn diff_handles_new_and_removed_metrics() {
        let reg = Registry::new();
        reg.counter("old").add(2);
        let before = reg.snapshot();
        reg.counter("new").add(9);
        let after = reg.snapshot();
        let window = after.diff(&before);
        assert_eq!(window.counter("new"), 9, "new metric passes through");
        assert_eq!(window.counter("old"), 0);

        let empty = Snapshot::default();
        assert!(empty.diff(&after).values.is_empty(), "removed are dropped");
    }
}
