//! Time representation shared by all gray-box components.
//!
//! Every observation an ICL makes ultimately reduces to "how long did this
//! operation take?", so the representation of time is the most shared piece
//! of vocabulary in the toolbox. [`Nanos`] is an absolute instant on some
//! clock (virtual or host); [`Duration`] is the difference of two instants.
//!
//! Both are thin `u64`/`i64`-free wrappers: durations are unsigned because a
//! monotone clock never runs backwards, and arithmetic is saturating on
//! subtraction so that a noisy caller can never panic the measurement path.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant, in nanoseconds since an arbitrary epoch.
///
/// The epoch is clock-specific: the simulator starts its virtual clock at
/// zero, while the host timer uses an unspecified monotonic origin. Instants
/// from different clocks must never be mixed; the type system cannot enforce
/// this, so ICL code keeps a single clock per session.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

/// A span of time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Nanos {
    /// The zero instant (the simulator's boot time).
    pub const ZERO: Nanos = Nanos(0);

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is in
    /// the future (which can happen when comparing noisy host timestamps).
    pub fn since(self, earlier: Nanos) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, truncating below 1 ns and
    /// clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Duration(0)
        } else {
            Duration((s * 1e9) as u64)
        }
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This span expressed as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scales the span by a non-negative factor, rounding to nearest.
    pub fn mul_f64(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0, "durations cannot be scaled negative");
        Duration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Duration) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Nanos {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Nanos> for Nanos {
    type Output = Duration;
    fn sub(self, rhs: Nanos) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_arithmetic_round_trips() {
        let t0 = Nanos::from_micros(10);
        let t1 = t0 + Duration::from_micros(5);
        assert_eq!(t1.since(t0), Duration::from_micros(5));
        assert_eq!(t1 - t0, Duration::from_micros(5));
    }

    #[test]
    fn since_saturates_instead_of_panicking() {
        let t0 = Nanos::from_secs(1);
        let t1 = Nanos::from_secs(2);
        assert_eq!(t0.since(t1), Duration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
    }

    #[test]
    fn negative_fractional_seconds_clamp_to_zero() {
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
    }

    #[test]
    fn scaling_rounds_to_nearest() {
        assert_eq!(Duration(10).mul_f64(0.26), Duration(3));
        assert_eq!(Duration(10).mul_f64(0.0), Duration(0));
    }

    #[test]
    fn display_picks_a_readable_unit() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Duration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [Duration(1), Duration(2), Duration(3)].into_iter().sum();
        assert_eq!(total, Duration(6));
    }
}
