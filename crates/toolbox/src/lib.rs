//! The *gray toolbox*: common infrastructure for building gray-box
//! Information and Control Layers (ICLs).
//!
//! Section 5 of the paper ("Towards a Gray Toolbox") identifies three
//! families of tools that essentially every ICL needs:
//!
//! 1. **Microbenchmarks for configuration** — performance parameters of the
//!    underlying components, measured once and shared between ICLs through a
//!    common persistent repository ([`repository`]).
//! 2. **Measuring output** — low-overhead, high-resolution timers
//!    ([`time`]).
//! 3. **Interpreting measurements** — incremental statistics, correlation,
//!    clustering, outlier rejection, and sorting helpers ([`stats`],
//!    [`cluster`], [`outlier`]).
//!
//! Everything in this crate is OS-agnostic: it depends neither on the
//! simulated substrate nor on the host backend, so both can use it.
//!
//! The crate is also the workspace's *determinism substrate*: seeded
//! random numbers ([`rng`]), a seeded property-testing harness ([`prop`]),
//! and an offline timing harness ([`bench`]) — all in-tree, so the
//! workspace builds and tests with zero external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cluster;
pub mod mailbox;
pub mod metrics;
pub mod outlier;
pub mod pool;
pub mod profile;
pub mod prop;
pub mod repository;
pub mod rng;
pub mod sampling;
pub mod stats;
pub mod time;
pub mod trace;

pub use cluster::{kmeans1d, two_means, Clustering};
pub use mailbox::{Envelope, Mailbox, MailboxClient, Ticket};
pub use metrics::{Counter, Gauge, Histogram, MetricValue, Registry, Snapshot};
pub use outlier::{discard_outliers, mad, OutlierPolicy};
pub use pool::{JobPanic, Pool};
pub use profile::ProfileSnapshot;
pub use repository::{ParamRepository, RepositoryError};
pub use sampling::{Reservoir, StreamingRegression};
pub use stats::{
    correlation, linear_regression, paired_compare, paired_host_compare, paired_sign_test,
    percentile, Ewma, Log2Histogram, OnlineStats, PairedHostReport, Summary,
};
pub use time::{Duration as GrayDuration, Nanos};
