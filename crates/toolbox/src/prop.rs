//! A small deterministic property-testing harness.
//!
//! Replaces the external property-testing dependency with an in-tree,
//! zero-dependency runner that fits this workspace's determinism policy:
//!
//! - **Seeded generators** ([`Gen`]): every random input is drawn from a
//!   [`StdRng`](crate::rng::StdRng) whose per-case seed is derived
//!   deterministically from the property name and case index, so a run is
//!   reproducible bit-for-bit on any machine.
//! - **Fixed case counts**: a property runs exactly `cases` times (no
//!   time-based budgets), so CI and laptops execute the same work.
//! - **Shrink-free failure reporting**: on failure the harness prints the
//!   property name, case index, and the case seed, then re-raises the
//!   panic. There is no shrinker; instead, re-run just the failing case by
//!   setting `PROP_SEED=<seed>` (and optionally `PROP_CASES=1`) — the
//!   generator replays the identical input.
//!
//! ```
//! use gray_toolbox::prop::{check, Gen};
//!
//! check("reverse_is_involutive", 64, |g: &mut Gen| {
//!     let xs = g.vec(0..20, |g| g.u64(0..1000));
//!     let mut twice = xs.clone();
//!     twice.reverse();
//!     twice.reverse();
//!     assert_eq!(twice, xs);
//! });
//! ```

use crate::rng::{RngCore, RngExt, SampleRange, SampleUniform, SeedableRng, SliceRandom, StdRng};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A seeded source of random test inputs for one property case.
pub struct Gen {
    rng: StdRng,
    seed: u64,
}

impl Gen {
    /// A generator for an explicit seed (what `PROP_SEED` replays).
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed that reproduces this case.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A uniform draw from any supported range, e.g. `g.range(1u64..100)`
    /// or `g.range(-1.0f64..=1.0)`.
    pub fn range<T: SampleUniform>(&mut self, r: impl SampleRange<T>) -> T {
        self.rng.random_range(r)
    }

    /// A uniform `u64` from `r`.
    pub fn u64(&mut self, r: impl SampleRange<u64>) -> u64 {
        self.rng.random_range(r)
    }

    /// A uniform `usize` from `r`.
    pub fn usize(&mut self, r: impl SampleRange<usize>) -> usize {
        self.rng.random_range(r)
    }

    /// A uniform `f64` from `r`.
    pub fn f64(&mut self, r: impl SampleRange<f64>) -> f64 {
        self.rng.random_range(r)
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.random_bool(0.5)
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.rng.random_bool(p)
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `item`.
    pub fn vec<T>(&mut self, len: Range<usize>, mut item: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| item(self)).collect()
    }

    /// A uniformly chosen element of `items` (panics on empty input — an
    /// empty choice set is a bug in the property, not a test input).
    pub fn select<T: Clone>(&mut self, items: &[T]) -> T {
        items
            .choose(&mut self.rng)
            .expect("select requires a non-empty slice")
            .clone()
    }

    /// Direct access to the underlying generator for shuffles etc.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl RngCore for Gen {
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// FNV-1a over the property name: a stable, platform-independent base
/// seed so each property explores its own input stream.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The per-case seed: the property's base seed advanced `case` steps
/// through splitmix64, so cases are uncorrelated but enumerable.
fn case_seed(name: &str, case: u64) -> u64 {
    let mut s = name_seed(name);
    for _ in 0..=case {
        crate::rng::splitmix64(&mut s);
    }
    s
}

/// Runs `property` against `cases` deterministic random inputs.
///
/// On the first failing case, prints a reproduction banner naming the
/// case seed and re-raises the original panic — no shrinking, by design:
/// with deterministic generators, the printed seed *is* the minimal
/// reproduction recipe.
///
/// Environment overrides (for reproducing recorded failures):
///
/// - `PROP_SEED=<u64>`: run only that exact case seed (decimal or 0x hex);
/// - `PROP_CASES=<n>`: override the case count.
pub fn check(name: &str, cases: u32, mut property: impl FnMut(&mut Gen)) {
    if let Some(seed) = env_seed() {
        eprintln!("prop {name}: replaying single case from PROP_SEED={seed:#x}");
        let mut g = Gen::from_seed(seed);
        property(&mut g);
        return;
    }
    let cases = env_cases().unwrap_or(cases);
    for case in 0..cases as u64 {
        let seed = case_seed(name, case);
        let mut g = Gen::from_seed(seed);
        let result = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
        if let Err(panic) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} (seed {seed:#x}).\n\
                 reproduce with: PROP_SEED={seed:#x} cargo test -q {name}"
            );
            resume_unwind(panic);
        }
    }
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("PROP_SEED").ok()?;
    let raw = raw.trim();
    let parsed = raw
        .strip_prefix("0x")
        .map(|h| u64::from_str_radix(h, 16))
        .unwrap_or_else(|| raw.parse());
    Some(parsed.unwrap_or_else(|e| panic!("unparsable PROP_SEED `{raw}`: {e}")))
}

fn env_cases() -> Option<u32> {
    let raw = std::env::var("PROP_CASES").ok()?;
    Some(
        raw.trim()
            .parse()
            .unwrap_or_else(|e| panic!("unparsable PROP_CASES `{raw}`: {e}")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let mut inputs = Vec::new();
            check("determinism_probe", 8, |g| {
                inputs.push((g.seed(), g.u64(0..1000)));
            });
            inputs
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        let mut a = Vec::new();
        check("stream_a", 4, |g| a.push(g.u64(0..u64::MAX)));
        let mut b = Vec::new();
        check("stream_b", 4, |g| b.push(g.u64(0..u64::MAX)));
        assert_ne!(a, b);
    }

    #[test]
    fn failing_case_reports_and_repanics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("always_fails", 16, |_g| panic!("intentional"));
        }));
        assert!(result.is_err(), "the property panic must propagate");
    }

    #[test]
    fn replaying_the_printed_seed_reproduces_the_input() {
        // Find the input of case 3, then rebuild it from its seed alone.
        let mut recorded = None;
        check("replay_me", 8, |g| {
            let x = g.u64(0..1_000_000);
            if recorded.is_none() {
                recorded = Some((g.seed(), x));
            }
        });
        let (seed, x) = recorded.unwrap();
        let mut g = Gen::from_seed(seed);
        assert_eq!(g.u64(0..1_000_000), x);
    }

    #[test]
    fn vec_respects_length_bounds() {
        check("vec_len", 32, |g| {
            let v = g.vec(2..7, |g| g.bool());
            assert!((2..7).contains(&v.len()));
        });
    }
}
