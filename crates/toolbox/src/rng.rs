//! Seeded, in-tree pseudo-random numbers for reproducible probing.
//!
//! Every randomized choice in this workspace — FCCD's random probe
//! offsets, workload shuffles, simulated clock jitter — must replay
//! identically from an explicit seed, on every platform, with no external
//! crates. This module provides that substrate:
//!
//! - [`splitmix64`]: the standard 64-bit seed expander (Steele, Lea &
//!   Flood, "Fast splittable pseudorandom number generators", OOPSLA '14),
//!   used to turn one `u64` seed into full generator state;
//! - [`Xoshiro256PlusPlus`] (aliased as [`StdRng`]): Blackman & Vigna's
//!   xoshiro256++ 1.0, a small, fast, well-tested generator suitable for
//!   everything except cryptography;
//! - the [`SeedableRng`] / [`RngExt`] / [`SliceRandom`] traits, shaped
//!   like the subset of the external `rand` crate's API this codebase
//!   historically imported, so call sites read conventionally while
//!   staying hermetic.
//!
//! Determinism contract: the output of every generator and every derived
//! operation (`random_range`, `shuffle`, …) is a pure function of the seed
//! and the call sequence. Known-answer tests below pin the exact streams;
//! changing them is a breaking change to every recorded experiment.

/// Advances a SplitMix64 state and returns the next output.
///
/// This is the reference algorithm: a Weyl sequence with increment
/// `0x9e3779b97f4a7c15` fed through a 64-bit variant of the MurmurHash3
/// finalizer. It is the canonical way to expand one `u64` seed into
/// arbitrary amounts of independent generator state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The minimal generator interface: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits (high bits of `next_u64`).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds. Only explicit seeding exists — there is
/// deliberately no `from_entropy`; every random stream in this workspace
/// must be reproducible from a written-down seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose state is expanded from `seed` via
    /// [`splitmix64`], so nearby seeds yield uncorrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019): 256 bits of state, period
/// 2^256 − 1, passes BigCrush. The workspace's standard generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

/// The workspace's default generator, named `StdRng` so call sites read
/// conventionally.
pub type StdRng = Xoshiro256PlusPlus;

/// Compatibility path: `gray_toolbox::rng::rngs::StdRng` mirrors the
/// conventional `rngs` submodule import shape.
pub mod rngs {
    pub use super::StdRng;
}

/// Compatibility path: `gray_toolbox::rng::seq::SliceRandom` mirrors the
/// conventional `seq` submodule import shape.
pub mod seq {
    pub use super::SliceRandom;
}

impl Xoshiro256PlusPlus {
    /// Builds a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which is the one fixed point of the
    /// transition function (the stream would be all zeros forever).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be non-zero"
        );
        Xoshiro256PlusPlus { s }
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // splitmix64 never returns four zeros in a row, so the state is
        // always valid.
        Xoshiro256PlusPlus {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[low, high)` (`high` exclusive).
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// A uniform draw from `[low, high]` (`high` inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// A uniform `u64` in `[0, n)` without modulo bias, by rejection from the
/// largest multiple of `n` below 2^64 (Lemire-style widening multiply).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n || lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty sample range");
                let span = (high as i128 - low as i128) as u64;
                low.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sample range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty sample range");
        // 53 uniform bits in [0, 1); scale preserves the exclusive bound
        // up to rounding, which we clamp away from `high`.
        let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = low + u01 * (high - low);
        if x >= high {
            // Rounding at the top of huge ranges; step back inside.
            f64::from_bits(high.to_bits() - 1)
        } else {
            x
        }
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "empty sample range");
        // 53 uniform bits in [0, 1]; denominator 2^53 − 1 makes both
        // endpoints reachable.
        let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (low + u01 * (high - low)).clamp(low, high)
    }
}

/// Ranges a value can be drawn from: `low..high` and `low..=high`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience draws on any generator — the conventional `Rng`-extension
/// surface the codebase uses.
pub trait RngExt: RngCore {
    /// A uniform draw from `range` (`a..b` or `a..=b`).
    #[inline]
    fn random_range<T, Rng2>(&mut self, range: Rng2) -> T
    where
        T: SampleUniform,
        Rng2: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // Compare 53 uniform bits against p scaled to the same grid, so
        // p = 0.0 is never true and p = 1.0 is always true.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> RngExt for R {}

/// In-place randomization of slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniform Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        // Durstenfeld's Fisher–Yates, swapping down from the top.
        for i in (1..self.len()).rev() {
            let j = uniform_u64_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Known-answer vectors computed with an independent implementation of
    // the published reference algorithms (Vigna's splitmix64.c and
    // xoshiro256plusplus.c). The seed-0 splitmix64 stream also matches the
    // widely published vector (e220a8397b1dcdaf, ...).

    #[test]
    fn splitmix64_known_answers() {
        let mut s = 0u64;
        let got: Vec<u64> = (0..5).map(|_| splitmix64(&mut s)).collect();
        assert_eq!(
            got,
            [
                0xe220a8397b1dcdaf,
                0x6e789e6aa1b965f4,
                0x06c45d188009454f,
                0xf88bb8a8724c81ec,
                0x1b39896a51a8749b,
            ]
        );
        let mut s = 42u64;
        let got: Vec<u64> = (0..3).map(|_| splitmix64(&mut s)).collect();
        assert_eq!(
            got,
            [0xbdd732262feb6e95, 0x28efe333b266f103, 0x47526757130f9f52]
        );
    }

    #[test]
    fn xoshiro256pp_known_answers_from_state() {
        // The reference implementation's stream from state [1, 2, 3, 4].
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x0000000002800001,
                0x0000000003800067,
                0x000cc00003800067,
                0x000cc201994400b2,
                0x8012a2019ac433cd,
                0x8a69978acdee33ba,
            ]
        );
    }

    #[test]
    fn xoshiro256pp_known_answers_from_u64_seed() {
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
                0x7eca04ebaf4a5eea,
                0x0543c37757f08d9a,
            ]
        );
        let mut rng = StdRng::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                0xd0764d4f4476689f,
                0x519e4174576f3791,
                0xfbe07cfb0c24ed8c,
                0xb37d9f600cd835b8
            ]
        );
    }

    #[test]
    fn same_seed_same_sequence_different_seed_different_sequence() {
        let seq = |seed: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let a = rng.random_range(10u64..17);
            assert!((10..17).contains(&a));
            let b = rng.random_range(10u64..=17);
            assert!((10..=17).contains(&b));
            let c = rng.random_range(0usize..3);
            assert!(c < 3);
            let d = rng.random_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&d));
            let e = rng.random_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&e));
            let f = rng.random_range(b'a'..=b'z');
            assert!(f.is_ascii_lowercase());
            let g = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&g));
        }
    }

    #[test]
    fn random_range_covers_every_value_of_a_small_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 7 values should appear: {seen:?}"
        );
    }

    #[test]
    fn random_range_single_value_and_full_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.random_range(5u64..6), 5);
        assert_eq!(rng.random_range(5u64..=5), 5);
        // The full-domain inclusive range must not panic or hang.
        let _ = rng.random_range(0u64..=u64::MAX);
        let _ = rng.random_range(i64::MIN..=i64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty sample range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3u64..3);
    }

    #[test]
    fn random_bool_edge_probabilities_and_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!(
            (2200..2800).contains(&hits),
            "p=0.25 over 10k draws hit {hits} times"
        );
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let base: Vec<u32> = (0..100).collect();
        let shuffle_with = |seed: u64| {
            let mut v = base.clone();
            v.shuffle(&mut StdRng::seed_from_u64(seed));
            v
        };
        let a = shuffle_with(9);
        assert_eq!(a, shuffle_with(9), "same seed must shuffle identically");
        assert_ne!(a, base, "100 elements virtually never shuffle to identity");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base, "shuffle must be a permutation");
        assert_ne!(shuffle_with(9), shuffle_with(10));
    }

    #[test]
    fn choose_is_uniform_ish_and_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [0usize, 1, 2, 3];
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[*items.choose(&mut rng).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "counts {counts:?}");
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_partial_chunks() {
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        StdRng::seed_from_u64(6).fill_bytes(&mut a);
        StdRng::seed_from_u64(6).fill_bytes(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, [0u8; 13]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_is_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }
}
