//! gray-profile: a virtual-time attribution profiler.
//!
//! A wall-clock profiler answers "where did the CPU go"; in this
//! workspace the scarce resource is *virtual* time — the nanoseconds the
//! simulated kernel charges a process for CPU bursts, disk transfers,
//! and sleeps. This module aggregates those charges into a hierarchical
//! where-did-virtual-time-go tree without perturbing them: the hooks
//! only *observe* deltas the kernel already computed, so enabling the
//! profiler cannot change a single clock, verdict, or digest (a tier-1
//! test pins exactly that).
//!
//! # Attribution path
//!
//! Each charge lands at a leaf addressed by three cooperating stacks:
//!
//! 1. the [`trace`](crate::trace) span stack (`plan:/f3`,
//!    `tenant:4`, …) — per simulated process under the event-driven
//!    executor thanks to `TraceCtx` swapping, per thread otherwise;
//! 2. this module's own operation stack, pushed by [`op_scope`] at
//!    kernel syscall entries (`sys_read`, `sys_probe_batch`, …) —
//!    kernel operations complete without suspending, so these frames
//!    are always balanced within one resume and need no swapping;
//! 3. the charge *kind* leaf: `cpu`, `disk`, or `sleep`.
//!
//! A full path reads like a flamegraph frame:
//! `sim;plan:/f3;sys_probe_batch;disk`. [`ProfileSnapshot::folded`]
//! emits the standard folded-stack format (`path space count`) that
//! flamegraph tooling consumes; [`ProfileSnapshot::render_tree`] prints
//! an indented tree with percentages for terminals.
//!
//! # Cost model
//!
//! Mirrors [`trace`](crate::trace): disabled, every hook is one relaxed
//! atomic load and a branch — no allocation, no lock (pinned by an
//! allocation-counting test). Enabled, a charge clones the span stack
//! and takes one mutex to bump the tree.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::trace;
use crate::trace::json_string;

/// Root frame every attribution path starts with.
pub const ROOT: &str = "sim";

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static OP_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregate at one leaf of the attribution tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeAgg {
    /// Virtual nanoseconds charged at this exact path.
    pub ns: u64,
    /// Number of charges that landed here.
    pub count: u64,
}

#[derive(Debug, Default)]
struct ProfilerState {
    total_ns: u64,
    nodes: BTreeMap<String, NodeAgg>,
    by_pid: BTreeMap<u64, u64>,
    by_lane: BTreeMap<u64, u64>,
    by_kind: BTreeMap<&'static str, u64>,
}

fn state() -> &'static Mutex<ProfilerState> {
    static STATE: OnceLock<Mutex<ProfilerState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(ProfilerState::default()))
}

fn lock_state() -> MutexGuard<'static, ProfilerState> {
    match state().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Whether profiling is enabled. One relaxed load — the entire cost of
/// every hook in a disabled run.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables profiling (state accumulates until [`reset`]).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disables profiling. Accumulated state survives until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Clears the accumulated tree.
pub fn reset() {
    *lock_state() = ProfilerState::default();
}

/// Enables profiling if the `GRAY_PROFILE` environment variable names a
/// path; returns that path so the caller can write
/// [`ProfileSnapshot::folded`] there on shutdown.
pub fn init_from_env() -> Option<String> {
    let path = std::env::var("GRAY_PROFILE").ok()?;
    if path.is_empty() {
        return None;
    }
    enable();
    Some(path)
}

/// Records a virtual-time charge of `ns` nanoseconds of `kind`
/// (`cpu`/`disk`/`sleep`) against process `pid`, attributed to the
/// current span + operation path. No-op (closure-free, allocation-free)
/// when profiling is disabled.
#[inline]
pub fn charge(pid: u64, kind: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    charge_slow(pid, kind, ns);
}

fn charge_slow(pid: u64, kind: &'static str, ns: u64) {
    let mut path = String::from(ROOT);
    for seg in trace::span_segments() {
        path.push(';');
        path.push_str(&seg);
    }
    OP_STACK.with(|s| {
        for op in s.borrow().iter() {
            path.push(';');
            path.push_str(op);
        }
    });
    path.push(';');
    path.push_str(kind);
    let lane = trace::current_lane();
    let mut st = lock_state();
    st.total_ns += ns;
    let agg = st.nodes.entry(path).or_default();
    agg.ns += ns;
    agg.count += 1;
    *st.by_pid.entry(pid).or_insert(0) += ns;
    *st.by_lane.entry(lane).or_insert(0) += ns;
    *st.by_kind.entry(kind).or_insert(0) += ns;
}

/// Pushes a named operation frame (a kernel syscall) onto this thread's
/// attribution stack; the guard pops it on drop. Free when disabled.
#[inline]
pub fn op_scope(name: &'static str) -> OpGuard {
    if !enabled() {
        return OpGuard { pushed: false };
    }
    OP_STACK.with(|s| s.borrow_mut().push(name));
    OpGuard { pushed: true }
}

/// Guard returned by [`op_scope`]; pops its frame when dropped.
pub struct OpGuard {
    pushed: bool,
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        if self.pushed {
            OP_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Snapshot of the accumulated attribution tree.
pub fn snapshot() -> ProfileSnapshot {
    let st = lock_state();
    ProfileSnapshot {
        total_ns: st.total_ns,
        nodes: st.nodes.clone(),
        by_pid: st.by_pid.clone(),
        by_lane: st.by_lane.clone(),
        by_kind: st
            .by_kind
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
    }
}

fn capture_lock() -> &'static Mutex<()> {
    static CAPTURE: OnceLock<Mutex<()>> = OnceLock::new();
    CAPTURE.get_or_init(|| Mutex::new(()))
}

/// Exclusive profiling session: serialises concurrent users (tests)
/// behind one lock, resets state, enables profiling, and disables it
/// when the guard drops (panic-safe). Call [`snapshot`] before dropping.
pub fn capture() -> CaptureGuard {
    let lock = match capture_lock().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *lock_state() = ProfilerState::default();
    ENABLED.store(true, Ordering::Relaxed);
    CaptureGuard { _lock: lock }
}

/// Guard returned by [`capture`]; ends the session on drop.
pub struct CaptureGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// An immutable where-did-virtual-time-go tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Sum of every charge, in virtual nanoseconds.
    pub total_ns: u64,
    /// Leaf aggregates keyed by `;`-joined attribution path.
    pub nodes: BTreeMap<String, NodeAgg>,
    /// Virtual nanoseconds charged per simulated process id.
    pub by_pid: BTreeMap<u64, u64>,
    /// Virtual nanoseconds charged per trace lane.
    pub by_lane: BTreeMap<u64, u64>,
    /// Virtual nanoseconds per charge kind (`cpu`/`disk`/`sleep`).
    pub by_kind: BTreeMap<String, u64>,
}

impl ProfileSnapshot {
    /// Folded-stack flamegraph export: one `path count` line per leaf,
    /// counts in virtual nanoseconds, sorted by path (deterministic).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, agg) in &self.nodes {
            out.push_str(path);
            out.push(' ');
            out.push_str(&agg.ns.to_string());
            out.push('\n');
        }
        out
    }

    /// FNV-1a fingerprint over the leaf paths, their charges, and the
    /// per-pid totals. Lanes are excluded: lane numbering depends on
    /// allocation order across the whole process, which other subsystems
    /// influence; everything folded here is virtual-time deterministic.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| h = (h ^ v).wrapping_mul(0x100_0000_01b3);
        for (path, agg) in &self.nodes {
            for b in path.bytes() {
                fold(b as u64);
            }
            fold(agg.ns);
            fold(agg.count);
        }
        for (&pid, &ns) in &self.by_pid {
            fold(pid);
            fold(ns);
        }
        h
    }

    /// Renders an indented tree with subtree totals, percentages of the
    /// grand total, and leaf charge counts. Children sort by descending
    /// subtree time (path name breaks ties), so the expensive branch is
    /// always the first line under its parent.
    pub fn render_tree(&self) -> String {
        #[derive(Default)]
        struct Tree {
            children: BTreeMap<String, Tree>,
            self_ns: u64,
            self_count: u64,
        }
        impl Tree {
            fn subtree_ns(&self) -> u64 {
                self.self_ns + self.children.values().map(Tree::subtree_ns).sum::<u64>()
            }
        }
        let mut root = Tree::default();
        for (path, agg) in &self.nodes {
            let mut node = &mut root;
            for seg in path.split(';') {
                node = node.children.entry(seg.to_string()).or_default();
            }
            node.self_ns += agg.ns;
            node.self_count += agg.count;
        }
        fn render(node: &Tree, name: &str, depth: usize, total: u64, out: &mut String) {
            let ns = node.subtree_ns();
            let pct = if total > 0 {
                ns as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:indent$}{name:<28} {ns:>14} ns {pct:>6.2}%",
                "",
                indent = depth * 2
            ));
            if node.self_count > 0 {
                out.push_str(&format!("  ({} charges)", node.self_count));
            }
            out.push('\n');
            let mut kids: Vec<(&String, &Tree)> = node.children.iter().collect();
            kids.sort_by(|a, b| b.1.subtree_ns().cmp(&a.1.subtree_ns()).then(a.0.cmp(b.0)));
            for (kid_name, kid) in kids {
                render(kid, kid_name, depth + 1, total, out);
            }
        }
        let mut out = String::new();
        let total = root.subtree_ns();
        let mut tops: Vec<(&String, &Tree)> = root.children.iter().collect();
        tops.sort_by(|a, b| b.1.subtree_ns().cmp(&a.1.subtree_ns()).then(a.0.cmp(b.0)));
        for (name, node) in tops {
            render(node, name, 0, total, &mut out);
        }
        out
    }

    /// Renders the snapshot as one JSON object (hand-rolled, key-sorted,
    /// deterministic): grand total, per-kind split, per-pid totals, and
    /// the leaf list.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"total_ns\":{}", self.total_ns);
        out.push_str(",\"by_kind\":{");
        for (i, (kind, ns)) in self.by_kind.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{ns}", json_string(kind)));
        }
        out.push_str("},\"by_pid\":{");
        for (i, (pid, ns)) in self.by_pid.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{pid}\":{ns}"));
        }
        out.push_str("},\"nodes\":[");
        for (i, (path, agg)) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"path\":{},\"ns\":{},\"count\":{}}}",
                json_string(path),
                agg.ns,
                agg.count
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_charge_is_inert() {
        let guard = capture();
        drop(guard); // definitely disabled now
        charge(0, "cpu", 1_000_000);
        let _op = op_scope("sys_read");
        assert!(
            OP_STACK.with(|s| s.borrow().is_empty()),
            "disabled op_scope must not push"
        );
    }

    #[test]
    fn charges_aggregate_under_span_and_op_frames() {
        let _guard = capture();
        {
            let _span = trace::span("plan", || "/f1".to_string());
            let _op = op_scope("sys_read");
            charge(3, "disk", 500);
            charge(3, "disk", 700);
        }
        {
            let _op = op_scope("sys_compute");
            charge(4, "cpu", 250);
        }
        let snap = snapshot();
        assert_eq!(snap.total_ns, 1450);
        let read = &snap.nodes["sim;plan:/f1;sys_read;disk"];
        assert_eq!((read.ns, read.count), (1200, 2));
        let compute = &snap.nodes["sim;sys_compute;cpu"];
        assert_eq!((compute.ns, compute.count), (250, 1));
        assert_eq!(snap.by_pid[&3], 1200);
        assert_eq!(snap.by_pid[&4], 250);
        assert_eq!(snap.by_kind["disk"], 1200);
        assert_eq!(snap.by_kind["cpu"], 250);
    }

    #[test]
    fn spans_push_when_only_profiler_is_enabled() {
        let _guard = capture();
        assert!(!trace::enabled(), "tracing itself stays off");
        let _span = trace::span("tenant", || "7".to_string());
        charge(0, "cpu", 10);
        let snap = snapshot();
        assert!(
            snap.nodes.contains_key("sim;tenant:7;cpu"),
            "span() must attribute for the profiler even with tracing off; got {:?}",
            snap.nodes.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn folded_tree_json_and_digest_are_deterministic() {
        let _guard = capture();
        {
            let _op = op_scope("sys_probe_batch");
            charge(0, "disk", 4000);
            charge(0, "cpu", 1000);
        }
        charge(1, "sleep", 2000);
        let a = snapshot();
        let folded = a.folded();
        assert!(folded.contains("sim;sys_probe_batch;disk 4000\n"));
        assert!(folded.contains("sim;sleep 2000\n"));

        let tree = a.render_tree();
        let disk_line = tree.lines().position(|l| l.contains("disk")).unwrap();
        let cpu_line = tree.lines().position(|l| l.contains("cpu")).unwrap();
        assert!(
            disk_line < cpu_line,
            "children sort by descending time:\n{tree}"
        );
        assert!(tree.contains("sim"), "root frame rendered:\n{tree}");

        let json = a.to_json();
        assert!(json.starts_with("{\"total_ns\":7000"));
        assert!(json.contains("\"by_kind\":{\"cpu\":1000,\"disk\":4000,\"sleep\":2000}"));

        // Re-run the identical session: identical snapshot and digest.
        drop(_guard);
        let _guard2 = capture();
        {
            let _op = op_scope("sys_probe_batch");
            charge(0, "disk", 4000);
            charge(0, "cpu", 1000);
        }
        charge(1, "sleep", 2000);
        let b = snapshot();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.folded(), b.folded());
        assert_ne!(a.digest(), ProfileSnapshot::default().digest());
    }

    #[test]
    fn op_guard_restores_on_early_toggle() {
        let _guard = capture();
        let op = op_scope("sys_write");
        disable();
        drop(op); // pushed while enabled → must still pop
        assert!(OP_STACK.with(|s| s.borrow().is_empty()));
        enable();
    }
}
