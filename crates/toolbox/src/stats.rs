//! Statistical routines for interpreting noisy measurements.
//!
//! The paper's ICLs never trust a single observation: probe times are noisy
//! (interrupts, scheduling, cache effects), so inferences are drawn from
//! means, variances, correlations, and rank statistics. This module provides
//! the operations that Section 5 calls out — simple statistics (mean,
//! standard deviation, median, maximum, minimum), correlations, linear
//! regression, exponential averaging, and the paired-sample sign test used
//! by MS Manners — all implemented so they can run *incrementally*, because
//! ICL data arrives over time and must be monitored continually.

/// Incrementally maintained summary statistics (Welford's algorithm).
///
/// `OnlineStats` is the workhorse of measurement interpretation: O(1) space,
/// numerically stable, and updatable one observation at a time so an ICL can
/// consult it between probes.
///
/// # Examples
///
/// ```
/// use gray_toolbox::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.stddev() - 2.138).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Creates an accumulator pre-filled from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The population variance, or 0 with fewer than one observation.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The sample variance (Bessel-corrected), or 0 with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// The smallest observation, or +inf if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The largest observation, or -inf if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

/// A batch summary with order statistics (median, percentiles).
///
/// Unlike [`OnlineStats`], this retains (a sorted copy of) the data, so it
/// also supports medians and arbitrary percentiles — the paper's toolbox
/// lists the median alongside the incremental statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    online: OnlineStats,
}

impl Summary {
    /// Builds a summary from observations. NaNs are discarded.
    pub fn new(xs: &[f64]) -> Self {
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
        let online = OnlineStats::from_slice(&sorted);
        Summary { sorted, online }
    }

    /// The number of (non-NaN) observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// The arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.online.mean()
    }

    /// The sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.online.stddev()
    }

    /// The minimum, or +inf if empty.
    pub fn min(&self) -> f64 {
        self.online.min()
    }

    /// The maximum, or -inf if empty.
    pub fn max(&self) -> f64 {
        self.online.max()
    }

    /// The median (linear interpolation between the two middle values).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// The `p`-th percentile (0..=100) by linear interpolation, or NaN if
    /// empty.
    pub fn percentile(&self, p: f64) -> f64 {
        percentile(&self.sorted, p)
    }

    /// The underlying sorted observations.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// The `p`-th percentile (0..=100) of an ascending-sorted slice, using
/// linear interpolation. Returns NaN for an empty slice.
///
/// # Panics
///
/// Does not panic; out-of-range `p` is clamped to [0, 100].
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns 0.0 when either series has zero variance or the series are
/// shorter than two points — for inference purposes "no signal" and
/// "uncorrelated" are treated the same.
///
/// # Examples
///
/// ```
/// use gray_toolbox::correlation;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [2.0, 4.0, 6.0, 8.0];
/// assert!((correlation(&xs, &ys) - 1.0).abs() < 1e-12);
/// ```
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs equal-length series");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Ordinary least-squares regression `y = slope * x + intercept`.
///
/// MS Manners uses linear regression over progress counters to estimate
/// uncontended performance; MAC's calibration path uses it to extrapolate
/// per-page costs. Returns `(slope, intercept)`; a zero-variance `x` yields
/// a horizontal line through the mean.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "regression needs equal-length series");
    let n = xs.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for i in 0..n {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    if sxx == 0.0 {
        return (0.0, my);
    }
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// Exponentially weighted moving average, as used by TCP's RTT estimator
/// and MS Manners' progress smoothing.
///
/// # Examples
///
/// ```
/// use gray_toolbox::Ewma;
///
/// let mut e = Ewma::new(0.5);
/// e.push(10.0);
/// e.push(20.0);
/// assert_eq!(e.value(), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an estimator with smoothing factor `alpha` in (0, 1]; larger
    /// alpha weights recent samples more.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside (0, 1].
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Adds an observation; the first observation seeds the average.
    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// The current smoothed value, or 0 if no observations were made.
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Whether any observation has been made.
    pub fn is_seeded(&self) -> bool {
        self.value.is_some()
    }
}

/// Outcome of a paired-sample sign test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignTest {
    /// Number of pairs where the second element exceeded the first.
    pub greater: usize,
    /// Number of pairs where the first element exceeded the second.
    pub less: usize,
    /// Number of tied pairs (excluded from the test).
    pub ties: usize,
    /// Two-sided p-value under the null hypothesis of no difference.
    pub p_value: f64,
}

impl SignTest {
    /// Whether the test rejects "no difference" at the given significance
    /// level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Paired-sample sign test: is `after` systematically different from
/// `before`? Used by MS Manners to detect contention-induced slowdowns
/// without assuming a noise distribution.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn paired_sign_test(before: &[f64], after: &[f64]) -> SignTest {
    assert_eq!(before.len(), after.len(), "sign test needs paired samples");
    let mut greater = 0usize;
    let mut less = 0usize;
    let mut ties = 0usize;
    for i in 0..before.len() {
        if after[i] > before[i] {
            greater += 1;
        } else if after[i] < before[i] {
            less += 1;
        } else {
            ties += 1;
        }
    }
    let n = greater + less;
    let p_value = if n == 0 {
        1.0
    } else {
        // Two-sided binomial tail: P(X <= min) + P(X >= max) for X ~ B(n, ½).
        let k = greater.min(less);
        let mut tail = 0.0;
        for i in 0..=k {
            tail += binomial_pmf_half(n, i);
        }
        (2.0 * tail).min(1.0)
    };
    SignTest {
        greater,
        less,
        ties,
        p_value,
    }
}

/// Outcome of a paired host-time comparison ([`paired_compare`] /
/// [`paired_host_compare`]).
///
/// Host time on a shared machine swings 2x between identical runs, which
/// is why `gray-bench --diff --strict` historically left it
/// informational. Pairing fixes the methodology instead of accepting the
/// noise: baseline and candidate are measured **interleaved in one
/// process** (A/B/B/A), so machine-wide drift hits both sides of every
/// pair roughly equally and cancels in the comparison. The decision is
/// the distribution-free paired sign test — not a raw wall-clock ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedHostReport {
    /// Pairs measured.
    pub rounds: usize,
    /// Pairs surviving outlier rejection (a pair is dropped whole when
    /// *either* side falls outside its series' acceptance interval).
    pub kept: usize,
    /// Median baseline time over kept pairs, in nanoseconds.
    pub baseline_median_ns: f64,
    /// Median candidate time over kept pairs, in nanoseconds.
    pub candidate_median_ns: f64,
    /// Median of per-pair `baseline / candidate` ratios — > 1 means the
    /// candidate is faster. Robust to drift because each ratio compares
    /// two adjacent-in-time measurements.
    pub speedup: f64,
    /// Sign test over kept pairs with the baseline as `before`:
    /// `less` counts pairs where the candidate was faster.
    pub sign: SignTest,
}

impl PairedHostReport {
    /// Whether the sign test says the candidate is faster at level
    /// `alpha` (conventionally 0.05).
    pub fn candidate_faster(&self, alpha: f64) -> bool {
        self.sign.less > self.sign.greater && self.sign.significant_at(alpha)
    }

    /// Whether the sign test says the candidate is *slower* at level
    /// `alpha`.
    pub fn candidate_slower(&self, alpha: f64) -> bool {
        self.sign.greater > self.sign.less && self.sign.significant_at(alpha)
    }
}

/// Decides a paired comparison from already-collected samples:
/// `baseline[i]` and `candidate[i]` must come from the same round of an
/// interleaved measurement. Outlier rejection drops *pairs*, never
/// individual samples, so the series stay aligned; if rejection would
/// leave fewer than two pairs, all pairs are kept instead.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn paired_compare(
    baseline: &[f64],
    candidate: &[f64],
    policy: crate::outlier::OutlierPolicy,
) -> PairedHostReport {
    assert_eq!(
        baseline.len(),
        candidate.len(),
        "paired comparison needs paired samples"
    );
    let rounds = baseline.len();
    let (blo, bhi) = crate::outlier::bounds(baseline, policy);
    let (clo, chi) = crate::outlier::bounds(candidate, policy);
    let mut keep: Vec<usize> = (0..rounds)
        .filter(|&i| {
            baseline[i] >= blo && baseline[i] <= bhi && candidate[i] >= clo && candidate[i] <= chi
        })
        .collect();
    if keep.len() < 2 {
        keep = (0..rounds).collect();
    }
    let kept_baseline: Vec<f64> = keep.iter().map(|&i| baseline[i]).collect();
    let kept_candidate: Vec<f64> = keep.iter().map(|&i| candidate[i]).collect();
    let ratios: Vec<f64> = keep
        .iter()
        .map(|&i| baseline[i] / candidate[i].max(f64::MIN_POSITIVE))
        .collect();
    PairedHostReport {
        rounds,
        kept: keep.len(),
        baseline_median_ns: Summary::new(&kept_baseline).median(),
        candidate_median_ns: Summary::new(&kept_candidate).median(),
        speedup: Summary::new(&ratios).median(),
        sign: paired_sign_test(&kept_baseline, &kept_candidate),
    }
}

/// Measures `baseline` and `candidate` interleaved within this process
/// for `rounds` pairs and decides with [`paired_compare`].
///
/// Each round times both closures back to back; the order alternates
/// every round (A/B, B/A, A/B, …) so a monotone machine-load drift
/// biases neither side. Both closures run once untimed as warm-up.
pub fn paired_host_compare(
    rounds: usize,
    mut baseline: impl FnMut(),
    mut candidate: impl FnMut(),
    policy: crate::outlier::OutlierPolicy,
) -> PairedHostReport {
    let time = |f: &mut dyn FnMut()| {
        let start = std::time::Instant::now();
        f();
        start.elapsed().as_nanos() as f64
    };
    baseline();
    candidate();
    let mut baseline_ns = Vec::with_capacity(rounds);
    let mut candidate_ns = Vec::with_capacity(rounds);
    for round in 0..rounds.max(1) {
        if round % 2 == 0 {
            baseline_ns.push(time(&mut baseline));
            candidate_ns.push(time(&mut candidate));
        } else {
            candidate_ns.push(time(&mut candidate));
            baseline_ns.push(time(&mut baseline));
        }
    }
    paired_compare(&baseline_ns, &candidate_ns, policy)
}

/// A histogram with power-of-two bucket boundaries, for latency
/// distributions whose interesting structure spans orders of magnitude
/// (cache hits in microseconds, disk misses in milliseconds).
///
/// Bucket `i` holds values whose bit length is `i` — i.e. values in
/// `[2^(i-1), 2^i)` — with bucket 0 reserved for zero. Recording is O(1)
/// and allocation-free, so the tracer can feed it on the probe path.
///
/// # Examples
///
/// ```
/// use gray_toolbox::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// for ns in [900u64, 1100, 1200, 950_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile_bound(50.0) <= 2048);
/// assert!(h.percentile_bound(100.0) >= 950_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Reconstructs a histogram from raw bucket counts (bucket `i`
    /// covers `[2^(i-1), 2^i)`, matching [`Log2Histogram::buckets`]) —
    /// the bridge from the metrics registry's atomic buckets back into
    /// percentile math. The count is the bucket sum.
    pub fn from_buckets(buckets: [u64; 65]) -> Self {
        let count = buckets.iter().sum();
        Log2Histogram { buckets, count }
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw bucket counts; bucket `i` covers `[2^(i-1), 2^i)`.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Upper bound (exclusive, as a value) of the bucket containing the
    /// `p`-th percentile, or 0 if empty. Coarse by construction — the
    /// answer is correct to within a factor of two.
    pub fn percentile_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i >= 64 { u64::MAX } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }

    /// Compact rendering of the non-empty buckets as
    /// `upper_bound:count` pairs, e.g. `2048:17 4096:3`.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let bound = if i >= 64 {
                    "max".to_string()
                } else {
                    format!("{}", 1u64 << i)
                };
                format!("{bound}:{n}")
            })
            .collect();
        parts.join(" ")
    }
}

/// P(X = k) for X ~ Binomial(n, 1/2), computed in log-space for stability.
fn binomial_pmf_half(n: usize, k: usize) -> f64 {
    // log C(n, k) via lgamma-free accumulation.
    let mut log_c = 0.0f64;
    for i in 0..k {
        log_c += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    (log_c - n as f64 * 2.0f64.ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = OnlineStats::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn online_stats_merge_equals_concat() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        let mut sa = OnlineStats::from_slice(&a);
        let sb = OnlineStats::from_slice(&b);
        sa.merge(&sb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let sc = OnlineStats::from_slice(&all);
        assert!((sa.mean() - sc.mean()).abs() < 1e-12);
        assert!((sa.variance() - sc.variance()).abs() < 1e-12);
        assert_eq!(sa.count(), sc.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::from_slice(&[1.0, 2.0]);
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn summary_median_even_and_odd() {
        assert_eq!(Summary::new(&[3.0, 1.0, 2.0]).median(), 2.0);
        assert_eq!(Summary::new(&[4.0, 1.0, 2.0, 3.0]).median(), 2.5);
    }

    #[test]
    fn summary_discards_nan() {
        let s = Summary::new(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn correlation_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [1.0, 2.0, 3.0, 4.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((correlation(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((correlation(&xs, &down) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&xs, &[5.0; 4]), 0.0);
    }

    #[test]
    fn regression_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        let (m, b) = linear_regression(&xs, &ys);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((b - 7.0).abs() < 1e-12);
    }

    #[test]
    fn regression_degenerate_x() {
        let (m, b) = linear_regression(&[2.0, 2.0], &[1.0, 3.0]);
        assert_eq!(m, 0.0);
        assert_eq!(b, 2.0);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.25);
        for _ in 0..200 {
            e.push(42.0);
        }
        assert!((e.value() - 42.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn sign_test_detects_shift() {
        let before = [1.0; 12];
        let after = [2.0; 12];
        let t = paired_sign_test(&before, &after);
        assert_eq!(t.greater, 12);
        assert!(t.p_value < 0.01);
        assert!(t.significant_at(0.05));
    }

    #[test]
    fn sign_test_null_is_insignificant() {
        let before = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let after = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0];
        let t = paired_sign_test(&before, &after);
        assert_eq!(t.greater, 3);
        assert_eq!(t.less, 3);
        assert!(t.p_value > 0.9);
    }

    #[test]
    fn sign_test_all_ties() {
        let t = paired_sign_test(&[1.0, 1.0], &[1.0, 1.0]);
        assert_eq!(t.ties, 2);
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn log2_histogram_buckets_by_bit_length() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 1); // zero
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[11], 1); // 1024
        assert!(h.summary().contains("2048:1"));
    }

    #[test]
    fn log2_histogram_percentile_bounds() {
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(1000); // bucket 10, bound 1024
        }
        h.record(1_000_000); // bucket 20, bound 1048576
        assert_eq!(h.percentile_bound(50.0), 1024);
        assert_eq!(h.percentile_bound(100.0), 1_048_576);
        assert_eq!(Log2Histogram::new().percentile_bound(50.0), 0);
    }

    #[test]
    fn log2_histogram_merge_adds_counts() {
        let mut a = Log2Histogram::new();
        a.record(10);
        let mut b = Log2Histogram::new();
        b.record(10);
        b.record(100_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[4], 2);
    }

    #[test]
    fn paired_compare_detects_consistent_speedup() {
        let baseline: Vec<f64> = (0..12).map(|i| 1000.0 + 10.0 * i as f64).collect();
        let candidate: Vec<f64> = baseline.iter().map(|b| b / 2.0).collect();
        let r = paired_compare(
            &baseline,
            &candidate,
            crate::outlier::OutlierPolicy::default(),
        );
        assert_eq!(r.rounds, 12);
        assert_eq!(r.kept, 12);
        assert!((r.speedup - 2.0).abs() < 1e-9);
        assert_eq!(r.sign.less, 12);
        assert!(r.candidate_faster(0.05));
        assert!(!r.candidate_slower(0.05));
    }

    #[test]
    fn paired_compare_drops_whole_pairs() {
        let mut baseline = vec![100.0; 10];
        let mut candidate = vec![50.0; 10];
        // One round took an interrupt on the candidate side only: the
        // *pair* must go, not just the candidate sample.
        candidate[4] = 1e9;
        let r = paired_compare(
            &baseline,
            &candidate,
            crate::outlier::OutlierPolicy::default(),
        );
        assert_eq!(r.kept, 9);
        assert!((r.speedup - 2.0).abs() < 1e-9);
        assert!(r.candidate_faster(0.05));
        // And symmetrically on the baseline side.
        baseline[7] = 1e9;
        candidate[4] = 50.0;
        let r = paired_compare(
            &baseline,
            &candidate,
            crate::outlier::OutlierPolicy::default(),
        );
        assert_eq!(r.kept, 9);
    }

    #[test]
    fn paired_compare_null_is_insignificant() {
        let baseline = [10.0, 20.0, 10.0, 20.0, 10.0, 20.0];
        let candidate = [20.0, 10.0, 20.0, 10.0, 20.0, 10.0];
        let r = paired_compare(
            &baseline,
            &candidate,
            crate::outlier::OutlierPolicy::default(),
        );
        assert!(!r.candidate_faster(0.05));
        assert!(!r.candidate_slower(0.05));
        assert!(r.sign.p_value > 0.9);
    }

    #[test]
    fn paired_compare_survives_degenerate_rejection() {
        // MAD of near-constant data is 0: naive rejection would discard
        // everything; the fallback keeps all pairs.
        let baseline = [100.0, 100.1, 99.9, 100.2];
        let candidate = [50.0, 50.1, 49.9, 50.2];
        let r = paired_compare(
            &baseline,
            &candidate,
            crate::outlier::OutlierPolicy::Mad { k: 5.0 },
        );
        assert!(r.kept >= 2);
        assert!(r.speedup > 1.5);
    }

    #[test]
    fn paired_compare_single_pair_is_undecided() {
        // One pair: rejection cannot apply (bounds are infinite below 3
        // samples), the medians are the samples themselves, and one vote
        // is never significant — the comparison degrades to "no verdict",
        // not to a spurious one.
        let r = paired_compare(&[100.0], &[50.0], crate::outlier::OutlierPolicy::default());
        assert_eq!((r.rounds, r.kept), (1, 1));
        assert_eq!(r.baseline_median_ns, 100.0);
        assert_eq!(r.candidate_median_ns, 50.0);
        assert!((r.speedup - 2.0).abs() < 1e-12);
        assert_eq!((r.sign.less, r.sign.greater), (1, 0));
        assert!(!r.candidate_faster(0.05), "one pair can never decide");
        assert!(r.sign.p_value >= 0.99);
    }

    #[test]
    fn paired_compare_all_ties_is_null() {
        let r = paired_compare(
            &[42.0; 6],
            &[42.0; 6],
            crate::outlier::OutlierPolicy::default(),
        );
        assert_eq!((r.rounds, r.kept), (6, 6));
        assert_eq!((r.sign.less, r.sign.greater, r.sign.ties), (0, 0, 6));
        assert_eq!(r.sign.p_value, 1.0);
        assert_eq!(r.speedup, 1.0);
        assert!(!r.candidate_faster(0.05) && !r.candidate_slower(0.05));
    }

    #[test]
    fn paired_compare_empty_input_is_inert() {
        let r = paired_compare(&[], &[], crate::outlier::OutlierPolicy::default());
        assert_eq!((r.rounds, r.kept), (0, 0));
        assert_eq!(r.sign.p_value, 1.0);
        assert!(r.baseline_median_ns.is_nan() && r.candidate_median_ns.is_nan());
        assert!(!r.candidate_faster(0.05) && !r.candidate_slower(0.05));
    }

    #[test]
    fn paired_host_compare_smoke() {
        let spin = |iters: u64| {
            move || {
                let mut acc = 0u64;
                for i in 0..iters {
                    acc = acc.wrapping_add(i).rotate_left(7);
                }
                std::hint::black_box(acc);
            }
        };
        let r = paired_host_compare(
            8,
            spin(20_000),
            spin(20_000),
            crate::outlier::OutlierPolicy::default(),
        );
        assert_eq!(r.rounds, 8);
        assert!(r.kept >= 2 && r.kept <= 8);
        assert!(r.baseline_median_ns > 0.0);
        assert!(r.candidate_median_ns > 0.0);
        assert!(r.speedup > 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 20;
        let total: f64 = (0..=n).map(|k| binomial_pmf_half(n, k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
