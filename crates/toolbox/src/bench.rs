//! A minimal in-tree timing harness for `cargo bench`.
//!
//! Replaces the external benchmark framework with a few hundred lines
//! that keep the same discipline — warmup, then repeated timed samples,
//! then robust summary statistics — while building offline. Each bench
//! target is a plain binary (`harness = false`) whose `main` constructs a
//! [`Harness`] and registers functions with
//! [`bench_function`](Harness::bench_function).
//!
//! Output is one human-readable line plus one JSON line per benchmark on
//! stdout, so results can be both read in a terminal and collected by
//! scripts:
//!
//! ```text
//! two_means_256            mean 12.3 µs  p50 12.1 µs  ±0.4 µs  (180 iters)
//! {"name":"two_means_256","iters":180,"mean_ns":12345.6,...}
//! ```
//!
//! Timing here is *host* time ([`std::time::Instant`]) and therefore the
//! one deliberately non-deterministic corner of the workspace: benches
//! measure the simulator's real cost, they never feed experiment results.

use crate::stats::{OnlineStats, Summary};
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; kept for call-site
/// compatibility — this harness times each routine call individually, so
/// the variants behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold per-iteration.
    SmallInput,
    /// Setup output is large; a batching harness would run fewer per batch.
    LargeInput,
}

enum Mode {
    /// Run iterations until the warmup budget elapses; record count + time.
    Warmup { budget: Duration },
    /// Run exactly `iters` iterations, recording per-iteration nanoseconds.
    Measure { iters: u64 },
}

/// The per-benchmark driver handed to registered closures; call
/// [`iter`](Bencher::iter) or [`iter_batched`](Bencher::iter_batched)
/// exactly once from inside the closure.
pub struct Bencher {
    mode: Mode,
    /// Iterations completed and wall time spent (warmup mode).
    warm_iters: u64,
    warm_elapsed: Duration,
    /// Per-iteration nanoseconds (measure mode).
    samples: Vec<f64>,
}

impl Bencher {
    fn new(mode: Mode) -> Self {
        Bencher {
            mode,
            warm_iters: 0,
            warm_elapsed: Duration::ZERO,
            samples: Vec::new(),
        }
    }

    /// Times `routine` once per iteration.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput)
    }

    /// Times `routine` once per iteration on a fresh untimed `setup()`
    /// value.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        match self.mode {
            Mode::Warmup { budget } => {
                let start = Instant::now();
                loop {
                    let input = setup();
                    let t0 = Instant::now();
                    std::hint::black_box(routine(input));
                    self.warm_elapsed += t0.elapsed();
                    self.warm_iters += 1;
                    if start.elapsed() >= budget {
                        break;
                    }
                }
            }
            Mode::Measure { iters } => {
                self.samples.reserve(iters as usize);
                for _ in 0..iters {
                    let input = setup();
                    let t0 = Instant::now();
                    std::hint::black_box(routine(input));
                    self.samples.push(t0.elapsed().as_nanos() as f64);
                }
            }
        }
    }
}

/// One benchmark's summarized result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (group-qualified, `group/name`).
    pub name: String,
    /// Timed iterations contributing to the summary.
    pub iters: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Sample standard deviation of per-iteration nanoseconds.
    pub stddev_ns: f64,
    /// Median nanoseconds per iteration.
    pub p50_ns: f64,
    /// Fastest iteration.
    pub min_ns: f64,
    /// Slowest iteration.
    pub max_ns: f64,
}

impl BenchResult {
    /// The result as one JSON object line (the same line printed after
    /// each human-readable summary), for collection by scripts and the
    /// `bench` runner's baseline file.
    pub fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"mean_ns\":{:.1},\"stddev_ns\":{:.1},\
             \"p50_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}}}",
            self.name,
            self.iters,
            self.mean_ns,
            self.stddev_ns,
            self.p50_ns,
            self.min_ns,
            self.max_ns
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark registry and runner: configure, register functions,
/// summaries print as each completes.
pub struct Harness {
    warm_up: Duration,
    measurement: Duration,
    /// Lower bound on timed iterations (even if over the time budget).
    min_iters: u64,
    /// Upper bound on timed iterations (memory for per-iter samples).
    max_iters: u64,
    /// Substring filter from the command line; empty runs everything.
    filter: String,
    /// Smoke mode: one warmup and one timed iteration per benchmark,
    /// overriding the configured budgets (see [`Harness::smoke`]).
    smoke: bool,
    group: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness with default budgets (500 ms warmup, 2 s measurement),
    /// honoring a substring filter and ignoring harness flags (`--bench`)
    /// from the command line. A `--smoke` flag anywhere in the arguments
    /// enables [`smoke`](Harness::smoke) mode, so pass-through CI
    /// invocations (`cargo bench -- --smoke`) get smoke behavior without
    /// each bench target parsing flags itself.
    pub fn new() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .unwrap_or_default();
        Harness {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            min_iters: 10,
            max_iters: 1_000_000,
            filter,
            smoke: std::env::args().skip(1).any(|a| a == "--smoke"),
            group: None,
            results: Vec::new(),
        }
    }

    /// Smoke mode: one warmup iteration and one timed iteration per
    /// benchmark — enough to prove every bench still runs (CI), useless
    /// for timing. Overrides the time-budget and iteration-count
    /// configuration at run time, so it survives later builder calls.
    pub fn smoke(mut self) -> Self {
        self.smoke = true;
        self
    }

    /// Sets the warmup budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the minimum number of timed iterations.
    pub fn min_iters(mut self, n: u64) -> Self {
        self.min_iters = n.max(1);
        self.max_iters = self.max_iters.max(self.min_iters);
        self
    }

    /// Sets the maximum number of timed iterations (bounds sample memory
    /// and caps smoke runs).
    pub fn max_iters(mut self, n: u64) -> Self {
        self.max_iters = n.max(1);
        self.min_iters = self.min_iters.min(self.max_iters);
        self
    }

    /// Prefixes subsequent benchmark names with `name/` until
    /// [`finish_group`](Harness::finish_group).
    pub fn group(&mut self, name: &str) -> &mut Self {
        self.group = Some(name.to_string());
        self
    }

    /// Ends the current group prefix.
    pub fn finish_group(&mut self) -> &mut Self {
        self.group = None;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = match &self.group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        };
        if !self.filter.is_empty() && !full.contains(&self.filter) {
            return self;
        }
        // Smoke: one warmup pass (a zero budget still runs exactly one
        // iteration — the warmup loop is do-while) and one timed pass.
        let (warm_budget, measurement, min_iters, max_iters) = if self.smoke {
            (Duration::ZERO, Duration::ZERO, 1, 1)
        } else {
            (
                self.warm_up,
                self.measurement,
                self.min_iters,
                self.max_iters,
            )
        };

        // Warmup: spend the budget and estimate per-iteration cost.
        let mut warm = Bencher::new(Mode::Warmup {
            budget: warm_budget,
        });
        f(&mut warm);
        let per_iter = warm.warm_elapsed.as_nanos() as f64 / warm.warm_iters.max(1) as f64;

        // Size the measurement run to the time budget.
        let budget_ns = measurement.as_nanos() as f64;
        let iters = ((budget_ns / per_iter.max(1.0)) as u64).clamp(min_iters, max_iters);

        let mut meas = Bencher::new(Mode::Measure { iters });
        f(&mut meas);
        assert!(
            !meas.samples.is_empty(),
            "benchmark `{full}` never called Bencher::iter"
        );

        let stats = OnlineStats::from_slice(&meas.samples);
        let summary = Summary::new(&meas.samples);
        let result = BenchResult {
            name: full,
            iters: stats.count(),
            mean_ns: stats.mean(),
            stddev_ns: stats.stddev(),
            p50_ns: summary.median(),
            min_ns: summary.min(),
            max_ns: summary.max(),
        };
        println!(
            "{:<40} mean {:>10}  p50 {:>10}  ±{}  ({} iters)",
            result.name,
            fmt_ns(result.mean_ns),
            fmt_ns(result.p50_ns),
            fmt_ns(result.stddev_ns),
            result.iters
        );
        println!("{}", result.json());
        self.results.push(result);
        self
    }

    /// All results so far (for programmatic use in tests).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_harness() -> Harness {
        let mut h = Harness::new()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        h.filter = String::new(); // ignore the libtest filter argv
        h
    }

    #[test]
    fn measures_and_summarizes() {
        let mut h = fast_harness();
        h.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()))
        });
        let r = &h.results()[0];
        assert_eq!(r.name, "spin");
        assert!(r.iters >= 10);
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.p50_ns && r.p50_ns <= r.max_ns);
    }

    #[test]
    fn batched_setup_is_not_counted_in_iterations_result() {
        let mut h = fast_harness();
        let mut setups = 0u64;
        h.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 64]
                },
                |v| std::hint::black_box(v.iter().map(|&x| x as u64).sum::<u64>()),
                BatchSize::SmallInput,
            )
        });
        let r = &h.results()[0];
        // One setup per warmup + measured iteration; at least the measured
        // count must have happened.
        assert!(setups >= r.iters);
    }

    #[test]
    fn group_prefixes_names() {
        let mut h = fast_harness();
        h.group("paper");
        h.bench_function("t1", |b| b.iter(|| std::hint::black_box(1 + 1)));
        h.finish_group();
        assert_eq!(h.results()[0].name, "paper/t1");
    }

    #[test]
    fn smoke_mode_runs_exactly_one_warmup_and_one_timed_iteration() {
        // smoke() must win even over later builder calls (the figures
        // bench sets min_iters after construction).
        let mut h = fast_harness().smoke().min_iters(50);
        h.filter = String::new();
        let mut calls = 0u64;
        h.bench_function("one_shot", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        let r = &h.results()[0];
        assert_eq!(r.iters, 1);
        assert_eq!(calls, 2, "one warmup iteration plus one timed iteration");
    }

    #[test]
    fn max_iters_caps_the_measured_run() {
        let mut h = fast_harness().min_iters(1).max_iters(3);
        h.filter = String::new();
        h.bench_function("capped", |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert!(h.results()[0].iters <= 3);
    }

    #[test]
    fn json_line_is_well_formed() {
        let r = BenchResult {
            name: "x".into(),
            iters: 3,
            mean_ns: 1.5,
            stddev_ns: 0.5,
            p50_ns: 1.0,
            min_ns: 1.0,
            max_ns: 2.0,
        };
        let j = r.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\":\"x\""));
        assert!(j.contains("\"iters\":3"));
    }
}
