//! Outlier rejection for noisy timing data.
//!
//! Probe measurements are polluted by rare, large positive excursions
//! (interrupts, daemon wakeups, scheduler preemptions). The paper's toolbox
//! lists "discarding outliers" among the common data manipulations; this
//! module provides the two standard robust policies plus the median absolute
//! deviation (MAD) estimator they build on.

use crate::stats::percentile;

/// How to decide that an observation is an outlier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutlierPolicy {
    /// Tukey's fences: discard points outside
    /// `[Q1 - k·IQR, Q3 + k·IQR]`. The conventional `k` is 1.5.
    Iqr {
        /// Fence multiplier (1.5 = standard, 3.0 = "far out").
        k: f64,
    },
    /// Discard points whose distance from the median exceeds
    /// `k` scaled MADs (`k` around 3 to 5 for timing data).
    Mad {
        /// MAD multiplier.
        k: f64,
    },
}

impl Default for OutlierPolicy {
    fn default() -> Self {
        OutlierPolicy::Mad { k: 5.0 }
    }
}

/// Median absolute deviation, scaled by 1.4826 so it estimates the standard
/// deviation under Gaussian noise.
///
/// Returns 0.0 for an empty slice.
pub fn mad(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("mad rejects NaN"));
    let med = percentile(&sorted, 50.0);
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - med).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).expect("deviations are not NaN"));
    1.4826 * percentile(&dev, 50.0)
}

/// Returns the observations that survive the outlier policy, preserving
/// input order.
///
/// With a degenerate spread estimate (MAD or IQR of zero — e.g. when most
/// observations are identical), only exact duplicates of the median survive
/// under [`OutlierPolicy::Mad`]; under [`OutlierPolicy::Iqr`] the quartile
/// interval itself survives. Timing data essentially never has zero spread,
/// but the behavior is deterministic either way.
///
/// # Examples
///
/// ```
/// use gray_toolbox::{discard_outliers, OutlierPolicy};
///
/// let mut times = vec![10.0, 11.0, 9.0, 10.5, 9.5];
/// times.push(5000.0); // an interrupt hit this probe
/// let kept = discard_outliers(&times, OutlierPolicy::default());
/// assert_eq!(kept.len(), 5);
/// assert!(!kept.contains(&5000.0));
/// ```
pub fn discard_outliers(data: &[f64], policy: OutlierPolicy) -> Vec<f64> {
    if data.len() < 3 {
        return data.to_vec();
    }
    let (lo, hi) = bounds(data, policy);
    data.iter()
        .copied()
        .filter(|&x| x >= lo && x <= hi)
        .collect()
}

/// The inclusive `[lo, hi]` acceptance interval the policy draws around
/// `data`. Exposed so *paired* measurements can test each series against
/// its own interval without re-indexing the survivors (filtering the two
/// series independently would misalign the pairs).
///
/// Fewer than 3 observations yield `(-inf, +inf)` — everything survives,
/// matching [`discard_outliers`]' small-sample pass-through.
pub fn bounds(data: &[f64], policy: OutlierPolicy) -> (f64, f64) {
    if data.len() < 3 {
        return (f64::NEG_INFINITY, f64::INFINITY);
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("outlier filter rejects NaN"));
    match policy {
        OutlierPolicy::Iqr { k } => {
            let q1 = percentile(&sorted, 25.0);
            let q3 = percentile(&sorted, 75.0);
            let iqr = q3 - q1;
            (q1 - k * iqr, q3 + k * iqr)
        }
        OutlierPolicy::Mad { k } => {
            let med = percentile(&sorted, 50.0);
            let spread = mad(&sorted);
            (med - k * spread, med + k * spread)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mad_of_constant_data_is_zero() {
        assert_eq!(mad(&[5.0; 10]), 0.0);
    }

    #[test]
    fn mad_estimates_gaussian_sigma() {
        // Symmetric data around 0 with known quartiles.
        let data: Vec<f64> = (-50..=50).map(|i| i as f64).collect();
        let m = mad(&data);
        // MAD of uniform[-50,50] is 25 * 1.4826.
        assert!((m - 25.0 * 1.4826).abs() < 1e-9);
    }

    #[test]
    fn iqr_policy_keeps_bulk() {
        let mut data: Vec<f64> = (0..20).map(|i| 10.0 + i as f64 * 0.1).collect();
        data.push(10_000.0);
        let kept = discard_outliers(&data, OutlierPolicy::Iqr { k: 1.5 });
        assert_eq!(kept.len(), 20);
    }

    #[test]
    fn small_samples_pass_through() {
        let data = [1.0, 100.0];
        assert_eq!(discard_outliers(&data, OutlierPolicy::default()), data);
    }

    #[test]
    fn order_is_preserved() {
        let data = [3.0, 1.0, 2.0, 999.0, 2.5];
        let kept = discard_outliers(&data, OutlierPolicy::Mad { k: 5.0 });
        assert_eq!(kept, vec![3.0, 1.0, 2.0, 2.5]);
    }

    #[test]
    fn negative_outliers_are_discarded_too() {
        let data = [10.0, 10.1, 9.9, 10.2, 9.8, -500.0];
        let kept = discard_outliers(&data, OutlierPolicy::default());
        assert!(!kept.contains(&-500.0));
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn mad_of_empty_is_zero() {
        assert_eq!(mad(&[]), 0.0);
    }

    #[test]
    fn bounds_of_small_samples_are_infinite() {
        // Below 3 observations no spread estimate exists; the interval is
        // all-accepting, matching discard_outliers' pass-through.
        for data in [&[][..], &[5.0][..], &[1.0, 100.0][..]] {
            for policy in [OutlierPolicy::default(), OutlierPolicy::Iqr { k: 1.5 }] {
                let (lo, hi) = bounds(data, policy);
                assert_eq!(lo, f64::NEG_INFINITY);
                assert_eq!(hi, f64::INFINITY);
            }
        }
    }

    #[test]
    fn bounds_of_constant_data_collapse_to_the_point() {
        // MAD and IQR are both 0: the acceptance interval degenerates to
        // the single observed value, and exact duplicates all survive.
        let data = [7.0; 8];
        for policy in [OutlierPolicy::Mad { k: 5.0 }, OutlierPolicy::Iqr { k: 1.5 }] {
            assert_eq!(bounds(&data, policy), (7.0, 7.0));
            assert_eq!(discard_outliers(&data, policy), data);
        }
    }

    #[test]
    fn bounds_agree_with_discard_outliers() {
        // bounds() exists so paired measurements can re-apply the exact
        // interval discard_outliers uses; the two must never drift apart.
        let data = [10.0, 10.4, 9.8, 10.2, 9.9, 640.0, 10.1];
        let policy = OutlierPolicy::default();
        let (lo, hi) = bounds(&data, policy);
        let refiltered: Vec<f64> = data
            .iter()
            .copied()
            .filter(|x| (lo..=hi).contains(x))
            .collect();
        let kept = discard_outliers(&data, policy);
        assert_eq!(kept, refiltered);
        assert!(!kept.contains(&640.0));
    }
}
