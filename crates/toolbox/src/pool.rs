//! A zero-dependency scoped worker pool for fanning *independent*
//! deterministic jobs across host cores.
//!
//! The scenario matrix runs dozens of self-contained simulations; each
//! cell is seeded, shares no mutable state with its siblings, and
//! produces a value addressed by its input index. That shape makes host
//! parallelism free of determinism hazards: the pool hands `(index,
//! item)` jobs to workers over a channel work queue, workers write
//! results into index-addressed slots, and the output vector is returned
//! in **input order** — so the result is bit-identical for 1 worker or
//! N, no matter how the OS interleaves them. Only wall-clock time
//! changes with the worker count.
//!
//! A panicking job is contained by `catch_unwind` and surfaces as a
//! structured per-job [`JobPanic`] in that job's slot; sibling jobs and
//! the pool itself are unaffected (no poisoned queue, no lost results).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};

/// One job died by panic. Carries the job's input index so callers can
/// report *which* cell failed while the rest of the grid stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the panicking job in the input vector.
    pub index: usize,
    /// The panic payload rendered to text (`&str`/`String` payloads
    /// verbatim, anything else a placeholder).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Parses a `GRAY_JOBS`-style override: a positive integer, or `None`
/// for anything absent or malformed (falling back to the host's
/// parallelism is safer than dying over a typo).
fn parse_jobs(var: Option<String>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// A scoped worker pool of `std::thread`s fed by a channel work queue.
///
/// The pool is just a worker count; threads are spawned per [`Pool::map`]
/// call inside a `std::thread::scope`, so borrowed job closures work and
/// nothing outlives the call.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Self {
        Pool {
            workers: workers.max(1),
        }
    }

    /// Worker count from the `GRAY_JOBS` environment variable, or the
    /// host's available parallelism when unset/malformed.
    pub fn from_env() -> Self {
        let workers = parse_jobs(std::env::var("GRAY_JOBS").ok()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Pool::with_workers(workers)
    }

    /// The worker count this pool fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(index, item)` for every item and returns the outcomes in
    /// **input order**, regardless of worker count or OS scheduling. A
    /// job that panics yields `Err(JobPanic)` in its own slot; all other
    /// jobs still run and return.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<Result<R, JobPanic>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let run = |idx: usize, item: T| {
            catch_unwind(AssertUnwindSafe(|| f(idx, item))).map_err(|payload| JobPanic {
                index: idx,
                message: panic_message(payload.as_ref()),
            })
        };
        let n = items.len();
        if self.workers == 1 || n <= 1 {
            // Serial fast path: same `catch_unwind` per job, no threads.
            return items
                .into_iter()
                .enumerate()
                .map(|(idx, item)| run(idx, item))
                .collect();
        }
        let slots: Vec<Mutex<Option<Result<R, JobPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for job in items.into_iter().enumerate() {
            tx.send(job).expect("receiver is alive");
        }
        drop(tx);
        let queue = Mutex::new(rx);
        std::thread::scope(|scope| {
            let (queue, slots, run) = (&queue, &slots, &run);
            for _ in 0..self.workers.min(n) {
                scope.spawn(move || loop {
                    // Hold the queue lock only to dequeue; the job runs
                    // unlocked so workers genuinely overlap.
                    let job = queue.lock().unwrap_or_else(|e| e.into_inner()).try_recv();
                    let Ok((idx, item)) = job else { break };
                    let outcome = run(idx, item);
                    *slots[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every queued job ran")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        for workers in [1, 2, 8] {
            let pool = Pool::with_workers(workers);
            let out = pool.map((0..32).collect(), |idx, item: u64| {
                assert_eq!(idx as u64, item);
                item * item
            });
            let values: Vec<u64> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(
                values,
                (0..32).map(|i| i * i).collect::<Vec<u64>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let run = |workers| {
            Pool::with_workers(workers).map((0..100u64).collect(), |_idx, item| {
                item.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
            })
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }

    #[test]
    fn panicking_job_is_contained() {
        for workers in [1, 4] {
            let pool = Pool::with_workers(workers);
            let out = pool.map((0..8).collect(), |_idx, item: usize| {
                if item == 3 {
                    panic!("cell {item} exploded");
                }
                item + 100
            });
            for (i, r) in out.iter().enumerate() {
                if i == 3 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.index, 3, "{workers} workers");
                    assert!(err.message.contains("cell 3 exploded"), "{}", err.message);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i + 100, "{workers} workers");
                }
            }
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out = Pool::with_workers(4).map(Vec::<u8>::new(), |_idx, b| b);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_parse_and_default() {
        assert_eq!(parse_jobs(Some("4".to_string())), Some(4));
        assert_eq!(parse_jobs(Some(" 2 ".to_string())), Some(2));
        assert_eq!(parse_jobs(Some("0".to_string())), None);
        assert_eq!(parse_jobs(Some("lots".to_string())), None);
        assert_eq!(parse_jobs(None), None);
        assert!(Pool::from_env().workers() >= 1);
        assert_eq!(Pool::with_workers(0).workers(), 1);
    }
}
