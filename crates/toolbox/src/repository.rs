//! The shared microbenchmark parameter repository.
//!
//! Section 5: "all of our microbenchmarks report performance numbers (e.g.,
//! expected disk seek time, expected disk bandwidth, time for the OS to
//! allocate and zero a page, time to access a page in memory, time to access
//! a page on disk) in a common format kept in persistent storage; each
//! microbenchmark then only needs to be run once". This module is that
//! common format: a flat, human-readable `key = value` file with typed
//! accessors.
//!
//! The format is deliberately trivial (one `key = value` per line, `#`
//! comments) so that it stays greppable and editable, and so the toolbox
//! needs no serialization dependency beyond `std`.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::time::Duration;

/// Well-known repository keys, shared between the microbenchmarks that
/// write them and the ICLs that read them.
pub mod keys {
    /// Expected disk seek time, in nanoseconds.
    pub const DISK_SEEK_NS: &str = "disk.seek_ns";
    /// Expected sequential disk bandwidth, in bytes per second.
    pub const DISK_BANDWIDTH_BPS: &str = "disk.bandwidth_bps";
    /// Time to read one page that is resident in the file cache, ns.
    pub const PAGE_CACHED_READ_NS: &str = "cache.page_hit_ns";
    /// Time to read one page from disk through the file cache, ns.
    pub const PAGE_UNCACHED_READ_NS: &str = "cache.page_miss_ns";
    /// Time for the OS to allocate and zero a fresh memory page, ns.
    pub const PAGE_ALLOC_ZERO_NS: &str = "mem.page_alloc_zero_ns";
    /// Time to touch a resident memory page, ns.
    pub const PAGE_TOUCH_NS: &str = "mem.page_touch_ns";
    /// Time to fault a memory page in from swap, ns.
    pub const PAGE_SWAP_IN_NS: &str = "mem.page_swap_in_ns";
    /// Access unit delivering near-peak sequential disk bandwidth, bytes.
    pub const ACCESS_UNIT_BYTES: &str = "fccd.access_unit_bytes";
    /// System page size, bytes.
    pub const PAGE_SIZE_BYTES: &str = "os.page_size_bytes";
    /// Pages per probe sub-batch: the smallest batch whose per-probe
    /// dispatch cost is within 10% of the best measured amortization.
    /// Larger batches buy nothing and cost scheduling interleaving.
    pub const SCHED_SUB_BATCH_PAGES: &str = "sched.sub_batch_pages";
    /// Probe-plan concurrency cap: the largest number of concurrent plans
    /// whose makespan still improved measurably over the next-lower level.
    pub const SCHED_CONCURRENCY_CAP: &str = "sched.concurrency_cap";
    /// Daemon inference-cache entry time-to-live, ns of backend time.
    pub const GBD_CACHE_TTL: &str = "gbd.cache_ttl";
    /// Most tenants the daemon will register.
    pub const GBD_MAX_TENANTS: &str = "gbd.max_tenants";
    /// Most probe-needing queries the daemon admits per serve tick (the
    /// AIMD recovery ceiling; the live budget moves below it).
    pub const GBD_ADMISSION_BUDGET: &str = "gbd.admission_budget";
    /// Most entries the daemon's inference cache holds; the oldest-
    /// stamped entries are evicted when an insert would exceed it.
    pub const GBD_CACHE_CAPACITY: &str = "gbd.cache_capacity";
}

/// Errors produced by repository operations.
#[derive(Debug)]
pub enum RepositoryError {
    /// Filesystem error while loading or saving.
    Io(io::Error),
    /// A line did not parse as `key = value`.
    Malformed {
        /// 1-based line number of the malformed line.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A value existed but did not parse as the requested type.
    BadValue {
        /// The key whose value failed to parse.
        key: String,
        /// The stored raw text.
        value: String,
    },
}

impl fmt::Display for RepositoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepositoryError::Io(e) => write!(f, "repository I/O error: {e}"),
            RepositoryError::Malformed { line, text } => {
                write!(f, "malformed repository line {line}: {text:?}")
            }
            RepositoryError::BadValue { key, value } => {
                write!(
                    f,
                    "repository value for {key:?} is not parseable: {value:?}"
                )
            }
        }
    }
}

impl std::error::Error for RepositoryError {}

impl From<io::Error> for RepositoryError {
    fn from(e: io::Error) -> Self {
        RepositoryError::Io(e)
    }
}

/// A persistent map of measured system parameters.
///
/// # Examples
///
/// ```
/// use gray_toolbox::{ParamRepository, repository::keys};
/// use gray_toolbox::GrayDuration;
///
/// let mut repo = ParamRepository::in_memory();
/// repo.set_duration(keys::DISK_SEEK_NS, GrayDuration::from_millis(5));
/// assert_eq!(
///     repo.get_duration(keys::DISK_SEEK_NS).unwrap(),
///     Some(GrayDuration::from_millis(5)),
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamRepository {
    entries: BTreeMap<String, String>,
    path: Option<PathBuf>,
}

impl ParamRepository {
    /// Creates an empty repository with no backing file.
    pub fn in_memory() -> Self {
        ParamRepository::default()
    }

    /// Loads a repository from `path`; a missing file yields an empty
    /// repository bound to that path (so the first `save` creates it).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, RepositoryError> {
        let path = path.as_ref().to_path_buf();
        let mut repo = ParamRepository {
            entries: BTreeMap::new(),
            path: Some(path.clone()),
        };
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(repo),
            Err(e) => return Err(e.into()),
        };
        repo.parse(&text)?;
        Ok(repo)
    }

    /// Parses repository text into this repository, replacing duplicates.
    fn parse(&mut self, text: &str) -> Result<(), RepositoryError> {
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(RepositoryError::Malformed {
                    line: idx + 1,
                    text: raw.to_string(),
                });
            };
            self.entries
                .insert(key.trim().to_string(), value.trim().to_string());
        }
        Ok(())
    }

    /// Serializes the repository to its on-disk format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# gray-toolbox parameter repository\n");
        for (k, v) in &self.entries {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(v);
            out.push('\n');
        }
        out
    }

    /// Writes the repository back to the path it was loaded from.
    ///
    /// Returns an error if the repository was created with
    /// [`ParamRepository::in_memory`].
    pub fn save(&self) -> Result<(), RepositoryError> {
        let Some(path) = &self.path else {
            return Err(RepositoryError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "in-memory repository has no backing file",
            )));
        };
        self.save_to(path)
    }

    /// Writes the repository to an explicit path (atomically, via a
    /// temporary sibling file).
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), RepositoryError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_text())?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Raw string lookup.
    pub fn get_raw(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Stores a raw string value.
    pub fn set_raw(&mut self, key: &str, value: impl fmt::Display) {
        self.entries.insert(key.to_string(), value.to_string());
    }

    /// Removes a key, returning whether it was present.
    pub fn remove(&mut self, key: &str) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Typed lookup of an `f64` parameter.
    pub fn get_f64(&self, key: &str) -> Result<Option<f64>, RepositoryError> {
        self.typed(key, str::parse::<f64>)
    }

    /// Typed lookup of a `u64` parameter.
    pub fn get_u64(&self, key: &str) -> Result<Option<u64>, RepositoryError> {
        self.typed(key, str::parse::<u64>)
    }

    /// Typed lookup of a duration stored as nanoseconds.
    pub fn get_duration(&self, key: &str) -> Result<Option<Duration>, RepositoryError> {
        Ok(self.get_u64(key)?.map(Duration::from_nanos))
    }

    /// Stores a duration as nanoseconds.
    pub fn set_duration(&mut self, key: &str, value: Duration) {
        self.set_raw(key, value.as_nanos());
    }

    /// The number of stored parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, raw value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    fn typed<T, E>(
        &self,
        key: &str,
        parse: impl Fn(&str) -> Result<T, E>,
    ) -> Result<Option<T>, RepositoryError> {
        match self.entries.get(key) {
            None => {
                // A miss is legal — every caller has a built-in default —
                // but it means the caller runs uncalibrated, which used to
                // be invisible. Leave a trace event (and, in debug builds,
                // one stderr note per key) so stale-default reads show up.
                crate::trace::emit_with(|| crate::trace::TraceEvent::RepositoryMiss {
                    key: key.to_string(),
                });
                report_miss_once(key);
                Ok(None)
            }
            Some(raw) => parse(raw).map(Some).map_err(|_| RepositoryError::BadValue {
                key: key.to_string(),
                value: raw.clone(),
            }),
        }
    }
}

/// In debug builds, prints one note per missing key per process. Release
/// builds stay silent (the trace event still fires when tracing is on).
fn report_miss_once(key: &str) {
    if !cfg!(debug_assertions) {
        return;
    }
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static REPORTED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    let reported = REPORTED.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut set = match reported.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if set.insert(key.to_string()) {
        eprintln!(
            "gray-toolbox: repository key `{key}` read before calibration \
             wrote it; caller falls back to its built-in default"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let mut repo = ParamRepository::in_memory();
        repo.set_raw(keys::DISK_SEEK_NS, 5_300_000u64);
        repo.set_raw("custom.note", "hello world");
        let text = repo.to_text();
        let mut reloaded = ParamRepository::in_memory();
        reloaded.parse(&text).unwrap();
        assert_eq!(
            reloaded.get_u64(keys::DISK_SEEK_NS).unwrap(),
            Some(5_300_000)
        );
        assert_eq!(reloaded.get_raw("custom.note"), Some("hello world"));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let mut repo = ParamRepository::in_memory();
        repo.parse("# comment\n\n a = 1 \n").unwrap();
        assert_eq!(repo.get_u64("a").unwrap(), Some(1));
    }

    #[test]
    fn malformed_line_is_reported_with_position() {
        let mut repo = ParamRepository::in_memory();
        let err = repo.parse("a = 1\nbogus line\n").unwrap_err();
        match err {
            RepositoryError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn bad_value_is_a_typed_error() {
        let mut repo = ParamRepository::in_memory();
        repo.set_raw("x", "not a number");
        assert!(repo.get_u64("x").is_err());
        assert_eq!(repo.get_raw("x"), Some("not a number"));
    }

    #[test]
    fn missing_key_is_none_not_error() {
        let repo = ParamRepository::in_memory();
        assert_eq!(repo.get_f64("nope").unwrap(), None);
    }

    #[test]
    fn missing_key_emits_trace_event() {
        use crate::trace::{self, TraceEvent};
        let guard = trace::capture();
        let lane = guard.lane();
        let repo = ParamRepository::in_memory();
        assert_eq!(repo.get_u64("fccd.uncalibrated_key").unwrap(), None);
        let misses: Vec<String> = trace::drain()
            .into_iter()
            .filter(|r| r.lane == lane)
            .filter_map(|r| match r.event {
                TraceEvent::RepositoryMiss { key } => Some(key),
                _ => None,
            })
            .collect();
        assert_eq!(misses, vec!["fccd.uncalibrated_key".to_string()]);
    }

    #[test]
    fn durations_round_trip() {
        let mut repo = ParamRepository::in_memory();
        repo.set_duration("d", Duration::from_micros(7));
        assert_eq!(
            repo.get_duration("d").unwrap(),
            Some(Duration::from_micros(7))
        );
    }

    #[test]
    fn save_and_load_through_disk() {
        let dir = std::env::temp_dir().join(format!("graytb-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("params.repo");
        let mut repo = ParamRepository::load(&path).unwrap();
        assert!(repo.is_empty());
        repo.set_raw("k", 42u32);
        repo.save().unwrap();
        let reloaded = ParamRepository::load(&path).unwrap();
        assert_eq!(reloaded.get_u64("k").unwrap(), Some(42));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_memory_save_is_an_error() {
        let repo = ParamRepository::in_memory();
        assert!(repo.save().is_err());
    }

    #[test]
    fn remove_works() {
        let mut repo = ParamRepository::in_memory();
        repo.set_raw("k", 1);
        assert!(repo.remove("k"));
        assert!(!repo.remove("k"));
        assert!(repo.is_empty());
    }
}
