//! Property tests for `gray_toolbox::mailbox`: deterministic ordering
//! invariants under randomized interleavings of submit, shed, and drain
//! across many ticks.
//!
//! The mailbox is the spine of the `gbd` daemon's tick loop, and the
//! daemon's determinism argument leans on exactly three promises:
//! tickets count up in global enqueue order, a drain yields pending
//! requests in that order (so per-client subsequences are FIFO), and
//! replies route by ticket regardless of which envelopes a server
//! chooses to shed (drop unanswered).
//!
//! Replay a failing case from the harness banner:
//!
//! ```text
//! PROP_SEED=0x<seed> cargo test -q -p gray-toolbox --test mailbox_props
//! PROP_CASES=200 cargo test -q -p gray-toolbox --test mailbox_props
//! ```

use gray_toolbox::mailbox::{Mailbox, Ticket};
use gray_toolbox::prop::{check, Gen};

#[test]
fn ticket_order_and_per_client_fifo_survive_interleaved_ticks() {
    check("mailbox_interleaved_ticks", 40, |g: &mut Gen| {
        let mbox: Mailbox<u64, u64> = Mailbox::new();
        let clients: Vec<_> = (0..g.usize(1..6)).map(|_| mbox.client()).collect();

        // Everything ever sent, in send order: (client, ticket, payload).
        let mut sent: Vec<(u64, Ticket, u64)> = Vec::new();
        // Tickets the server shed (drained but dropped without a reply).
        let mut shed: Vec<Ticket> = Vec::new();
        // Tickets answered, with the expected reply value.
        let mut answered: Vec<(Ticket, u64)> = Vec::new();
        let mut drained_total: Vec<Ticket> = Vec::new();
        let mut payload = 0u64;

        let ticks = g.usize(2..8);
        for _ in 0..ticks {
            // Submit phase: a random burst from random clients.
            for _ in 0..g.usize(0..10) {
                let c = &clients[g.usize(0..clients.len())];
                let t = c.send(payload);
                sent.push((c.id(), t, payload));
                payload += 1;
            }
            // Serve phase: drain everything; shed some, answer the rest.
            let before = mbox.pending();
            let batch = mbox.drain();
            assert_eq!(batch.len(), before, "drain takes exactly the backlog");
            assert_eq!(mbox.pending(), 0, "drain leaves the inbox empty");
            for env in batch {
                drained_total.push(env.ticket);
                if g.bool_with(0.3) {
                    shed.push(env.ticket);
                } else {
                    mbox.reply(env.ticket, env.req * 3 + 1);
                    answered.push((env.ticket, env.req * 3 + 1));
                }
            }
        }
        mbox.drain().into_iter().for_each(|env| {
            drained_total.push(env.ticket);
            shed.push(env.ticket);
        });

        // Global property: tickets are issued strictly increasing in send
        // order, across all clients and ticks.
        for pair in sent.windows(2) {
            assert!(
                pair[0].1.raw() < pair[1].1.raw(),
                "tickets must count up in enqueue order: {:?}",
                pair
            );
        }
        // Drains preserve global enqueue order: the concatenation of all
        // drained batches is exactly the send sequence.
        assert_eq!(
            drained_total,
            sent.iter().map(|(_, t, _)| *t).collect::<Vec<_>>(),
            "drain order must equal send order"
        );
        // Per-client FIFO: each client's envelopes appear in its own send
        // order within the drained stream (immediate corollary pinned
        // separately in case drain ever reorders between clients only).
        for c in &clients {
            let sent_by_c: Vec<Ticket> = sent
                .iter()
                .filter(|(id, _, _)| *id == c.id())
                .map(|(_, t, _)| *t)
                .collect();
            let drained_by_c: Vec<Ticket> = drained_total
                .iter()
                .copied()
                .filter(|t| sent_by_c.contains(t))
                .collect();
            assert_eq!(drained_by_c, sent_by_c, "client {} FIFO", c.id());
        }
        // Reply routing: every answered ticket redeems exactly its own
        // reply (once), and shed tickets redeem nothing.
        assert_eq!(mbox.unredeemed(), answered.len());
        for (ticket, expect) in &answered {
            let (client_id, _, _) = sent.iter().find(|(_, t, _)| t == ticket).unwrap();
            let client = clients.iter().find(|c| c.id() == *client_id).unwrap();
            assert_eq!(client.try_take(*ticket), Some(*expect));
            assert_eq!(client.try_take(*ticket), None, "redeem is consuming");
        }
        for ticket in &shed {
            let (client_id, _, _) = sent.iter().find(|(_, t, _)| t == ticket).unwrap();
            let client = clients.iter().find(|c| c.id() == *client_id).unwrap();
            assert_eq!(client.try_take(*ticket), None, "shed ticket has no reply");
        }
        assert_eq!(mbox.unredeemed(), 0, "every reply was redeemed");
    });
}
