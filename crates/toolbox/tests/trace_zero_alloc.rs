//! The disabled tracer's overhead budget, enforced: an emission site whose
//! sink is off must cost one branch — in particular it must never build
//! the event, so it must never allocate. A counting global allocator
//! makes "never allocates" a hard assertion instead of a code-review
//! promise. (The toolbox lib forbids `unsafe`; a `#[global_allocator]`
//! needs it, which is why this lives in an integration test — its own
//! crate — rather than in `src/trace.rs`.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

// One test function only: a second test running on a sibling thread would
// allocate into the shared counter and make the window flaky.
#[test]
fn disabled_emission_and_spans_allocate_nothing() {
    use gray_toolbox::trace::{self, TraceEvent, Verdict};

    assert!(
        !trace::enabled(),
        "tracing must start disabled in a fresh process"
    );
    // Warm up any lazily initialized thread-local machinery outside the
    // measured window.
    trace::emit_with(|| TraceEvent::ProbePlanned {
        target: String::new(),
        probes: 0,
    });

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..100_000u64 {
        trace::emit_with(|| TraceEvent::ProbePlanned {
            target: format!("file{i}"),
            probes: i,
        });
        trace::emit_with(|| TraceEvent::Classified {
            unit: format!("unit{i}"),
            verdict: Verdict::Cached,
        });
        let _span = trace::span("plan", || format!("p{i}"));
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled emit_with/span must not run closures or allocate"
    );
}
