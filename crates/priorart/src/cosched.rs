//! Implicit coscheduling as a gray-box system (paper Section 3).
//!
//! Fine-grain parallel jobs on a time-shared cluster need their processes
//! scheduled *simultaneously*. Implicit coscheduling achieves this without
//! touching the OS: hard-wired into each waiting process is the knowledge
//! that **receiving a prompt response means the partner is scheduled right
//! now** (and a slow response means it probably is not), so a waiter
//! spin-waits for roughly a context-switch-plus-round-trip before
//! blocking. Spinning keeps the waiter scheduled exactly when its partner
//! is too, which reinforces coordination (feedback through the local
//! scheduler's own policy).
//!
//! The model: `nodes` nodes, each time-slicing one parallel process
//! against `background` local processes (round-robin, `timeslice` ticks).
//! The parallel job alternates `compute` ticks with a barrier-style
//! message exchange with a partner. A blocked process is rescheduled at
//! its node's next slice boundary; a spinning process holds the CPU. The
//! two policies compared are *immediate block* and *two-phase spin-block*
//! with the gray-box spin threshold.

use graybox::technique::{Technique, TechniqueInventory};

/// Waiting policy at a communication point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Block immediately: always yield, pay a wakeup latency.
    BlockImmediately,
    /// Spin up to the threshold (in ticks), then block — the implicit
    /// coscheduling policy. The threshold encodes the gray-box knowledge:
    /// spin just long enough to cover a round trip if the partner is
    /// scheduled.
    SpinBlock {
        /// Maximum ticks to spin before blocking.
        spin: u32,
    },
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CoschedConfig {
    /// Number of nodes (one parallel process per node).
    pub nodes: usize,
    /// Local background processes per node.
    pub background: usize,
    /// Scheduler time slice in ticks.
    pub timeslice: u32,
    /// Ticks of computation between communication events.
    pub compute: u32,
    /// One-way message latency in ticks.
    pub latency: u32,
    /// Cost of a block/wakeup in ticks.
    pub wakeup_cost: u32,
    /// Number of barrier iterations the job performs.
    pub iterations: u32,
}

impl Default for CoschedConfig {
    fn default() -> Self {
        CoschedConfig {
            nodes: 8,
            background: 2,
            timeslice: 100,
            compute: 5,
            latency: 1,
            wakeup_cost: 20,
            iterations: 300,
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoschedReport {
    /// Total ticks until the job finished.
    pub makespan: u64,
    /// Slowdown versus the dedicated-machine ideal.
    pub slowdown: f64,
    /// Fraction of waits where spinning paid off (response arrived within
    /// the spin window) — the inference hit rate.
    pub spin_hits: f64,
    /// Number of blocks taken.
    pub blocks: u64,
}

/// State of one node's scheduler.
#[derive(Debug, Clone)]
struct Node {
    /// Offset of this node's round-robin rotation (ticks).
    phase: u64,
}

/// Runs the barrier-structured job under the given waiting policy.
///
/// The simulation is analytic per barrier iteration. Per node it tracks
/// when the parallel process is next available and whether it currently
/// *holds* the CPU (it does after a successful spin; otherwise it must
/// wait for its next round-robin slice, or — after a message-triggered
/// wakeup — pay the wakeup cost, modelling the priority boost local
/// schedulers give freshly woken processes).
pub fn run(cfg: &CoschedConfig, policy: WaitPolicy) -> CoschedReport {
    assert!(cfg.nodes >= 2, "coscheduling needs at least two nodes");
    let slots = (cfg.background + 1) as u64;
    let period = slots * cfg.timeslice as u64;
    // Deterministic skewed phases: uncoordinated local schedulers.
    let nodes: Vec<Node> = (0..cfg.nodes)
        .map(|i| Node {
            phase: (i as u64 * 37) % period,
        })
        .collect();

    let in_slice = |node: &Node, t: u64| -> bool {
        ((t + period - node.phase) % period) < cfg.timeslice as u64
    };
    let next_slice = |node: &Node, t: u64| -> u64 {
        if in_slice(node, t) {
            t
        } else {
            let into = (t + period - node.phase) % period;
            t + (period - into)
        }
    };

    let mut avail = vec![0u64; cfg.nodes];
    // Whether the process holds the CPU at its avail time.
    let mut holding = vec![false; cfg.nodes];
    let mut spin_hits = 0u64;
    let mut spin_tries = 0u64;
    let mut blocks = 0u64;

    for _ in 0..cfg.iterations {
        // Compute phase.
        let mut ready = vec![0u64; cfg.nodes];
        for (i, node) in nodes.iter().enumerate() {
            let start = if holding[i] {
                avail[i]
            } else {
                next_slice(node, avail[i])
            };
            ready[i] = start + cfg.compute as u64;
        }
        // Barrier: complete when the slowest participant's message lands.
        let barrier_done = *ready.iter().max().expect("nodes >= 2") + cfg.latency as u64;

        for i in 0..cfg.nodes {
            let wait = barrier_done.saturating_sub(ready[i]);
            match policy {
                WaitPolicy::BlockImmediately => {
                    if wait == 0 {
                        // The slowest node never waits; it keeps the CPU.
                        holding[i] = true;
                        avail[i] = barrier_done;
                    } else {
                        blocks += 1;
                        holding[i] = true; // Woken with a priority boost...
                        avail[i] = barrier_done + cfg.wakeup_cost as u64; // ...after the wakeup cost.
                    }
                }
                WaitPolicy::SpinBlock { spin } => {
                    spin_tries += 1;
                    if wait <= spin as u64 {
                        spin_hits += 1;
                        holding[i] = true;
                        avail[i] = barrier_done;
                    } else {
                        blocks += 1;
                        holding[i] = true;
                        avail[i] = barrier_done + cfg.wakeup_cost as u64;
                    }
                }
            }
        }
    }

    let makespan = *avail.iter().max().expect("nodes >= 2");
    let ideal = cfg.iterations as u64 * (cfg.compute as u64 + cfg.latency as u64);
    CoschedReport {
        makespan,
        slowdown: makespan as f64 / ideal as f64,
        spin_hits: if spin_tries == 0 {
            0.0
        } else {
            spin_hits as f64 / spin_tries as f64
        },
        blocks,
    }
}

/// The gray-box spin threshold: a round trip plus one context switch —
/// "if the partner is scheduled, the response arrives within this".
pub fn baseline_spin(cfg: &CoschedConfig) -> u32 {
    2 * cfg.latency + cfg.wakeup_cost + cfg.compute
}

/// Table 1 row for implicit coscheduling.
pub fn techniques() -> TechniqueInventory {
    TechniqueInventory::new(
        "Implicit cosched",
        &[
            (
                Technique::AlgorithmicKnowledge,
                "Dest. scheduled to send msg",
            ),
            (Technique::MonitorOutputs, "Arrival of requests, resp. time"),
            (Technique::Microbenchmarks, "Round-trip time"),
            (Technique::KnownState, "Required for benchmarks"),
            (Technique::Feedback, "All react to same observations"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_block_beats_immediate_block() {
        let cfg = CoschedConfig::default();
        let block = run(&cfg, WaitPolicy::BlockImmediately);
        let spin = run(
            &cfg,
            WaitPolicy::SpinBlock {
                spin: baseline_spin(&cfg),
            },
        );
        assert!(
            spin.makespan < block.makespan / 2,
            "spin {} vs block {}",
            spin.makespan,
            block.makespan
        );
    }

    #[test]
    fn spinning_mostly_pays_once_coordinated() {
        let cfg = CoschedConfig::default();
        let spin = run(
            &cfg,
            WaitPolicy::SpinBlock {
                spin: baseline_spin(&cfg),
            },
        );
        assert!(spin.spin_hits > 0.9, "hit rate {:.2}", spin.spin_hits);
    }

    #[test]
    fn tiny_spin_degenerates_to_blocking() {
        let cfg = CoschedConfig::default();
        let tiny = run(&cfg, WaitPolicy::SpinBlock { spin: 0 });
        let block = run(&cfg, WaitPolicy::BlockImmediately);
        assert!(
            tiny.makespan >= block.makespan * 9 / 10,
            "a zero spin window cannot beat blocking: {} vs {}",
            tiny.makespan,
            block.makespan
        );
        assert!(tiny.blocks > 0);
    }

    #[test]
    fn dedicated_machine_has_low_slowdown() {
        let cfg = CoschedConfig {
            background: 0,
            ..CoschedConfig::default()
        };
        let spin = run(
            &cfg,
            WaitPolicy::SpinBlock {
                spin: baseline_spin(&cfg),
            },
        );
        assert!(spin.slowdown < 1.5, "slowdown {:.2}", spin.slowdown);
    }

    #[test]
    fn deterministic_replay() {
        let cfg = CoschedConfig::default();
        let a = run(&cfg, WaitPolicy::BlockImmediately);
        let b = run(&cfg, WaitPolicy::BlockImmediately);
        assert_eq!(a, b);
    }
}
