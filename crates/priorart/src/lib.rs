//! Miniature implementations of the pre-existing gray-box systems the
//! paper surveys in Section 3 and summarizes in **Table 1**:
//!
//! - [`tcp`] — TCP congestion control: infer network congestion from
//!   acknowledgement timing and packet loss, control the send rate with
//!   AIMD. Includes the wireless counter-example the paper highlights
//!   (loss that does *not* mean congestion breaks the gray-box
//!   assumption).
//! - [`cosched`] — implicit coscheduling: infer whether a remote
//!   communication partner is currently scheduled from message round-trip
//!   times, and hold the CPU (spin) exactly when it pays.
//! - [`manners`] — MS Manners: infer resource contention from the progress
//!   rate of a low-importance process (paired-sample sign test against a
//!   calibrated baseline) and suspend it to yield to important work.
//!
//! Plus, from the paper's Section 2.2 control-technique discussion,
//! [`afs`] — whole-file fetching on AFS turned into a prefetcher by
//! one-byte reads.
//!
//! Each module is a small, deterministic, self-contained simulation that
//! exposes the same [`graybox::technique::TechniqueInventory`] taxonomy the
//! case-study ICLs do, so the reproduction harness can regenerate Table 1
//! with *measured* behavior behind every row.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod afs;
pub mod cosched;
pub mod manners;
pub mod tcp;

/// The three Table 1 inventories, in the paper's column order.
pub fn table1_inventories() -> Vec<graybox::technique::TechniqueInventory> {
    vec![
        tcp::techniques(),
        cosched::techniques(),
        manners::techniques(),
    ]
}

#[cfg(test)]
mod tests {
    use graybox::technique::Technique;

    #[test]
    fn all_table1_systems_monitor_outputs() {
        for inv in super::table1_inventories() {
            assert!(
                inv.uses(Technique::MonitorOutputs),
                "{} must monitor outputs",
                inv.system
            );
            assert!(
                inv.uses(Technique::AlgorithmicKnowledge),
                "{} must encode knowledge",
                inv.system
            );
        }
    }
}
