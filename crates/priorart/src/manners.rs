//! MS Manners as a gray-box system (paper Section 3; Douceur & Bolosky,
//! SOSP'99).
//!
//! Goal: run a low-importance process only when the machine is otherwise
//! idle, without OS support. Gray-box knowledge: *one process competing
//! with another degrades the other's progress roughly symmetrically to its
//! own*. So the low-importance process measures its **own** progress rate,
//! compares it statistically against a calibrated uncontended baseline,
//! and suspends itself when progress is significantly low — inferring the
//! presence of important work purely from its own slowdown. While
//! suspended, it periodically resumes briefly to re-probe.
//!
//! The machine model: one CPU, `ticks` discrete steps; an "important"
//! workload is active on given intervals. When both run, each gets half
//! the CPU (plus noise); alone, each gets it all. The detector uses the
//! toolbox's paired-sample sign test, as the original does.

use gray_toolbox::paired_sign_test;
use gray_toolbox::rng::StdRng;
use gray_toolbox::rng::{RngExt, SeedableRng};
use graybox::technique::{Technique, TechniqueInventory};

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MannersConfig {
    /// Total ticks simulated.
    pub ticks: u64,
    /// Intervals (start, end) when the important workload runs.
    pub busy: Vec<(u64, u64)>,
    /// Window of progress samples compared against the baseline.
    pub window: usize,
    /// Significance level for the sign test.
    pub alpha: f64,
    /// Ticks to stay suspended before re-probing.
    pub backoff: u64,
    /// Ticks of the initial calibration run (assumed uncontended).
    pub calibration: u64,
    /// Multiplicative progress noise (std-dev fraction).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MannersConfig {
    fn default() -> Self {
        MannersConfig {
            ticks: 10_000,
            busy: vec![(2_000, 4_000), (6_000, 7_000)],
            window: 12,
            alpha: 0.05,
            backoff: 200,
            calibration: 200,
            noise: 0.05,
            seed: 23,
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct MannersReport {
    /// Work completed by the low-importance process (ticks of CPU used).
    pub low_work: f64,
    /// Fraction of the *busy* time during which the low-importance process
    /// was running anyway (lower = politer).
    pub interference: f64,
    /// Fraction of the *idle* time the low-importance process exploited
    /// (higher = less wasteful).
    pub idle_utilization: f64,
    /// Mean ticks from a busy-interval start until suspension.
    pub detection_latency: f64,
    /// Number of suspend events.
    pub suspensions: u64,
}

/// Whether the important workload is active at tick `t`.
fn busy_at(cfg: &MannersConfig, t: u64) -> bool {
    cfg.busy.iter().any(|&(s, e)| t >= s && t < e)
}

/// Runs the regulated low-importance process.
pub fn run(cfg: &MannersConfig) -> MannersReport {
    assert!(cfg.window >= 4, "window too small for a sign test");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let noise = |rng: &mut StdRng| 1.0 + rng.random_range(-cfg.noise..=cfg.noise);

    // Calibration: measured uncontended progress per tick.
    let mut baseline: Vec<f64> = Vec::with_capacity(cfg.window);
    for _ in 0..cfg.calibration {
        let p = noise(&mut rng);
        baseline.push(p);
        if baseline.len() > cfg.window {
            baseline.remove(0);
        }
    }

    let mut low_work = 0.0f64;
    let mut window: Vec<f64> = Vec::with_capacity(cfg.window);
    let mut running = true;
    let mut suspended_until = 0u64;
    let mut suspensions = 0u64;
    let mut busy_running_ticks = 0u64;
    let mut idle_running_ticks = 0u64;
    let mut busy_ticks = 0u64;
    let mut idle_ticks = 0u64;
    let mut detection: Vec<u64> = Vec::new();
    let mut current_busy_start: Option<u64> = None;

    for t in 0..cfg.ticks {
        let busy = busy_at(cfg, t);
        if busy {
            busy_ticks += 1;
            // Arm latency measurement only at a true interval start, not
            // after mid-interval re-probes.
            if cfg.busy.iter().any(|&(s, _)| s == t) {
                current_busy_start = Some(t);
            }
        } else {
            idle_ticks += 1;
            current_busy_start = None;
        }

        if !running {
            if t >= suspended_until {
                running = true; // Re-probe.
                window.clear();
            } else {
                continue;
            }
        }

        // Progress this tick: full speed alone, half when contended.
        let progress = if busy { 0.5 } else { 1.0 } * noise(&mut rng);
        low_work += progress;
        if busy {
            busy_running_ticks += 1;
        } else {
            idle_running_ticks += 1;
        }

        window.push(progress);
        if window.len() >= cfg.window {
            let base: Vec<f64> = baseline.iter().copied().take(window.len()).collect();
            let test = paired_sign_test(&window[..base.len()], &base);
            // Contention requires both statistical significance (sign
            // test: baseline systematically above current progress) *and*
            // a material slowdown — repeated testing of a sliding window
            // would otherwise compound the alpha into frequent false
            // positives on an idle machine.
            let base_mean: f64 = base.iter().sum::<f64>() / base.len() as f64;
            let win_mean: f64 = window.iter().take(base.len()).sum::<f64>() / base.len() as f64;
            let material = win_mean < 0.75 * base_mean;
            if material && test.greater > test.less && test.significant_at(cfg.alpha) {
                running = false;
                suspended_until = t + cfg.backoff;
                suspensions += 1;
                if let Some(start) = current_busy_start {
                    detection.push(t - start);
                    current_busy_start = None;
                }
                window.clear();
            } else {
                window.remove(0);
            }
        }
    }

    MannersReport {
        low_work,
        interference: if busy_ticks == 0 {
            0.0
        } else {
            busy_running_ticks as f64 / busy_ticks as f64
        },
        idle_utilization: if idle_ticks == 0 {
            0.0
        } else {
            idle_running_ticks as f64 / idle_ticks as f64
        },
        detection_latency: if detection.is_empty() {
            f64::NAN
        } else {
            detection.iter().sum::<u64>() as f64 / detection.len() as f64
        },
        suspensions,
    }
}

/// Table 1 row for MS Manners.
pub fn techniques() -> TechniqueInventory {
    TechniqueInventory::new(
        "MS Manners",
        &[
            (
                Technique::AlgorithmicKnowledge,
                "Symmetric performance impact",
            ),
            (Technique::MonitorOutputs, "Reported progress of process"),
            (Technique::StatisticalMethods, "Regression, EWMA, sign test"),
            (Technique::KnownState, "None, but slow convergence"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_contention_quickly() {
        let report = run(&MannersConfig::default());
        assert!(
            report.detection_latency < 60.0,
            "latency {:.0} ticks",
            report.detection_latency
        );
        assert!(
            report.suspensions >= 2,
            "suspensions {}",
            report.suspensions
        );
    }

    #[test]
    fn polite_during_busy_intervals() {
        let report = run(&MannersConfig::default());
        assert!(
            report.interference < 0.25,
            "ran during {:.0}% of busy time",
            report.interference * 100.0
        );
    }

    #[test]
    fn exploits_idle_time() {
        let report = run(&MannersConfig::default());
        assert!(
            report.idle_utilization > 0.85,
            "used only {:.0}% of idle time",
            report.idle_utilization * 100.0
        );
    }

    #[test]
    fn never_suspends_on_an_idle_machine() {
        let report = run(&MannersConfig {
            busy: vec![],
            ..MannersConfig::default()
        });
        assert_eq!(report.suspensions, 0);
        assert!(report.idle_utilization > 0.99);
    }

    #[test]
    fn always_busy_machine_mostly_excludes_low_importance() {
        let report = run(&MannersConfig {
            busy: vec![(0, 10_000)],
            ..MannersConfig::default()
        });
        assert!(
            report.interference < 0.3,
            "interference {:.2}",
            report.interference
        );
    }

    #[test]
    fn deterministic_replay() {
        let cfg = MannersConfig::default();
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn noisier_progress_still_detected() {
        let report = run(&MannersConfig {
            noise: 0.15,
            ..MannersConfig::default()
        });
        assert!(report.suspensions >= 1);
        assert!(report.interference < 0.5);
    }
}
