//! AFS whole-file fetching as a gray-box *control* example (paper §2.2):
//! "given the read interface on AFS, an ICL can read just a single byte
//! to prefetch an entire file from the server."
//!
//! The model: a client with a local disk cache in front of a file server
//! across a network. AFS semantics — the first read of any byte of a file
//! fetches the *whole file* into the local cache; subsequent reads are
//! local. An application that will need a set of files can therefore warm
//! them with one-byte reads issued during its think time, overlapping the
//! fetches with computation it was going to do anyway.
//!
//! This is the inverse of FCCD's Heisenberg worry: there, a one-byte
//! probe's whole-page side effect is a measurement hazard; here the
//! whole-file side effect *is the mechanism*. Same gray-box knowledge,
//! used for control instead of information.

use graybox::technique::{Technique, TechniqueInventory};

/// Model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AfsConfig {
    /// Number of files the application will process.
    pub files: usize,
    /// Size of each file in bytes.
    pub file_bytes: u64,
    /// Network fetch bandwidth, bytes per second.
    pub fetch_bandwidth: u64,
    /// Per-fetch latency (RPC + open), seconds.
    pub fetch_latency: f64,
    /// Local read bandwidth once cached, bytes per second.
    pub local_bandwidth: u64,
    /// Application compute time per file, seconds (the think time
    /// prefetching hides fetches behind).
    pub compute_per_file: f64,
}

impl Default for AfsConfig {
    fn default() -> Self {
        AfsConfig {
            files: 20,
            file_bytes: 4 << 20,
            fetch_bandwidth: 2 << 20, // A 2001-era campus network.
            fetch_latency: 0.015,
            local_bandwidth: 20 << 20,
            compute_per_file: 1.0,
        }
    }
}

/// Result of one strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AfsReport {
    /// Total elapsed seconds for the whole run.
    pub elapsed: f64,
    /// Seconds the application sat stalled on fetches.
    pub stall: f64,
}

fn fetch_time(cfg: &AfsConfig) -> f64 {
    cfg.fetch_latency + cfg.file_bytes as f64 / cfg.fetch_bandwidth as f64
}

fn local_time(cfg: &AfsConfig) -> f64 {
    cfg.file_bytes as f64 / cfg.local_bandwidth as f64
}

/// Demand fetching: each file is fetched when the application reaches it.
pub fn run_demand(cfg: &AfsConfig) -> AfsReport {
    let per_file = fetch_time(cfg) + local_time(cfg) + cfg.compute_per_file;
    AfsReport {
        elapsed: per_file * cfg.files as f64,
        stall: fetch_time(cfg) * cfg.files as f64,
    }
}

/// Gray-box prefetching: while computing on file *i*, a background
/// one-byte read of file *i+1* triggers its whole-file fetch, overlapping
/// the transfer with think time. The application stalls only when a fetch
/// outlasts the compute that hides it.
pub fn run_prefetch(cfg: &AfsConfig) -> AfsReport {
    let fetch = fetch_time(cfg);
    let local = local_time(cfg);
    let mut elapsed = 0.0;
    let mut stall = 0.0;
    // File 0 cannot be hidden: its fetch is on the critical path.
    elapsed += fetch;
    stall += fetch;
    let mut fetch_done_at = elapsed; // Prefetch of file i+1 starts when file i is local.
    for i in 0..cfg.files {
        // Process file i (it is local by construction at this point).
        let process = local + cfg.compute_per_file;
        // Prefetch of file i+1 runs concurrently.
        let next_ready = if i + 1 < cfg.files {
            fetch_done_at + fetch
        } else {
            0.0
        };
        elapsed += process;
        if i + 1 < cfg.files && next_ready > elapsed {
            stall += next_ready - elapsed;
            elapsed = next_ready;
        }
        fetch_done_at = elapsed;
    }
    AfsReport { elapsed, stall }
}

/// Taxonomy row for the AFS prefetcher.
pub fn techniques() -> TechniqueInventory {
    TechniqueInventory::new(
        "AFS prefetch",
        &[
            (
                Technique::AlgorithmicKnowledge,
                "1-byte read fetches whole file",
            ),
            (Technique::InsertProbes, "Background 1-byte reads"),
            (Technique::Feedback, "Fetches overlap think time"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetching_hides_most_fetch_stall() {
        let cfg = AfsConfig::default();
        let demand = run_demand(&cfg);
        let prefetch = run_prefetch(&cfg);
        // Compute (1 s) dominates the 2.1 s fetch? No: fetch = 2.07 s,
        // compute+local = 1.2 s, so fetches are only partially hidden —
        // but the win is still large.
        assert!(
            prefetch.elapsed < demand.elapsed * 0.8,
            "prefetch {} vs demand {}",
            prefetch.elapsed,
            demand.elapsed
        );
        assert!(prefetch.stall < demand.stall);
    }

    #[test]
    fn ample_think_time_hides_everything_but_the_first_fetch() {
        let cfg = AfsConfig {
            compute_per_file: 10.0,
            ..AfsConfig::default()
        };
        let prefetch = run_prefetch(&cfg);
        let one_fetch = fetch_time(&cfg);
        assert!(
            (prefetch.stall - one_fetch).abs() < 1e-9,
            "only the first fetch should stall: {} vs {}",
            prefetch.stall,
            one_fetch
        );
    }

    #[test]
    fn zero_think_time_degenerates_toward_demand() {
        let cfg = AfsConfig {
            compute_per_file: 0.0,
            ..AfsConfig::default()
        };
        let demand = run_demand(&cfg);
        let prefetch = run_prefetch(&cfg);
        // Still a little better (local read time overlaps), never worse.
        assert!(prefetch.elapsed <= demand.elapsed + 1e-9);
        assert!(prefetch.elapsed > demand.elapsed * 0.85);
    }

    #[test]
    fn techniques_mark_this_as_control_via_probes() {
        let inv = techniques();
        assert!(inv.uses(Technique::InsertProbes));
        assert!(inv.uses(Technique::AlgorithmicKnowledge));
    }
}
