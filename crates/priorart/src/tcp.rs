//! TCP congestion control as a gray-box system (paper Section 3).
//!
//! The network is the gray box: senders know (algorithmic knowledge) that
//! *routers drop packets when congested*, observe acknowledgements and
//! their timing (outputs), and infer congestion from loss — then control
//! their window with additive-increase/multiplicative-decrease. The paper's
//! sharp observation is that this is **not** a black-box scheme: the
//! loss⇒congestion rule is an assumption about the network's internals,
//! and in a wireless setting — where loss is random — the unmodified
//! algorithm misinfers congestion and collapses its window.
//!
//! The simulation is a slotted fluid model: each round-trip, every sender
//! offers `cwnd` packets; the bottleneck link carries `capacity` packets
//! per RTT and drops the excess (drop-tail, spread proportionally).
//! Optionally, each packet is also lost with probability `wireless_loss`
//! regardless of congestion. Senders track the *true* cause of each loss
//! event so the run can report inference accuracy.

use gray_toolbox::rng::StdRng;
use gray_toolbox::rng::{RngExt, SeedableRng};
use graybox::technique::{Technique, TechniqueInventory};

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpConfig {
    /// Number of competing senders.
    pub senders: usize,
    /// Bottleneck capacity in packets per RTT.
    pub capacity: u64,
    /// Router queue length in packets (absorbs bursts before dropping).
    pub queue: u64,
    /// Probability a packet is lost for non-congestion reasons (the
    /// wireless scenario; 0.0 = wired).
    pub wireless_loss: f64,
    /// Number of RTT rounds to simulate.
    pub rounds: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            senders: 4,
            capacity: 100,
            queue: 50,
            wireless_loss: 0.0,
            rounds: 400,
            seed: 17,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpReport {
    /// Mean link utilization in [0, 1].
    pub utilization: f64,
    /// Jain fairness index over per-sender goodput, in (0, 1].
    pub fairness: f64,
    /// Fraction of loss-triggered backoffs where the loss really was
    /// congestion (the gray-box inference accuracy).
    pub inference_accuracy: f64,
    /// Per-sender delivered packets.
    pub goodput: Vec<u64>,
    /// Mean congestion window at the end, in packets.
    pub mean_final_cwnd: f64,
}

#[derive(Debug, Clone)]
struct Sender {
    cwnd: f64,
    ssthresh: f64,
    delivered: u64,
}

/// Runs the simulation.
pub fn run(cfg: &TcpConfig) -> TcpReport {
    assert!(cfg.senders > 0 && cfg.capacity > 0 && cfg.rounds > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut senders: Vec<Sender> = (0..cfg.senders)
        .map(|_| Sender {
            cwnd: 1.0,
            ssthresh: cfg.capacity as f64,
            delivered: 0,
        })
        .collect();
    let mut carried_total = 0u64;
    let mut backoffs_correct = 0u64;
    let mut backoffs_total = 0u64;
    // Router queue backlog, in packets (aggregate; per-sender attribution
    // is proportional, which is what a FIFO queue approximates over RTTs).
    let mut backlog = 0u64;

    for _ in 0..cfg.rounds {
        let offered: Vec<u64> = senders.iter().map(|s| s.cwnd.max(1.0) as u64).collect();
        let total_offered: u64 = offered.iter().sum();
        // The link serves `capacity` per RTT; the queue absorbs a bounded
        // burst; anything beyond is dropped (drop-tail).
        let room = cfg.capacity + cfg.queue - backlog.min(cfg.queue);
        let accepted_total = total_offered.min(room);
        let congested = total_offered > room;
        let served = (backlog + accepted_total).min(cfg.capacity);
        backlog = backlog + accepted_total - served;
        for (i, sender) in senders.iter_mut().enumerate() {
            // Delivered fraction of this sender's offer: what the link
            // served this round, attributed proportionally.
            let share = (served * offered[i])
                .checked_div(total_offered)
                .unwrap_or(0);
            let accepted = (accepted_total * offered[i])
                .checked_div(total_offered)
                .unwrap_or(0);
            let congestion_dropped = offered[i] - accepted;
            // Queued-but-unserved packets are neither lost nor yet ACKed;
            // goodput counts only what the link carried.
            let _ = &accepted;
            // Wireless loss hits delivered packets at random.
            let mut wireless_dropped = 0u64;
            if cfg.wireless_loss > 0.0 {
                for _ in 0..share {
                    if rng.random_bool(cfg.wireless_loss) {
                        wireless_dropped += 1;
                    }
                }
            }
            let got = share - wireless_dropped;
            sender.delivered += got;
            carried_total += got;

            let lost = congestion_dropped + wireless_dropped;
            if lost > 0 {
                // Gray-box inference: loss means congestion. Score it
                // against ground truth.
                backoffs_total += 1;
                if congested || congestion_dropped > 0 {
                    backoffs_correct += 1;
                }
                sender.ssthresh = (sender.cwnd / 2.0).max(1.0);
                sender.cwnd = sender.ssthresh; // Multiplicative decrease.
            } else if sender.cwnd < sender.ssthresh {
                sender.cwnd *= 2.0; // Slow start.
            } else {
                sender.cwnd += 1.0; // Additive increase.
            }
        }
    }

    let goodput: Vec<u64> = senders.iter().map(|s| s.delivered).collect();
    let n = goodput.len() as f64;
    let sum: f64 = goodput.iter().map(|&g| g as f64).sum();
    let sum_sq: f64 = goodput.iter().map(|&g| (g as f64) * (g as f64)).sum();
    let fairness = if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (n * sum_sq)
    };
    TcpReport {
        utilization: carried_total as f64 / (cfg.capacity * cfg.rounds as u64) as f64,
        fairness,
        inference_accuracy: if backoffs_total == 0 {
            1.0
        } else {
            backoffs_correct as f64 / backoffs_total as f64
        },
        goodput,
        mean_final_cwnd: senders.iter().map(|s| s.cwnd).sum::<f64>() / n,
    }
}

/// Table 1 row for TCP congestion control.
pub fn techniques() -> TechniqueInventory {
    TechniqueInventory::new(
        "TCP",
        &[
            (
                Technique::AlgorithmicKnowledge,
                "Message dropped if congestion",
            ),
            (Technique::MonitorOutputs, "Time before ACK arrives"),
            (Technique::StatisticalMethods, "Mean and variance"),
            (Technique::Feedback, "Routers drop msgs as a signal"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wired_senders_fill_the_link_fairly() {
        let report = run(&TcpConfig::default());
        assert!(
            report.utilization > 0.8,
            "utilization {:.2}",
            report.utilization
        );
        assert!(report.fairness > 0.9, "fairness {:.3}", report.fairness);
    }

    #[test]
    fn wired_inference_is_nearly_perfect() {
        let report = run(&TcpConfig::default());
        assert!(
            report.inference_accuracy > 0.99,
            "accuracy {:.3}",
            report.inference_accuracy
        );
    }

    #[test]
    fn wireless_loss_breaks_the_gray_box_assumption() {
        let wired = run(&TcpConfig::default());
        let wireless = run(&TcpConfig {
            wireless_loss: 0.03,
            ..TcpConfig::default()
        });
        // Throughput collapses even though the link is mostly idle...
        assert!(
            wireless.utilization < wired.utilization * 0.7,
            "wireless {:.2} vs wired {:.2}",
            wireless.utilization,
            wired.utilization
        );
        // ...because the loss⇒congestion inference is now mostly wrong.
        assert!(
            wireless.inference_accuracy < 0.5,
            "accuracy {:.3}",
            wireless.inference_accuracy
        );
    }

    #[test]
    fn single_sender_converges_to_capacity() {
        let report = run(&TcpConfig {
            senders: 1,
            ..TcpConfig::default()
        });
        // A lone AIMD sawtooth over a queue of half the bandwidth-delay
        // product settles around 80% in this slotted model.
        assert!(report.utilization > 0.75, "util {:.3}", report.utilization);
        assert!(report.mean_final_cwnd > 50.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = TcpConfig {
            wireless_loss: 0.01,
            ..TcpConfig::default()
        };
        assert_eq!(run(&cfg), run(&cfg));
    }

    #[test]
    fn goodput_sums_match_utilization() {
        let cfg = TcpConfig::default();
        let report = run(&cfg);
        let total: u64 = report.goodput.iter().sum();
        let expected = (report.utilization * (cfg.capacity * cfg.rounds as u64) as f64) as u64;
        assert!(total.abs_diff(expected) <= 1);
    }
}
