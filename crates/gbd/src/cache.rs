//! The daemon's inference cache and its pluggable staleness policies.
//!
//! An inference is a *perishable* fact: "these files were resident" is
//! true at the instant the probes ran and decays as the OS keeps working.
//! The cache therefore stores each reply with the virtual time it was
//! inferred at, and a [`StalenessPolicy`] decides both halves of the
//! freshness question:
//!
//! - **at lookup** — is this entry still servable, or has it aged out
//!   ([`StalenessPolicy::disposition`])?
//! - **at observation** — a fresh probe pass just produced per-file
//!   verdicts; which cached entries does it contradict
//!   ([`StalenessPolicy::invalidated_by`])?
//!
//! [`TtlOnly`] answers only the first: entries live exactly their TTL and
//! observed churn is ignored, so a stale answer is served until expiry.
//! [`ChurnAware`] adds the second: any cached entry whose per-file
//! verdict disagrees with fresher evidence is evicted immediately (and
//! the daemon re-infers it). The TTL backstop still applies — churn can
//! only be observed for files some query touches, so unqueried corners
//! age out rather than live forever.

use std::collections::BTreeMap;

use gray_toolbox::{GrayDuration, Nanos};

use crate::daemon::{Query, Reply};

/// One cached inference.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The query that produced the reply (re-run on churn re-inference).
    pub query: Query,
    /// The inferred answer.
    pub reply: Reply,
    /// Virtual time the inference completed.
    pub stored_at: Nanos,
    /// Per-file residency verdicts backing the reply (`true` = predicted
    /// cached). Empty for non-FCCD entries; churn detection joins fresh
    /// verdicts against these.
    pub verdicts: BTreeMap<String, bool>,
}

/// A policy's lookup-time judgement of an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Servable as-is.
    Fresh,
    /// Aged out; the daemon drops it and re-infers.
    Expired,
}

/// How cached inferences go stale. Pluggable: the daemon takes a boxed
/// policy at construction and consults it on every lookup and after every
/// fresh probe pass.
pub trait StalenessPolicy: std::fmt::Debug + Send {
    /// Short policy name for stats and traces.
    fn name(&self) -> &'static str;

    /// Lookup-time freshness of `entry` at virtual time `now`.
    fn disposition(&self, entry: &CacheEntry, now: Nanos) -> Disposition;

    /// Cache keys contradicted by a fresh probe pass's per-file verdicts.
    /// Called once per serve tick with every verdict the tick produced.
    fn invalidated_by(&self, cache: &InferenceCache, fresh: &BTreeMap<String, bool>)
        -> Vec<String>;
}

/// Serve every entry until its TTL elapses, churn or no churn.
///
/// The TTL boundary is **inclusive**: an entry is servable through
/// `age == ttl` exactly and expires at `age == ttl + 1` nanoseconds.
/// An entry stamped *after* `now` (clock skew across tenant lanes) is
/// treated as stale outright — the old saturating age arithmetic pinned
/// such an entry's age at zero, making it immortal.
#[derive(Debug, Clone, Copy)]
pub struct TtlOnly {
    /// Entry lifetime in virtual time.
    pub ttl: GrayDuration,
}

impl StalenessPolicy for TtlOnly {
    fn name(&self) -> &'static str {
        "ttl-only"
    }

    fn disposition(&self, entry: &CacheEntry, now: Nanos) -> Disposition {
        if entry.stored_at.0 > now.0 {
            // Stored "in the future": the stamp can't be trusted, and a
            // saturated age of zero must not grant eternal freshness.
            return Disposition::Expired;
        }
        if now.0 - entry.stored_at.0 > self.ttl.as_nanos() {
            Disposition::Expired
        } else {
            Disposition::Fresh
        }
    }

    fn invalidated_by(&self, _: &InferenceCache, _: &BTreeMap<String, bool>) -> Vec<String> {
        Vec::new()
    }
}

/// TTL plus invalidation-on-observed-churn: when a fresh probe pass
/// contradicts a cached entry's verdict for any overlapping file, the
/// entry is evicted (and the daemon re-infers it) instead of waiting for
/// the TTL.
#[derive(Debug, Clone, Copy)]
pub struct ChurnAware {
    /// Backstop entry lifetime in virtual time.
    pub ttl: GrayDuration,
}

impl StalenessPolicy for ChurnAware {
    fn name(&self) -> &'static str {
        "churn-aware"
    }

    fn disposition(&self, entry: &CacheEntry, now: Nanos) -> Disposition {
        TtlOnly { ttl: self.ttl }.disposition(entry, now)
    }

    fn invalidated_by(
        &self,
        cache: &InferenceCache,
        fresh: &BTreeMap<String, bool>,
    ) -> Vec<String> {
        cache
            .iter()
            .filter(|(_, entry)| {
                entry
                    .verdicts
                    .iter()
                    .any(|(path, verdict)| fresh.get(path).is_some_and(|f| f != verdict))
            })
            .map(|(key, _)| key.to_string())
            .collect()
    }
}

/// The cache proper: query fingerprint → entry, with hit/miss accounting
/// and a capacity bound.
///
/// A long-running daemon sees an unbounded stream of distinct query
/// fingerprints; without a bound the cache grows forever. Inserting past
/// `capacity` evicts the **oldest-stamped** entries (ties broken by
/// smallest key, so eviction is deterministic) — the entry nearest its
/// TTL anyway, making this the cheapest-regret choice.
#[derive(Debug)]
pub struct InferenceCache {
    entries: BTreeMap<String, CacheEntry>,
    capacity: usize,
}

impl Default for InferenceCache {
    fn default() -> Self {
        InferenceCache {
            entries: BTreeMap::new(),
            capacity: usize::MAX,
        }
    }
}

/// What a lookup found.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A fresh entry; the reply is cloned out for the caller.
    Hit(Reply),
    /// An entry existed but the policy aged it out (it has been removed).
    Expired,
    /// Nothing cached under the key.
    Miss,
}

impl InferenceCache {
    /// Creates an empty, effectively unbounded cache.
    pub fn new() -> Self {
        InferenceCache::default()
    }

    /// Creates an empty cache bounded to `capacity` entries (clamped to
    /// at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        InferenceCache {
            entries: BTreeMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Consults the cache under `policy` at virtual time `now`. Expired
    /// entries are removed as a side effect.
    pub fn lookup(&mut self, key: &str, now: Nanos, policy: &dyn StalenessPolicy) -> Lookup {
        match self.entries.get(key) {
            None => Lookup::Miss,
            Some(entry) => match policy.disposition(entry, now) {
                Disposition::Fresh => Lookup::Hit(entry.reply.clone()),
                Disposition::Expired => {
                    self.entries.remove(key);
                    Lookup::Expired
                }
            },
        }
    }

    /// Stores (or replaces) an entry, then evicts oldest-stamped entries
    /// until the capacity holds again. Returns the evicted keys (in
    /// eviction order) so the daemon can count and trace them. If the
    /// incoming entry carries the oldest stamp of all, it is itself the
    /// eviction victim — deterministic, and correct for a stamp that far
    /// behind the rest of the cache.
    pub fn insert(&mut self, key: String, entry: CacheEntry) -> Vec<String> {
        self.entries.insert(key, entry);
        let mut evicted = Vec::new();
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by(|(ka, ea), (kb, eb)| {
                    ea.stored_at.cmp(&eb.stored_at).then_with(|| ka.cmp(kb))
                })
                .map(|(k, _)| k.clone())
                .expect("cache is over capacity, so non-empty");
            self.entries.remove(&victim);
            evicted.push(victim);
        }
        evicted
    }

    /// Removes an entry, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<CacheEntry> {
        self.entries.remove(key)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(key, entry)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CacheEntry)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(stored_at: u64, verdicts: &[(&str, bool)]) -> CacheEntry {
        CacheEntry {
            query: Query::FccdClassify { files: Vec::new() },
            reply: Reply::Available { bytes: 1 },
            stored_at: Nanos(stored_at),
            verdicts: verdicts.iter().map(|(p, v)| (p.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn ttl_only_expires_by_age_and_ignores_churn() {
        let policy = TtlOnly {
            ttl: GrayDuration::from_nanos(100),
        };
        let mut cache = InferenceCache::new();
        cache.insert("k".to_string(), entry(1000, &[("/f", true)]));
        assert!(matches!(
            cache.lookup("k", Nanos(1100), &policy),
            Lookup::Hit(_)
        ));
        // Contradicting evidence does nothing under TTL-only.
        let fresh: BTreeMap<String, bool> = [("/f".to_string(), false)].into_iter().collect();
        assert!(policy.invalidated_by(&cache, &fresh).is_empty());
        // One nanosecond past the TTL the entry is gone.
        assert_eq!(cache.lookup("k", Nanos(1101), &policy), Lookup::Expired);
        assert_eq!(cache.lookup("k", Nanos(1101), &policy), Lookup::Miss);
    }

    #[test]
    fn ttl_boundary_is_inclusive() {
        let policy = TtlOnly {
            ttl: GrayDuration::from_nanos(100),
        };
        let e = entry(1000, &[]);
        // Servable through age == ttl exactly …
        assert_eq!(policy.disposition(&e, Nanos(1000)), Disposition::Fresh);
        assert_eq!(policy.disposition(&e, Nanos(1100)), Disposition::Fresh);
        // … and expired one nanosecond later.
        assert_eq!(policy.disposition(&e, Nanos(1101)), Disposition::Expired);
    }

    #[test]
    fn future_stored_entry_is_stale_not_immortal() {
        // Regression: `saturating_sub` pinned a future-stamped entry's
        // age at zero, so it could never expire — it outlived every
        // legitimate entry in the cache.
        let policy = TtlOnly {
            ttl: GrayDuration::from_nanos(100),
        };
        let mut cache = InferenceCache::new();
        cache.insert("skewed".to_string(), entry(5000, &[]));
        assert_eq!(
            policy.disposition(&entry(5000, &[]), Nanos(4999)),
            Disposition::Expired
        );
        assert_eq!(
            cache.lookup("skewed", Nanos(4999), &policy),
            Lookup::Expired
        );
        assert_eq!(cache.lookup("skewed", Nanos(4999), &policy), Lookup::Miss);
        // ChurnAware delegates its TTL half to TtlOnly and inherits the fix.
        let churn = ChurnAware {
            ttl: GrayDuration::from_nanos(100),
        };
        assert_eq!(
            churn.disposition(&entry(5000, &[]), Nanos(4999)),
            Disposition::Expired
        );
    }

    #[test]
    fn capacity_evicts_oldest_stamp_first() {
        let mut cache = InferenceCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        assert!(cache
            .insert("young".to_string(), entry(300, &[]))
            .is_empty());
        assert!(cache.insert("old".to_string(), entry(100, &[])).is_empty());
        // Third entry: the oldest stamp ("old") goes, not the newest key.
        let evicted = cache.insert("mid".to_string(), entry(200, &[]));
        assert_eq!(evicted, vec!["old".to_string()]);
        assert_eq!(cache.len(), 2);
        assert!(cache.iter().any(|(k, _)| k == "young"));
        assert!(cache.iter().any(|(k, _)| k == "mid"));
    }

    #[test]
    fn capacity_tie_breaks_on_smallest_key() {
        let mut cache = InferenceCache::with_capacity(2);
        cache.insert("b".to_string(), entry(100, &[]));
        cache.insert("a".to_string(), entry(100, &[]));
        let evicted = cache.insert("c".to_string(), entry(100, &[]));
        assert_eq!(evicted, vec!["a".to_string()]);
    }

    #[test]
    fn replacement_does_not_evict() {
        let mut cache = InferenceCache::with_capacity(2);
        cache.insert("a".to_string(), entry(100, &[]));
        cache.insert("b".to_string(), entry(200, &[]));
        // Replacing an existing key keeps the cache at capacity.
        let evicted = cache.insert("a".to_string(), entry(300, &[]));
        assert!(evicted.is_empty());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn unbounded_default_never_evicts() {
        let mut cache = InferenceCache::new();
        for i in 0..100 {
            assert!(cache.insert(format!("k{i}"), entry(i, &[])).is_empty());
        }
        assert_eq!(cache.len(), 100);
    }

    #[test]
    fn churn_aware_invalidates_contradicted_entries_only() {
        let policy = ChurnAware {
            ttl: GrayDuration::from_millis(10),
        };
        let mut cache = InferenceCache::new();
        cache.insert("a".to_string(), entry(0, &[("/f", true), ("/g", false)]));
        cache.insert("b".to_string(), entry(0, &[("/g", false)]));
        cache.insert("c".to_string(), entry(0, &[("/h", true)]));
        // Fresh pass agrees about /g, flips /f, says nothing about /h.
        let fresh: BTreeMap<String, bool> = [("/f".to_string(), false), ("/g".to_string(), false)]
            .into_iter()
            .collect();
        let invalidated = policy.invalidated_by(&cache, &fresh);
        assert_eq!(invalidated, vec!["a".to_string()]);
    }
}
