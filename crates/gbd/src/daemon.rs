//! The daemon proper: tenants, queries, and the serve loop.
//!
//! `Gbd` owns one probe [`Scheduler`], one [`InferenceCache`], and one
//! AIMD [`QueryAdmission`] budget, shared by every tenant. Tenants hold a
//! [`GbdClient`] — a cloneable handle over the in-process mailbox — and
//! the daemon drains, executes, and answers in *ticks*
//! ([`Gbd::serve`]), because the simulated substrate runs exactly one
//! process at a time: clients enqueue between ticks, the daemon probes
//! during them.
//!
//! A tick processes the drained batch in arrival order:
//!
//! 1. **Cache.** Each cacheable query is looked up under the staleness
//!    policy; hits answer immediately. Identical misses within the tick
//!    coalesce onto one execution.
//! 2. **Admission.** Probe-needing misses consume the AIMD budget;
//!    queries over budget are answered [`Reply::Shed`].
//! 3. **Execution.** All admitted FCCD queries submit their plans to the
//!    shared scheduler and dispatch together, so tenants' probes pool
//!    into shared waves; MAC allocation requests pool behind one
//!    [`MacAdmissionQueue`] pass; the rest run one by one.
//! 4. **Churn.** The tick's fresh per-file verdicts are handed to the
//!    staleness policy; contradicted entries are evicted and re-inferred
//!    (budget permitting).
//! 5. **AIMD.** The scheduler's wave statistics move the admission budget.

use std::collections::BTreeMap;

use gray_sched::AdmissionRequest;
use gray_sched::{FccdFleet, MacAdmissionQueue, Scheduler, SimExecutor};
use gray_toolbox::mailbox::{Mailbox, MailboxClient, Ticket};
use gray_toolbox::stats::Log2Histogram;
use gray_toolbox::trace::{self, TraceEvent};
use gray_toolbox::Nanos;
use graybox::fccd::{classify_ranks, FileRank};
use graybox::fldc::Fldc;
use graybox::mac::Mac;
use graybox::os::GrayBoxOs;
use graybox::wbd::{Wbd, WbdParams};
use simos::Sim;

/// The verdict key WBD residue inferences publish. FCCD verdicts key on
/// file paths; WBD's single system-wide dirty/clean bit keys on this
/// pseudo-path instead, so the churn-aware staleness policy joins WBD
/// entries against fresh WBD passes with no policy changes.
pub const WBD_DIRTY_VERDICT: &str = "wbd:dirty";

use crate::admission::QueryAdmission;
use crate::cache::{CacheEntry, InferenceCache, Lookup, StalenessPolicy};
use crate::{GbdConfig, GbdError};

/// One gray-box inference request.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// FCCD: split these files into predicted-cached / predicted-uncached.
    /// `(path, size-hint)` pairs, exactly as the fleet planner takes them.
    FccdClassify {
        /// The candidate files.
        files: Vec<(String, u64)>,
    },
    /// MAC: estimate available memory, probing no further than `ceiling`.
    MacAvailable {
        /// Probe ceiling in bytes.
        ceiling: u64,
    },
    /// MAC: admit a `gb_alloc`-shaped allocation (pooled with every other
    /// allocation request in the tick behind one probe pass). The daemon
    /// reports the admitted size and releases the memory — it answers the
    /// sizing question, it does not hold tenants' memory.
    GbAlloc {
        /// Smallest useful grant, bytes.
        min: u64,
        /// Largest useful grant, bytes.
        max: u64,
        /// Grants are rounded down to a multiple of this.
        multiple: u64,
    },
    /// FLDC: the directory's files in predicted on-disk layout order.
    FldcOrder {
        /// The directory to order.
        dir: String,
    },
    /// WBD: estimate the system-wide dirty-page residue via one timed
    /// `sync`. The measurement is destructive (the `sync` flushes the
    /// residue it measures), so the cached answer is a snapshot; a later
    /// pass that contradicts it churns it out like any FCCD verdict.
    WbdResidue {
        /// Scratch pages dirtied per calibration round.
        calib_pages: u64,
    },
    /// Observability: the daemon's own service-level metrics — cumulative
    /// stats, cache occupancy, admission state, and per-tenant virtual-
    /// time latency histograms. Costs no probes and no virtual time, is
    /// never cached (each answer reflects the serving instant), and is
    /// how a `gray-top` dashboard sees inside the daemon.
    MetricsSnapshot,
}

impl Query {
    /// The cache key: a stable fingerprint of the query's content.
    pub fn fingerprint(&self) -> String {
        match self {
            Query::FccdClassify { files } => {
                let mut s = String::from("fccd:");
                for (i, (path, size)) in files.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(path);
                    s.push('#');
                    s.push_str(&size.to_string());
                }
                s
            }
            Query::MacAvailable { ceiling } => format!("mac.available:{ceiling}"),
            Query::GbAlloc { min, max, multiple } => {
                format!("mac.alloc:{min}:{max}:{multiple}")
            }
            Query::FldcOrder { dir } => format!("fldc:{dir}"),
            Query::WbdResidue { calib_pages } => format!("wbd.residue:{calib_pages}"),
            Query::MetricsSnapshot => "gbd.metrics".to_string(),
        }
    }

    /// Whether the answer may be served from cache. Allocation requests
    /// are side-effecting (each grant reflects memory at that instant and
    /// is consumed by the asker), so they always execute; metrics
    /// snapshots describe the serving instant, so caching one would
    /// answer with a stale daemon.
    fn cacheable(&self) -> bool {
        !matches!(self, Query::GbAlloc { .. } | Query::MetricsSnapshot)
    }

    /// Whether execution issues timing probes (and therefore consumes the
    /// admission budget). FLDC reads metadata only; metrics snapshots
    /// read daemon state only.
    fn needs_probes(&self) -> bool {
        !matches!(self, Query::FldcOrder { .. } | Query::MetricsSnapshot)
    }
}

/// The daemon's answer to one query.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// FCCD verdicts, bit-identical to `graybox::fccd::Classified`.
    Classified {
        /// Files in the fast cluster, fastest first.
        cached: Vec<FileRank>,
        /// Files in the slow cluster, fastest first.
        uncached: Vec<FileRank>,
        /// Two-means separation score in [0, 1].
        separation: f64,
    },
    /// MAC available-memory estimate, bytes.
    Available {
        /// The estimate.
        bytes: u64,
    },
    /// MAC allocation admitted for this many bytes (0 = denied).
    Granted {
        /// Admitted bytes.
        bytes: u64,
    },
    /// FLDC layout order: paths, nearest-first.
    Layout {
        /// Paths in predicted layout order.
        order: Vec<String>,
    },
    /// WBD dirty-page residue estimate (0 = writeback has caught up).
    Residue {
        /// Estimated dirty pages at the instant of the timed `sync`.
        pages: u64,
    },
    /// The daemon's service-level metrics (boxed: the snapshot carries
    /// per-tenant histograms and would otherwise dominate every reply).
    Metrics(Box<GbdMetrics>),
    /// Load-shed by query admission; retry next tick.
    Shed,
    /// The backend failed the query.
    Failed(String),
}

/// A reply plus its service metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The answer.
    pub reply: Reply,
    /// Whether it was served from the inference cache.
    pub from_cache: bool,
    /// Virtual time the response was posted.
    pub served_at: Nanos,
}

/// Per-tenant accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Queries this tenant submitted.
    pub queries: u64,
    /// Served from cache.
    pub hits: u64,
    /// Shed by admission.
    pub shed: u64,
    /// Virtual-time service latency per answered query (nanoseconds from
    /// tick drain to reply post; cache hits land in the 0 bucket).
    pub latency: Log2Histogram,
}

/// A registered tenant.
#[derive(Debug)]
pub struct Tenant {
    /// The tenant's name (spans read `tenant:<name>`).
    pub name: String,
    /// The tenant's gray-trace lane: every daemon-side record emitted on
    /// this tenant's behalf carries it.
    pub lane: u64,
    /// Accounting.
    pub stats: TenantStats,
}

/// Daemon-wide accounting, cumulative over ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GbdStats {
    /// Serve ticks run.
    pub ticks: u64,
    /// Queries drained.
    pub queries: u64,
    /// Served from cache.
    pub hits: u64,
    /// Coalesced onto an identical in-tick execution.
    pub coalesced: u64,
    /// Shed by query admission.
    pub shed: u64,
    /// Cache entries aged out at lookup.
    pub expired: u64,
    /// Cache entries evicted by observed churn.
    pub invalidated: u64,
    /// Churn-evicted entries re-inferred within the tick.
    pub reinfers: u64,
    /// Cache entries evicted by the capacity bound (oldest stamp first).
    pub capacity_evictions: u64,
    /// Probe-needing executions admitted.
    pub admitted: u64,
    /// Scheduler waves dispatched on the daemon's behalf.
    pub waves: u64,
}

/// What one serve tick did.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickStats {
    /// Queries drained this tick.
    pub queries: usize,
    /// Cache hits.
    pub hits: usize,
    /// Coalesced duplicates.
    pub coalesced: usize,
    /// Shed queries.
    pub shed: usize,
    /// Fresh executions.
    pub executed: usize,
    /// Churn re-inferences.
    pub reinfers: usize,
    /// Admission budget after the tick's AIMD update.
    pub budget: usize,
}

/// A tenant's handle: submit queries, redeem responses.
#[derive(Debug, Clone)]
pub struct GbdClient {
    inner: MailboxClient<Query, Response>,
}

impl GbdClient {
    /// Enqueues a query for the next serve tick.
    pub fn submit(&self, query: Query) -> Ticket {
        self.inner.send(query)
    }

    /// Redeems a response (consuming), if the daemon has served it.
    pub fn take(&self, ticket: Ticket) -> Option<Response> {
        self.inner.try_take(ticket)
    }
}

/// One coalesced unit of execution: a query plus everyone waiting on it.
struct ExecItem {
    key: String,
    query: Query,
    /// `(tenant index, ticket)`; the first waiter triggered the execution.
    waiters: Vec<(usize, Ticket)>,
}

/// The daemon.
pub struct Gbd {
    cfg: GbdConfig,
    policy: Box<dyn StalenessPolicy>,
    sched: Scheduler,
    cache: InferenceCache,
    admission: QueryAdmission,
    mailbox: Mailbox<Query, Response>,
    tenants: Vec<Tenant>,
    /// FCCD executions so far; decorrelates probe offsets across repeated
    /// inferences when `cfg.decorrelate_seeds` is set.
    fccd_execs: u64,
    stats: GbdStats,
}

impl Gbd {
    /// Creates a daemon with the given configuration and staleness policy.
    pub fn new(cfg: GbdConfig, policy: Box<dyn StalenessPolicy>) -> Self {
        let sched = Scheduler::new(cfg.sched.clone());
        let admission = QueryAdmission::new(cfg.admission_budget);
        let cache = InferenceCache::with_capacity(cfg.cache_capacity);
        Gbd {
            cfg,
            policy,
            sched,
            cache,
            admission,
            mailbox: Mailbox::new(),
            tenants: Vec::new(),
            fccd_execs: 0,
            stats: GbdStats::default(),
        }
    }

    /// Registers a tenant and returns its client handle, allocating the
    /// tenant a gray-trace lane of its own. Fails once `gbd.max_tenants`
    /// tenants exist.
    pub fn register_tenant(&mut self, name: &str) -> Result<GbdClient, GbdError> {
        if self.tenants.len() >= self.cfg.max_tenants {
            return Err(GbdError::TenantLimit {
                limit: self.cfg.max_tenants,
            });
        }
        let client = self.mailbox.client();
        debug_assert_eq!(client.id() as usize, self.tenants.len());
        self.tenants.push(Tenant {
            name: name.to_string(),
            lane: trace::allocate_lane(),
            stats: TenantStats::default(),
        });
        Ok(GbdClient { inner: client })
    }

    /// Cumulative daemon statistics.
    pub fn stats(&self) -> &GbdStats {
        &self.stats
    }

    /// The registered tenants, in registration order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Live inference-cache entry count.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The live admission budget (ceiling minus AIMD backoff).
    pub fn admission_budget(&self) -> usize {
        self.admission.budget()
    }

    /// How many times admission backed off.
    pub fn admission_backoffs(&self) -> u64 {
        self.admission.backoffs()
    }

    /// The staleness policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Drains and answers every pending query: one tick.
    pub fn serve(&mut self, sim: &mut Sim) -> TickStats {
        let batch = self.mailbox.drain();
        let mut tick = TickStats {
            queries: batch.len(),
            ..TickStats::default()
        };
        self.stats.ticks += 1;
        self.stats.queries += batch.len() as u64;

        // Phase 1+2: cache, coalescing, admission.
        let mut exec: Vec<ExecItem> = Vec::new();
        let mut exec_by_key: BTreeMap<String, usize> = BTreeMap::new();
        let mut admitted = 0usize;
        let now = sim.now();
        for env in batch {
            let tenant = env.client as usize;
            let (lane, name) = {
                let t = &mut self.tenants[tenant];
                t.stats.queries += 1;
                (t.lane, t.name.clone())
            };
            let _lane = trace::lane_scope(lane);
            let _span = trace::span("tenant", || name);
            let key = env.req.fingerprint();
            if env.req.cacheable() {
                match self.cache.lookup(&key, now, self.policy.as_ref()) {
                    Lookup::Hit(reply) => {
                        trace::emit_with_at(now, || TraceEvent::CacheAccess {
                            key: key.clone(),
                            outcome: "hit",
                        });
                        let t = &mut self.tenants[tenant];
                        t.stats.hits += 1;
                        t.stats.latency.record(0);
                        self.stats.hits += 1;
                        tick.hits += 1;
                        self.mailbox.reply(
                            env.ticket,
                            Response {
                                reply,
                                from_cache: true,
                                served_at: now,
                            },
                        );
                        continue;
                    }
                    Lookup::Expired => {
                        trace::emit_with_at(now, || TraceEvent::CacheAccess {
                            key: key.clone(),
                            outcome: "expired",
                        });
                        self.stats.expired += 1;
                    }
                    Lookup::Miss => {
                        trace::emit_with_at(now, || TraceEvent::CacheAccess {
                            key: key.clone(),
                            outcome: "miss",
                        });
                    }
                }
                // An identical query already executing this tick? Join it.
                if let Some(&i) = exec_by_key.get(&key) {
                    exec[i].waiters.push((tenant, env.ticket));
                    self.stats.coalesced += 1;
                    tick.coalesced += 1;
                    continue;
                }
            }
            // Fresh execution: pass admission if it needs probes.
            if env.req.needs_probes() {
                if admitted >= self.admission.budget() {
                    trace::emit_with_at(now, || TraceEvent::AdmissionDecision {
                        source: "gbd.query",
                        requested: 1,
                        granted: 0,
                    });
                    self.tenants[tenant].stats.shed += 1;
                    self.stats.shed += 1;
                    tick.shed += 1;
                    self.mailbox.reply(
                        env.ticket,
                        Response {
                            reply: Reply::Shed,
                            from_cache: false,
                            served_at: now,
                        },
                    );
                    continue;
                }
                admitted += 1;
                self.stats.admitted += 1;
                trace::emit_with_at(now, || TraceEvent::AdmissionDecision {
                    source: "gbd.query",
                    requested: 1,
                    granted: 1,
                });
            }
            if env.req.cacheable() {
                exec_by_key.insert(key.clone(), exec.len());
            }
            exec.push(ExecItem {
                key,
                query: env.req,
                waiters: vec![(tenant, env.ticket)],
            });
        }

        // Phase 3: execution, grouped so probes pool into shared waves.
        tick.executed = exec.len();
        let mut fresh_verdicts: BTreeMap<String, bool> = BTreeMap::new();

        let mut fccd_items = Vec::new();
        let mut alloc_items = Vec::new();
        let mut other_items = Vec::new();
        for item in exec {
            match &item.query {
                Query::FccdClassify { .. } => fccd_items.push(item),
                Query::GbAlloc { .. } => alloc_items.push(item),
                _ => other_items.push(item),
            }
        }

        // FCCD: every tenant's plans submit to the shared scheduler, then
        // one dispatch fans them out together.
        let outcomes = self.execute_fccd(sim, &fccd_items);
        for (item, (reply, verdicts)) in fccd_items.iter().zip(outcomes) {
            for (path, v) in &verdicts {
                fresh_verdicts.insert(path.clone(), *v);
            }
            self.finish_item(sim, item, reply, verdicts, now);
        }

        // MAC allocations: pooled behind one probe pass.
        if !alloc_items.is_empty() {
            let replies = self.execute_allocs(sim, &alloc_items);
            for (item, reply) in alloc_items.iter().zip(replies) {
                self.finish_item(sim, item, reply, BTreeMap::new(), now);
            }
        }

        // MAC estimates, FLDC orders, and WBD residues, one by one.
        for item in &other_items {
            let (reply, verdicts) = match &item.query {
                Query::MacAvailable { ceiling } => {
                    let params = self.cfg.mac.clone();
                    let ceiling = *ceiling;
                    let reply = match sim
                        .run_one(move |os| Mac::new(os, params).available_estimate(ceiling))
                    {
                        Ok(bytes) => Reply::Available { bytes },
                        Err(e) => Reply::Failed(e.to_string()),
                    };
                    (reply, BTreeMap::new())
                }
                Query::FldcOrder { dir } => {
                    let dir = dir.clone();
                    let reply = match sim.run_one(move |os| Fldc::new(os).order_directory(&dir)) {
                        Ok(ranks) => Reply::Layout {
                            order: ranks.into_iter().map(|r| r.path).collect(),
                        },
                        Err(e) => Reply::Failed(e.to_string()),
                    };
                    (reply, BTreeMap::new())
                }
                Query::WbdResidue { calib_pages } => self.execute_wbd(sim, *calib_pages),
                Query::MetricsSnapshot => {
                    // Pure introspection: reads daemon state, touches
                    // neither the sim nor the probe budget.
                    let m = self.metrics_snapshot(sim.now());
                    (Reply::Metrics(Box::new(m)), BTreeMap::new())
                }
                _ => unreachable!("grouped above"),
            };
            for (key, v) in &verdicts {
                fresh_verdicts.insert(key.clone(), *v);
            }
            self.finish_item(sim, item, reply, verdicts, now);
        }

        // Phase 4: observed churn. Entries the fresh verdicts contradict
        // are evicted; budget permitting, they re-infer right away.
        if !fresh_verdicts.is_empty() {
            let stale = self.policy.invalidated_by(&self.cache, &fresh_verdicts);
            for key in stale {
                let Some(entry) = self.cache.remove(&key) else {
                    continue;
                };
                self.stats.invalidated += 1;
                trace::emit_with(|| TraceEvent::CacheAccess {
                    key: key.clone(),
                    outcome: "churned",
                });
                if admitted < self.admission.budget() {
                    let item = ExecItem {
                        key: key.clone(),
                        query: entry.query,
                        waiters: Vec::new(),
                    };
                    // Re-infer by the entry's own query type. Only
                    // verdict-bearing inferences can be contradicted, so
                    // anything else stays evicted until re-queried.
                    let outcome = match &item.query {
                        Query::FccdClassify { .. } => {
                            self.execute_fccd(sim, std::slice::from_ref(&item)).pop()
                        }
                        Query::WbdResidue { calib_pages } => {
                            Some(self.execute_wbd(sim, *calib_pages))
                        }
                        _ => None,
                    };
                    if let Some((reply, verdicts)) = outcome {
                        admitted += 1;
                        self.stats.admitted += 1;
                        self.stats.reinfers += 1;
                        tick.reinfers += 1;
                        trace::emit_with(|| TraceEvent::CacheAccess {
                            key: key.clone(),
                            outcome: "reinfer",
                        });
                        self.finish_item(sim, &item, reply, verdicts, now);
                    }
                }
            }
        }

        // Phase 5: the scheduler's own interference guard moves the
        // query-admission budget, AIMD-style.
        let waves = self.sched.take_waves();
        self.stats.waves += waves.len() as u64;
        self.admission
            .observe_waves(&waves, self.cfg.sched.guard.cv_threshold);
        tick.budget = self.admission.budget();
        tick
    }

    /// Runs a batch of FCCD classifications through the shared scheduler:
    /// submit every item's plans, dispatch once, fold each. Returns one
    /// `(reply, verdicts)` per item, in order.
    fn execute_fccd(
        &mut self,
        sim: &mut Sim,
        items: &[ExecItem],
    ) -> Vec<(Reply, BTreeMap<String, bool>)> {
        if items.is_empty() {
            return Vec::new();
        }
        let mut submitted = Vec::with_capacity(items.len());
        for item in items {
            let Query::FccdClassify { files } = &item.query else {
                unreachable!("execute_fccd takes FCCD items only");
            };
            let mut params = self.cfg.fccd.clone();
            if self.cfg.decorrelate_seeds {
                params.seed ^= self.fccd_execs.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
            self.fccd_execs += 1;
            let sub_batch = self.cfg.sched.sub_batch;
            let fleet = sim.run_one(move |os| FccdFleet::with_fixed_seed(os, params, sub_batch));
            let pending = fleet.submit_files(&mut self.sched, files);
            submitted.push((fleet, pending));
        }
        self.sched.dispatch(&mut SimExecutor::new(sim));
        items
            .iter()
            .zip(submitted)
            .map(|(item, (fleet, pending))| {
                // Fold (and emit `Classified` events) on the lane of the
                // tenant that triggered the execution, when there is one.
                let lane = item
                    .waiters
                    .first()
                    .map(|(tenant, _)| self.tenants[*tenant].lane);
                let _scope = lane.map(trace::lane_scope);
                let classified = classify_ranks(fleet.fold_files(&mut self.sched, pending));
                let mut verdicts = BTreeMap::new();
                for rank in &classified.cached {
                    verdicts.insert(rank.path.clone(), true);
                }
                for rank in &classified.uncached {
                    verdicts.insert(rank.path.clone(), false);
                }
                let reply = Reply::Classified {
                    cached: classified.cached,
                    uncached: classified.uncached,
                    separation: classified.separation,
                };
                (reply, verdicts)
            })
            .collect()
    }

    /// Pools every allocation request of the tick behind one
    /// `MacAdmissionQueue` probe pass. Grants are measured and released —
    /// the reply reports the admitted size.
    fn execute_allocs(&mut self, sim: &mut Sim, items: &[ExecItem]) -> Vec<Reply> {
        let requests: Vec<AdmissionRequest> = items
            .iter()
            .map(|item| {
                let Query::GbAlloc { min, max, multiple } = &item.query else {
                    unreachable!("execute_allocs takes allocation items only");
                };
                AdmissionRequest {
                    min: *min,
                    max: *max,
                    multiple: (*multiple).max(1),
                }
            })
            .collect();
        let params = self.cfg.mac.clone();
        sim.run_one(move |os| {
            let mac = Mac::new(os, params);
            let mut queue = MacAdmissionQueue::new();
            for req in &requests {
                queue.submit(*req);
            }
            match queue.admit_all(&mac) {
                Err(e) => vec![Reply::Failed(e.to_string()); requests.len()],
                Ok(grants) => grants
                    .into_iter()
                    .map(|grant| match grant {
                        None => Reply::Granted { bytes: 0 },
                        Some(alloc) => {
                            let bytes = alloc.bytes;
                            match mac.gb_free(alloc) {
                                Ok(()) => Reply::Granted { bytes },
                                Err(e) => Reply::Failed(e.to_string()),
                            }
                        }
                    })
                    .collect(),
            }
        })
    }

    /// Runs one WBD residue estimate. The first timed `sync` both observes
    /// and drains the system's dirty residue, so it runs *before*
    /// calibration — whose own drain `sync` would otherwise flush the very
    /// pages the query asks about. Calibration then learns the clean
    /// intercept and per-page slope on the now-clean system, and the first
    /// observation converts to pages after the fact. Publishes the
    /// [`WBD_DIRTY_VERDICT`] verdict, so a cached dirty/clean answer is
    /// churned out when a later pass contradicts it.
    fn execute_wbd(&mut self, sim: &mut Sim, calib_pages: u64) -> (Reply, BTreeMap<String, bool>) {
        let params = WbdParams {
            calib_pages: calib_pages.max(1),
            ..WbdParams::default()
        };
        let outcome = sim.run_one(move |os| -> graybox::os::OsResult<u64> {
            let wbd = Wbd::new(os, params);
            let observed = wbd.sync_cost()?;
            let cal = wbd.calibrate()?;
            // Unlinking the calibration scratch file dirties metadata
            // pages *after* calibration's last sync; drain them so the
            // daemon's own probe is not the residue the next one finds.
            os.sync()?;
            Ok(cal.estimate_pages(observed))
        });
        match outcome {
            Ok(pages) => {
                let mut verdicts = BTreeMap::new();
                verdicts.insert(WBD_DIRTY_VERDICT.to_string(), pages > 0);
                (Reply::Residue { pages }, verdicts)
            }
            Err(e) => (Reply::Failed(e.to_string()), BTreeMap::new()),
        }
    }

    /// Posts `reply` to every waiter of `item` and caches it if eligible.
    /// `drained_at` is the tick's drain instant: the difference to the
    /// posting instant is the waiter's virtual-time service latency.
    fn finish_item(
        &mut self,
        sim: &Sim,
        item: &ExecItem,
        reply: Reply,
        verdicts: BTreeMap<String, bool>,
        drained_at: Nanos,
    ) {
        let served_at = sim.now();
        let latency_ns = served_at.as_nanos().saturating_sub(drained_at.as_nanos());
        if item.query.cacheable() && !matches!(reply, Reply::Failed(_)) {
            let evicted = self.cache.insert(
                item.key.clone(),
                CacheEntry {
                    query: item.query.clone(),
                    reply: reply.clone(),
                    stored_at: served_at,
                    verdicts,
                },
            );
            self.stats.capacity_evictions += evicted.len() as u64;
            for key in evicted {
                trace::emit_with(|| TraceEvent::CacheAccess {
                    key,
                    outcome: "evicted",
                });
            }
        }
        for (tenant, ticket) in &item.waiters {
            let t = &mut self.tenants[*tenant];
            t.stats.latency.record(latency_ns);
            let _lane = trace::lane_scope(t.lane);
            let _span = trace::span("tenant", || t.name.clone());
            self.mailbox.reply(
                *ticket,
                Response {
                    reply: reply.clone(),
                    from_cache: false,
                    served_at,
                },
            );
        }
    }

    /// Captures the daemon's service-level metrics as of `at` (virtual
    /// time). This is what [`Query::MetricsSnapshot`] answers with; it is
    /// also directly callable between ticks for dashboards.
    pub fn metrics_snapshot(&self, at: Nanos) -> GbdMetrics {
        GbdMetrics {
            at,
            stats: self.stats,
            cache_len: self.cache.len(),
            admission_budget: self.admission.budget(),
            admission_backoffs: self.admission.backoffs(),
            policy: self.policy.name(),
            tenants: self
                .tenants
                .iter()
                .map(|t| TenantMetrics {
                    name: t.name.clone(),
                    lane: t.lane,
                    queries: t.stats.queries,
                    hits: t.stats.hits,
                    shed: t.stats.shed,
                    latency: t.stats.latency.clone(),
                })
                .collect(),
        }
    }
}

/// One tenant's row in a [`GbdMetrics`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantMetrics {
    /// The tenant's registered name.
    pub name: String,
    /// The tenant's gray-trace lane.
    pub lane: u64,
    /// Queries submitted.
    pub queries: u64,
    /// Served from cache.
    pub hits: u64,
    /// Shed by admission.
    pub shed: u64,
    /// Virtual-time service latency histogram (ns).
    pub latency: Log2Histogram,
}

/// The daemon's service-level snapshot: the answer to
/// [`Query::MetricsSnapshot`] and the model behind [`render_gray_top`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GbdMetrics {
    /// Virtual instant the snapshot was taken.
    pub at: Nanos,
    /// Cumulative daemon counters.
    pub stats: GbdStats,
    /// Live inference-cache entries.
    pub cache_len: usize,
    /// Live admission budget (ceiling minus AIMD backoff).
    pub admission_budget: usize,
    /// Times admission backed off.
    pub admission_backoffs: u64,
    /// The staleness policy's name.
    pub policy: &'static str,
    /// Per-tenant rows, in registration order.
    pub tenants: Vec<TenantMetrics>,
}

impl GbdMetrics {
    /// Renders the snapshot as one JSON object (hand-rolled, sorted
    /// struct order, deterministic). Tenant latency histograms export
    /// their count and coarse p50/p99 bounds.
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "{{\"at_ns\":{},\"policy\":\"{}\",\"ticks\":{},\"queries\":{},\"hits\":{},\
             \"coalesced\":{},\"shed\":{},\"expired\":{},\"invalidated\":{},\"reinfers\":{},\
             \"capacity_evictions\":{},\"admitted\":{},\"waves\":{},\"cache_len\":{},\
             \"admission_budget\":{},\"admission_backoffs\":{},\"tenants\":[",
            self.at.as_nanos(),
            self.policy,
            s.ticks,
            s.queries,
            s.hits,
            s.coalesced,
            s.shed,
            s.expired,
            s.invalidated,
            s.reinfers,
            s.capacity_evictions,
            s.admitted,
            s.waves,
            self.cache_len,
            self.admission_budget,
            self.admission_backoffs,
        );
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"lane\":{},\"queries\":{},\"hits\":{},\"shed\":{},\
                 \"latency_count\":{},\"latency_p50_ns\":{},\"latency_p99_ns\":{}}}",
                t.name,
                t.lane,
                t.queries,
                t.hits,
                t.shed,
                t.latency.count(),
                t.latency.percentile_bound(50.0),
                t.latency.percentile_bound(99.0),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Renders a `gray-top`-style text dashboard from a metrics snapshot:
/// daemon-wide counters up top, one row per tenant with hit rate and
/// coarse latency percentiles below. Pure formatting — feed it
/// consecutive snapshots for a live view.
pub fn render_gray_top(m: &GbdMetrics) -> String {
    use std::fmt::Write as _;
    let s = &m.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "gray-top  virtual {:.3}s  tick {}  policy {}",
        m.at.as_nanos() as f64 / 1e9,
        s.ticks,
        m.policy
    );
    let hit_rate = if s.queries > 0 {
        s.hits as f64 * 100.0 / s.queries as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "queries {}  hits {} ({hit_rate:.1}%)  coalesced {}  shed {}  admitted {}",
        s.queries, s.hits, s.coalesced, s.shed, s.admitted
    );
    let _ = writeln!(
        out,
        "cache {} entries  expired {}  churned {}  reinfers {}  evicted {}",
        m.cache_len, s.expired, s.invalidated, s.reinfers, s.capacity_evictions
    );
    let _ = writeln!(
        out,
        "admission budget {}  backoffs {}  waves {}",
        m.admission_budget, m.admission_backoffs, s.waves
    );
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>6} {:>6} {:>12} {:>12}",
        "tenant", "queries", "hits", "hit%", "shed", "p50(ns)", "p99(ns)"
    );
    for t in &m.tenants {
        let rate = if t.queries > 0 {
            t.hits as f64 * 100.0 / t.queries as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>8} {:>5.1}% {:>6} {:>12} {:>12}",
            t.name,
            t.queries,
            t.hits,
            rate,
            t.shed,
            t.latency.percentile_bound(50.0),
            t.latency.percentile_bound(99.0),
        );
    }
    out
}
