//! gbd — the long-running multi-tenant gray-box inference daemon.
//!
//! Everything else in the workspace is one-shot: a figure driver builds
//! its ICLs, probes, prints, exits. Nothing amortizes inference across
//! clients, even though the paper's ICL vision implies exactly that — and
//! prior work shows why a central service is the right shape: many
//! concurrent observers of one page cache interfere with each other, so
//! the observing should happen *once*, in a daemon clients query instead
//! of probing themselves.
//!
//! `gbd` is that daemon:
//!
//! - **One scheduler, many tenants.** Every tenant's FCCD probe plans
//!   submit to one shared `gray-sched` [`Scheduler`](gray_sched::Scheduler)
//!   and dispatch together, so independent queries pool into shared waves
//!   and the AIMD self-interference guard judges the *combined* load.
//! - **An inference cache with pluggable staleness.** Repeated queries
//!   are answered from cache under a [`StalenessPolicy`]: [`TtlOnly`]
//!   serves entries until they age out; [`ChurnAware`] additionally
//!   evicts (and re-infers) any entry a fresh probe pass contradicts.
//! - **Admission over its own load.** A per-tick AIMD budget — halved
//!   when the scheduler's guard sees probes interfering, recovered one
//!   slot per clean tick — sheds excess queries instead of letting the
//!   daemon invalidate its own measurements.
//! - **A trace lane per tenant.** Each tenant gets its own gray-trace
//!   lane; daemon-side events (cache accesses, admission decisions,
//!   classification verdicts) carry the lane of the tenant they serve, so
//!   per-client telemetry falls out of the PR 5 tracer for free.
//!
//! Tunables (`gbd.cache_ttl`, `gbd.max_tenants`, `gbd.admission_budget`,
//! `gbd.cache_capacity`) come from the shared parameter repository, like
//! the `sched.*` and `fccd.*` keys before them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod daemon;

use gray_sched::SchedConfig;
use gray_toolbox::repository::keys;
use gray_toolbox::{GrayDuration, ParamRepository};
use graybox::fccd::FccdParams;
use graybox::mac::MacParams;

pub use admission::QueryAdmission;
pub use cache::{CacheEntry, ChurnAware, Disposition, InferenceCache, StalenessPolicy, TtlOnly};
pub use daemon::{
    render_gray_top, Gbd, GbdClient, GbdMetrics, GbdStats, Query, Reply, Response, Tenant,
    TenantMetrics, TickStats, WBD_DIRTY_VERDICT,
};

use std::fmt;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct GbdConfig {
    /// Inference-cache entry lifetime, in virtual time (`gbd.cache_ttl`).
    pub cache_ttl: GrayDuration,
    /// Most tenants the daemon registers (`gbd.max_tenants`).
    pub max_tenants: usize,
    /// Probe-needing queries admitted per tick at full budget
    /// (`gbd.admission_budget`); the live budget moves AIMD-style below.
    pub admission_budget: usize,
    /// Most inference-cache entries held at once (`gbd.cache_capacity`);
    /// inserting past it evicts the oldest-stamped entries. The default
    /// is far above any benchmark's working set, so the bound only bites
    /// on genuinely long-running daemons.
    pub cache_capacity: usize,
    /// FCCD planner parameters shared by every tenant's queries.
    pub fccd: FccdParams,
    /// MAC parameters for estimates and pooled allocations.
    pub mac: MacParams,
    /// Shared probe-scheduler configuration (concurrency cap, sub-batch,
    /// interference guard).
    pub sched: SchedConfig,
    /// Mix an execution counter into the FCCD probe-offset seed so
    /// repeated inferences of the same files draw different offsets.
    /// Off by default: with one seed the daemon's answers are
    /// bit-identical to the direct one-shot path, which the equivalence
    /// tests pin.
    pub decorrelate_seeds: bool,
}

impl Default for GbdConfig {
    fn default() -> Self {
        GbdConfig {
            cache_ttl: GrayDuration::from_millis(250),
            max_tenants: 64,
            admission_budget: 8,
            cache_capacity: 4096,
            fccd: FccdParams::default(),
            mac: MacParams::default(),
            sched: SchedConfig::default(),
            decorrelate_seeds: false,
        }
    }
}

impl GbdConfig {
    /// Builds a config from the parameter repository, falling back to the
    /// defaults above for absent or zero keys (each absent read emits a
    /// `RepositoryMiss` trace event, like every repository consumer).
    /// `sched.*` and `fccd.*` keys are honoured through their own
    /// `from_repository` constructors.
    pub fn from_repository(repo: &ParamRepository) -> Self {
        let mut cfg = GbdConfig {
            fccd: FccdParams::from_repository(repo),
            sched: SchedConfig::from_repository(repo),
            ..GbdConfig::default()
        };
        if let Ok(Some(ttl)) = repo.get_duration(keys::GBD_CACHE_TTL) {
            if ttl.as_nanos() > 0 {
                cfg.cache_ttl = ttl;
            }
        }
        if let Ok(Some(n)) = repo.get_u64(keys::GBD_MAX_TENANTS) {
            if n > 0 {
                cfg.max_tenants = n as usize;
            }
        }
        if let Ok(Some(b)) = repo.get_u64(keys::GBD_ADMISSION_BUDGET) {
            if b > 0 {
                cfg.admission_budget = b as usize;
            }
        }
        if let Ok(Some(cap)) = repo.get_u64(keys::GBD_CACHE_CAPACITY) {
            if cap > 0 {
                cfg.cache_capacity = cap as usize;
            }
        }
        cfg
    }

    /// The TTL-only staleness policy at this config's TTL.
    pub fn ttl_policy(&self) -> TtlOnly {
        TtlOnly {
            ttl: self.cache_ttl,
        }
    }

    /// The churn-aware staleness policy at this config's TTL.
    pub fn churn_policy(&self) -> ChurnAware {
        ChurnAware {
            ttl: self.cache_ttl,
        }
    }
}

/// Daemon errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GbdError {
    /// `register_tenant` was called with `gbd.max_tenants` tenants live.
    TenantLimit {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for GbdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GbdError::TenantLimit { limit } => {
                write!(f, "tenant limit reached ({limit} tenants)")
            }
        }
    }
}

impl std::error::Error for GbdError {}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::scenario;

    fn small_cfg() -> GbdConfig {
        GbdConfig {
            fccd: FccdParams {
                access_unit: 1 << 20,
                prediction_unit: 256 << 10,
                ..FccdParams::default()
            },
            sched: SchedConfig {
                sub_batch: 0,
                ..SchedConfig::default()
            },
            ..GbdConfig::default()
        }
    }

    #[test]
    fn config_reads_gbd_keys_with_defaults() {
        let mut repo = ParamRepository::in_memory();
        repo.set_duration(keys::GBD_CACHE_TTL, GrayDuration::from_millis(75));
        repo.set_raw(keys::GBD_MAX_TENANTS, 3u64);
        repo.set_raw(keys::GBD_ADMISSION_BUDGET, 5u64);
        repo.set_raw(keys::GBD_CACHE_CAPACITY, 128u64);
        let cfg = GbdConfig::from_repository(&repo);
        assert_eq!(cfg.cache_ttl, GrayDuration::from_millis(75));
        assert_eq!(cfg.max_tenants, 3);
        assert_eq!(cfg.admission_budget, 5);
        assert_eq!(cfg.cache_capacity, 128);
        let dflt = GbdConfig::from_repository(&ParamRepository::in_memory());
        assert_eq!(dflt.cache_ttl, GbdConfig::default().cache_ttl);
        assert_eq!(dflt.max_tenants, GbdConfig::default().max_tenants);
        assert_eq!(dflt.admission_budget, GbdConfig::default().admission_budget);
        assert_eq!(dflt.cache_capacity, GbdConfig::default().cache_capacity);
    }

    #[test]
    fn absent_gbd_keys_emit_repository_misses() {
        use gray_toolbox::trace::{self, TraceEvent};
        let guard = trace::capture();
        let lane = guard.lane();
        let _ = GbdConfig::from_repository(&ParamRepository::in_memory());
        let misses: Vec<String> = trace::drain()
            .into_iter()
            .filter(|r| r.lane == lane)
            .filter_map(|r| match r.event {
                TraceEvent::RepositoryMiss { key } => Some(key),
                _ => None,
            })
            .collect();
        for key in [
            keys::GBD_CACHE_TTL,
            keys::GBD_MAX_TENANTS,
            keys::GBD_ADMISSION_BUDGET,
            keys::GBD_CACHE_CAPACITY,
        ] {
            assert!(misses.iter().any(|k| k == key), "no miss for {key}");
        }
    }

    #[test]
    fn tenant_limit_is_enforced() {
        let cfg = GbdConfig {
            max_tenants: 2,
            ..small_cfg()
        };
        let policy = cfg.ttl_policy();
        let mut gbd = Gbd::new(cfg, Box::new(policy));
        assert!(gbd.register_tenant("a").is_ok());
        assert!(gbd.register_tenant("b").is_ok());
        assert_eq!(
            gbd.register_tenant("c").unwrap_err(),
            GbdError::TenantLimit { limit: 2 }
        );
    }

    #[test]
    fn repeated_queries_hit_the_cache_and_coalesce() {
        let cfg = small_cfg();
        let policy = cfg.churn_policy();
        let mut gbd = Gbd::new(cfg, Box::new(policy));
        let mut sim = scenario::daemon_machine(2, 4);
        let files = scenario::spread_corpus(&mut sim, 2, 2, 512 << 10);
        scenario::warm(&mut sim, &files[..2]);

        let a = gbd.register_tenant("a").unwrap();
        let b = gbd.register_tenant("b").unwrap();
        let q = Query::FccdClassify {
            files: files.clone(),
        };
        // Tick 1: identical queries from two tenants coalesce onto one
        // execution; both get the same answer.
        let ta = a.submit(q.clone());
        let tb = b.submit(q.clone());
        let tick = gbd.serve(&mut sim);
        assert_eq!(tick.queries, 2);
        assert_eq!(tick.executed, 1);
        assert_eq!(tick.coalesced, 1);
        let ra = a.take(ta).expect("served");
        let rb = b.take(tb).expect("served");
        assert_eq!(ra.reply, rb.reply);
        assert!(!ra.from_cache);

        // Tick 2: the same query is a cache hit — no execution at all.
        let ta2 = a.submit(q);
        let tick = gbd.serve(&mut sim);
        assert_eq!((tick.hits, tick.executed), (1, 0));
        let ra2 = a.take(ta2).expect("served");
        assert!(ra2.from_cache);
        assert_eq!(ra2.reply, ra.reply);
        assert_eq!(gbd.stats().hits, 1);
        assert_eq!(gbd.stats().coalesced, 1);
    }

    #[test]
    fn wbd_residue_entries_are_churned_by_contradicting_passes() {
        use graybox::os::GrayBoxOs;
        let cfg = small_cfg();
        let policy = cfg.churn_policy();
        let mut gbd = Gbd::new(cfg, Box::new(policy));
        let mut sim = scenario::daemon_machine(2, 4);
        let t = gbd.register_tenant("t").unwrap();

        // A tenant-side workload dirties pages nobody syncs.
        sim.run_one(|os| {
            let page = os.page_size();
            let fd = os.create("/dirty").unwrap();
            os.write_fill(fd, 0, 16 * page).unwrap();
            os.close(fd).unwrap();
        });

        // Tick 1: the residue query sees the dirty pages (and, the probe
        // being a timed sync, drains them). The answer is cached with its
        // dirty verdict.
        let q = Query::WbdResidue { calib_pages: 8 };
        let t1 = t.submit(q.clone());
        gbd.serve(&mut sim);
        let r1 = t.take(t1).expect("served");
        let Reply::Residue { pages } = r1.reply else {
            panic!("expected residue, got {:?}", r1.reply);
        };
        assert!(pages > 0, "dirty residue visible to the first pass");

        // Tick 2: a residue query with a *different* cache key runs fresh
        // on the now-clean system and publishes the contradicting verdict;
        // the churn-aware policy evicts the stale entry and re-infers it.
        let t2 = t.submit(Query::WbdResidue { calib_pages: 4 });
        let tick = gbd.serve(&mut sim);
        let r2 = t.take(t2).expect("served");
        assert_eq!(r2.reply, Reply::Residue { pages: 0 });
        assert_eq!(tick.reinfers, 1);
        assert_eq!(gbd.stats().invalidated, 1);

        // Tick 3: the original query hits the cache with the re-inferred
        // clean answer, not the stale dirty one.
        let t3 = t.submit(q);
        let tick = gbd.serve(&mut sim);
        assert_eq!((tick.hits, tick.executed), (1, 0));
        let r3 = t.take(t3).expect("served");
        assert!(r3.from_cache);
        assert_eq!(r3.reply, Reply::Residue { pages: 0 });
    }

    #[test]
    fn cache_capacity_pressure_evicts_oldest_and_is_bounded() {
        let cfg = GbdConfig {
            cache_capacity: 2,
            ..small_cfg()
        };
        let policy = cfg.ttl_policy();
        let mut gbd = Gbd::new(cfg, Box::new(policy));
        let mut sim = scenario::daemon_machine(3, 4);
        let files = scenario::spread_corpus(&mut sim, 3, 2, 128 << 10);
        let c = gbd.register_tenant("t").unwrap();
        // Three distinct cacheable queries in separate ticks: the third
        // insert displaces the oldest entry instead of growing the cache.
        for i in 0..3 {
            let t = c.submit(Query::FccdClassify {
                files: files[i * 2..i * 2 + 2].to_vec(),
            });
            gbd.serve(&mut sim);
            assert!(c.take(t).expect("served").reply != Reply::Shed);
            assert!(gbd.cache_len() <= 2, "capacity bound respected");
        }
        assert_eq!(gbd.cache_len(), 2);
        assert!(gbd.stats().capacity_evictions >= 1, "oldest entry evicted");
        // The two *newest* queries are still cache hits.
        let t = c.submit(Query::FccdClassify {
            files: files[4..6].to_vec(),
        });
        let tick = gbd.serve(&mut sim);
        assert_eq!((tick.hits, tick.executed), (1, 0));
        assert!(c.take(t).expect("served").from_cache);
    }

    #[test]
    fn over_budget_queries_are_shed() {
        let cfg = GbdConfig {
            admission_budget: 1,
            ..small_cfg()
        };
        let policy = cfg.ttl_policy();
        let mut gbd = Gbd::new(cfg, Box::new(policy));
        let mut sim = scenario::daemon_machine(2, 4);
        let files = scenario::spread_corpus(&mut sim, 2, 2, 256 << 10);
        let c = gbd.register_tenant("t").unwrap();
        // Two *distinct* probe-needing queries, budget 1: second sheds.
        let t0 = c.submit(Query::FccdClassify {
            files: files[..2].to_vec(),
        });
        let t1 = c.submit(Query::FccdClassify {
            files: files[2..].to_vec(),
        });
        let tick = gbd.serve(&mut sim);
        assert_eq!((tick.executed, tick.shed), (1, 1));
        assert!(matches!(
            c.take(t0).expect("served").reply,
            Reply::Classified { .. }
        ));
        assert_eq!(c.take(t1).expect("served").reply, Reply::Shed);
        // FLDC needs no probes: it is served even at budget 0 pressure.
        let t2 = c.submit(Query::FldcOrder {
            dir: "/".to_string(),
        });
        gbd.serve(&mut sim);
        assert!(matches!(
            c.take(t2).expect("served").reply,
            Reply::Layout { .. }
        ));
    }

    #[test]
    fn mac_queries_answer_and_allocs_pool() {
        let cfg = small_cfg();
        let policy = cfg.ttl_policy();
        let mut gbd = Gbd::new(cfg, Box::new(policy));
        let mut sim = scenario::daemon_machine(2, 2);
        let c = gbd.register_tenant("t").unwrap();
        let mb = 1u64 << 20;
        let t0 = c.submit(Query::MacAvailable { ceiling: 16 * mb });
        let t1 = c.submit(Query::GbAlloc {
            min: mb,
            max: 8 * mb,
            multiple: mb,
        });
        let t2 = c.submit(Query::GbAlloc {
            min: mb,
            max: 8 * mb,
            multiple: mb,
        });
        gbd.serve(&mut sim);
        let Reply::Available { bytes } = c.take(t0).expect("served").reply else {
            panic!("expected an estimate");
        };
        assert!(bytes > 0, "idle machine has memory available");
        for t in [t1, t2] {
            let Reply::Granted { bytes } = c.take(t).expect("served").reply else {
                panic!("expected a grant");
            };
            assert!(bytes >= mb, "idle machine admits the minimum");
        }
    }

    #[test]
    fn metrics_snapshot_rides_the_query_path() {
        let cfg = small_cfg();
        let policy = cfg.churn_policy();
        let mut gbd = Gbd::new(cfg, Box::new(policy));
        let mut sim = scenario::daemon_machine(2, 4);
        let files = scenario::spread_corpus(&mut sim, 2, 2, 512 << 10);
        scenario::warm(&mut sim, &files[..2]);
        let a = gbd.register_tenant("alice").unwrap();
        let b = gbd.register_tenant("bob").unwrap();

        // A miss, then a hit, so both latency regimes are on record.
        let q = Query::FccdClassify {
            files: files.clone(),
        };
        let t1 = a.submit(q.clone());
        gbd.serve(&mut sim);
        let _ = a.take(t1);
        let t2 = a.submit(q);
        gbd.serve(&mut sim);
        let _ = a.take(t2);

        let before = sim.now();
        let tm = b.submit(Query::MetricsSnapshot);
        let tick = gbd.serve(&mut sim);
        assert_eq!(
            sim.now(),
            before,
            "a metrics snapshot is free of virtual cost"
        );
        let Reply::Metrics(m) = b.take(tm).expect("served").reply else {
            panic!("expected a metrics reply");
        };
        // The snapshot agrees with the daemon's own accounting, taken
        // after the tick that served it.
        assert_eq!(m.stats, *gbd.stats());
        assert_eq!(m.cache_len, gbd.cache_len());
        assert_eq!(m.tenants.len(), 2);
        let alice = &m.tenants[0];
        assert_eq!(alice.name, "alice");
        assert_eq!(alice.queries, 2);
        assert_eq!(alice.hits, 1);
        // Both the miss and the hit recorded a latency sample; the hit
        // is instantaneous, the miss is not.
        assert_eq!(alice.latency.count(), 2);
        assert!(alice.latency.percentile_bound(99.0) > 0);
        assert_eq!(tick.queries, 1);

        // The human and machine renderings carry the same story.
        let top = render_gray_top(&m);
        assert!(top.contains("alice") && top.contains("bob"), "{top}");
        let json = m.to_json();
        assert!(json.contains("\"name\":\"alice\""), "{json}");
        assert!(json.contains("\"latency_count\":2"), "{json}");

        // Identical snapshot queries must never be answered from cache.
        let tm2 = b.submit(Query::MetricsSnapshot);
        gbd.serve(&mut sim);
        let r2 = b.take(tm2).expect("served");
        assert!(!r2.from_cache, "metrics snapshots are never cached");
    }
}
