//! AIMD admission control over the daemon's own query load.
//!
//! The daemon's probes *are* load on the machine it is measuring: admit
//! every query and heavy traffic makes the probes time each other instead
//! of the OS (the self-interference the paper's ICLs individually guard
//! against, multiplied by tenancy). So the daemon applies MAC-style
//! admission to itself: a per-tick budget of probe-needing queries, moved
//! AIMD-fashion by the probe scheduler's own interference guard — the
//! same signal that already halves wave concurrency. A wave judged
//! self-interfering halves the budget (queries over budget are *shed*,
//! not queued — the client retries, as in `gb_alloc`'s deny); a tick of
//! clean waves recovers one slot, up to the configured ceiling.

use gray_sched::WaveStat;
use gray_toolbox::trace::{self, TraceEvent};

/// The AIMD query budget.
#[derive(Debug, Clone)]
pub struct QueryAdmission {
    ceiling: usize,
    budget: usize,
    backoffs: u64,
}

impl QueryAdmission {
    /// Creates a budget that starts at its ceiling (`gbd.admission_budget`).
    pub fn new(ceiling: usize) -> Self {
        let ceiling = ceiling.max(1);
        QueryAdmission {
            ceiling,
            budget: ceiling,
            backoffs: 0,
        }
    }

    /// The live per-tick budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The configured recovery ceiling.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }

    /// How many times the budget has been halved.
    pub fn backoffs(&self) -> u64 {
        self.backoffs
    }

    /// Feeds one tick's wave statistics to the AIMD rule. Any wave whose
    /// probe-time dispersion crossed `cv_threshold` halves the budget
    /// (floored at 1) and emits a `ThresholdCrossed`; a tick of clean
    /// waves recovers one slot toward the ceiling. Returns whether the
    /// budget backed off.
    pub fn observe_waves(&mut self, waves: &[WaveStat], cv_threshold: f64) -> bool {
        let worst = waves
            .iter()
            .filter(|w| w.plans >= 2)
            .map(|w| w.cv)
            .fold(0.0f64, f64::max);
        if worst > cv_threshold {
            self.budget = (self.budget / 2).max(1);
            self.backoffs += 1;
            trace::emit_with(|| TraceEvent::ThresholdCrossed {
                what: "gbd.admission.backoff",
                value: worst,
                threshold: cv_threshold,
            });
            true
        } else {
            if !waves.is_empty() && self.budget < self.ceiling {
                self.budget += 1;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(plans: usize, cv: f64) -> WaveStat {
        WaveStat {
            plans,
            concurrency: plans,
            span: None,
            cv,
        }
    }

    #[test]
    fn halves_on_dispersion_and_recovers_additively() {
        let mut adm = QueryAdmission::new(8);
        assert_eq!(adm.budget(), 8);
        assert!(adm.observe_waves(&[wave(4, 0.9)], 0.5));
        assert_eq!(adm.budget(), 4);
        assert!(adm.observe_waves(&[wave(4, 0.1), wave(2, 0.8)], 0.5));
        assert_eq!(adm.budget(), 2);
        for expect in [3, 4, 5] {
            assert!(!adm.observe_waves(&[wave(4, 0.1)], 0.5));
            assert_eq!(adm.budget(), expect);
        }
        assert_eq!(adm.backoffs(), 2);
    }

    #[test]
    fn floors_at_one_and_caps_at_ceiling() {
        let mut adm = QueryAdmission::new(2);
        adm.observe_waves(&[wave(2, 0.9)], 0.5);
        adm.observe_waves(&[wave(2, 0.9)], 0.5);
        assert_eq!(adm.budget(), 1);
        for _ in 0..5 {
            adm.observe_waves(&[wave(2, 0.0)], 0.5);
        }
        assert_eq!(adm.budget(), 2, "never recovers past the ceiling");
    }

    #[test]
    fn idle_ticks_and_single_plan_waves_hold_steady() {
        let mut adm = QueryAdmission::new(4);
        adm.observe_waves(&[wave(4, 0.9)], 0.5);
        assert_eq!(adm.budget(), 2);
        // No waves at all: nothing to judge, budget holds.
        assert!(!adm.observe_waves(&[], 0.5));
        assert_eq!(adm.budget(), 2);
        // A single-plan wave cannot measure dispersion; it counts as clean.
        assert!(!adm.observe_waves(&[wave(1, 0.0)], 0.5));
        assert_eq!(adm.budget(), 3);
    }
}
