//! Property-based tests for the admission controller against the mock
//! OS, on the in-tree deterministic harness (`gray_toolbox::prop`).

use gray_toolbox::prop::{check, Gen};
use graybox::mac::{Mac, MacParams};
use graybox::mock::MockOs;

const PAGE: u64 = 4096;

fn params() -> MacParams {
    MacParams {
        initial_increment: 2 * PAGE,
        max_increment: 32 * PAGE,
        calibration_pages: 8,
        ..MacParams::default()
    }
}

/// On an otherwise-idle machine of arbitrary size, the estimate lands
/// within a sane band of the true capacity and never exceeds it by
/// more than one increment.
#[test]
fn estimate_tracks_capacity() {
    check("estimate_tracks_capacity", 24, |g: &mut Gen| {
        let capacity_pages = g.u64(48..512);
        let os = MockOs::new(16, capacity_pages as usize);
        let mac = Mac::new(&os, params());
        let est_pages = mac.available_estimate(capacity_pages * 4 * PAGE).unwrap() / PAGE;
        assert!(
            est_pages <= capacity_pages,
            "estimate {est_pages} exceeds capacity {capacity_pages}"
        );
        assert!(
            est_pages * 2 >= capacity_pages,
            "estimate {est_pages} below half of capacity {capacity_pages}"
        );
    });
}

/// `gb_alloc` honors its contract for arbitrary (min, max, multiple):
/// the result is a multiple in [min', max'] or a clean None — never a
/// panic, never a stray allocation left behind.
#[test]
fn gb_alloc_contract() {
    check("gb_alloc_contract", 24, |g: &mut Gen| {
        let min_pages = g.u64(0..64);
        let extra_pages = g.u64(0..64);
        let multiple_pages = g.u64(1..8);
        let os = MockOs::new(16, 128);
        let mac = Mac::new(&os, params());
        let min = min_pages * PAGE;
        let max = (min_pages + extra_pages) * PAGE;
        let multiple = multiple_pages * PAGE;
        let before = os.resident_anon_pages();
        if let Some(alloc) = mac.gb_alloc(min, max, multiple).unwrap() {
            assert_eq!(alloc.bytes % multiple, 0);
            assert!(alloc.bytes >= min.max(multiple));
            assert!(alloc.bytes <= max.max(multiple));
            mac.gb_free(alloc).unwrap();
        }
        assert_eq!(
            os.resident_anon_pages(),
            before,
            "no residual allocation may survive"
        );
    });
}

/// Fair allocation never returns more than the plain allocation would
/// and still respects the floor.
#[test]
fn fair_alloc_is_bounded_by_plain() {
    check("fair_alloc_is_bounded_by_plain", 24, |g: &mut Gen| {
        let peers = g.range(1u32..8);
        let os = MockOs::new(16, 256);
        let mac = Mac::new(&os, params());
        let plain = mac.gb_alloc(PAGE, 256 * PAGE, PAGE).unwrap().unwrap();
        let plain_bytes = plain.bytes;
        mac.gb_free(plain).unwrap();
        let fair = mac
            .gb_alloc_fair(PAGE, 256 * PAGE, PAGE, peers)
            .unwrap()
            .unwrap();
        assert!(fair.bytes <= plain_bytes + 32 * PAGE);
        if peers > 1 {
            assert!(
                fair.bytes <= plain_bytes / (peers as u64) + 48 * PAGE,
                "fair share too large: {} of {} for {} peers",
                fair.bytes,
                plain_bytes,
                peers
            );
        }
        mac.gb_free(fair).unwrap();
    });
}
