//! Property-based tests for the FCCD planner against the in-crate mock
//! OS, on the in-tree deterministic harness (`gray_toolbox::prop`).

use gray_toolbox::prop::{check, Gen};
use graybox::fccd::{Fccd, FccdParams};
use graybox::mock::MockOs;
use graybox::os::{GrayBoxOs, GrayBoxOsExt};

/// The plan's extents must partition [0, size) exactly: no gaps, no
/// overlap, regardless of file size, unit sizes, or alignment.
#[test]
fn plan_partitions_the_file() {
    check("plan_partitions_the_file", 64, |g: &mut Gen| {
        let size = g.u64(1..3_000_000);
        let access_kb = g.u64(1..512);
        let pred_div = g.u64(1..8);
        let align = g.select(&[1u64, 100, 512, 4096]);
        let access_unit = access_kb * 1024;
        let prediction_unit = (access_unit / pred_div).max(1);
        let os = MockOs::new(1 << 16, 16);
        os.write_file("/f", b"").unwrap();
        let fd = os.open("/f").unwrap();
        // Plan geometry is independent of content; probing an empty file
        // returns an empty plan, so plan over the declared size instead.
        let params = FccdParams {
            access_unit,
            prediction_unit,
            align,
            ..FccdParams::default()
        };
        let fccd = Fccd::new(&os, params);
        let units = fccd.access_units(size);
        // Partition: contiguous from 0, total = size.
        let mut expected_offset = 0u64;
        for &(off, len) in &units {
            assert_eq!(off, expected_offset);
            assert!(len > 0);
            expected_offset += len;
        }
        assert_eq!(expected_offset, size);
        // All boundaries except EOF are aligned.
        for &(off, _) in &units {
            assert_eq!(off % align, 0, "unaligned boundary at {}", off);
        }
        let _ = fd;
    });
}

/// With zero noise (the mock is deterministic), sorting by probe time
/// ranks every fully-resident unit strictly before every cold unit.
#[test]
fn resident_units_always_sort_first() {
    check("resident_units_always_sort_first", 64, |g: &mut Gen| {
        let units = g.usize(2..12);
        let warm_mask = g.range(1u32..4096);
        let unit_pages = 4u64;
        let os = MockOs::new(1 << 16, 16);
        let size = units as u64 * unit_pages * 4096;
        os.write_file("/f", &vec![0u8; size as usize]).unwrap();
        os.flush_cache();
        let mut warm = Vec::new();
        for u in 0..units {
            if warm_mask & (1 << u) != 0 {
                os.warm("/f", (u as u64 * unit_pages)..((u as u64 + 1) * unit_pages));
                warm.push(u as u64);
            }
        }
        let params = FccdParams {
            access_unit: unit_pages * 4096,
            prediction_unit: 4096,
            ..FccdParams::default()
        };
        let fd = os.open("/f").unwrap();
        let plan = Fccd::new(&os, params).plan_file(fd, size);
        let warm_count = warm.len();
        if warm_count < units {
            let ranked_units: Vec<u64> = plan
                .iter()
                .map(|e| e.offset / (unit_pages * 4096))
                .collect();
            for (rank, u) in ranked_units.iter().enumerate() {
                let is_warm = warm.contains(u);
                if rank < warm_count {
                    assert!(
                        is_warm,
                        "rank {rank} = unit {u} should be warm: {ranked_units:?}, warm {warm:?}"
                    );
                } else {
                    assert!(!is_warm, "cold ranks must follow warm ones");
                }
            }
        }
    });
}

/// order_files never loses or duplicates a path, whatever the input.
#[test]
fn order_files_is_a_permutation() {
    check("order_files_is_a_permutation", 64, |g: &mut Gen| {
        let present = g.vec(1..12, |g| g.bool());
        let os = MockOs::new(1 << 16, 16);
        let mut paths = Vec::new();
        for (i, &exists) in present.iter().enumerate() {
            let p = format!("/f{i}");
            if exists {
                os.write_file(&p, &vec![0u8; 8192]).unwrap();
            }
            paths.push(p);
        }
        let params = FccdParams {
            access_unit: 8192,
            prediction_unit: 4096,
            ..FccdParams::default()
        };
        let ranks = Fccd::new(&os, params).order_files(&paths);
        assert_eq!(ranks.len(), paths.len());
        let mut seen: Vec<String> = ranks.into_iter().map(|r| r.path).collect();
        seen.sort();
        let mut expected = paths.clone();
        expected.sort();
        assert_eq!(seen, expected);
    });
}
