//! FCCD — the File-Cache Content Detector (paper Section 4.1).
//!
//! FCCD lets an application discover which parts of which files are likely
//! resident in the OS file cache, so it can access cached data first and
//! avoid the LRU worst case of fetching everything from disk on every run.
//!
//! # Gray-box knowledge
//!
//! Only the coarsest assumption is made: *when the file cache is full, some
//! page must be replaced to fit a new one*, and replacement is LRU-like, so
//! spatially adjacent pages of a file tend to be cached or evicted together.
//! That correlation (the paper's Figure 1) is what makes sparse probing
//! sound: the presence of one page predicts the presence of its
//! neighborhood.
//!
//! # Method
//!
//! A *probe* is a timed `read` of a single byte. Probes are expensive on a
//! miss (a real disk access) and destructive (the probed page is pulled into
//! the cache — the *Heisenberg effect*), so FCCD probes sparsely: one random
//! byte per *prediction unit* (default 5 MB), grouped into *access units*
//! (default 20 MB, chosen by microbenchmark to amortize seeks). Access
//! units are then **sorted by total probe time** — deliberately avoiding any
//! absolute in-cache/on-disk threshold, so the same code works across
//! platforms and even across multi-level stores (memory, disk, tape: the
//! "closest" data simply sorts first).
//!
//! Probe offsets are *random* within each prediction unit: fixed offsets
//! would be self-confounding, because a previous probe (by this process or a
//! concurrent one) leaves exactly the probed page cached and a re-probe
//! would then report the whole unit resident.
//!
//! All of a file's probes are planned up front (offsets drawn in one RNG
//! borrow) and issued as a single [`GrayBoxOs::probe_batch`] call, which
//! backends service with amortized dispatch. Batching changes neither which
//! pages are touched nor their order, so the Heisenberg footprint is the
//! same as the scalar loop's.

use std::cell::RefCell;

use gray_toolbox::rng::StdRng;
use gray_toolbox::rng::{RngExt, SeedableRng};
use gray_toolbox::trace::{self, TraceEvent, Verdict};
use gray_toolbox::{two_means, GrayDuration};

use crate::os::{Fd, GrayBoxOs, OsResult, ProbeSample, ProbeSpec};
use crate::technique::{Technique, TechniqueInventory};

/// Tuning parameters for the detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FccdParams {
    /// Size of the access unit: the granularity in which reordered data is
    /// returned to the application. The paper's microbenchmark found 20 MB
    /// delivers near-peak disk bandwidth.
    pub access_unit: u64,
    /// Size of the prediction unit: one probe is issued per this many
    /// bytes. The paper uses 5 MB (four probes per access unit), finding a
    /// few probes per access unit "slightly more robust" than one.
    pub prediction_unit: u64,
    /// Record alignment: extent boundaries are snapped down to a multiple
    /// of this, so records never straddle two access units (the paper's
    /// fastsort passes 100 here).
    pub align: u64,
    /// How many times to probe each prediction unit; the minimum time is
    /// kept. More rounds increase confidence against interrupt noise at the
    /// cost of more Heisenberg perturbation.
    pub probe_rounds: u32,
    /// Fake probe time reported for files too small to probe without
    /// pulling them entirely into the cache (smaller than one page). The
    /// paper returns "a fake high probe-time for them".
    pub small_file_penalty: GrayDuration,
    /// Seed for the probe-offset randomization.
    pub seed: u64,
}

impl Default for FccdParams {
    fn default() -> Self {
        FccdParams {
            access_unit: 20 << 20,
            prediction_unit: 5 << 20,
            align: 1,
            probe_rounds: 1,
            small_file_penalty: GrayDuration::from_millis(20),
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl FccdParams {
    /// Loads the access unit from a parameter repository if the
    /// microbenchmark has published one, keeping defaults otherwise.
    pub fn from_repository(repo: &gray_toolbox::ParamRepository) -> Self {
        let mut p = FccdParams::default();
        if let Ok(Some(au)) = repo.get_u64(gray_toolbox::repository::keys::ACCESS_UNIT_BYTES) {
            if au > 0 {
                p.access_unit = au;
                p.prediction_unit = (au / 4).max(1);
            }
        }
        p
    }

    /// Sets the record alignment (builder style).
    pub fn with_align(mut self, align: u64) -> Self {
        assert!(align > 0, "alignment must be positive");
        self.align = align;
        self
    }
}

/// A contiguous byte range of a file, in predicted-fastest-first order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Byte offset of the extent.
    pub offset: u64,
    /// Length of the extent in bytes.
    pub len: u64,
}

/// Probe measurements for one access unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitProbe {
    /// Byte offset of the access unit.
    pub offset: u64,
    /// Length of the access unit in bytes.
    pub len: u64,
    /// Sum of the probe times of the unit's prediction units.
    pub probe_time: GrayDuration,
    /// Number of probes issued into this unit.
    pub probes: u32,
}

/// The raw result of probing a file, in file order.
#[derive(Debug, Clone, Default)]
pub struct FileProbeReport {
    /// Per-access-unit measurements, ordered by offset.
    pub units: Vec<UnitProbe>,
}

impl FileProbeReport {
    /// Total number of probes issued (the Heisenberg footprint: at most
    /// this many pages were perturbed).
    pub fn total_probes(&self) -> u64 {
        self.units.iter().map(|u| u.probes as u64).sum()
    }

    /// Extents sorted fastest-first (ties broken by file offset, so the
    /// result is deterministic and as sequential as possible).
    pub fn plan(&self) -> Vec<Extent> {
        let mut order: Vec<&UnitProbe> = self.units.iter().collect();
        order.sort_by_key(|u| (u.probe_time, u.offset));
        order
            .into_iter()
            .map(|u| Extent {
                offset: u.offset,
                len: u.len,
            })
            .collect()
    }
}

/// A fully drawn probe plan for one file: every offset the probe pass
/// will touch, plus the shape needed to fold the resulting samples back
/// into a [`FileProbeReport`].
///
/// Plans are produced by [`FccdPlanner::draw_plan`] and are inert data —
/// they can be shipped to another process (a `gray-sched` worker) and
/// executed there, then folded by the planner that drew them. Files too
/// small to probe get an empty spec list and a single penalty unit, so
/// executing the plan touches nothing (no Heisenberg on tiny files).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FccdFilePlan {
    /// Every probe offset, in issue order (access unit, then prediction
    /// unit, then round) — exactly the order the scalar loop drew them.
    pub specs: Vec<ProbeSpec>,
    /// The access units `(offset, len)` the specs cover, in file order.
    pub units: Vec<(u64, u64)>,
    /// Probes issued into each access unit (0 for a penalty unit).
    pub unit_probes: Vec<u32>,
    /// Rounds per prediction unit (the fold keeps the minimum).
    pub rounds: u32,
}

/// The OS-free half of FCCD: draws probe plans and folds their samples.
///
/// [`Fccd`] owns one of these and executes plans inline; the `gray-sched`
/// scheduler uses a standalone planner to draw plans client-side, dispatch
/// them to worker processes, and fold the returned samples. Both paths
/// share this code, so a fixed seed places probes identically either way.
pub struct FccdPlanner {
    params: FccdParams,
    rng: RefCell<StdRng>,
}

impl FccdPlanner {
    /// Creates a planner whose probe offsets are decorrelated across runs
    /// by mixing `clock` (a reading of the backend clock) into the seed —
    /// the same defense [`Fccd::new`] applies.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (zero-sized units, or a
    /// prediction unit larger than the access unit).
    pub fn new(params: FccdParams, clock: gray_toolbox::Nanos) -> Self {
        assert!(params.access_unit > 0, "access unit must be positive");
        assert!(
            params.prediction_unit > 0,
            "prediction unit must be positive"
        );
        assert!(
            params.prediction_unit <= params.access_unit,
            "prediction unit cannot exceed the access unit"
        );
        assert!(params.align > 0, "alignment must be positive");
        assert!(params.probe_rounds > 0, "at least one probe round");
        let seed = params
            .seed
            .wrapping_add(clock.as_nanos().wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let rng = RefCell::new(StdRng::seed_from_u64(seed));
        FccdPlanner { params, rng }
    }

    /// Creates a planner whose offsets depend *only* on `params.seed` —
    /// for tests and ablations needing bit-exact probe placement.
    pub fn with_fixed_seed(params: FccdParams) -> Self {
        let seed = params.seed;
        let mut planner = FccdPlanner::new(params, gray_toolbox::Nanos::ZERO);
        planner.rng = RefCell::new(StdRng::seed_from_u64(seed));
        planner
    }

    /// The parameters in use.
    pub fn params(&self) -> &FccdParams {
        &self.params
    }

    /// The access units of a file of `size` bytes: `access_unit`-sized,
    /// snapped to the record alignment, covering the whole file.
    pub fn access_units(&self, size: u64) -> Vec<(u64, u64)> {
        let au = snap_down(self.params.access_unit, self.params.align).max(self.params.align);
        chunks(0, size, au)
    }

    /// Draws the complete probe plan for a file of `size` bytes on a
    /// system with `page_size`-byte pages. Every random offset is drawn
    /// under a single RNG borrow, in the same order the scalar loop drew
    /// them, so a fixed seed places probes identically across dispatch
    /// paths.
    pub fn draw_plan(&self, size: u64, page_size: u64) -> FccdFilePlan {
        let mut plan = FccdFilePlan {
            specs: Vec::new(),
            units: Vec::new(),
            unit_probes: Vec::new(),
            rounds: self.params.probe_rounds,
        };
        if size == 0 {
            return plan;
        }
        if size < page_size {
            // Probing would pull the whole file in — pure Heisenberg.
            plan.units.push((0, size));
            plan.unit_probes.push(0);
            return plan;
        }
        plan.units = self.access_units(size);
        let rounds = self.params.probe_rounds;
        let mut rng = self.rng.borrow_mut();
        for &(offset, len) in &plan.units {
            let mut probes = 0u32;
            for (p_off, p_len) in chunks(offset, len, self.params.prediction_unit) {
                debug_assert!(p_len > 0);
                for _ in 0..rounds {
                    plan.specs.push(ProbeSpec {
                        offset: p_off + rng.random_range(0..p_len),
                    });
                }
                probes += rounds;
            }
            plan.unit_probes.push(probes);
        }
        plan
    }

    /// Folds the samples of an executed plan back into a report: minimum
    /// over the rounds of each prediction unit, summed per access unit.
    /// Penalty units (0 probes) receive the small-file penalty.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != plan.specs.len()`.
    pub fn fold(&self, plan: &FccdFilePlan, samples: &[ProbeSample]) -> FileProbeReport {
        assert_eq!(samples.len(), plan.specs.len(), "one sample per spec");
        let mut report = FileProbeReport::default();
        let rounds = plan.rounds.max(1);
        let mut cursor = samples.iter();
        for (&(offset, len), &probes) in plan.units.iter().zip(&plan.unit_probes) {
            let probe_time = if probes == 0 {
                self.params.small_file_penalty
            } else {
                let mut total = GrayDuration::ZERO;
                for _ in 0..probes / rounds {
                    let mut best: Option<GrayDuration> = None;
                    for _ in 0..rounds {
                        let s = cursor.next().expect("sample count checked above");
                        let t = if s.ok {
                            s.elapsed
                        } else {
                            // A failed probe tells us nothing good about
                            // residency.
                            self.params.small_file_penalty
                        };
                        best = Some(match best {
                            None => t,
                            Some(b) => b.min(t),
                        });
                    }
                    total += best.expect("probe_rounds >= 1");
                }
                total
            };
            report.units.push(UnitProbe {
                offset,
                len,
                probe_time,
                probes,
            });
        }
        report
    }

    /// Builds a [`FileRank`] from a folded report, normalizing by probe
    /// count so files of different sizes compare fairly.
    pub fn rank(&self, path: &str, size: u64, report: &FileProbeReport) -> FileRank {
        let total: GrayDuration = report.units.iter().map(|u| u.probe_time).sum();
        let n = report.total_probes().max(1);
        FileRank {
            path: path.to_string(),
            mean_probe: total / n,
            total_probe: total,
            size,
        }
    }

    /// The rank a file receives when it cannot be opened at all: the
    /// small-file penalty (a vanished file is certainly not in the cache).
    pub fn rank_unopenable(&self, path: &str) -> FileRank {
        FileRank {
            path: path.to_string(),
            mean_probe: self.params.small_file_penalty,
            total_probe: self.params.small_file_penalty,
            size: 0,
        }
    }
}

/// Sorts ranks fastest-first (ties broken by path, so the order is
/// deterministic).
pub fn sort_ranks(ranks: &mut [FileRank]) {
    ranks.sort_by(|a, b| {
        a.mean_probe
            .cmp(&b.mean_probe)
            .then_with(|| a.path.cmp(&b.path))
    });
}

/// Splits sorted ranks into predicted-cached and predicted-uncached groups
/// by exact two-means clustering of the mean probe times (paper Section
/// 4.2.4) — the classification core shared by [`Fccd::classify_files`] and
/// the `gray-sched` multi-file frontend.
pub fn classify_ranks(ranks: Vec<FileRank>) -> Classified {
    if ranks.len() < 2 {
        emit_verdicts(&ranks, Verdict::Uncached);
        return Classified {
            cached: Vec::new(),
            uncached: ranks,
            separation: 0.0,
        };
    }
    let times: Vec<f64> = ranks
        .iter()
        .map(|r| r.mean_probe.as_nanos() as f64)
        .collect();
    let clustering = two_means(&times);
    let separation = clustering.separation(&times);
    trace::emit_with(|| TraceEvent::ThresholdCrossed {
        what: "fccd.separation",
        value: separation,
        threshold: 0.5,
    });
    if separation < 0.5 {
        emit_verdicts(&ranks, Verdict::Uncached);
        return Classified {
            cached: Vec::new(),
            uncached: ranks,
            separation,
        };
    }
    let mut cached = Vec::new();
    let mut uncached = Vec::new();
    for (rank, &cluster) in ranks.into_iter().zip(&clustering.assignment) {
        let verdict = if cluster == 0 {
            Verdict::Cached
        } else {
            Verdict::Uncached
        };
        trace::emit_with(|| TraceEvent::Classified {
            unit: rank.path.clone(),
            verdict,
        });
        if cluster == 0 {
            cached.push(rank);
        } else {
            uncached.push(rank);
        }
    }
    Classified {
        cached,
        uncached,
        separation,
    }
}

/// Emits one `Classified` event per rank with a uniform verdict (the
/// degenerate classification paths: too few files, or no separation).
fn emit_verdicts(ranks: &[FileRank], verdict: Verdict) {
    if !trace::enabled() {
        return;
    }
    for rank in ranks {
        trace::emit_with(|| TraceEvent::Classified {
            unit: rank.path.clone(),
            verdict,
        });
    }
}

/// A file ranked by probe time, as returned by [`Fccd::order_files`].
#[derive(Debug, Clone, PartialEq)]
pub struct FileRank {
    /// The file's path.
    pub path: String,
    /// Mean probe time per probe (normalizes files of different sizes).
    pub mean_probe: GrayDuration,
    /// Total probe time.
    pub total_probe: GrayDuration,
    /// File size in bytes (0 if the file could not be opened).
    pub size: u64,
}

/// Result of splitting a set of files into predicted-cached and
/// predicted-uncached groups ([`Fccd::classify_files`]).
#[derive(Debug, Clone)]
pub struct Classified {
    /// Files whose probe times fell in the fast cluster, fastest first.
    pub cached: Vec<FileRank>,
    /// Files in the slow cluster, fastest first.
    pub uncached: Vec<FileRank>,
    /// Cluster separation score in [0, 1]; near 0 means the two-way split
    /// found no real structure (e.g. everything was on disk) and `cached`
    /// is empty.
    pub separation: f64,
}

/// The File-Cache Content Detector.
///
/// See the [module documentation](self) for the method. The detector is
/// cheap to construct; all state is the parameter block and a private RNG
/// for probe-offset randomization.
pub struct Fccd<'a, O: GrayBoxOs> {
    os: &'a O,
    planner: FccdPlanner,
}

impl<'a, O: GrayBoxOs> Fccd<'a, O> {
    /// Creates a detector over the given OS with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (zero-sized units, or a
    /// prediction unit larger than the access unit).
    pub fn new(os: &'a O, params: FccdParams) -> Self {
        // Probe offsets must differ from run to run (paper Section 4.1.2):
        // with fixed offsets, a previous run's probes leave exactly the
        // probed pages in a skewed cache state — and worse, an LRU-like
        // cache tends to evict precisely the earliest-touched (probed)
        // pages, so a re-probe at the same offsets reports the file cold
        // when 95% of it is resident. Mixing the clock into the seed keeps
        // simulation runs reproducible while decorrelating offsets across
        // runs.
        let planner = FccdPlanner::new(params, os.now());
        Fccd { os, planner }
    }

    /// Creates a detector whose probe offsets depend *only* on
    /// `params.seed`, without mixing in the clock.
    ///
    /// This reinstates the fixed-offset behavior the paper warns against
    /// (and that [`Fccd::new`] deliberately avoids): two detectors built
    /// with the same seed probe the same bytes, so a prior run's probes
    /// skew the next run's measurements. It exists for the ablation suite
    /// and for tests that need bit-exact probe placement.
    pub fn with_fixed_seed(os: &'a O, params: FccdParams) -> Self {
        // Keep the clock read `Fccd::new` performs, so both constructors
        // issue the same syscall sequence (the equivalence tests compare
        // runs syscall for syscall).
        let mut fccd = Fccd::new(os, params);
        let params = fccd.planner.params.clone();
        fccd.planner = FccdPlanner::with_fixed_seed(params);
        fccd
    }

    /// The parameters in use.
    pub fn params(&self) -> &FccdParams {
        self.planner.params()
    }

    /// The OS-free planner half of the detector.
    pub fn planner(&self) -> &FccdPlanner {
        &self.planner
    }

    /// Probes every access unit of the open file `fd` of size `size`.
    ///
    /// Returns measurements in file order; call [`FileProbeReport::plan`]
    /// for the fastest-first ordering. Files smaller than one page are not
    /// probed at all (probing would pull the whole file in — pure
    /// Heisenberg) and instead receive
    /// [`FccdParams::small_file_penalty`].
    pub fn probe_file(&self, fd: Fd, size: u64) -> FileProbeReport {
        self.probe_file_impl(fd, size, true)
    }

    /// Reference implementation of [`probe_file`](Fccd::probe_file) that
    /// dispatches every probe as an individual timed 1-byte read instead
    /// of one vectored [`GrayBoxOs::probe_batch`] call.
    ///
    /// Same plan, same RNG draws, same fold — only the dispatch differs.
    /// Kept public to pin the batched engine: the equivalence property
    /// tests assert both paths classify identical cache states
    /// identically, and the benches report the speedup between them.
    pub fn probe_file_scalar(&self, fd: Fd, size: u64) -> FileProbeReport {
        self.probe_file_impl(fd, size, false)
    }

    fn probe_file_impl(&self, fd: Fd, size: u64, batched: bool) -> FileProbeReport {
        // Plan the whole file's probes up front (one RNG borrow, scalar
        // draw order), dispatch, fold — the planner half is OS-free, so
        // the same plan/fold code serves the gray-sched worker path.
        let plan = self.planner.draw_plan(size, self.os.page_size());
        trace::emit_with(|| TraceEvent::ProbePlanned {
            target: format!("size:{size}"),
            probes: plan.specs.len() as u64,
        });
        let samples = if plan.specs.is_empty() {
            // Tiny and empty files issue no probes at all — not even an
            // empty batch syscall.
            Vec::new()
        } else if batched {
            self.os.probe_batch(fd, &plan.specs)
        } else {
            plan.specs
                .iter()
                .map(|spec| {
                    let (res, elapsed) = self.os.timed(|os| os.read_byte(fd, spec.offset));
                    ProbeSample {
                        offset: spec.offset,
                        elapsed,
                        ok: res.is_ok(),
                    }
                })
                .collect()
        };
        self.planner.fold(&plan, &samples)
    }

    /// Probes the file and returns its access units fastest-first.
    pub fn plan_file(&self, fd: Fd, size: u64) -> Vec<Extent> {
        self.probe_file(fd, size).plan()
    }

    /// Opens `path`, probes it, and returns its access units fastest-first.
    pub fn plan_path(&self, path: &str) -> OsResult<Vec<Extent>> {
        let fd = self.os.open(path)?;
        let size = self.os.file_size(fd)?;
        let plan = self.plan_file(fd, size);
        self.os.close(fd)?;
        Ok(plan)
    }

    /// Ranks a set of files by predicted access cost, fastest first.
    ///
    /// Files that fail to open sort last with the small-file penalty (a
    /// vanished file is certainly not in the cache). Ranking uses the
    /// *mean* per-probe time so that large and small files compare fairly.
    pub fn order_files(&self, paths: &[String]) -> Vec<FileRank> {
        let mut ranks: Vec<FileRank> = paths.iter().map(|p| self.rank_one(p)).collect();
        sort_ranks(&mut ranks);
        ranks
    }

    /// Splits files into a predicted-cached and a predicted-uncached group
    /// using exact two-means clustering of the mean probe times (paper
    /// Section 4.2.4).
    ///
    /// When the clusters are not well separated (separation below 0.5) the
    /// split is not trusted: all files are reported uncached, since "fast
    /// versus slow" carries no signal when everything costs the same.
    pub fn classify_files(&self, paths: &[String]) -> Classified {
        classify_ranks(self.order_files(paths))
    }

    /// The access units of a file of `size` bytes: `access_unit`-sized,
    /// snapped to the record alignment, covering the whole file.
    pub fn access_units(&self, size: u64) -> Vec<(u64, u64)> {
        self.planner.access_units(size)
    }

    fn rank_one(&self, path: &str) -> FileRank {
        let _span = trace::span("plan", || path.to_string());
        let Ok(fd) = self.os.open(path) else {
            return self.planner.rank_unopenable(path);
        };
        let size = self.os.file_size(fd).unwrap_or(0);
        let report = self.probe_file(fd, size);
        let _ = self.os.close(fd);
        self.planner.rank(path, size, &report)
    }
}

/// How FCCD maps onto the paper's technique taxonomy (Table 2).
pub fn techniques() -> TechniqueInventory {
    TechniqueInventory::new(
        "FCCD",
        &[
            (
                Technique::AlgorithmicKnowledge,
                "LRU-like: neighbors cached together",
            ),
            (Technique::MonitorOutputs, "Time for 1-byte reads"),
            (Technique::StatisticalMethods, "Sort/cluster probe times"),
            (Technique::Microbenchmarks, "Access unit from disk peak"),
            (Technique::InsertProbes, "Random byte per 5MB unit"),
            (Technique::KnownState, "None"),
            (Technique::Feedback, "Unit-sized reads stabilize cache"),
        ],
    )
}

/// Splits `[start, start + total)` into `unit`-sized chunks (last chunk may
/// be short). `total == 0` yields nothing.
fn chunks(start: u64, total: u64, unit: u64) -> Vec<(u64, u64)> {
    debug_assert!(unit > 0);
    let mut out = Vec::new();
    let mut off = 0;
    while off < total {
        let len = unit.min(total - off);
        out.push((start + off, len));
        off += len;
    }
    out
}

/// Largest multiple of `align` not exceeding `x` (0 if `x < align`).
fn snap_down(x: u64, align: u64) -> u64 {
    x - x % align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly() {
        let c = chunks(0, 10, 4);
        assert_eq!(c, vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(chunks(100, 4, 4), vec![(100, 4)]);
        assert!(chunks(0, 0, 4).is_empty());
    }

    #[test]
    fn snap_down_respects_alignment() {
        assert_eq!(snap_down(20 << 20, 100), 20971500);
        assert_eq!((20971500u64) % 100, 0);
        assert_eq!(snap_down(7, 10), 0);
    }

    #[test]
    fn plan_sorts_fastest_first_then_by_offset() {
        let report = FileProbeReport {
            units: vec![
                UnitProbe {
                    offset: 0,
                    len: 10,
                    probe_time: GrayDuration::from_millis(5),
                    probes: 1,
                },
                UnitProbe {
                    offset: 10,
                    len: 10,
                    probe_time: GrayDuration::from_micros(3),
                    probes: 1,
                },
                UnitProbe {
                    offset: 20,
                    len: 10,
                    probe_time: GrayDuration::from_micros(3),
                    probes: 1,
                },
            ],
        };
        let plan = report.plan();
        assert_eq!(plan[0].offset, 10);
        assert_eq!(plan[1].offset, 20);
        assert_eq!(plan[2].offset, 0);
    }

    #[test]
    #[should_panic(expected = "prediction unit cannot exceed")]
    fn inconsistent_params_panic() {
        let os = crate::mock::MockOs::new(16, 16);
        let params = FccdParams {
            access_unit: 1,
            prediction_unit: 2,
            ..FccdParams::default()
        };
        let _ = Fccd::new(&os, params);
    }

    #[test]
    fn techniques_cover_probes_and_feedback() {
        let inv = techniques();
        assert!(inv.uses(Technique::InsertProbes));
        assert!(inv.uses(Technique::Feedback));
        assert!(!inv.uses(Technique::KnownState));
    }

    // Behavioral tests against the in-crate MockOs. One "page" of the mock
    // is 4 KiB; these tests shrink the FCCD units to a few pages so small
    // files exercise the real logic.
    fn small_params() -> FccdParams {
        FccdParams {
            access_unit: 4 * 4096,
            prediction_unit: 4096,
            ..FccdParams::default()
        }
    }

    #[test]
    fn cached_units_sort_before_uncached_units() {
        let os = crate::mock::MockOs::new(1 << 20, 16);
        let size = 16 * 4096u64;
        {
            use crate::os::GrayBoxOsExt;
            os.write_file("/big", &vec![0u8; size as usize]).unwrap();
        }
        os.flush_cache();
        // Warm only the second access unit (pages 4..8).
        os.warm("/big", 4..8);
        let fccd = Fccd::new(&os, small_params());
        let fd = os.open("/big").unwrap();
        let plan = fccd.plan_file(fd, size);
        assert_eq!(plan.len(), 4);
        assert_eq!(
            plan[0].offset,
            4 * 4096,
            "the warm access unit must sort first: {plan:?}"
        );
    }

    #[test]
    fn small_file_is_not_probed() {
        let os = crate::mock::MockOs::new(1 << 20, 16);
        {
            use crate::os::GrayBoxOsExt;
            os.write_file("/tiny", b"just a few bytes").unwrap();
        }
        os.flush_cache();
        let fccd = Fccd::new(&os, small_params());
        let fd = os.open("/tiny").unwrap();
        let report = fccd.probe_file(fd, 16);
        assert_eq!(report.total_probes(), 0, "tiny files must not be probed");
        assert_eq!(report.units.len(), 1);
        assert_eq!(
            report.units[0].probe_time,
            small_params().small_file_penalty
        );
        assert!(!os.page_cached("/tiny", 0), "no Heisenberg on tiny files");
    }

    #[test]
    fn order_files_puts_warm_files_first() {
        use crate::os::GrayBoxOsExt;
        let os = crate::mock::MockOs::new(1 << 20, 16);
        let paths: Vec<String> = (0..4).map(|i| format!("/f{i}")).collect();
        for p in &paths {
            os.write_file(p, &vec![0u8; 8 * 4096]).unwrap();
        }
        os.flush_cache();
        os.warm("/f2", 0..8);
        let fccd = Fccd::new(&os, small_params());
        let ranks = fccd.order_files(&paths);
        assert_eq!(ranks[0].path, "/f2");
    }

    #[test]
    fn classify_separates_warm_from_cold() {
        use crate::os::GrayBoxOsExt;
        let os = crate::mock::MockOs::new(1 << 20, 16);
        let paths: Vec<String> = (0..6).map(|i| format!("/f{i}")).collect();
        for p in &paths {
            os.write_file(p, &vec![0u8; 8 * 4096]).unwrap();
        }
        os.flush_cache();
        os.warm("/f1", 0..8);
        os.warm("/f4", 0..8);
        let fccd = Fccd::new(&os, small_params());
        let classified = fccd.classify_files(&paths);
        let cached: Vec<&str> = classified.cached.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(cached, vec!["/f1", "/f4"]);
        assert_eq!(classified.uncached.len(), 4);
        assert!(classified.separation > 0.9);
    }

    #[test]
    fn classify_all_cold_trusts_nothing() {
        use crate::os::GrayBoxOsExt;
        let os = crate::mock::MockOs::new(1 << 20, 16);
        let paths: Vec<String> = (0..5).map(|i| format!("/f{i}")).collect();
        for p in &paths {
            os.write_file(p, &vec![0u8; 8 * 4096]).unwrap();
        }
        os.flush_cache();
        let fccd = Fccd::new(&os, small_params());
        let classified = fccd.classify_files(&paths);
        assert!(
            classified.cached.is_empty(),
            "no split should be trusted when everything is cold: {classified:?}"
        );
    }

    #[test]
    fn missing_file_ranks_last() {
        use crate::os::GrayBoxOsExt;
        let os = crate::mock::MockOs::new(1 << 20, 16);
        os.write_file("/real", &vec![0u8; 8 * 4096]).unwrap();
        let fccd = Fccd::new(&os, small_params());
        let ranks = fccd.order_files(&["/ghost".to_string(), "/real".to_string()]);
        assert_eq!(ranks[0].path, "/real");
        assert_eq!(ranks[1].path, "/ghost");
        assert_eq!(ranks[1].size, 0);
    }

    #[test]
    fn empty_file_yields_empty_plan() {
        use crate::os::GrayBoxOsExt;
        let os = crate::mock::MockOs::new(1 << 20, 16);
        os.write_file("/empty", b"").unwrap();
        let fccd = Fccd::new(&os, small_params());
        assert!(fccd.plan_path("/empty").unwrap().is_empty());
    }

    #[test]
    fn plan_respects_record_alignment() {
        use crate::os::GrayBoxOsExt;
        let os = crate::mock::MockOs::new(1 << 20, 16);
        let size = 100 * 1000u64;
        os.write_file("/rec", &vec![0u8; size as usize]).unwrap();
        let params = FccdParams {
            access_unit: 3 * 4096,
            prediction_unit: 4096,
            ..FccdParams::default()
        }
        .with_align(100);
        let fccd = Fccd::new(&os, params);
        let fd = os.open("/rec").unwrap();
        for e in fccd.plan_file(fd, size) {
            assert_eq!(e.offset % 100, 0, "extent must be record-aligned: {e:?}");
        }
    }

    #[test]
    fn repeated_probing_is_deterministic_per_seed() {
        use crate::os::GrayBoxOsExt;
        let os = crate::mock::MockOs::new(1 << 20, 16);
        os.write_file("/f", &vec![0u8; 16 * 4096]).unwrap();
        os.flush_cache();
        let fd = os.open("/f").unwrap();
        let plan1 = Fccd::new(&os, small_params()).plan_file(fd, 16 * 4096);
        os.flush_cache();
        let plan2 = Fccd::new(&os, small_params()).plan_file(fd, 16 * 4096);
        assert_eq!(plan1, plan2);
    }
}
