//! WBD — the Writeback/Dirty-page Detector (a fourth ICL).
//!
//! The paper's ICLs infer *read-side* cache state (FCCD), layout (FLDC),
//! and memory pressure (MAC). WBD extends the same gray-box methodology to
//! the *write* path: it infers how many dirty pages the OS is holding and
//! whether the periodic writeback daemon has flushed them, without any
//! kernel interface exposing either.
//!
//! # Gray-box knowledge
//!
//! Two coarse assumptions, true of every target platform: writes are
//! buffered (a `write` dirties cached pages and returns fast), and `sync`
//! must push every dirty page to disk before returning — so **the cost of
//! `sync` is proportional to the dirty residue**. That proportionality is
//! the side channel: one timed `sync` reveals approximately how many dirty
//! pages existed the instant it was issued.
//!
//! # Method
//!
//! WBD first *calibrates*: it times `sync` on a drained system (the
//! intercept), then dirties a known number of scratch-file pages and times
//! `sync` again (the slope). The per-page cost learned this way converts
//! any later timed `sync` into an estimated dirty-page count. Like FCCD's
//! probes, the measurement is destructive — the timed `sync` flushes the
//! very residue it measures (the Heisenberg effect, write-side edition) —
//! so callers sample sparsely and treat each estimate as a snapshot.
//!
//! Calibration is approximate by design: creating the scratch file may
//! dirty metadata pages too, so the learned slope can be slightly high.
//! Estimates are rounded to the nearest page and should be read as "about
//! k pages", which is exactly enough for the covert-channel receiver and
//! for flushed/not-flushed verdicts.

use gray_toolbox::trace::{self, TraceEvent};
use gray_toolbox::GrayDuration;

use crate::os::{GrayBoxOs, OsResult};
use crate::technique::{Technique, TechniqueInventory};

/// Tuning parameters for the detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WbdParams {
    /// Path of the scratch file calibration creates, dirties, and unlinks.
    pub scratch_path: String,
    /// Number of scratch pages dirtied per calibration round. More pages
    /// average out fixed per-sync overhead but write more.
    pub calib_pages: u64,
    /// Calibration rounds; the minimum per-page cost across rounds is kept
    /// (the least-disturbed round, mirroring FCCD's min-over-rounds).
    pub calib_rounds: u32,
    /// Floor for the learned per-page cost, so a degenerate calibration
    /// (e.g. a backend with free syncs) cannot divide by zero downstream.
    pub min_page_cost: GrayDuration,
}

impl Default for WbdParams {
    fn default() -> Self {
        WbdParams {
            scratch_path: "/.wbd_scratch".to_string(),
            calib_pages: 32,
            calib_rounds: 1,
            min_page_cost: GrayDuration::from_nanos(1),
        }
    }
}

/// The learned cost model of `sync`: intercept and slope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WbdCalibration {
    /// Cost of a `sync` with no dirty residue (the intercept).
    pub clean_sync: GrayDuration,
    /// Marginal cost per dirty page (the slope); never zero.
    pub page_cost: GrayDuration,
}

impl WbdCalibration {
    /// Converts an observed `sync` cost into an estimated dirty-page
    /// count: excess over the clean intercept, divided by the per-page
    /// slope, rounded to the nearest page. A `sync` at or below the
    /// intercept estimates zero.
    pub fn estimate_pages(&self, observed: GrayDuration) -> u64 {
        let excess = observed.saturating_sub(self.clean_sync).as_nanos();
        let per = self.page_cost.as_nanos().max(1);
        (excess + per / 2) / per
    }
}

/// The Writeback/Dirty-page Detector.
///
/// See the [module documentation](self) for the method. Like the other
/// ICLs, it is generic over [`GrayBoxOs`] and learns only from timing.
pub struct Wbd<'a, O: GrayBoxOs> {
    os: &'a O,
    params: WbdParams,
}

impl<'a, O: GrayBoxOs> Wbd<'a, O> {
    /// Creates a detector over the given OS with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (zero calibration pages
    /// or rounds).
    pub fn new(os: &'a O, params: WbdParams) -> Self {
        assert!(params.calib_pages > 0, "at least one calibration page");
        assert!(params.calib_rounds > 0, "at least one calibration round");
        assert!(
            params.min_page_cost > GrayDuration::ZERO,
            "page-cost floor must be positive"
        );
        Wbd { os, params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &WbdParams {
        &self.params
    }

    /// One timed `sync` — the raw probe. Destructive: whatever residue it
    /// measures is flushed by the measurement.
    pub fn sync_cost(&self) -> OsResult<GrayDuration> {
        let (res, elapsed) = self.os.timed(|os| os.sync());
        res?;
        Ok(elapsed)
    }

    /// Learns the `sync` cost model: drains existing residue, times a
    /// clean `sync` (intercept), then repeatedly dirties
    /// [`WbdParams::calib_pages`] scratch pages and times the `sync` that
    /// flushes them, keeping the minimum per-page cost (slope).
    pub fn calibrate(&self) -> OsResult<WbdCalibration> {
        self.os.sync()?;
        let clean_sync = self.sync_cost()?;
        let page_size = self.os.page_size();
        let mut best: Option<GrayDuration> = None;
        for _ in 0..self.params.calib_rounds {
            let fd = self.os.create(&self.params.scratch_path)?;
            self.os
                .write_fill(fd, 0, self.params.calib_pages * page_size)?;
            let dirty_sync = self.sync_cost()?;
            self.os.close(fd)?;
            self.os.unlink(&self.params.scratch_path)?;
            let per = dirty_sync.saturating_sub(clean_sync) / self.params.calib_pages;
            best = Some(match best {
                None => per,
                Some(b) => b.min(per),
            });
        }
        let page_cost = best
            .expect("calib_rounds >= 1")
            .max(self.params.min_page_cost);
        trace::emit_with(|| TraceEvent::Estimated {
            quantity: "wbd.page_cost_ns",
            value: page_cost.as_nanos() as f64,
        });
        Ok(WbdCalibration {
            clean_sync,
            page_cost,
        })
    }

    /// Estimates the system's current dirty residue in pages with one
    /// timed `sync` (destructive — see [`Wbd::sync_cost`]).
    pub fn residue_pages(&self, cal: &WbdCalibration) -> OsResult<u64> {
        let observed = self.sync_cost()?;
        let estimate = cal.estimate_pages(observed);
        trace::emit_with(|| TraceEvent::Estimated {
            quantity: "wbd.dirty_pages",
            value: estimate as f64,
        });
        Ok(estimate)
    }

    /// Whether a write of `expected_pages` pages has already been flushed
    /// (by the writeback daemon or anyone else): true when the estimated
    /// residue is below half the expected count. Destructive — the probe
    /// itself flushes whatever residue remained.
    pub fn flushed(&self, cal: &WbdCalibration, expected_pages: u64) -> OsResult<bool> {
        let residue = self.residue_pages(cal)?;
        trace::emit_with(|| TraceEvent::ThresholdCrossed {
            what: "wbd.flushed",
            value: residue as f64,
            threshold: expected_pages as f64 / 2.0,
        });
        Ok(residue * 2 < expected_pages)
    }
}

/// How WBD maps onto the paper's technique taxonomy (Table 2).
pub fn techniques() -> TechniqueInventory {
    TechniqueInventory::new(
        "WBD",
        &[
            (
                Technique::AlgorithmicKnowledge,
                "sync cost grows with dirty residue",
            ),
            (Technique::MonitorOutputs, "Time whole-system syncs"),
            (
                Technique::StatisticalMethods,
                "Linear fit: intercept + slope",
            ),
            (Technique::Microbenchmarks, "Scratch-file slope calibration"),
            (Technique::InsertProbes, "Timed sync as probe"),
            (Technique::KnownState, "Probe drains residue to zero"),
            (Technique::Feedback, "None"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::{MockCosts, MockOs};
    use crate::os::GrayBoxOsExt;

    fn small_params() -> WbdParams {
        WbdParams {
            calib_pages: 16,
            ..WbdParams::default()
        }
    }

    #[test]
    fn calibration_learns_the_per_page_sync_cost() {
        let os = MockOs::new(1 << 20, 16);
        let wbd = Wbd::new(&os, small_params());
        let cal = wbd.calibrate().unwrap();
        // The mock charges exactly `meta + sync_page * dirty`, so the
        // learned slope is exact and the intercept is one meta charge.
        assert_eq!(cal.page_cost, MockCosts::default().sync_page);
        assert_eq!(cal.clean_sync, MockCosts::default().meta);
    }

    #[test]
    fn residue_estimates_the_dirty_page_count() {
        let os = MockOs::new(1 << 20, 16);
        let wbd = Wbd::new(&os, small_params());
        let cal = wbd.calibrate().unwrap();
        os.write_file("/f", &vec![0u8; 8 * 4096]).unwrap();
        assert_eq!(os.dirty_file_pages(), 8);
        assert_eq!(wbd.residue_pages(&cal).unwrap(), 8);
        // The probe was destructive: the residue it measured is gone.
        assert_eq!(os.dirty_file_pages(), 0);
        assert_eq!(wbd.residue_pages(&cal).unwrap(), 0);
    }

    #[test]
    fn flushed_flips_once_the_residue_is_drained() {
        let os = MockOs::new(1 << 20, 16);
        let wbd = Wbd::new(&os, small_params());
        let cal = wbd.calibrate().unwrap();
        os.write_file("/f", &vec![0u8; 8 * 4096]).unwrap();
        assert!(!wbd.flushed(&cal, 8).unwrap(), "residue still present");
        assert!(wbd.flushed(&cal, 8).unwrap(), "probe drained it");
    }

    #[test]
    fn estimate_rounds_to_the_nearest_page() {
        let cal = WbdCalibration {
            clean_sync: GrayDuration::from_micros(10),
            page_cost: GrayDuration::from_millis(2),
        };
        let base = GrayDuration::from_micros(10);
        assert_eq!(cal.estimate_pages(GrayDuration::ZERO), 0);
        assert_eq!(cal.estimate_pages(base), 0);
        assert_eq!(cal.estimate_pages(base + GrayDuration::from_millis(2)), 1);
        assert_eq!(cal.estimate_pages(base + GrayDuration::from_millis(3)), 2);
        assert_eq!(cal.estimate_pages(base + GrayDuration::from_millis(20)), 10);
    }

    #[test]
    fn degenerate_calibration_keeps_a_positive_slope() {
        // Free syncs (zero per-page cost) must not yield a zero slope.
        let costs = MockCosts {
            sync_page: GrayDuration::ZERO,
            ..MockCosts::default()
        };
        let os = MockOs::with_costs(1 << 20, 16, costs);
        let wbd = Wbd::new(&os, small_params());
        let cal = wbd.calibrate().unwrap();
        assert_eq!(cal.page_cost, small_params().min_page_cost);
        assert_eq!(cal.estimate_pages(cal.clean_sync), 0);
    }

    #[test]
    #[should_panic(expected = "at least one calibration page")]
    fn inconsistent_params_panic() {
        let os = MockOs::new(16, 16);
        let params = WbdParams {
            calib_pages: 0,
            ..WbdParams::default()
        };
        let _ = Wbd::new(&os, params);
    }

    #[test]
    fn techniques_cover_probes_and_known_state() {
        let inv = techniques();
        assert!(inv.uses(Technique::InsertProbes));
        assert!(inv.uses(Technique::KnownState));
        assert!(!inv.uses(Technique::Feedback));
    }
}
