//! Configuration microbenchmarks (paper Sections 2.1 and 5).
//!
//! Gray-box ICLs need performance parameters of the underlying components —
//! expected disk seek time and bandwidth, the cost of allocating and zeroing
//! a page, of touching a resident page, of hitting or missing the file
//! cache — to amortize overheads and to differentiate states. This module
//! measures those parameters *through the gray-box interface itself* and
//! publishes them in the shared [`ParamRepository`], so each benchmark only
//! needs to run once per system.
//!
//! Per the paper's caution, these benchmarks "likely require a dedicated
//! system and may take some time to run": run them on an otherwise idle
//! machine, and give [`Microbench::disk_profile`] a scratch file larger
//! than the file cache (otherwise the "miss" numbers are really hits, which
//! the clustering will reveal as a suspiciously low separation).

use gray_toolbox::repository::keys;
use gray_toolbox::rng::StdRng;
use gray_toolbox::rng::{RngExt, SeedableRng};
use gray_toolbox::{two_means, GrayDuration, ParamRepository, Summary};

use crate::os::{GrayBoxOs, OsError, OsResult};

/// Measured memory-page costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageCosts {
    /// Median time to write-touch a resident page.
    pub touch: GrayDuration,
    /// Median time to allocate and zero a fresh page (first touch).
    pub zero: GrayDuration,
}

/// Measured disk and file-cache costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskProfile {
    /// Median time for a random single-page read on a cold file
    /// (seek + rotation + transfer).
    pub random_page_read: GrayDuration,
    /// Sequential read bandwidth, bytes per second.
    pub sequential_bandwidth: u64,
    /// Median time to read a page that is resident in the file cache.
    pub page_hit: GrayDuration,
}

/// The microbenchmark suite.
pub struct Microbench<'a, O: GrayBoxOs> {
    os: &'a O,
    samples: usize,
    seed: u64,
}

impl<'a, O: GrayBoxOs> Microbench<'a, O> {
    /// Creates a suite taking `samples` observations per measurement.
    pub fn new(os: &'a O) -> Self {
        Microbench {
            os,
            samples: 64,
            seed: 0xB16B00B5,
        }
    }

    /// Overrides the number of samples per measurement.
    pub fn with_samples(mut self, samples: usize) -> Self {
        assert!(samples >= 4, "too few samples for a median");
        self.samples = samples;
        self
    }

    /// Measures the cost of touching resident pages and of first-touch
    /// allocate-and-zero.
    pub fn page_costs(&self) -> OsResult<PageCosts> {
        let page = self.os.page_size();
        let pages = self.samples as u64;
        let region = self.os.mem_alloc(pages * page)?;
        let mut zero_times = Vec::with_capacity(pages as usize);
        for p in 0..pages {
            let (res, t) = self.os.timed(|os| os.mem_touch_write(region, p));
            res?;
            zero_times.push(t.as_nanos() as f64);
        }
        let mut touch_times = Vec::new();
        for round in 0..4 {
            for p in 0..pages {
                let (res, t) = self.os.timed(|os| os.mem_touch_write(region, p));
                res?;
                if round > 0 {
                    touch_times.push(t.as_nanos() as f64);
                }
            }
        }
        self.os.mem_free(region)?;
        let touch = Summary::new(&touch_times).median().max(1.0);
        let zero = Summary::new(&zero_times).median().max(touch);
        Ok(PageCosts {
            touch: GrayDuration::from_nanos(touch as u64),
            zero: GrayDuration::from_nanos(zero as u64),
        })
    }

    /// Profiles the disk and file cache using `path`, a scratch file this
    /// call creates with `file_bytes` bytes (ideally exceeding the file
    /// cache) and deletes afterwards.
    pub fn disk_profile(&self, path: &str, file_bytes: u64) -> OsResult<DiskProfile> {
        let page = self.os.page_size();
        if file_bytes < 4 * page {
            return Err(OsError::InvalidArgument);
        }
        let fd = self.os.create(path)?;
        let mut off = 0u64;
        while off < file_bytes {
            let chunk = (file_bytes - off).min(8 << 20);
            self.os.write_fill(fd, off, chunk)?;
            off += chunk;
        }
        self.os.sync()?;

        // Sequential bandwidth over the whole file (also evicts the pages
        // our own writes left cached, when the file exceeds the cache).
        let t0 = self.os.now();
        self.os.read_discard(fd, 0, file_bytes)?;
        let seq = self.os.now().since(t0);
        let bandwidth = if seq == GrayDuration::ZERO {
            u64::MAX
        } else {
            (file_bytes as f64 / seq.as_secs_f64()) as u64
        };

        // Random single-page reads; cluster to split hits from misses.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pages = file_bytes / page;
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let p = rng.random_range(0..pages);
            let (res, t) = self.os.timed(|os| os.read_byte(fd, p * page));
            res?;
            times.push(t.as_nanos() as f64);
        }
        // Re-read the same offsets immediately: guaranteed hits.
        let mut hit_times = Vec::with_capacity(self.samples);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.samples {
            let p = rng.random_range(0..pages);
            let (res, t) = self.os.timed(|os| os.read_byte(fd, p * page));
            res?;
            hit_times.push(t.as_nanos() as f64);
        }
        self.os.close(fd)?;
        self.os.unlink(path)?;

        let clustering = two_means(&times);
        // The slow cluster holds the true misses; if separation is poor the
        // file fit in cache and the median of everything is our best guess.
        let miss = if clustering.separation(&times) > 0.5 && clustering.sizes[1] > 0 {
            let slow: Vec<f64> = clustering
                .members(1)
                .into_iter()
                .map(|i| times[i])
                .collect();
            Summary::new(&slow).median()
        } else {
            Summary::new(&times).median()
        };
        Ok(DiskProfile {
            random_page_read: GrayDuration::from_nanos(miss as u64),
            sequential_bandwidth: bandwidth,
            page_hit: GrayDuration::from_nanos(Summary::new(&hit_times).median() as u64),
        })
    }

    /// Finds the smallest access unit delivering at least 90% of peak
    /// sequential bandwidth when reading from random offsets (the paper's
    /// method for choosing FCCD's default 20 MB unit). `path` is a scratch
    /// file created and deleted by this call.
    pub fn access_unit(&self, path: &str, file_bytes: u64) -> OsResult<u64> {
        let candidates: Vec<u64> = (0..=7).map(|i| (1u64 << i) << 20).collect(); // 1..128 MB
        let usable: Vec<u64> = candidates
            .into_iter()
            .filter(|&c| c * 4 <= file_bytes)
            .collect();
        if usable.is_empty() {
            return Err(OsError::InvalidArgument);
        }
        let fd = self.os.create(path)?;
        let mut off = 0u64;
        while off < file_bytes {
            let chunk = (file_bytes - off).min(8 << 20);
            self.os.write_fill(fd, off, chunk)?;
            off += chunk;
        }
        self.os.sync()?;

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rates = Vec::with_capacity(usable.len());
        for &unit in &usable {
            let trials = 3u64;
            let mut total = GrayDuration::ZERO;
            for _ in 0..trials {
                let max_start = file_bytes - unit;
                let start = rng.random_range(0..=max_start);
                let t0 = self.os.now();
                self.os.read_discard(fd, start, unit)?;
                total += self.os.now().since(t0);
            }
            let secs = total.as_secs_f64();
            let rate = if secs == 0.0 {
                f64::INFINITY
            } else {
                (unit * trials) as f64 / secs
            };
            rates.push(rate);
        }
        self.os.close(fd)?;
        self.os.unlink(path)?;

        let peak = rates.iter().copied().fold(0.0f64, f64::max);
        let chosen = usable
            .iter()
            .zip(&rates)
            .find(|(_, &r)| r >= 0.9 * peak)
            .map(|(&u, _)| u)
            .unwrap_or(*usable.last().expect("non-empty"));
        Ok(chosen)
    }

    /// Measures the probe sub-batch size: the smallest `mem_probe_batch`
    /// batch whose per-probe dispatch cost is within 10% of the best
    /// measured amortization.
    ///
    /// Dispatch amortization is a *host*-side effect (one kernel entry,
    /// one lock acquisition per batch — virtual time charges per probe are
    /// identical by construction), so this measurement uses the host
    /// clock on every backend. Larger batches than the knee buy no
    /// further amortization but cost scheduling interleaving: a batch is
    /// one atomic scheduling point, and MAC's daemon detection can
    /// overshoot by up to one batch. Replaces the old compile-time
    /// `FIRST_LOOP_BATCH`/`TOUCH_BATCH` = 64 constants.
    pub fn sub_batch_pages(&self) -> OsResult<u64> {
        const CANDIDATES: [u64; 6] = [8, 16, 32, 64, 128, 256];
        let page = self.os.page_size();
        let pages = *CANDIDATES.last().expect("non-empty");
        let region = self.os.mem_alloc(pages * page)?;
        // Make the region resident first, so every candidate measures
        // steady-state touches rather than first-touch allocation.
        let warm: Vec<u64> = (0..pages).collect();
        if self.os.mem_probe_batch(region, &warm).iter().any(|s| !s.ok) {
            self.os.mem_free(region)?;
            return Err(OsError::InvalidArgument);
        }
        let mut per_probe = Vec::with_capacity(CANDIDATES.len());
        for &batch in &CANDIDATES {
            let plan: Vec<u64> = (0..batch).collect();
            // Same total probe count for every candidate, so the
            // comparison is batch-size only.
            let reps = (pages / batch).max(1) * 4;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                if self.os.mem_probe_batch(region, &plan).iter().any(|s| !s.ok) {
                    self.os.mem_free(region)?;
                    return Err(OsError::InvalidArgument);
                }
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            per_probe.push(elapsed / (reps * batch) as f64);
        }
        self.os.mem_free(region)?;
        let best = per_probe.iter().copied().fold(f64::INFINITY, f64::min);
        let chosen = CANDIDATES
            .iter()
            .zip(&per_probe)
            .find(|(_, &cost)| cost <= 1.1 * best)
            .map(|(&b, _)| b)
            .unwrap_or(64);
        Ok(chosen)
    }

    /// Runs the full suite and publishes results into the repository under
    /// the well-known keys.
    pub fn run_all(
        &self,
        scratch_dir: &str,
        file_bytes: u64,
        repo: &mut ParamRepository,
    ) -> OsResult<()> {
        let page_costs = self.page_costs()?;
        repo.set_duration(keys::PAGE_TOUCH_NS, page_costs.touch);
        repo.set_duration(keys::PAGE_ALLOC_ZERO_NS, page_costs.zero);
        repo.set_raw(keys::PAGE_SIZE_BYTES, self.os.page_size());

        let scratch = format!("{}/gb_microbench.tmp", scratch_dir.trim_end_matches('/'));
        let disk = self.disk_profile(&scratch, file_bytes)?;
        repo.set_duration(keys::PAGE_UNCACHED_READ_NS, disk.random_page_read);
        repo.set_duration(keys::PAGE_CACHED_READ_NS, disk.page_hit);
        repo.set_raw(keys::DISK_BANDWIDTH_BPS, disk.sequential_bandwidth);
        // Seek is the random-read time minus the transfer of one page.
        let transfer = GrayDuration::from_secs_f64(
            self.os.page_size() as f64 / disk.sequential_bandwidth.max(1) as f64,
        );
        repo.set_duration(
            keys::DISK_SEEK_NS,
            disk.random_page_read.saturating_sub(transfer),
        );

        let unit = self.access_unit(&scratch, file_bytes)?;
        repo.set_raw(keys::ACCESS_UNIT_BYTES, unit);

        let sub_batch = self.sub_batch_pages()?;
        repo.set_raw(keys::SCHED_SUB_BATCH_PAGES, sub_batch);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockOs;

    #[test]
    fn page_costs_orders_touch_below_zero() {
        let os = MockOs::new(1 << 20, 1 << 20);
        let mb = Microbench::new(&os).with_samples(16);
        let costs = mb.page_costs().unwrap();
        assert!(costs.touch < costs.zero, "{costs:?}");
        assert!(costs.touch >= GrayDuration::from_nanos(1));
    }

    #[test]
    fn disk_profile_separates_hit_from_miss() {
        // Cache of 32 pages, file of 256 pages: most random reads miss.
        let os = MockOs::new(32, 64);
        let mb = Microbench::new(&os).with_samples(32);
        let profile = mb.disk_profile("/scratch", 256 * 4096).unwrap();
        assert!(
            profile.random_page_read > profile.page_hit * 10,
            "{profile:?}"
        );
        // Scratch file must be gone.
        assert!(os.stat("/scratch").is_err());
    }

    #[test]
    fn disk_profile_rejects_tiny_files() {
        let os = MockOs::new(32, 64);
        let mb = Microbench::new(&os);
        assert!(mb.disk_profile("/s", 4096).is_err());
    }

    #[test]
    fn access_unit_picks_a_candidate_within_bounds() {
        let os = MockOs::new(64, 64);
        let mb = Microbench::new(&os).with_samples(8);
        let unit = mb.access_unit("/scratch", 16 << 20).unwrap();
        // Candidates are powers of two megabytes; the file allows up to
        // 4 MB (needs 4x headroom).
        assert!(unit.is_power_of_two());
        assert!((1 << 20..=4 << 20).contains(&unit), "unit {unit}");
        assert!(os.stat("/scratch").is_err(), "scratch must be removed");
    }

    #[test]
    fn access_unit_rejects_files_too_small_to_sweep() {
        let os = MockOs::new(64, 64);
        let mb = Microbench::new(&os);
        assert!(mb.access_unit("/s", 1 << 20).is_err());
    }

    #[test]
    fn run_all_populates_the_repository() {
        let os = MockOs::new(64, 1 << 20);
        let mb = Microbench::new(&os).with_samples(16);
        let mut repo = ParamRepository::in_memory();
        mb.run_all("/", 8 << 20, &mut repo).unwrap();
        for key in [
            keys::PAGE_TOUCH_NS,
            keys::PAGE_ALLOC_ZERO_NS,
            keys::PAGE_UNCACHED_READ_NS,
            keys::PAGE_CACHED_READ_NS,
            keys::DISK_BANDWIDTH_BPS,
            keys::DISK_SEEK_NS,
            keys::ACCESS_UNIT_BYTES,
            keys::PAGE_SIZE_BYTES,
            keys::SCHED_SUB_BATCH_PAGES,
        ] {
            assert!(repo.contains(key), "missing {key}");
        }
    }

    #[test]
    fn sub_batch_pages_is_a_candidate() {
        let os = MockOs::new(64, 1 << 20);
        let mb = Microbench::new(&os);
        let sub = mb.sub_batch_pages().unwrap();
        assert!(
            [8, 16, 32, 64, 128, 256].contains(&sub),
            "sub-batch {sub} not a candidate"
        );
    }
}
