//! MAC — the Memory-based Admission Controller (paper Section 4.3).
//!
//! MAC keeps a set of cooperating processes from actively using more memory
//! than is physically present: it *infers* the amount of currently
//! available memory by timed page-touch probing, *allocates* memory only
//! when the requested minimum fits, and makes callers *wait* otherwise.
//!
//! # Gray-box knowledge
//!
//! The probing leverages the page-replacement algorithm's own definition of
//! the working set: MAC observes how much memory it can touch **without
//! triggering replacement**. Probes must *write* (copy-on-write zero pages
//! mean reads allocate nothing). The basic algorithm probes a new chunk a
//! page at a time in **two sequential loops**:
//!
//! 1. The first loop *moves the chunk to a known state* (every page
//!    resident, freshly written). Its per-page times are not directly
//!    conclusive — they include allocation, zeroing, or re-fetch costs —
//!    but **several consecutive slow points** indicate the page daemon has
//!    been activated, and MAC skips straight to verification.
//! 2. The second loop re-touches every page: if each touch is "fast" the
//!    chunk fits in available memory (nothing was selected for
//!    replacement); any cluster of "slow" touches means part of the chunk
//!    was paged out, i.e. the chunk is too large.
//!
//! Chunk growth follows the paper's compromise, deliberately *more
//! conservative than TCP congestion control*: start with a conservative
//! increment, double it while the probed memory keeps fitting (up to a
//! fixed maximum increment), and collapse back to the initial increment
//! when a problem is detected.
//!
//! Probes are issued through [`GrayBoxOs::mem_probe_batch`] — the first
//! loop in bounded sub-batches (so daemon detection still stops growth
//! promptly), the verification loop as one batch (its verdict is monotone
//! in the slow count, so no early exit is lost). Batching changes which
//! syscalls carry the probes, not which pages get touched or how each
//! touch is timed.
//!
//! # Thresholds
//!
//! Unlike FCCD, MAC must classify each touch *on line*, so it needs actual
//! thresholds. They come from the microbenchmark repository when available
//! (`mem.page_touch_ns`, `mem.page_alloc_zero_ns`), and otherwise from
//! self-calibration: time repeated touches of a few certainly-resident
//! pages, and call anything "significantly larger" slow.
//!
//! # Deadlock
//!
//! `gb_alloc` is admission control, not a transaction manager: two
//! processes that each hold half of memory and wait for more will starve
//! each other. Callers should allocate everything they need in one call,
//! or free before re-allocating (the paper's gb-fastsort frees each pass
//! before allocating the next, so it cannot deadlock).

use core::fmt;
use std::cell::RefCell;

use gray_toolbox::repository::keys;
use gray_toolbox::trace::{self, TraceEvent};
use gray_toolbox::{GrayDuration, ParamRepository, Summary};

use crate::os::{GrayBoxOs, MemRegion, OsError, OsResult};
use crate::technique::{Technique, TechniqueInventory};

/// Tuning parameters for the admission controller.
#[derive(Debug, Clone, PartialEq)]
pub struct MacParams {
    /// Pages per first-loop probe sub-batch. Batching amortizes dispatch,
    /// but the first loop must stop touching soon after the page daemon
    /// wakes up; a bounded sub-batch caps the overshoot past the detection
    /// point at one batch while still amortizing the common (all-fast)
    /// case. The default matches the old compile-time bound; the
    /// `sched.sub_batch_pages` microbenchmark publishes a measured value
    /// via [`Mac::with_repository`].
    pub sub_batch_pages: u64,
    /// First (and post-backoff) probe increment, in bytes.
    pub initial_increment: u64,
    /// Ceiling for the doubling increment, in bytes.
    pub max_increment: u64,
    /// How many *consecutive* slow first-loop touches indicate the page
    /// daemon woke up. Isolated slow points are scheduling noise.
    pub slow_run_threshold: usize,
    /// A touch is "slow" if it exceeds the calibrated fast time by this
    /// factor ("significantly larger").
    pub slow_multiplier: f64,
    /// Fraction of second-loop pages allowed to be slow before the chunk
    /// is declared not to fit (tolerates stray evictions and interrupts).
    pub slow_tolerance: f64,
    /// Pages used for self-calibration when the repository has no numbers.
    pub calibration_pages: u64,
    /// How long to wait between admission attempts when the minimum does
    /// not fit.
    pub retry_wait: GrayDuration,
    /// How many times to retry before giving up (the "wait until memory is
    /// available" loop). 0 means a single attempt.
    pub max_retries: u32,
}

impl Default for MacParams {
    fn default() -> Self {
        MacParams {
            sub_batch_pages: 64,
            initial_increment: 16 << 20,
            max_increment: 128 << 20,
            slow_run_threshold: 3,
            slow_multiplier: 8.0,
            slow_tolerance: 0.02,
            calibration_pages: 64,
            retry_wait: GrayDuration::from_millis(500),
            max_retries: 0,
        }
    }
}

/// A successful gray-box allocation.
///
/// The backing region may be larger than `bytes` (address space is cheap);
/// exactly `bytes.div_ceil(page_size)` pages have been verified resident.
/// Free it with [`Mac::gb_free`].
#[derive(Debug)]
pub struct GbAlloc {
    /// The backing memory region.
    pub region: MemRegion,
    /// The admitted size in bytes (a multiple of the request's `multiple`).
    pub bytes: u64,
}

/// Cumulative cost accounting for Figure 7's overhead breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacStats {
    /// Time spent inside probe loops.
    pub probe_time: GrayDuration,
    /// Time spent sleeping while waiting for memory.
    pub wait_time: GrayDuration,
    /// Number of admission attempts (including retries).
    pub attempts: u64,
    /// Total pages touched by probes.
    pub pages_probed: u64,
}

impl fmt::Display for MacStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "probe {} over {} pages, waited {} in {} attempts",
            self.probe_time, self.pages_probed, self.wait_time, self.attempts
        )
    }
}

/// Calibrated touch-time thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Thresholds {
    /// Above this, a second-loop (resident) touch is slow.
    touch_slow: GrayDuration,
    /// Above this, a first-loop (allocate/zero) touch is slow.
    zero_slow: GrayDuration,
}

/// The Memory-based Admission Controller.
pub struct Mac<'a, O: GrayBoxOs> {
    os: &'a O,
    params: MacParams,
    thresholds: RefCell<Option<Thresholds>>,
    stats: RefCell<MacStats>,
}

impl<'a, O: GrayBoxOs> Mac<'a, O> {
    /// Creates a controller with self-calibrating thresholds.
    pub fn new(os: &'a O, params: MacParams) -> Self {
        assert!(params.initial_increment > 0, "increment must be positive");
        assert!(
            params.max_increment >= params.initial_increment,
            "max increment below initial increment"
        );
        assert!(
            params.slow_multiplier > 1.0,
            "slow multiplier must exceed 1"
        );
        assert!(params.sub_batch_pages > 0, "sub-batch must be positive");
        Mac {
            os,
            params,
            thresholds: RefCell::new(None),
            stats: RefCell::new(MacStats::default()),
        }
    }

    /// Creates a controller that takes its thresholds from the
    /// microbenchmark repository when present (the paper's preferred
    /// "values calculated once ... and advertised in a file").
    pub fn with_repository(os: &'a O, mut params: MacParams, repo: &ParamRepository) -> Self {
        if let Ok(Some(sub)) = repo.get_u64(keys::SCHED_SUB_BATCH_PAGES) {
            if sub > 0 {
                params.sub_batch_pages = sub;
            }
        }
        let mac = Mac::new(os, params);
        let touch = repo.get_duration(keys::PAGE_TOUCH_NS).ok().flatten();
        let zero = repo.get_duration(keys::PAGE_ALLOC_ZERO_NS).ok().flatten();
        if let (Some(touch), Some(zero)) = (touch, zero) {
            let mult = mac.params.slow_multiplier;
            *mac.thresholds.borrow_mut() = Some(Thresholds {
                touch_slow: touch.mul_f64(mult),
                zero_slow: zero.max(touch).mul_f64(mult),
            });
        }
        mac
    }

    /// The parameters in use.
    pub fn params(&self) -> &MacParams {
        &self.params
    }

    /// Takes and resets the accumulated overhead statistics.
    pub fn take_stats(&self) -> MacStats {
        std::mem::take(&mut self.stats.borrow_mut())
    }

    /// Allocates between `min` and `max` bytes, in multiples of `multiple`,
    /// returning `None` if `min` bytes are not available after the
    /// configured retries (the paper's NULL return).
    ///
    /// An application that cannot adapt its memory use passes
    /// `min == max`.
    ///
    /// # Panics
    ///
    /// Panics if `multiple` is zero or `min > max`.
    pub fn gb_alloc(&self, min: u64, max: u64, multiple: u64) -> OsResult<Option<GbAlloc>> {
        assert!(multiple > 0, "multiple must be positive");
        assert!(min <= max, "min exceeds max");
        let page = self.os.page_size();
        let min = round_up(min.max(multiple), multiple);
        let max = round_down(max, multiple);
        if max == 0 || min > max {
            return Ok(None);
        }

        for attempt in 0..=self.params.max_retries {
            self.stats.borrow_mut().attempts += 1;
            if attempt > 0 {
                // Jitter the wait so competing MACs do not retry in
                // lockstep; the clock's low bits are as good a seed as a
                // gray-box layer gets.
                let jitter = self.os.now().as_nanos() % 1000;
                let wait =
                    self.params.retry_wait + self.params.retry_wait.mul_f64(jitter as f64 / 2000.0);
                self.os.sleep(wait);
                self.stats.borrow_mut().wait_time += wait;
            }
            let fit = self.probe_available(max, page)?;
            let admitted = round_down(fit, multiple);
            if admitted >= min {
                trace::emit_with(|| TraceEvent::AdmissionDecision {
                    source: "mac.gb_alloc",
                    requested: max,
                    granted: admitted,
                });
                // Re-allocate exactly the admitted amount and make it
                // resident, so the caller starts from a known state and
                // the identify-and-allocate step is atomic from the
                // caller's perspective.
                return self.materialize(admitted, page).map(Some);
            }
        }
        trace::emit_with(|| TraceEvent::AdmissionDecision {
            source: "mac.gb_alloc",
            requested: max,
            granted: 0,
        });
        Ok(None)
    }

    /// A fairness-aware variant of [`Mac::gb_alloc`] — the "higher-level
    /// interface" the paper leaves as future work (§4.3.2).
    ///
    /// `peers` is the caller's estimate of how many processes are
    /// competing for memory (in the paper's Figure 7 workload, each
    /// gb-fastsort knows it is one of four). The request's maximum is
    /// clamped to a fair share of what currently looks available, so an
    /// early arriver does not grab everything and starve the rest; the
    /// minimum is still honored, so a process never accepts less than it
    /// can use.
    pub fn gb_alloc_fair(
        &self,
        min: u64,
        max: u64,
        multiple: u64,
        peers: u32,
    ) -> OsResult<Option<GbAlloc>> {
        let peers = peers.max(1) as u64;
        let available = self.available_estimate(max)?;
        let fair_max = (available / peers).max(min).min(max);
        self.gb_alloc(min, fair_max, multiple)
    }

    /// Releases an allocation made by [`Mac::gb_alloc`].
    pub fn gb_free(&self, alloc: GbAlloc) -> OsResult<()> {
        self.os.mem_free(alloc.region)
    }

    /// Allocates exactly `bytes` that some *shared* probe pass already
    /// admitted, without re-probing availability.
    ///
    /// This is the grant half of the `gray-sched` MAC admission queue:
    /// the queue runs one probe-and-verify calibration pass for all
    /// pending requests (instead of each `gb_alloc` perturbing the
    /// others), then carves grants from the single estimate through this
    /// method. The first-touch loop keeps the page-daemon run detection,
    /// and the region is verified resident afterwards — so if the shared
    /// estimate went stale between the probe pass and this grant (a
    /// competitor grabbed memory), the grant fails with `None` rather
    /// than silently overcommitting.
    pub fn gb_alloc_admitted(&self, bytes: u64) -> OsResult<Option<GbAlloc>> {
        if bytes == 0 {
            return Ok(None);
        }
        let page = self.os.page_size();
        let th = self.ensure_thresholds()?;
        self.stats.borrow_mut().attempts += 1;
        let probe_start = self.os.now();
        let region = self.os.mem_alloc(bytes)?;
        let pages = bytes.div_ceil(page);
        let sub = self.params.sub_batch_pages as usize;
        // First loop: materialize the grant, watching for slow runs that
        // betray the page daemon (the shared estimate is then stale).
        let mut slow_run = 0usize;
        let mut daemon = false;
        'touch: for batch_start in (0..pages).step_by(sub) {
            let batch_end = (batch_start + self.params.sub_batch_pages).min(pages);
            let plan: Vec<u64> = (batch_start..batch_end).collect();
            let samples = self.os.mem_probe_batch(region, &plan);
            self.stats.borrow_mut().pages_probed += samples.len() as u64;
            for s in &samples {
                if !s.ok {
                    self.os.mem_free(region)?;
                    return Err(OsError::InvalidArgument);
                }
                if s.elapsed > th.zero_slow {
                    slow_run += 1;
                    if slow_run >= self.params.slow_run_threshold {
                        daemon = true;
                        trace::emit_with(|| TraceEvent::ThresholdCrossed {
                            what: "mac.page_daemon",
                            value: slow_run as f64,
                            threshold: self.params.slow_run_threshold as f64,
                        });
                        break 'touch;
                    }
                } else {
                    slow_run = 0;
                }
            }
        }
        let fits = !daemon && self.verify_resident(region, pages, th)?;
        self.stats.borrow_mut().probe_time += self.os.now().since(probe_start);
        trace::emit_with(|| TraceEvent::AdmissionDecision {
            source: "mac.gb_alloc_admitted",
            requested: bytes,
            granted: if fits { bytes } else { 0 },
        });
        if !fits {
            self.os.mem_free(region)?;
            return Ok(None);
        }
        Ok(Some(GbAlloc { region, bytes }))
    }

    /// Allocates `bytes` (already admitted by a probe pass) and makes the
    /// region resident in bounded sub-batches, so the sweep is not one
    /// atomic step that starves competitors of scheduling points.
    fn materialize(&self, bytes: u64, page: u64) -> OsResult<GbAlloc> {
        let region = self.os.mem_alloc(bytes)?;
        let pages = bytes.div_ceil(page);
        let sub = self.params.sub_batch_pages;
        for batch_start in (0..pages).step_by(sub as usize) {
            let batch_end = (batch_start + sub).min(pages);
            let plan: Vec<u64> = (batch_start..batch_end).collect();
            if self.os.mem_probe_batch(region, &plan).iter().any(|s| !s.ok) {
                self.os.mem_free(region)?;
                return Err(OsError::InvalidArgument);
            }
        }
        Ok(GbAlloc { region, bytes })
    }

    /// Estimates currently available memory, in bytes, without retaining
    /// it. `ceiling` bounds the search (and the probe cost).
    pub fn available_estimate(&self, ceiling: u64) -> OsResult<u64> {
        let page = self.os.page_size();
        let fit = self.probe_available(round_down(ceiling, page).max(page), page)?;
        Ok(fit)
    }

    /// Core probe: returns the largest number of bytes `<= max` that fits
    /// in available memory right now. The scratch region is freed before
    /// returning.
    ///
    /// Probing runs up to two rounds. Round one grows until it either
    /// covers `max` cleanly or hits a boundary (the page daemon fired, or
    /// verification failed). A boundary probe leaves its own region partly
    /// swapped, which poisons further measurement of it — so round two
    /// releases everything and re-probes a *fresh* region with the ceiling
    /// clamped just below the detected boundary, where verification can
    /// succeed cleanly. (The cost of the second round is part of the probe
    /// overhead the paper reports.)
    fn probe_available(&self, max: u64, page: u64) -> OsResult<u64> {
        let fit = self.probe_available_rounds(max, page)?;
        trace::emit_with(|| TraceEvent::Estimated {
            quantity: "mac.available_bytes",
            value: fit as f64,
        });
        Ok(fit)
    }

    fn probe_available_rounds(&self, max: u64, page: u64) -> OsResult<u64> {
        let thresholds = self.ensure_thresholds()?;
        let init_pages = (self.params.initial_increment / page).max(1);
        let mut ceiling = max.div_ceil(page);
        for round in 0..2 {
            let region = self.os.mem_alloc(ceiling * page)?;
            let outcome = self.probe_region(region, ceiling, page, thresholds);
            self.os.mem_free(region)?;
            let (good, boundary) = outcome?;
            match boundary {
                None => return Ok(good * page),
                Some(b) if round == 0 => {
                    ceiling = b.saturating_sub(init_pages).max(good).max(1);
                }
                Some(_) => return Ok(good * page),
            }
        }
        unreachable!("two rounds always return");
    }

    /// One probing round over `region`. Returns `(good_pages, boundary)`:
    /// `good_pages` is the largest verified-resident size; `boundary` is
    /// `Some(point)` when probing stopped early at that point (daemon
    /// activity or a failed verification) rather than covering the whole
    /// region.
    fn probe_region(
        &self,
        region: MemRegion,
        max_pages: u64,
        page: u64,
        th: Thresholds,
    ) -> OsResult<(u64, Option<u64>)> {
        let mut good_pages = 0u64;
        let mut increment_pages = (self.params.initial_increment / page).max(1);
        let max_increment_pages = (self.params.max_increment / page).max(1);
        let probe_start = self.os.now();
        let mut result = (0u64, None);

        while good_pages < max_pages {
            let target = (good_pages + increment_pages).min(max_pages);

            // First loop: move the new chunk to a known state, watching for
            // runs of slow points that betray the page daemon. If the
            // daemon fires we stop touching promptly — pressing on would
            // force other processes' memory out (MAC must assume their
            // resident pages are their working sets). Probes go down in
            // bounded sub-batches, so the dispatch amortization never
            // overshoots the daemon's wake-up point by more than one
            // sub-batch.
            let mut slow_run = 0usize;
            let mut daemon_suspected = false;
            let mut touched_upto = target;
            'first: for batch_start in
                (good_pages..target).step_by(self.params.sub_batch_pages as usize)
            {
                let batch_end = (batch_start + self.params.sub_batch_pages).min(target);
                let plan: Vec<u64> = (batch_start..batch_end).collect();
                let samples = self.os.mem_probe_batch(region, &plan);
                self.stats.borrow_mut().pages_probed += samples.len() as u64;
                for s in &samples {
                    if !s.ok {
                        return Err(OsError::InvalidArgument);
                    }
                    if s.elapsed > th.zero_slow {
                        slow_run += 1;
                        if slow_run >= self.params.slow_run_threshold {
                            daemon_suspected = true;
                            touched_upto = s.offset + 1;
                            trace::emit_with(|| TraceEvent::ThresholdCrossed {
                                what: "mac.page_daemon",
                                value: slow_run as f64,
                                threshold: self.params.slow_run_threshold as f64,
                            });
                            break 'first;
                        }
                    } else {
                        slow_run = 0;
                    }
                }
            }

            // Second loop: verify that everything touched so far is still
            // resident (only materialized pages — `touched_upto` — can be
            // meaningfully verified).
            let candidate = touched_upto;
            let fits = self.verify_resident(region, candidate, th)?;

            if fits {
                good_pages = candidate;
                if daemon_suspected {
                    // It fits, but our growth activated the page daemon:
                    // stop here rather than squeeze competitors further.
                    result = (good_pages, Some(candidate));
                    break;
                }
                result = (good_pages, None);
                increment_pages = (increment_pages * 2).min(max_increment_pages);
            } else {
                // Too large: report the last verified amount and where the
                // boundary was observed.
                result = (good_pages, Some(candidate));
                break;
            }
        }

        self.stats.borrow_mut().probe_time += self.os.now().since(probe_start);
        Ok(result)
    }

    /// Timed re-touch of pages `0..pages`; true if at most the tolerated
    /// fraction was slow.
    fn verify_resident(&self, region: MemRegion, pages: u64, th: Thresholds) -> OsResult<bool> {
        if pages == 0 {
            return Ok(true);
        }
        let allowed = (pages as f64 * self.params.slow_tolerance).floor() as u64;
        // The verdict is monotone in the slow count, so batching reaches
        // the same answer the scalar early-exit loop did. Batches stay
        // bounded (rather than one whole-region batch) so competitors
        // still get scheduled mid-verification — an atomic full-region
        // re-touch would hide exactly the competition this check exists
        // to detect.
        let mut slow = 0u64;
        for batch_start in (0..pages).step_by(self.params.sub_batch_pages as usize) {
            let batch_end = (batch_start + self.params.sub_batch_pages).min(pages);
            let plan: Vec<u64> = (batch_start..batch_end).collect();
            let samples = self.os.mem_probe_batch(region, &plan);
            self.stats.borrow_mut().pages_probed += samples.len() as u64;
            for s in &samples {
                if !s.ok {
                    return Err(OsError::InvalidArgument);
                }
                if s.elapsed > th.touch_slow {
                    slow += 1;
                    if slow > allowed {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// Self-calibration: measure resident-touch and allocate-zero costs on
    /// a small scratch region that certainly fits in memory.
    fn ensure_thresholds(&self) -> OsResult<Thresholds> {
        if let Some(th) = *self.thresholds.borrow() {
            return Ok(th);
        }
        let page = self.os.page_size();
        let pages = self.params.calibration_pages.max(8);
        let region = self.os.mem_alloc(pages * page)?;
        let plan: Vec<u64> = (0..pages).collect();
        let mut zero_times = Vec::new();
        let mut touch_times = Vec::with_capacity(2 * pages as usize);
        for round in 0..4 {
            let samples = self.os.mem_probe_batch(region, &plan);
            if samples.iter().any(|s| !s.ok) {
                self.os.mem_free(region)?;
                return Err(OsError::InvalidArgument);
            }
            let times = samples.iter().map(|s| s.elapsed.as_nanos() as f64);
            match round {
                // Round 0 pays allocation + zeroing; rounds 2-3 are pure
                // resident re-touches (round 1 is a settling pass).
                0 => zero_times.extend(times),
                1 => {}
                _ => touch_times.extend(times),
            }
        }
        self.os.mem_free(region)?;
        // Calibrate the timer's own granularity: with a coarse clock
        // (e.g. microsecond gettimeofday), sub-quantum touches measure as
        // zero and a naive multiple-of-the-median threshold classifies
        // everything as slow. Floor the thresholds at a few quanta.
        let mut quantum = u64::MAX;
        for _ in 0..32 {
            let t0 = self.os.now();
            let t1 = self.os.now();
            let d = t1.since(t0).as_nanos();
            if d > 0 {
                quantum = quantum.min(d);
            }
        }
        let quantum = if quantum == u64::MAX { 1 } else { quantum };
        let floor = (quantum * 4) as f64;
        let touch = Summary::new(&touch_times).median().max(1.0);
        let zero = Summary::new(&zero_times).median().max(touch);
        let mult = self.params.slow_multiplier;
        let th = Thresholds {
            touch_slow: GrayDuration::from_nanos((touch * mult).max(floor) as u64),
            zero_slow: GrayDuration::from_nanos((zero * mult).max(floor) as u64),
        };
        *self.thresholds.borrow_mut() = Some(th);
        Ok(th)
    }
}

fn round_up(x: u64, m: u64) -> u64 {
    x.div_ceil(m) * m
}

fn round_down(x: u64, m: u64) -> u64 {
    x / m * m
}

/// How MAC maps onto the paper's technique taxonomy (Table 2).
pub fn techniques() -> TechniqueInventory {
    TechniqueInventory::new(
        "MAC",
        &[
            (
                Technique::AlgorithmicKnowledge,
                "Replacement defines working set",
            ),
            (Technique::MonitorOutputs, "Per-page write-touch times"),
            (Technique::StatisticalMethods, "Median calib, slow runs"),
            (Technique::Microbenchmarks, "Touch/zero costs from repo"),
            (Technique::InsertProbes, "Two-loop page writes"),
            (Technique::KnownState, "First loop makes chunk resident"),
            (Technique::Feedback, "AIMD-style increment growth"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockOs;

    const PAGE: u64 = 4096;

    fn small_params() -> MacParams {
        MacParams {
            initial_increment: 4 * PAGE,
            max_increment: 64 * PAGE,
            calibration_pages: 8,
            ..MacParams::default()
        }
    }

    #[test]
    fn estimates_available_memory_within_one_increment() {
        // 256 pages of memory, nothing else running.
        let os = MockOs::new(16, 256);
        let mac = Mac::new(&os, small_params());
        let est = mac.available_estimate(512 * PAGE).unwrap();
        let est_pages = est / PAGE;
        assert!(
            (200..=256).contains(&est_pages),
            "estimate {est_pages} pages of 256"
        );
    }

    #[test]
    fn estimate_respects_competitor_usage() {
        let os = MockOs::new(16, 256);
        // A competitor holds 100 pages resident.
        let competitor = os.mem_alloc(100 * PAGE).unwrap();
        for p in 0..100 {
            os.mem_touch_write(competitor, p).unwrap();
        }
        let mac = Mac::new(&os, small_params());
        let est = mac.available_estimate(512 * PAGE).unwrap() / PAGE;
        // The competitor is *idle*, so under the mock's global LRU its
        // pages are legitimately reclaimable: the estimate must cover at
        // least the 156 free pages, and never exceed physical memory.
        // (Active-competitor dynamics are exercised against simos in the
        // integration tests.)
        assert!(
            (156..=256).contains(&est),
            "estimate {est} pages with 156 free of 256"
        );
    }

    #[test]
    fn gb_alloc_returns_multiple_and_fits() {
        let os = MockOs::new(16, 256);
        let mac = Mac::new(&os, small_params());
        let alloc = mac
            .gb_alloc(10 * PAGE, 100 * PAGE, 3 * PAGE)
            .unwrap()
            .expect("plenty of memory");
        assert_eq!(alloc.bytes % (3 * PAGE), 0);
        assert!(alloc.bytes >= 10 * PAGE);
        assert!(alloc.bytes <= 100 * PAGE);
        mac.gb_free(alloc).unwrap();
    }

    #[test]
    fn gb_alloc_denies_impossible_minimum() {
        let os = MockOs::new(16, 64);
        let mac = Mac::new(&os, small_params());
        let alloc = mac.gb_alloc(1 << 30, 1 << 30, PAGE).unwrap();
        assert!(alloc.is_none(), "1 GiB cannot fit in 64 pages");
    }

    #[test]
    fn gb_alloc_min_equal_max_is_all_or_nothing() {
        let os = MockOs::new(16, 256);
        let mac = Mac::new(&os, small_params());
        let alloc = mac.gb_alloc(64 * PAGE, 64 * PAGE, PAGE).unwrap().unwrap();
        assert_eq!(alloc.bytes, 64 * PAGE);
        mac.gb_free(alloc).unwrap();
    }

    #[test]
    fn zero_max_yields_none() {
        let os = MockOs::new(16, 256);
        let mac = Mac::new(&os, small_params());
        assert!(mac.gb_alloc(0, 0, PAGE).unwrap().is_none());
    }

    #[test]
    #[should_panic(expected = "min exceeds max")]
    fn min_above_max_panics() {
        let os = MockOs::new(16, 256);
        let mac = Mac::new(&os, small_params());
        let _ = mac.gb_alloc(2 * PAGE, PAGE, PAGE);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let os = MockOs::new(16, 256);
        let mac = Mac::new(&os, small_params());
        let _ = mac.available_estimate(64 * PAGE).unwrap();
        let stats = mac.take_stats();
        assert!(stats.pages_probed > 0);
        assert!(stats.probe_time > GrayDuration::ZERO);
        assert_eq!(mac.take_stats(), MacStats::default());
    }

    #[test]
    fn repository_thresholds_skip_calibration() {
        let os = MockOs::new(16, 256);
        let mut repo = ParamRepository::in_memory();
        repo.set_duration(keys::PAGE_TOUCH_NS, GrayDuration::from_nanos(300));
        repo.set_duration(keys::PAGE_ALLOC_ZERO_NS, GrayDuration::from_micros(4));
        let mac = Mac::with_repository(&os, small_params(), &repo);
        assert!(mac.thresholds.borrow().is_some());
        let est = mac.available_estimate(64 * PAGE).unwrap();
        assert!(est > 0);
    }

    #[test]
    fn allocation_is_resident_after_admission() {
        let os = MockOs::new(16, 256);
        let mac = Mac::new(&os, small_params());
        let before = os.resident_anon_pages();
        let alloc = mac.gb_alloc(32 * PAGE, 32 * PAGE, PAGE).unwrap().unwrap();
        assert!(
            os.resident_anon_pages() >= before + 32,
            "admitted pages must be resident"
        );
        mac.gb_free(alloc).unwrap();
    }

    #[test]
    fn techniques_include_known_state_and_feedback() {
        let inv = techniques();
        assert!(inv.uses(Technique::KnownState));
        assert!(inv.uses(Technique::Feedback));
        assert!(inv.uses(Technique::InsertProbes));
    }

    #[test]
    fn fair_alloc_divides_by_peers() {
        let os = MockOs::new(16, 256);
        let mac = Mac::new(&os, small_params());
        let solo = mac.gb_alloc(PAGE, 256 * PAGE, PAGE).unwrap().unwrap();
        let solo_bytes = solo.bytes;
        mac.gb_free(solo).unwrap();
        let shared = mac
            .gb_alloc_fair(PAGE, 256 * PAGE, PAGE, 4)
            .unwrap()
            .unwrap();
        assert!(
            shared.bytes <= solo_bytes / 2,
            "a fair 1-of-4 share must be much less than the solo grab: {} vs {}",
            shared.bytes,
            solo_bytes
        );
        assert!(shared.bytes >= PAGE);
        mac.gb_free(shared).unwrap();
    }

    #[test]
    fn fair_alloc_still_honors_minimum() {
        let os = MockOs::new(16, 256);
        let mac = Mac::new(&os, small_params());
        // Fair share of 1/200 would be below the minimum; the minimum
        // wins if it fits at all.
        let a = mac
            .gb_alloc_fair(32 * PAGE, 256 * PAGE, PAGE, 200)
            .unwrap()
            .unwrap();
        assert!(a.bytes >= 32 * PAGE);
        mac.gb_free(a).unwrap();
    }

    #[test]
    fn rounding_helpers() {
        assert_eq!(round_up(5, 4), 8);
        assert_eq!(round_up(8, 4), 8);
        assert_eq!(round_down(5, 4), 4);
        assert_eq!(round_down(3, 4), 0);
    }
}
