//! Passive observation: learning from the client's *existing* requests.
//!
//! Section 1 of the paper gives ICLs two information channels:
//! "Internally, to obtain information, the ICL may **observe the existing
//! client interactions** with the gray-box system or it may itself insert
//! **probes**." FCCD/FLDC/MAC are probe-based; this module is the other
//! channel — an interposition layer (in the spirit of Jones' toolkit the
//! paper cites) that wraps any [`GrayBoxOs`], forwards every call
//! untouched, and distills what the traffic already reveals:
//!
//! - per-file latency statistics, from which cache residency can be
//!   inferred by the same clustering FCCD uses — but at **zero probe
//!   cost** and **zero Heisenberg perturbation** beyond what the client
//!   was doing anyway;
//! - per-file sequentiality, the signal behind readahead and the access
//!   unit choice;
//! - an access log suitable for feeding the positive-feedback control
//!   loop (access what you accessed before, in the same units).
//!
//! The trade-off versus probing is the paper's: passive observation only
//! knows about data the client touched, and its residency picture ages as
//! other processes perturb the cache. Combine with sparse probes when
//! coverage matters.

use std::cell::RefCell;
use std::collections::HashMap;

use gray_toolbox::{two_means, GrayDuration, Nanos, OnlineStats};

use crate::os::{Fd, GrayBoxOs, MemRegion, OsResult, Stat};

/// Accumulated observations for one file path.
#[derive(Debug, Clone, Default)]
pub struct PathObservation {
    /// Number of read calls observed.
    pub reads: u64,
    /// Bytes read.
    pub bytes: u64,
    /// Per-read latency normalized to µs per 4 KiB (so small and large
    /// reads are comparable).
    pub latency_per_page: OnlineStats,
    /// Read calls that continued exactly where the previous one ended.
    pub sequential_reads: u64,
    /// Number of write calls observed.
    pub writes: u64,
}

impl PathObservation {
    /// Fraction of reads that were sequential continuations, in [0, 1].
    pub fn sequential_fraction(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.sequential_reads as f64 / self.reads as f64
        }
    }
}

/// A residency verdict inferred from passive traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidencyInference {
    /// Paths whose observed latencies fell in the fast cluster.
    pub looks_cached: Vec<String>,
    /// Paths in the slow cluster.
    pub looks_uncached: Vec<String>,
    /// Paths with too little traffic to judge.
    pub unknown: Vec<String>,
    /// Cluster separation in [0, 1]; low separation means the verdicts
    /// are weak (everything looked alike).
    pub separation: f64,
}

#[derive(Debug, Default)]
struct ObserverState {
    fd_paths: HashMap<u32, String>,
    fd_last_end: HashMap<u32, u64>,
    paths: HashMap<String, PathObservation>,
}

/// An interposition layer over any [`GrayBoxOs`] backend.
///
/// Every call is forwarded verbatim; reads and writes are additionally
/// timed and folded into per-path statistics. Use
/// [`PassiveObserver::observations`] for the raw record and
/// [`PassiveObserver::infer_residency`] for the FCCD-style clustering of
/// what the traffic showed.
///
/// # Examples
///
/// ```
/// use graybox::mock::MockOs;
/// use graybox::observe::PassiveObserver;
/// use graybox::os::{GrayBoxOs, GrayBoxOsExt};
///
/// let os = MockOs::new(1024, 64);
/// os.write_file("/f", b"hello").unwrap();
/// let observed = PassiveObserver::new(&os);
/// // The application uses `observed` exactly like the raw OS...
/// let data = observed.read_to_vec("/f").unwrap();
/// assert_eq!(data, b"hello");
/// // ...and the layer has learned from the traffic.
/// assert_eq!(observed.observations()["/f"].reads, 1);
/// ```
pub struct PassiveObserver<'a, O: GrayBoxOs> {
    os: &'a O,
    state: RefCell<ObserverState>,
}

impl<'a, O: GrayBoxOs> PassiveObserver<'a, O> {
    /// Wraps a backend.
    pub fn new(os: &'a O) -> Self {
        PassiveObserver {
            os,
            state: RefCell::new(ObserverState::default()),
        }
    }

    /// A snapshot of everything observed so far, keyed by path.
    pub fn observations(&self) -> HashMap<String, PathObservation> {
        self.state.borrow().paths.clone()
    }

    /// Clears the observation record (e.g. after acting on it).
    pub fn reset(&self) {
        let mut st = self.state.borrow_mut();
        st.paths.clear();
        st.fd_last_end.clear();
    }

    /// Clusters observed per-path latencies into looks-cached /
    /// looks-uncached, exactly as FCCD clusters probe times — but from
    /// free-riding on client traffic. Paths with fewer than `min_reads`
    /// observed reads are reported unknown rather than guessed.
    pub fn infer_residency(&self, min_reads: u64) -> ResidencyInference {
        let st = self.state.borrow();
        let mut known: Vec<(&String, f64)> = Vec::new();
        let mut unknown = Vec::new();
        for (path, obs) in &st.paths {
            if obs.reads >= min_reads && obs.latency_per_page.count() > 0 {
                known.push((path, obs.latency_per_page.mean()));
            } else {
                unknown.push(path.clone());
            }
        }
        if known.len() < 2 {
            return ResidencyInference {
                looks_cached: Vec::new(),
                looks_uncached: known.into_iter().map(|(p, _)| p.clone()).collect(),
                unknown,
                separation: 0.0,
            };
        }
        let times: Vec<f64> = known.iter().map(|(_, t)| *t).collect();
        let clustering = two_means(&times);
        let separation = clustering.separation(&times);
        if separation < 0.5 {
            return ResidencyInference {
                looks_cached: Vec::new(),
                looks_uncached: known.into_iter().map(|(p, _)| p.clone()).collect(),
                unknown,
                separation,
            };
        }
        let mut looks_cached = Vec::new();
        let mut looks_uncached = Vec::new();
        for ((path, _), &cluster) in known.iter().zip(&clustering.assignment) {
            if cluster == 0 {
                looks_cached.push((*path).clone());
            } else {
                looks_uncached.push((*path).clone());
            }
        }
        looks_cached.sort();
        looks_uncached.sort();
        ResidencyInference {
            looks_cached,
            looks_uncached,
            unknown,
            separation,
        }
    }

    fn note_read(&self, fd: Fd, offset: u64, bytes: u64, elapsed: GrayDuration) {
        let mut st = self.state.borrow_mut();
        let Some(path) = st.fd_paths.get(&fd.0).cloned() else {
            return;
        };
        let sequential = st.fd_last_end.get(&fd.0) == Some(&offset);
        st.fd_last_end.insert(fd.0, offset + bytes);
        let obs = st.paths.entry(path).or_default();
        obs.reads += 1;
        obs.bytes += bytes;
        if sequential {
            obs.sequential_reads += 1;
        }
        if bytes > 0 {
            let per_page = elapsed.as_micros_f64() * 4096.0 / bytes as f64;
            obs.latency_per_page.push(per_page);
        }
    }
}

impl<'a, O: GrayBoxOs> GrayBoxOs for PassiveObserver<'a, O> {
    fn now(&self) -> Nanos {
        self.os.now()
    }

    fn page_size(&self) -> u64 {
        self.os.page_size()
    }

    fn open(&self, path: &str) -> OsResult<Fd> {
        let fd = self.os.open(path)?;
        self.state
            .borrow_mut()
            .fd_paths
            .insert(fd.0, path.to_string());
        Ok(fd)
    }

    fn create(&self, path: &str) -> OsResult<Fd> {
        let fd = self.os.create(path)?;
        self.state
            .borrow_mut()
            .fd_paths
            .insert(fd.0, path.to_string());
        Ok(fd)
    }

    fn close(&self, fd: Fd) -> OsResult<()> {
        let mut st = self.state.borrow_mut();
        st.fd_paths.remove(&fd.0);
        st.fd_last_end.remove(&fd.0);
        drop(st);
        self.os.close(fd)
    }

    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> OsResult<usize> {
        let t0 = self.os.now();
        let n = self.os.read_at(fd, offset, buf)?;
        let elapsed = self.os.now().since(t0);
        self.note_read(fd, offset, n as u64, elapsed);
        Ok(n)
    }

    fn read_discard(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64> {
        let t0 = self.os.now();
        let n = self.os.read_discard(fd, offset, len)?;
        let elapsed = self.os.now().since(t0);
        self.note_read(fd, offset, n, elapsed);
        Ok(n)
    }

    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> OsResult<usize> {
        let n = self.os.write_at(fd, offset, data)?;
        let mut st = self.state.borrow_mut();
        if let Some(path) = st.fd_paths.get(&fd.0).cloned() {
            st.paths.entry(path).or_default().writes += 1;
        }
        Ok(n)
    }

    fn write_fill(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64> {
        let n = self.os.write_fill(fd, offset, len)?;
        let mut st = self.state.borrow_mut();
        if let Some(path) = st.fd_paths.get(&fd.0).cloned() {
            st.paths.entry(path).or_default().writes += 1;
        }
        Ok(n)
    }

    fn file_size(&self, fd: Fd) -> OsResult<u64> {
        self.os.file_size(fd)
    }

    fn sync(&self) -> OsResult<()> {
        self.os.sync()
    }

    fn stat(&self, path: &str) -> OsResult<Stat> {
        self.os.stat(path)
    }

    fn list_dir(&self, path: &str) -> OsResult<Vec<String>> {
        self.os.list_dir(path)
    }

    fn mkdir(&self, path: &str) -> OsResult<()> {
        self.os.mkdir(path)
    }

    fn rmdir(&self, path: &str) -> OsResult<()> {
        self.os.rmdir(path)
    }

    fn unlink(&self, path: &str) -> OsResult<()> {
        self.os.unlink(path)
    }

    fn rename(&self, from: &str, to: &str) -> OsResult<()> {
        self.os.rename(from, to)
    }

    fn set_times(&self, path: &str, atime: Nanos, mtime: Nanos) -> OsResult<()> {
        self.os.set_times(path, atime, mtime)
    }

    fn mem_alloc(&self, bytes: u64) -> OsResult<MemRegion> {
        self.os.mem_alloc(bytes)
    }

    fn mem_free(&self, region: MemRegion) -> OsResult<()> {
        self.os.mem_free(region)
    }

    fn mem_touch_write(&self, region: MemRegion, page: u64) -> OsResult<()> {
        self.os.mem_touch_write(region, page)
    }

    fn mem_touch_read(&self, region: MemRegion, page: u64) -> OsResult<u8> {
        self.os.mem_touch_read(region, page)
    }

    fn compute(&self, work: GrayDuration) {
        self.os.compute(work);
    }

    fn sleep(&self, d: GrayDuration) {
        self.os.sleep(d);
    }

    fn yield_now(&self) {
        self.os.yield_now();
    }
}

/// How the passive observer maps onto the technique taxonomy.
pub fn techniques() -> crate::technique::TechniqueInventory {
    crate::technique::TechniqueInventory::new(
        "Passive observer",
        &[
            (
                crate::technique::Technique::AlgorithmicKnowledge,
                "Latency reveals cache state",
            ),
            (
                crate::technique::Technique::MonitorOutputs,
                "Times the client's own reads",
            ),
            (
                crate::technique::Technique::StatisticalMethods,
                "Per-path stats + clustering",
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockOs;
    use crate::os::GrayBoxOsExt;

    #[test]
    fn forwarding_is_transparent() {
        let os = MockOs::new(1024, 64);
        let observed = PassiveObserver::new(&os);
        observed.mkdir("/d").unwrap();
        observed.write_file("/d/f", b"payload").unwrap();
        assert_eq!(observed.read_to_vec("/d/f").unwrap(), b"payload");
        observed.rename("/d/f", "/d/g").unwrap();
        assert_eq!(os.read_to_vec("/d/g").unwrap(), b"payload");
        assert_eq!(observed.stat("/d/g").unwrap().size, 7);
    }

    #[test]
    fn records_reads_bytes_and_writes() {
        let os = MockOs::new(1024, 64);
        let observed = PassiveObserver::new(&os);
        observed.write_file("/f", &vec![1u8; 10_000]).unwrap();
        let fd = observed.open("/f").unwrap();
        let mut buf = vec![0u8; 4096];
        observed.read_at(fd, 0, &mut buf).unwrap();
        observed.read_at(fd, 4096, &mut buf).unwrap();
        observed.close(fd).unwrap();
        let obs = observed.observations();
        let f = &obs["/f"];
        assert_eq!(f.reads, 2);
        assert_eq!(f.bytes, 8192);
        assert_eq!(f.writes, 1);
    }

    #[test]
    fn detects_sequentiality() {
        let os = MockOs::new(1024, 64);
        let observed = PassiveObserver::new(&os);
        observed.write_file("/seq", &vec![0u8; 64 << 10]).unwrap();
        observed.write_file("/rand", &vec![0u8; 64 << 10]).unwrap();
        let fd = observed.open("/seq").unwrap();
        for i in 0..8u64 {
            observed.read_discard(fd, i * 8192, 8192).unwrap();
        }
        observed.close(fd).unwrap();
        let fd = observed.open("/rand").unwrap();
        for i in [5u64, 1, 7, 2, 6, 0, 3, 4] {
            observed.read_discard(fd, i * 8192, 8192).unwrap();
        }
        observed.close(fd).unwrap();
        let obs = observed.observations();
        assert!(obs["/seq"].sequential_fraction() > 0.8);
        assert!(obs["/rand"].sequential_fraction() < 0.3);
    }

    #[test]
    fn residency_inference_matches_cache_state() {
        let os = MockOs::new(1 << 20, 64);
        let observed = PassiveObserver::new(&os);
        for i in 0..6 {
            observed
                .write_file(&format!("/f{i}"), &vec![0u8; 32 << 10])
                .unwrap();
        }
        os.flush_cache();
        os.warm("/f1", 0..8);
        os.warm("/f4", 0..8);
        // The "application" reads every file once; the observer watches.
        for i in 0..6 {
            let fd = observed.open(&format!("/f{i}")).unwrap();
            observed.read_discard(fd, 0, 32 << 10).unwrap();
            observed.close(fd).unwrap();
        }
        let inference = observed.infer_residency(1);
        assert_eq!(inference.looks_cached, vec!["/f1", "/f4"]);
        assert_eq!(inference.looks_uncached.len(), 4);
        assert!(inference.separation > 0.9);
        assert!(inference.unknown.is_empty());
    }

    #[test]
    fn thin_traffic_is_reported_unknown_not_guessed() {
        let os = MockOs::new(1024, 64);
        let observed = PassiveObserver::new(&os);
        observed.write_file("/seen", &vec![0u8; 8192]).unwrap();
        observed.write_file("/unseen", &vec![0u8; 8192]).unwrap();
        let fd = observed.open("/seen").unwrap();
        observed.read_discard(fd, 0, 8192).unwrap();
        observed.close(fd).unwrap();
        let inference = observed.infer_residency(3);
        assert!(inference.looks_cached.is_empty());
        assert!(inference.unknown.contains(&"/seen".to_string()));
        // "/unseen" entered the record through its creation write but was
        // never read, so it is unknown as well — never guessed.
        assert!(inference.unknown.contains(&"/unseen".to_string()));
    }

    #[test]
    fn all_alike_traffic_yields_no_verdicts() {
        let os = MockOs::new(1 << 20, 64);
        let observed = PassiveObserver::new(&os);
        for i in 0..4 {
            observed
                .write_file(&format!("/f{i}"), &vec![0u8; 16 << 10])
                .unwrap();
        }
        os.flush_cache();
        for i in 0..4 {
            let fd = observed.open(&format!("/f{i}")).unwrap();
            observed.read_discard(fd, 0, 16 << 10).unwrap();
            observed.close(fd).unwrap();
        }
        let inference = observed.infer_residency(1);
        assert!(
            inference.looks_cached.is_empty(),
            "uniformly cold traffic must not split: {inference:?}"
        );
    }

    #[test]
    fn reset_clears_the_record() {
        let os = MockOs::new(1024, 64);
        let observed = PassiveObserver::new(&os);
        observed.write_file("/f", b"x").unwrap();
        assert!(!observed.observations().is_empty());
        observed.reset();
        assert!(observed.observations().is_empty());
    }

    #[test]
    fn taxonomy_marks_no_probes() {
        let inv = techniques();
        assert!(inv.uses(crate::technique::Technique::MonitorOutputs));
        assert!(!inv.uses(crate::technique::Technique::InsertProbes));
    }
}
