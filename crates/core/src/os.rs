//! The gray-box view of the operating system.
//!
//! [`GrayBoxOs`] is the *entire* interface an ICL is allowed to use. It is a
//! deliberately ordinary, black-box POSIX-flavored surface: files,
//! directories, anonymous memory, a clock, and a way to burn CPU. Nothing on
//! this trait reveals internal OS state — no `mincore`, no `/proc`, no page
//! tables. Whatever an ICL learns, it must learn by issuing these calls and
//! *measuring* what comes back, which is exactly the constraint the paper
//! sets itself ("not changing the OS restricts, but does not completely
//! obviate, the information one can acquire").
//!
//! The trait is implemented by the `simos` crate (a deterministic simulated
//! OS used for all experiments) and by the `hostos` crate (the real OS under
//! `std`), so every ICL and application in this workspace runs unmodified on
//! both.

use core::fmt;

use gray_toolbox::{GrayDuration, Nanos};

/// A process-local file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

/// An opaque handle to an anonymous memory region obtained from
/// [`GrayBoxOs::mem_alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRegion(pub u64);

/// The subset of `stat(2)` output the ICLs rely on.
///
/// The i-number is the load-bearing field: FLDC's layout inference rests on
/// the gray-box knowledge that, in FFS descendants, creation order within a
/// clean directory matches both i-number order and data-block layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: u64,
    /// Device / file-system identifier (files on different devices never
    /// share a layout relationship).
    pub dev: u64,
    /// File size in bytes.
    pub size: u64,
    /// Whether this is a directory.
    pub is_dir: bool,
    /// Last-access time.
    pub atime: Nanos,
    /// Last-modification time.
    pub mtime: Nanos,
}

/// Why a gray-box OS call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// The path does not exist.
    NotFound,
    /// The path already exists.
    AlreadyExists,
    /// A non-final path component is not a directory.
    NotADirectory,
    /// The operation needs a file but found a directory.
    IsADirectory,
    /// Directory is not empty (rmdir).
    NotEmpty,
    /// The file descriptor is not open.
    BadFd,
    /// The memory region handle is not live.
    BadRegion,
    /// An argument was out of range (offset past EOF on write, zero-length
    /// allocation, page index out of bounds, ...).
    InvalidArgument,
    /// The file system has no space left.
    NoSpace,
    /// The process exceeded an address-space or region-count limit.
    OutOfMemory,
    /// The backend cannot perform this operation (e.g. the host backend
    /// refuses cross-device renames).
    Unsupported,
    /// Backend-specific I/O failure, with a description.
    Io(String),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NotFound => write!(f, "no such file or directory"),
            OsError::AlreadyExists => write!(f, "file exists"),
            OsError::NotADirectory => write!(f, "not a directory"),
            OsError::IsADirectory => write!(f, "is a directory"),
            OsError::NotEmpty => write!(f, "directory not empty"),
            OsError::BadFd => write!(f, "bad file descriptor"),
            OsError::BadRegion => write!(f, "bad memory region"),
            OsError::InvalidArgument => write!(f, "invalid argument"),
            OsError::NoSpace => write!(f, "no space left on device"),
            OsError::OutOfMemory => write!(f, "out of memory"),
            OsError::Unsupported => write!(f, "operation not supported"),
            OsError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for OsError {}

/// Result alias for gray-box OS calls.
pub type OsResult<T> = Result<T, OsError>;

/// One probe in a batched timed-read request: which byte offset to touch.
///
/// Kept as a struct (not a bare `u64`) so batch plans can grow per-probe
/// parameters later without re-signaturing every backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSpec {
    /// Absolute file offset of the 1-byte read.
    pub offset: u64,
}

/// The timed outcome of one probe from a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeSample {
    /// The offset that was probed (copied from the spec, so results can be
    /// interpreted without holding the request alongside).
    pub offset: u64,
    /// Clock time the probe took, as observed by the probing process.
    pub elapsed: GrayDuration,
    /// Whether the read returned a byte. A failed probe (offset past EOF,
    /// stale descriptor) still reports its elapsed time.
    pub ok: bool,
}

/// The black-box syscall surface of a UNIX-like operating system.
///
/// Implementations must uphold two properties the ICLs depend on:
///
/// 1. **The clock is monotone** and reflects the real (or simulated) cost of
///    the calls the process makes — timing `read_at` of a cached page versus
///    an uncached page must show the cache.
/// 2. **Calls have their natural side effects**: reading a page brings it
///    into the file cache (the *Heisenberg effect* the ICLs must budget
///    for), writing to a fresh anonymous page allocates physical memory,
///    and so on. A backend that served reads out of thin air would be
///    useless to a gray-box layer.
///
/// Paths are `/`-separated UTF-8 strings, absolute from the backend's root.
pub trait GrayBoxOs {
    // --- Observation --------------------------------------------------

    /// Reads the high-resolution clock.
    ///
    /// This is the covert channel every ICL in the paper uses. The returned
    /// instant must be monotone non-decreasing within a process.
    fn now(&self) -> Nanos;

    /// The VM page size in bytes (the natural unit of both file caching and
    /// memory probing).
    fn page_size(&self) -> u64;

    // --- Files ---------------------------------------------------------

    /// Opens an existing file for reading and writing.
    fn open(&self, path: &str) -> OsResult<Fd>;

    /// Creates a new file (failing if it exists) and opens it.
    fn create(&self, path: &str) -> OsResult<Fd>;

    /// Closes an open descriptor.
    fn close(&self, fd: Fd) -> OsResult<()>;

    /// Reads up to `buf.len()` bytes at absolute `offset`, returning the
    /// number of bytes read (0 at or past EOF).
    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> OsResult<usize>;

    /// Reads `len` bytes at `offset` *without materializing them* for the
    /// caller, returning the number of bytes covered.
    ///
    /// Semantically identical to [`GrayBoxOs::read_at`] into a scratch
    /// buffer — including all cache side effects — but lets large modelled
    /// workloads avoid allocating gigabyte buffers. Backends where reading
    /// is cheap may implement it as a loop over `read_at`.
    fn read_discard(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64>;

    /// Writes `data` at absolute `offset`, extending the file if needed.
    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> OsResult<usize>;

    /// Appends `len` bytes of unspecified (backend-generated) content at
    /// `offset`, for bulk data creation in modelled workloads. Same side
    /// effects as `write_at`.
    fn write_fill(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64>;

    /// The current size of an open file.
    fn file_size(&self, fd: Fd) -> OsResult<u64>;

    /// Flushes dirty cached data for the whole system (like `sync(2)`).
    fn sync(&self) -> OsResult<()>;

    // --- Namespace -----------------------------------------------------

    /// Stats a path without opening it.
    fn stat(&self, path: &str) -> OsResult<Stat>;

    /// Lists the names (not paths) in a directory, in directory order —
    /// i.e. the order entries physically appear, which on FFS descendants
    /// reflects creation order modulo reuse of freed slots.
    fn list_dir(&self, path: &str) -> OsResult<Vec<String>>;

    /// Creates a directory.
    fn mkdir(&self, path: &str) -> OsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&self, path: &str) -> OsResult<()>;

    /// Unlinks a file.
    fn unlink(&self, path: &str) -> OsResult<()>;

    /// Renames a file or directory within the same file system.
    fn rename(&self, from: &str, to: &str) -> OsResult<()>;

    /// Sets access and modification times (like `utimes(2)`); FLDC's
    /// directory refresh uses this so `make` and friends keep working.
    fn set_times(&self, path: &str, atime: Nanos, mtime: Nanos) -> OsResult<()>;

    // --- Anonymous memory ----------------------------------------------

    /// Reserves `bytes` of anonymous memory. Like `malloc`, this consumes
    /// address space only; physical pages are allocated on first touch.
    fn mem_alloc(&self, bytes: u64) -> OsResult<MemRegion>;

    /// Releases a region and all its pages.
    fn mem_free(&self, region: MemRegion) -> OsResult<()>;

    /// Writes one byte to page `page` of `region`.
    ///
    /// MAC's probes *write* rather than read because, with copy-on-write
    /// zero pages, reads would not force physical allocation.
    fn mem_touch_write(&self, region: MemRegion, page: u64) -> OsResult<()>;

    /// Reads one byte from page `page` of `region`.
    fn mem_touch_read(&self, region: MemRegion, page: u64) -> OsResult<u8>;

    // --- Process -------------------------------------------------------

    /// Consumes `work` of CPU time (used by applications to model their
    /// computation; a host backend may simply spin).
    fn compute(&self, work: GrayDuration);

    /// Sleeps for at least `d`.
    fn sleep(&self, d: GrayDuration);

    /// Yields the CPU to other runnable processes.
    fn yield_now(&self);

    // --- Conveniences with default implementations ----------------------

    /// Reads a single byte at `offset` — the FCCD probe primitive.
    fn read_byte(&self, fd: Fd, offset: u64) -> OsResult<u8> {
        let mut b = [0u8; 1];
        let n = self.read_at(fd, offset, &mut b)?;
        if n == 0 {
            return Err(OsError::InvalidArgument);
        }
        Ok(b[0])
    }

    /// Times an arbitrary operation with the backend clock.
    fn timed<R>(&self, op: impl FnOnce(&Self) -> R) -> (R, GrayDuration) {
        let t0 = self.now();
        let r = op(self);
        (r, self.now().since(t0))
    }

    /// Issues a batch of timed 1-byte read probes against one descriptor.
    ///
    /// Each probe is individually timed — clock read, 1-byte read at the
    /// spec's offset, clock read — and touches the cache exactly as a lone
    /// [`read_byte`](GrayBoxOs::read_byte) would, in spec order. The value
    /// of batching is dispatch amortization, not semantic change: backends
    /// may service the whole batch under one kernel entry (one lock
    /// acquisition, one scheduler pass in `simos`; one descriptor-table
    /// borrow and no per-probe allocation in `hostos`), but the pages
    /// touched, their order, and the per-probe observed times must match
    /// the scalar loop this default provides.
    fn probe_batch(&self, fd: Fd, specs: &[ProbeSpec]) -> Vec<ProbeSample> {
        let mut out = Vec::with_capacity(specs.len());
        for spec in specs {
            let (res, elapsed) = self.timed(|os| os.read_byte(fd, spec.offset));
            out.push(ProbeSample {
                offset: spec.offset,
                elapsed,
                ok: res.is_ok(),
            });
        }
        out
    }

    /// Issues a batch of timed page write-touches against one region — the
    /// MAC probe primitive, vectored.
    ///
    /// Mirrors [`probe_batch`](GrayBoxOs::probe_batch): per-page timing and
    /// per-page fault/allocation side effects are identical to a loop of
    /// [`timed`](GrayBoxOs::timed)
    /// [`mem_touch_write`](GrayBoxOs::mem_touch_write) calls in `pages`
    /// order; only the dispatch overhead is amortized. The `offset` field
    /// of each returned sample carries the page index.
    fn mem_probe_batch(&self, region: MemRegion, pages: &[u64]) -> Vec<ProbeSample> {
        let mut out = Vec::with_capacity(pages.len());
        for &page in pages {
            let (res, elapsed) = self.timed(|os| os.mem_touch_write(region, page));
            out.push(ProbeSample {
                offset: page,
                elapsed,
                ok: res.is_ok(),
            });
        }
        out
    }
}

/// Extension helpers layered on the raw trait.
pub trait GrayBoxOsExt: GrayBoxOs {
    /// Reads an entire file into a vector (small files only).
    fn read_to_vec(&self, path: &str) -> OsResult<Vec<u8>> {
        let fd = self.open(path)?;
        let size = self.file_size(fd)?;
        let mut buf = vec![0u8; size as usize];
        let mut done = 0usize;
        while done < buf.len() {
            let n = self.read_at(fd, done as u64, &mut buf[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        buf.truncate(done);
        self.close(fd)?;
        Ok(buf)
    }

    /// Creates a file at `path` holding `data`.
    fn write_file(&self, path: &str, data: &[u8]) -> OsResult<()> {
        let fd = self.create(path)?;
        let mut done = 0usize;
        while done < data.len() {
            let n = self.write_at(fd, done as u64, &data[done..])?;
            if n == 0 {
                return Err(OsError::Io("short write".into()));
            }
            done += n;
        }
        self.close(fd)
    }

    /// Joins a directory path and a file name.
    fn join(&self, dir: &str, name: &str) -> String {
        if dir.ends_with('/') {
            format!("{dir}{name}")
        } else {
            format!("{dir}/{name}")
        }
    }
}

impl<O: GrayBoxOs + ?Sized> GrayBoxOsExt for O {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_readably() {
        assert_eq!(OsError::NotFound.to_string(), "no such file or directory");
        assert_eq!(OsError::Io("boom".into()).to_string(), "I/O error: boom");
    }

    #[test]
    fn fd_and_region_are_plain_handles() {
        assert_eq!(Fd(3), Fd(3));
        assert_ne!(MemRegion(1), MemRegion(2));
    }
}
