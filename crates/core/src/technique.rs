//! The taxonomy of gray-box techniques (paper Section 2, Tables 1 and 2).
//!
//! The paper classifies every gray-box system by which of seven techniques
//! it uses. Each ICL (and each prior-art case study) exposes a
//! [`TechniqueInventory`] describing itself in these terms; the reproduction
//! harness renders those inventories as Tables 1 and 2.

use core::fmt;

/// One of the gray-box techniques identified in Section 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Acquire algorithmic knowledge of the OS (information).
    AlgorithmicKnowledge,
    /// Monitor outputs of existing operations (information).
    MonitorOutputs,
    /// Use statistical methods on noisy observations (information).
    StatisticalMethods,
    /// Use microbenchmarks to parameterize the system (information).
    Microbenchmarks,
    /// Insert probes — requests issued solely to observe outputs
    /// (information).
    InsertProbes,
    /// Move the system to a known state (control).
    KnownState,
    /// Reinforce behavior via feedback (control).
    Feedback,
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Technique::AlgorithmicKnowledge => "Knowledge",
            Technique::MonitorOutputs => "Outputs",
            Technique::StatisticalMethods => "Statistics",
            Technique::Microbenchmarks => "Benchmarks",
            Technique::InsertProbes => "Probes",
            Technique::KnownState => "Known state",
            Technique::Feedback => "Feedback",
        };
        f.write_str(name)
    }
}

impl Technique {
    /// All techniques in the row order of the paper's Tables 1 and 2.
    pub const ALL: [Technique; 7] = [
        Technique::AlgorithmicKnowledge,
        Technique::MonitorOutputs,
        Technique::StatisticalMethods,
        Technique::Microbenchmarks,
        Technique::InsertProbes,
        Technique::KnownState,
        Technique::Feedback,
    ];
}

/// How one gray-box system uses the seven techniques.
///
/// Each entry is a short free-text description (as in the paper's tables) or
/// `"None"` when the system does not use that technique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TechniqueInventory {
    /// The system's name (column header in the table).
    pub system: &'static str,
    /// Per-technique descriptions, in [`Technique::ALL`] order.
    pub entries: [(&'static str, &'static str); 7],
}

impl TechniqueInventory {
    /// Builds an inventory; `rows` supplies descriptions for the techniques
    /// the system uses, everything else defaults to "None".
    pub fn new(system: &'static str, rows: &[(Technique, &'static str)]) -> Self {
        let mut entries: [(&'static str, &'static str); 7] = [
            ("Knowledge", "None"),
            ("Outputs", "None"),
            ("Statistics", "None"),
            ("Benchmarks", "None"),
            ("Probes", "None"),
            ("Known state", "None"),
            ("Feedback", "None"),
        ];
        for (tech, desc) in rows {
            let idx = Technique::ALL
                .iter()
                .position(|t| t == tech)
                .expect("ALL covers every variant");
            entries[idx].1 = desc;
        }
        TechniqueInventory { system, entries }
    }

    /// The description for a particular technique.
    pub fn get(&self, tech: Technique) -> &'static str {
        let idx = Technique::ALL
            .iter()
            .position(|t| *t == tech)
            .expect("ALL covers every variant");
        self.entries[idx].1
    }

    /// Whether the system uses a technique at all.
    pub fn uses(&self, tech: Technique) -> bool {
        self.get(tech) != "None"
    }
}

/// Renders a set of inventories as an aligned text table (one column per
/// system, one row per technique) in the style of the paper's Tables 1–2.
pub fn render_table(title: &str, inventories: &[TechniqueInventory]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let label_w = 12;
    let col_w = inventories
        .iter()
        .flat_map(|inv| {
            std::iter::once(inv.system.len()).chain(inv.entries.iter().map(|(_, d)| d.len()))
        })
        .max()
        .unwrap_or(8)
        .max(8)
        + 2;
    out.push_str(&format!("{:label_w$}", ""));
    for inv in inventories {
        out.push_str(&format!("{:col_w$}", inv.system));
    }
    out.push('\n');
    for (i, tech) in Technique::ALL.iter().enumerate() {
        out.push_str(&format!("{:label_w$}", tech.to_string()));
        for inv in inventories {
            out.push_str(&format!("{:col_w$}", inv.entries[i].1));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_defaults_to_none() {
        let inv = TechniqueInventory::new("X", &[(Technique::InsertProbes, "reads")]);
        assert!(inv.uses(Technique::InsertProbes));
        assert!(!inv.uses(Technique::Feedback));
        assert_eq!(inv.get(Technique::InsertProbes), "reads");
        assert_eq!(inv.get(Technique::KnownState), "None");
    }

    #[test]
    fn table_renders_all_rows() {
        let inv = TechniqueInventory::new("S", &[(Technique::MonitorOutputs, "time")]);
        let table = render_table("T", &[inv]);
        for tech in Technique::ALL {
            assert!(table.contains(&tech.to_string()), "missing {tech}");
        }
        assert!(table.contains("time"));
    }
}
