//! A miniature in-memory [`GrayBoxOs`] for unit tests and examples.
//!
//! `MockOs` models just enough OS behavior for the ICLs to be exercised
//! deterministically without the full `simos` substrate: an in-memory file
//! system with sequential i-number assignment, an LRU file cache of
//! configurable capacity with fixed hit/miss costs, and an anonymous-memory
//! pool with fixed touch/allocate/swap costs. There is no noise and no
//! concurrency; the clock advances by exactly the configured cost of each
//! call.
//!
//! This is *not* the experimental substrate (see the `simos` crate for
//! that); it exists so that `graybox`'s own unit tests, doctests, and
//! downstream users' tests can run the ICL logic hermetically.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};

use gray_toolbox::{GrayDuration, Nanos};

use crate::os::{Fd, GrayBoxOs, MemRegion, OsError, OsResult, Stat};

/// Cost model for [`MockOs`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MockCosts {
    /// Cost of a page read served from the mock file cache.
    pub cache_hit: GrayDuration,
    /// Cost of a page read served from the mock disk.
    pub cache_miss: GrayDuration,
    /// Cost of touching a resident anonymous page.
    pub mem_touch: GrayDuration,
    /// Cost of allocating and zeroing a fresh anonymous page.
    pub mem_zero: GrayDuration,
    /// Cost of faulting an anonymous page back in from swap.
    pub swap_in: GrayDuration,
    /// Cost of a metadata operation (`stat`, `open`, directory ops).
    pub meta: GrayDuration,
    /// Cost `sync` pays per dirty file page written back (on top of one
    /// `meta` charge) — the observable side effect the WBD infers from.
    pub sync_page: GrayDuration,
}

impl Default for MockCosts {
    fn default() -> Self {
        MockCosts {
            cache_hit: GrayDuration::from_micros(3),
            cache_miss: GrayDuration::from_millis(5),
            mem_touch: GrayDuration::from_nanos(300),
            mem_zero: GrayDuration::from_micros(4),
            swap_in: GrayDuration::from_millis(6),
            meta: GrayDuration::from_micros(10),
            sync_page: GrayDuration::from_millis(2),
        }
    }
}

#[derive(Debug, Clone)]
struct MockFile {
    ino: u64,
    data: Vec<u8>,
    atime: Nanos,
    mtime: Nanos,
}

#[derive(Debug, Default)]
struct MockDir {
    ino: u64,
    entries: Vec<String>,
}

#[derive(Debug)]
struct Region {
    pages: u64,
    /// Page index -> resident? (absent = never touched, false = swapped).
    state: HashMap<u64, bool>,
    data: HashMap<u64, u8>,
}

#[derive(Debug)]
struct Inner {
    clock: Nanos,
    files: BTreeMap<String, MockFile>,
    dirs: BTreeMap<String, MockDir>,
    next_ino: u64,
    fds: HashMap<u32, String>,
    next_fd: u32,
    /// LRU queue of (ino, page) with membership set.
    cache_lru: VecDeque<(u64, u64)>,
    cache_set: HashMap<(u64, u64), ()>,
    /// Dirty (ino, page) pairs: written but not yet synced.
    dirty_set: HashMap<(u64, u64), ()>,
    cache_capacity_pages: usize,
    regions: HashMap<u64, Region>,
    next_region: u64,
    /// LRU of resident anon pages (region, page).
    anon_lru: VecDeque<(u64, u64)>,
    mem_capacity_pages: usize,
    resident_anon: usize,
    page_size: u64,
}

/// The mock OS. See the [module documentation](self).
#[derive(Debug)]
pub struct MockOs {
    inner: RefCell<Inner>,
    costs: MockCosts,
}

impl MockOs {
    /// Creates a mock with the given file-cache and memory capacities (in
    /// pages) and default costs. The root directory `/` exists.
    pub fn new(cache_capacity_pages: usize, mem_capacity_pages: usize) -> Self {
        Self::with_costs(
            cache_capacity_pages,
            mem_capacity_pages,
            MockCosts::default(),
        )
    }

    /// Creates a mock with explicit costs.
    pub fn with_costs(
        cache_capacity_pages: usize,
        mem_capacity_pages: usize,
        costs: MockCosts,
    ) -> Self {
        let mut dirs = BTreeMap::new();
        dirs.insert(
            "/".to_string(),
            MockDir {
                ino: 2,
                entries: Vec::new(),
            },
        );
        MockOs {
            inner: RefCell::new(Inner {
                clock: Nanos::ZERO,
                files: BTreeMap::new(),
                dirs,
                next_ino: 3,
                fds: HashMap::new(),
                next_fd: 3,
                cache_lru: VecDeque::new(),
                cache_set: HashMap::new(),
                dirty_set: HashMap::new(),
                cache_capacity_pages,
                regions: HashMap::new(),
                next_region: 1,
                anon_lru: VecDeque::new(),
                mem_capacity_pages,
                resident_anon: 0,
                page_size: 4096,
            }),
            costs,
        }
    }

    /// Test oracle: whether a given page of a file is in the mock cache.
    pub fn page_cached(&self, path: &str, page: u64) -> bool {
        let inner = self.inner.borrow();
        let Some(f) = inner.files.get(path) else {
            return false;
        };
        inner.cache_set.contains_key(&(f.ino, page))
    }

    /// Test oracle: number of resident anonymous pages.
    pub fn resident_anon_pages(&self) -> usize {
        self.inner.borrow().resident_anon
    }

    /// Test oracle: number of cached file pages.
    pub fn cached_file_pages(&self) -> usize {
        self.inner.borrow().cache_set.len()
    }

    /// Test oracle: number of dirty file pages awaiting writeback.
    pub fn dirty_file_pages(&self) -> usize {
        self.inner.borrow().dirty_set.len()
    }

    /// Drops every cached file page (a "flush" between experiments).
    /// Dirty pages are discarded, not written back.
    pub fn flush_cache(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.cache_lru.clear();
        inner.cache_set.clear();
        inner.dirty_set.clear();
    }

    /// Pre-loads a page range of a file into the cache without advancing
    /// the clock (test setup helper).
    pub fn warm(&self, path: &str, pages: impl IntoIterator<Item = u64>) {
        let mut inner = self.inner.borrow_mut();
        let Some(ino) = inner.files.get(path).map(|f| f.ino) else {
            return;
        };
        for p in pages {
            inner.cache_insert(ino, p);
        }
    }

    fn charge(&self, inner: &mut Inner, cost: GrayDuration) {
        inner.clock += cost;
    }

    fn parent_of(path: &str) -> OsResult<(&str, &str)> {
        let path = path.trim_end_matches('/');
        if path.is_empty() {
            return Err(OsError::InvalidArgument);
        }
        match path.rfind('/') {
            Some(0) => Ok(("/", &path[1..])),
            Some(i) => Ok((&path[..i], &path[i + 1..])),
            None => Err(OsError::InvalidArgument),
        }
    }
}

impl Inner {
    fn cache_insert(&mut self, ino: u64, page: u64) {
        if self.cache_set.contains_key(&(ino, page)) {
            return;
        }
        while self.cache_set.len() >= self.cache_capacity_pages {
            let Some(victim) = self.cache_lru.pop_front() else {
                break;
            };
            self.cache_set.remove(&victim);
        }
        self.cache_lru.push_back((ino, page));
        self.cache_set.insert((ino, page), ());
    }

    fn cache_touch(&mut self, ino: u64, page: u64) -> bool {
        if self.cache_set.contains_key(&(ino, page)) {
            // Move to MRU position.
            if let Some(pos) = self.cache_lru.iter().position(|&e| e == (ino, page)) {
                self.cache_lru.remove(pos);
                self.cache_lru.push_back((ino, page));
            }
            true
        } else {
            false
        }
    }

    fn evict_one_anon(&mut self) {
        if let Some((rid, page)) = self.anon_lru.pop_front() {
            if let Some(region) = self.regions.get_mut(&rid) {
                if let Some(state) = region.state.get_mut(&page) {
                    *state = false;
                }
            }
            self.resident_anon -= 1;
        }
    }

    fn anon_make_resident(&mut self, rid: u64, page: u64) {
        while self.resident_anon >= self.mem_capacity_pages {
            self.evict_one_anon();
        }
        self.anon_lru.push_back((rid, page));
        self.resident_anon += 1;
        if let Some(region) = self.regions.get_mut(&rid) {
            region.state.insert(page, true);
        }
    }

    fn anon_touch_lru(&mut self, rid: u64, page: u64) {
        if let Some(pos) = self.anon_lru.iter().position(|&e| e == (rid, page)) {
            self.anon_lru.remove(pos);
            self.anon_lru.push_back((rid, page));
        }
    }
}

impl GrayBoxOs for MockOs {
    fn now(&self) -> Nanos {
        self.inner.borrow().clock
    }

    fn page_size(&self) -> u64 {
        self.inner.borrow().page_size
    }

    fn open(&self, path: &str) -> OsResult<Fd> {
        let mut inner = self.inner.borrow_mut();
        self.charge(&mut inner, self.costs.meta);
        if !inner.files.contains_key(path) {
            return Err(OsError::NotFound);
        }
        let fd = inner.next_fd;
        inner.next_fd += 1;
        inner.fds.insert(fd, path.to_string());
        Ok(Fd(fd))
    }

    fn create(&self, path: &str) -> OsResult<Fd> {
        let mut inner = self.inner.borrow_mut();
        self.charge(&mut inner, self.costs.meta);
        if inner.files.contains_key(path) || inner.dirs.contains_key(path) {
            return Err(OsError::AlreadyExists);
        }
        let (dir, name) = MockOs::parent_of(path)?;
        let name = name.to_string();
        if !inner.dirs.contains_key(dir) {
            return Err(OsError::NotFound);
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        let now = inner.clock;
        inner.files.insert(
            path.to_string(),
            MockFile {
                ino,
                data: Vec::new(),
                atime: now,
                mtime: now,
            },
        );
        inner
            .dirs
            .get_mut(dir)
            .expect("checked above")
            .entries
            .push(name);
        let fd = inner.next_fd;
        inner.next_fd += 1;
        inner.fds.insert(fd, path.to_string());
        Ok(Fd(fd))
    }

    fn close(&self, fd: Fd) -> OsResult<()> {
        let mut inner = self.inner.borrow_mut();
        inner.fds.remove(&fd.0).map(|_| ()).ok_or(OsError::BadFd)
    }

    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> OsResult<usize> {
        let mut inner = self.inner.borrow_mut();
        let path = inner.fds.get(&fd.0).ok_or(OsError::BadFd)?.clone();
        let (ino, size) = {
            let f = inner.files.get(&path).ok_or(OsError::NotFound)?;
            (f.ino, f.data.len() as u64)
        };
        if offset >= size {
            return Ok(0);
        }
        let len = (buf.len() as u64).min(size - offset);
        let page_size = inner.page_size;
        let first = offset / page_size;
        let last = (offset + len - 1) / page_size;
        let mut cost = GrayDuration::ZERO;
        for page in first..=last {
            if inner.cache_touch(ino, page) {
                cost += self.costs.cache_hit;
            } else {
                cost += self.costs.cache_miss;
                inner.cache_insert(ino, page);
            }
        }
        self.charge(&mut inner, cost);
        let f = inner.files.get(&path).expect("checked above");
        buf[..len as usize].copy_from_slice(&f.data[offset as usize..(offset + len) as usize]);
        Ok(len as usize)
    }

    fn read_discard(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64> {
        let mut scratch = vec![0u8; len.min(1 << 20) as usize];
        let mut covered = 0u64;
        while covered < len {
            let want = (len - covered).min(scratch.len() as u64) as usize;
            let n = self.read_at(fd, offset + covered, &mut scratch[..want])?;
            if n == 0 {
                break;
            }
            covered += n as u64;
        }
        Ok(covered)
    }

    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> OsResult<usize> {
        let mut inner = self.inner.borrow_mut();
        let path = inner.fds.get(&fd.0).ok_or(OsError::BadFd)?.clone();
        let now = inner.clock;
        let page_size = inner.page_size;
        let (ino, pages) = {
            let f = inner.files.get_mut(&path).ok_or(OsError::NotFound)?;
            let end = offset as usize + data.len();
            if f.data.len() < end {
                f.data.resize(end, 0);
            }
            f.data[offset as usize..end].copy_from_slice(data);
            f.mtime = now;
            if data.is_empty() {
                (f.ino, 0..0)
            } else {
                (
                    f.ino,
                    offset / page_size..(offset + data.len() as u64 - 1) / page_size + 1,
                )
            }
        };
        let mut cost = GrayDuration::ZERO;
        for page in pages {
            if !inner.cache_touch(ino, page) {
                inner.cache_insert(ino, page);
            }
            inner.dirty_set.insert((ino, page), ());
            cost += self.costs.cache_hit;
        }
        self.charge(&mut inner, cost);
        Ok(data.len())
    }

    fn write_fill(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64> {
        let data = vec![0xAB; len as usize];
        self.write_at(fd, offset, &data).map(|n| n as u64)
    }

    fn file_size(&self, fd: Fd) -> OsResult<u64> {
        let inner = self.inner.borrow();
        let path = inner.fds.get(&fd.0).ok_or(OsError::BadFd)?;
        Ok(inner.files.get(path).ok_or(OsError::NotFound)?.data.len() as u64)
    }

    fn sync(&self) -> OsResult<()> {
        let mut inner = self.inner.borrow_mut();
        let dirty = inner.dirty_set.len() as u64;
        inner.dirty_set.clear();
        let cost = self.costs.meta + self.costs.sync_page * dirty;
        self.charge(&mut inner, cost);
        Ok(())
    }

    fn stat(&self, path: &str) -> OsResult<Stat> {
        let mut inner = self.inner.borrow_mut();
        self.charge(&mut inner, self.costs.meta);
        if let Some(f) = inner.files.get(path) {
            return Ok(Stat {
                ino: f.ino,
                dev: 1,
                size: f.data.len() as u64,
                is_dir: false,
                atime: f.atime,
                mtime: f.mtime,
            });
        }
        if let Some(d) = inner.dirs.get(path) {
            return Ok(Stat {
                ino: d.ino,
                dev: 1,
                size: 0,
                is_dir: true,
                atime: Nanos::ZERO,
                mtime: Nanos::ZERO,
            });
        }
        Err(OsError::NotFound)
    }

    fn list_dir(&self, path: &str) -> OsResult<Vec<String>> {
        let mut inner = self.inner.borrow_mut();
        self.charge(&mut inner, self.costs.meta);
        inner
            .dirs
            .get(path)
            .map(|d| d.entries.clone())
            .ok_or(OsError::NotFound)
    }

    fn mkdir(&self, path: &str) -> OsResult<()> {
        let mut inner = self.inner.borrow_mut();
        self.charge(&mut inner, self.costs.meta);
        if inner.dirs.contains_key(path) || inner.files.contains_key(path) {
            return Err(OsError::AlreadyExists);
        }
        let (dir, name) = MockOs::parent_of(path)?;
        let name = name.to_string();
        if !inner.dirs.contains_key(dir) {
            return Err(OsError::NotFound);
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        inner.dirs.insert(
            path.to_string(),
            MockDir {
                ino,
                entries: Vec::new(),
            },
        );
        inner
            .dirs
            .get_mut(dir)
            .expect("checked above")
            .entries
            .push(name);
        Ok(())
    }

    fn rmdir(&self, path: &str) -> OsResult<()> {
        let mut inner = self.inner.borrow_mut();
        self.charge(&mut inner, self.costs.meta);
        match inner.dirs.get(path) {
            None => return Err(OsError::NotFound),
            Some(d) if !d.entries.is_empty() => return Err(OsError::NotEmpty),
            Some(_) => {}
        }
        inner.dirs.remove(path);
        let (dir, name) = MockOs::parent_of(path)?;
        let (dir, name) = (dir.to_string(), name.to_string());
        if let Some(parent) = inner.dirs.get_mut(&dir) {
            parent.entries.retain(|e| *e != name);
        }
        Ok(())
    }

    fn unlink(&self, path: &str) -> OsResult<()> {
        let mut inner = self.inner.borrow_mut();
        self.charge(&mut inner, self.costs.meta);
        let file = inner.files.remove(path).ok_or(OsError::NotFound)?;
        inner.cache_lru.retain(|&(ino, _)| ino != file.ino);
        inner.cache_set.retain(|&(ino, _), _| ino != file.ino);
        inner.dirty_set.retain(|&(ino, _), _| ino != file.ino);
        let (dir, name) = MockOs::parent_of(path)?;
        let (dir, name) = (dir.to_string(), name.to_string());
        if let Some(parent) = inner.dirs.get_mut(&dir) {
            parent.entries.retain(|e| *e != name);
        }
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> OsResult<()> {
        let mut inner = self.inner.borrow_mut();
        self.charge(&mut inner, self.costs.meta);
        if let Some(file) = inner.files.remove(from) {
            let (fdir, fname) = MockOs::parent_of(from)?;
            let (tdir, tname) = MockOs::parent_of(to)?;
            let (fdir, fname) = (fdir.to_string(), fname.to_string());
            let (tdir, tname) = (tdir.to_string(), tname.to_string());
            inner.files.insert(to.to_string(), file);
            if let Some(p) = inner.dirs.get_mut(&fdir) {
                p.entries.retain(|e| *e != fname);
            }
            if let Some(p) = inner.dirs.get_mut(&tdir) {
                p.entries.push(tname);
            }
            return Ok(());
        }
        if inner.dirs.contains_key(from) {
            if inner.dirs.contains_key(to) {
                return Err(OsError::AlreadyExists);
            }
            // Move the directory and every path beneath it.
            let moved: Vec<String> = inner
                .dirs
                .keys()
                .filter(|k| *k == from || k.starts_with(&format!("{from}/")))
                .cloned()
                .collect();
            for old in moved {
                let new = format!("{to}{}", &old[from.len()..]);
                let d = inner.dirs.remove(&old).expect("key listed above");
                inner.dirs.insert(new, d);
            }
            let moved_files: Vec<String> = inner
                .files
                .keys()
                .filter(|k| k.starts_with(&format!("{from}/")))
                .cloned()
                .collect();
            for old in moved_files {
                let new = format!("{to}{}", &old[from.len()..]);
                let f = inner.files.remove(&old).expect("key listed above");
                inner.files.insert(new, f);
            }
            let (fdir, fname) = MockOs::parent_of(from)?;
            let (tdir, tname) = MockOs::parent_of(to)?;
            let (fdir, fname) = (fdir.to_string(), fname.to_string());
            let (tdir, tname) = (tdir.to_string(), tname.to_string());
            if let Some(p) = inner.dirs.get_mut(&fdir) {
                p.entries.retain(|e| *e != fname);
            }
            if let Some(p) = inner.dirs.get_mut(&tdir) {
                p.entries.push(tname);
            }
            return Ok(());
        }
        Err(OsError::NotFound)
    }

    fn set_times(&self, path: &str, atime: Nanos, mtime: Nanos) -> OsResult<()> {
        let mut inner = self.inner.borrow_mut();
        self.charge(&mut inner, self.costs.meta);
        let f = inner.files.get_mut(path).ok_or(OsError::NotFound)?;
        f.atime = atime;
        f.mtime = mtime;
        Ok(())
    }

    fn mem_alloc(&self, bytes: u64) -> OsResult<MemRegion> {
        if bytes == 0 {
            return Err(OsError::InvalidArgument);
        }
        let mut inner = self.inner.borrow_mut();
        self.charge(&mut inner, self.costs.meta);
        let pages = bytes.div_ceil(inner.page_size);
        let rid = inner.next_region;
        inner.next_region += 1;
        inner.regions.insert(
            rid,
            Region {
                pages,
                state: HashMap::new(),
                data: HashMap::new(),
            },
        );
        Ok(MemRegion(rid))
    }

    fn mem_free(&self, region: MemRegion) -> OsResult<()> {
        let mut inner = self.inner.borrow_mut();
        let r = inner.regions.remove(&region.0).ok_or(OsError::BadRegion)?;
        let resident = r.state.values().filter(|&&v| v).count();
        inner.resident_anon -= resident;
        inner.anon_lru.retain(|&(rid, _)| rid != region.0);
        Ok(())
    }

    fn mem_touch_write(&self, region: MemRegion, page: u64) -> OsResult<()> {
        let mut inner = self.inner.borrow_mut();
        let state = {
            let r = inner.regions.get(&region.0).ok_or(OsError::BadRegion)?;
            if page >= r.pages {
                return Err(OsError::InvalidArgument);
            }
            r.state.get(&page).copied()
        };
        let cost = match state {
            Some(true) => {
                inner.anon_touch_lru(region.0, page);
                self.costs.mem_touch
            }
            Some(false) => {
                inner.anon_make_resident(region.0, page);
                self.costs.swap_in
            }
            None => {
                inner.anon_make_resident(region.0, page);
                self.costs.mem_zero
            }
        };
        if let Some(r) = inner.regions.get_mut(&region.0) {
            r.data.insert(page, 0xCD);
        }
        self.charge(&mut inner, cost);
        Ok(())
    }

    fn mem_touch_read(&self, region: MemRegion, page: u64) -> OsResult<u8> {
        let mut inner = self.inner.borrow_mut();
        let state = {
            let r = inner.regions.get(&region.0).ok_or(OsError::BadRegion)?;
            if page >= r.pages {
                return Err(OsError::InvalidArgument);
            }
            r.state.get(&page).copied()
        };
        let cost = match state {
            Some(true) => {
                inner.anon_touch_lru(region.0, page);
                self.costs.mem_touch
            }
            Some(false) => {
                inner.anon_make_resident(region.0, page);
                self.costs.swap_in
            }
            // Copy-on-write zero page: a read does NOT allocate.
            None => self.costs.mem_touch,
        };
        let value = inner
            .regions
            .get(&region.0)
            .and_then(|r| r.data.get(&page).copied())
            .unwrap_or(0);
        self.charge(&mut inner, cost);
        Ok(value)
    }

    fn compute(&self, work: GrayDuration) {
        let mut inner = self.inner.borrow_mut();
        inner.clock += work;
    }

    fn sleep(&self, d: GrayDuration) {
        let mut inner = self.inner.borrow_mut();
        inner.clock += d;
    }

    fn yield_now(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::GrayBoxOsExt;

    #[test]
    fn create_write_read_round_trip() {
        let os = MockOs::new(1024, 1024);
        os.write_file("/a.txt", b"hello").unwrap();
        assert_eq!(os.read_to_vec("/a.txt").unwrap(), b"hello");
    }

    #[test]
    fn inode_numbers_follow_creation_order() {
        let os = MockOs::new(1024, 1024);
        os.write_file("/a", b"x").unwrap();
        os.write_file("/b", b"x").unwrap();
        os.write_file("/c", b"x").unwrap();
        let ia = os.stat("/a").unwrap().ino;
        let ib = os.stat("/b").unwrap().ino;
        let ic = os.stat("/c").unwrap().ino;
        assert!(ia < ib && ib < ic);
    }

    #[test]
    fn cached_reads_are_faster_than_uncached() {
        let os = MockOs::new(1024, 1024);
        os.write_file("/f", &vec![7u8; 8192]).unwrap();
        os.flush_cache();
        let fd = os.open("/f").unwrap();
        let (_, cold) = os.timed(|os| os.read_byte(fd, 0).unwrap());
        let (_, warm) = os.timed(|os| os.read_byte(fd, 1).unwrap());
        assert!(cold > warm * 10, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn cache_evicts_lru_beyond_capacity() {
        let os = MockOs::new(2, 1024);
        os.write_file("/f", &vec![0u8; 4096 * 4]).unwrap();
        os.flush_cache();
        let fd = os.open("/f").unwrap();
        for page in 0..3u64 {
            os.read_byte(fd, page * 4096).unwrap();
        }
        assert!(!os.page_cached("/f", 0), "page 0 should have been evicted");
        assert!(os.page_cached("/f", 1));
        assert!(os.page_cached("/f", 2));
    }

    #[test]
    fn mem_write_touch_allocates_and_read_does_not() {
        let os = MockOs::new(16, 16);
        let r = os.mem_alloc(4096 * 4).unwrap();
        os.mem_touch_read(r, 0).unwrap();
        assert_eq!(os.resident_anon_pages(), 0, "CoW read must not allocate");
        os.mem_touch_write(r, 0).unwrap();
        assert_eq!(os.resident_anon_pages(), 1);
    }

    #[test]
    fn over_commit_swaps_and_swap_in_is_slow() {
        let os = MockOs::new(16, 2);
        let r = os.mem_alloc(4096 * 3).unwrap();
        for p in 0..3 {
            os.mem_touch_write(r, p).unwrap();
        }
        // Page 0 was evicted; touching it again must be slow.
        let (_, t) = os.timed(|os| os.mem_touch_write(r, 0).unwrap());
        assert!(t >= GrayDuration::from_millis(1), "swap-in was {t}");
    }

    #[test]
    fn mem_free_releases_residency() {
        let os = MockOs::new(16, 8);
        let r = os.mem_alloc(4096 * 4).unwrap();
        for p in 0..4 {
            os.mem_touch_write(r, p).unwrap();
        }
        os.mem_free(r).unwrap();
        assert_eq!(os.resident_anon_pages(), 0);
        assert!(os.mem_touch_write(r, 0).is_err());
    }

    #[test]
    fn rename_moves_directories_recursively() {
        let os = MockOs::new(16, 16);
        os.mkdir("/d").unwrap();
        os.write_file("/d/f", b"x").unwrap();
        os.rename("/d", "/e").unwrap();
        assert!(os.stat("/e/f").is_ok());
        assert!(os.stat("/d/f").is_err());
        assert_eq!(os.list_dir("/").unwrap(), vec!["e".to_string()]);
    }

    #[test]
    fn unlink_purges_cache_entries() {
        let os = MockOs::new(16, 16);
        os.write_file("/f", &vec![0u8; 4096]).unwrap();
        assert!(os.cached_file_pages() > 0);
        os.unlink("/f").unwrap();
        assert_eq!(os.cached_file_pages(), 0);
    }

    #[test]
    fn list_dir_preserves_creation_order() {
        let os = MockOs::new(16, 16);
        for name in ["z", "a", "m"] {
            os.write_file(&format!("/{name}"), b"").unwrap();
        }
        assert_eq!(os.list_dir("/").unwrap(), vec!["z", "a", "m"]);
    }

    #[test]
    fn set_times_round_trips() {
        let os = MockOs::new(16, 16);
        os.write_file("/f", b"x").unwrap();
        os.set_times("/f", Nanos::from_secs(1), Nanos::from_secs(2))
            .unwrap();
        let st = os.stat("/f").unwrap();
        assert_eq!(st.atime, Nanos::from_secs(1));
        assert_eq!(st.mtime, Nanos::from_secs(2));
    }
}
