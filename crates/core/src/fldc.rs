//! FLDC — the File Layout Detector and Controller (paper Section 4.2).
//!
//! FLDC lets an application order small-file accesses by the files'
//! *probable layout on disk*, reducing seek time — and, when layout has
//! decayed with file-system age, restore it by *refreshing* a directory.
//!
//! # Gray-box knowledge
//!
//! Most UNIX file systems descend from the Berkeley Fast File System:
//! blocks and metadata of files in the same directory land in the same
//! cylinder group, and on a clean file system, files created consecutively
//! in a directory get consecutive i-numbers *and* nearby data blocks. So:
//!
//! - **Detection**: `stat()` each file (a cheap probe) and sort by
//!   `(device, i-number)`. Sorting by i-number subsumes sorting by
//!   directory, since each directory's files cluster in i-number space.
//! - **Control**: to counteract aging, *move the system to a known state*
//!   by rewriting a directory's files in a chosen order (small files first,
//!   so that large files — which decorrelate i-numbers from layout — get
//!   the tail i-numbers). The six-step refresh recipe is the paper's:
//!   create a temp directory, sort, copy in order, fix up times, delete the
//!   original, rename.
//!
//! # Caveats (paper Section 4.2.5)
//!
//! The inference is UNIX-centric (it needs i-numbers) and FFS-specific; a
//! log-structured file system would need a time-of-write heuristic instead.
//! Refreshing changes i-numbers, so it must not run concurrently with
//! applications that hold i-numbers; and the delete/rename pair is not
//! atomic — a crash in between needs the "nightly repair script" described
//! by the paper, which [`Fldc::repair_interrupted_refresh`] implements.

use gray_toolbox::GrayDuration;

use crate::os::{GrayBoxOs, GrayBoxOsExt, OsError, OsResult, Stat};
use crate::technique::{Technique, TechniqueInventory};

/// Suffix used for the temporary directory during a refresh; doubles as the
/// crash signature [`Fldc::repair_interrupted_refresh`] looks for.
const REFRESH_SUFFIX: &str = ".gbrefresh";

/// A file with its stat information, as ranked by the detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutRank {
    /// The file's path.
    pub path: String,
    /// The stat the ranking was computed from.
    pub stat: Stat,
}

/// Orderings the refresh controller can write files back in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshOrder {
    /// Smallest files first (the paper's default: large files decorrelate
    /// i-numbers from layout, so they are pushed to the tail).
    #[default]
    SmallestFirst,
    /// Preserve the current directory order.
    DirectoryOrder,
    /// Lexicographic by name (useful for reproducible tests).
    ByName,
}

/// The File Layout Detector and Controller.
pub struct Fldc<'a, O: GrayBoxOs> {
    os: &'a O,
}

impl<'a, O: GrayBoxOs> Fldc<'a, O> {
    /// Creates a detector/controller over the given OS.
    pub fn new(os: &'a O) -> Self {
        Fldc { os }
    }

    /// Stats every path and returns them sorted by `(device, i-number)` —
    /// the predicted on-disk order. Paths that fail to stat are dropped
    /// (they cannot be read anyway); the second element of the return
    /// counts them.
    pub fn order_by_inumber(&self, paths: &[String]) -> (Vec<LayoutRank>, usize) {
        let mut ranks = Vec::with_capacity(paths.len());
        let mut failed = 0usize;
        for path in paths {
            match self.os.stat(path) {
                Ok(stat) => ranks.push(LayoutRank {
                    path: path.clone(),
                    stat,
                }),
                Err(_) => failed += 1,
            }
        }
        ranks.sort_by(|a, b| {
            (a.stat.dev, a.stat.ino, &a.path).cmp(&(b.stat.dev, b.stat.ino, &b.path))
        });
        (ranks, failed)
    }

    /// Stats every path and returns them sorted by **modification time** —
    /// the layout predictor for log-structured file systems, where "writes
    /// that occur near one another in time lead to proximity in space"
    /// (paper §4.2.5's LFS porting note). Ties break by i-number, then
    /// path. Unstat-able paths are counted, as in
    /// [`Fldc::order_by_inumber`].
    pub fn order_by_mtime(&self, paths: &[String]) -> (Vec<LayoutRank>, usize) {
        let mut ranks = Vec::with_capacity(paths.len());
        let mut failed = 0usize;
        for path in paths {
            match self.os.stat(path) {
                Ok(stat) => ranks.push(LayoutRank {
                    path: path.clone(),
                    stat,
                }),
                Err(_) => failed += 1,
            }
        }
        ranks.sort_by(|a, b| {
            (a.stat.mtime, a.stat.ino, &a.path).cmp(&(b.stat.mtime, b.stat.ino, &b.path))
        });
        (ranks, failed)
    }

    /// Groups paths by their parent directory (the paper's weaker
    /// heuristic: 10–25% over random, versus ~6x for i-number order),
    /// preserving input order within each group.
    pub fn order_by_directory(&self, paths: &[String]) -> Vec<String> {
        let mut keyed: Vec<(String, usize, &String)> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| (parent_dir(p).to_string(), i, p))
            .collect();
        keyed.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        keyed.into_iter().map(|(_, _, p)| p.clone()).collect()
    }

    /// Expands a directory into the i-number-ordered list of its files
    /// (convenience over `list_dir` + [`Fldc::order_by_inumber`]).
    pub fn order_directory(&self, dir: &str) -> OsResult<Vec<LayoutRank>> {
        let names = self.os.list_dir(dir)?;
        let paths: Vec<String> = names.iter().map(|n| self.os.join(dir, n)).collect();
        let (ranks, _) = self.order_by_inumber(&paths);
        Ok(ranks.into_iter().filter(|r| !r.stat.is_dir).collect())
    }

    /// Refreshes `dir`: rewrites its files in `order` so that i-number
    /// order again matches data-block layout (the paper's six steps).
    ///
    /// Subdirectories are not descended into; they are moved across by
    /// rename. Access and modification times of copied files are restored
    /// so time-dependent programs (`make`) keep working.
    ///
    /// Returns the number of files rewritten.
    pub fn refresh_directory(&self, dir: &str, order: RefreshOrder) -> OsResult<usize> {
        let dir = dir.trim_end_matches('/');
        if dir.is_empty() {
            return Err(OsError::InvalidArgument);
        }
        // Step 1: create a temporary directory at the same level.
        let tmp = format!("{dir}{REFRESH_SUFFIX}");
        self.os.mkdir(&tmp)?;

        // Step 2: sort the files.
        let names = self.os.list_dir(dir)?;
        let mut files: Vec<(String, Stat)> = Vec::new();
        let mut subdirs: Vec<String> = Vec::new();
        for name in names {
            let path = self.os.join(dir, &name);
            let stat = self.os.stat(&path)?;
            if stat.is_dir {
                subdirs.push(name);
            } else {
                files.push((name, stat));
            }
        }
        match order {
            RefreshOrder::SmallestFirst => {
                files.sort_by(|a, b| (a.1.size, &a.0).cmp(&(b.1.size, &b.0)));
            }
            RefreshOrder::DirectoryOrder => {}
            RefreshOrder::ByName => files.sort_by(|a, b| a.0.cmp(&b.0)),
        }

        // Step 3: copy the files over in sorted order, and
        // step 4: restore their access/modification times.
        for (name, stat) in &files {
            let src = self.os.join(dir, name);
            let dst = self.os.join(&tmp, name);
            self.copy_file(&src, &dst)?;
            self.os.set_times(&dst, stat.atime, stat.mtime)?;
        }
        // Subdirectories are moved, not copied, so their layout (and that
        // of everything beneath them) is untouched.
        for name in &subdirs {
            let src = self.os.join(dir, name);
            let dst = self.os.join(&tmp, name);
            self.os.rename(&src, &dst)?;
        }

        // Step 5: delete the old directory.
        for (name, _) in &files {
            self.os.unlink(&self.os.join(dir, name))?;
        }
        self.os.rmdir(dir)?;

        // Step 6: rename the temporary directory into place.
        self.os.rename(&tmp, dir)?;
        Ok(files.len())
    }

    /// Repairs the aftermath of a refresh that crashed between steps 5 and
    /// 6 (the paper's "nightly script that looks for a certain directory
    /// signature and patches up problems").
    ///
    /// For every `<name>.gbrefresh` under `parent`: if `<name>` no longer
    /// exists, the rename is completed; if `<name>` still exists, the
    /// refresh had not reached the destructive step, so the temporary copy
    /// is discarded. Returns the number of directories repaired.
    pub fn repair_interrupted_refresh(&self, parent: &str) -> OsResult<usize> {
        let names = self.os.list_dir(parent)?;
        let mut repaired = 0usize;
        for name in names {
            let Some(orig) = name.strip_suffix(REFRESH_SUFFIX) else {
                continue;
            };
            let tmp_path = self.os.join(parent, &name);
            if self.os.stat(&tmp_path).map(|s| s.is_dir) != Ok(true) {
                continue;
            }
            let orig_path = self.os.join(parent, orig);
            if self.os.stat(&orig_path).is_err() {
                // Crash after delete, before rename: finish the rename.
                self.os.rename(&tmp_path, &orig_path)?;
            } else {
                // Crash before the delete: the original is intact, drop the
                // partial copy.
                self.remove_tree(&tmp_path)?;
            }
            repaired += 1;
        }
        Ok(repaired)
    }

    /// Estimates whether i-number ordering is still paying off, by timing a
    /// sample read in i-number order versus directory order (the paper's
    /// open question of "how often to refresh", answered by historical
    /// tracking). Returns the measured ratio `inumber_time / random_time`
    /// (< 1.0 means i-number order is still winning).
    pub fn layout_health(&self, dir: &str, sample: usize) -> OsResult<f64> {
        let ranks = self.order_directory(dir)?;
        if ranks.len() < 2 {
            return Ok(1.0);
        }
        let take = sample.clamp(2, ranks.len());
        let t_inumber = self.timed_scan(ranks.iter().take(take))?;
        // Reverse i-number order approximates a worst case.
        let t_reverse = self.timed_scan(ranks.iter().rev().take(take))?;
        if t_reverse == GrayDuration::ZERO {
            return Ok(1.0);
        }
        Ok(t_inumber.as_nanos() as f64 / t_reverse.as_nanos() as f64)
    }

    fn timed_scan<'r>(
        &self,
        ranks: impl Iterator<Item = &'r LayoutRank>,
    ) -> OsResult<GrayDuration> {
        let t0 = self.os.now();
        for rank in ranks {
            let fd = self.os.open(&rank.path)?;
            self.os.read_discard(fd, 0, rank.stat.size)?;
            self.os.close(fd)?;
        }
        Ok(self.os.now().since(t0))
    }

    fn copy_file(&self, src: &str, dst: &str) -> OsResult<()> {
        let src_fd = self.os.open(src)?;
        let dst_fd = self.os.create(dst)?;
        let size = self.os.file_size(src_fd)?;
        let mut buf = vec![0u8; (1u64 << 20).min(size.max(1)) as usize];
        let mut off = 0u64;
        while off < size {
            let n = self.os.read_at(src_fd, off, &mut buf)?;
            if n == 0 {
                break;
            }
            let written = self.os.write_at(dst_fd, off, &buf[..n])?;
            if written != n {
                return Err(OsError::Io("short write during refresh copy".into()));
            }
            off += n as u64;
        }
        self.os.close(src_fd)?;
        self.os.close(dst_fd)?;
        Ok(())
    }

    fn remove_tree(&self, dir: &str) -> OsResult<()> {
        let names = self.os.list_dir(dir)?;
        for name in names {
            let path = self.os.join(dir, &name);
            let stat = self.os.stat(&path)?;
            if stat.is_dir {
                self.remove_tree(&path)?;
            } else {
                self.os.unlink(&path)?;
            }
        }
        self.os.rmdir(dir)
    }
}

/// Historical tracking of how well i-number ordering is performing, to
/// answer the paper's open question of *when* to refresh (§4.2.5: "one
/// could ascertain whether the i-number ordering is performing well,
/// perhaps via historical tracking; if not, perform a refresh").
///
/// Feed it the observed time of each i-number-ordered pass over the
/// directory (normalized workloads: same file population per pass). The
/// first few observations establish a fresh-layout baseline; a refresh is
/// advised once the recent smoothed time exceeds the baseline by the
/// configured factor.
///
/// # Examples
///
/// ```
/// use graybox::fldc::RefreshAdvisor;
///
/// let mut advisor = RefreshAdvisor::new(2.0);
/// for _ in 0..4 {
///     advisor.record(1.0); // fresh directory: 1 second per pass
/// }
/// assert!(!advisor.should_refresh());
/// for _ in 0..4 {
///     advisor.record(2.5); // aged: 2.5x slower
/// }
/// assert!(advisor.should_refresh());
/// advisor.reset_after_refresh();
/// assert!(!advisor.should_refresh());
/// ```
#[derive(Debug, Clone)]
pub struct RefreshAdvisor {
    threshold: f64,
    baseline: gray_toolbox::OnlineStats,
    recent: gray_toolbox::Ewma,
    baseline_samples: u64,
}

impl RefreshAdvisor {
    /// How many initial observations form the fresh baseline.
    const BASELINE_SAMPLES: u64 = 3;

    /// Creates an advisor that recommends refreshing once recent passes
    /// run `threshold`× slower than the fresh baseline.
    ///
    /// # Panics
    ///
    /// Panics if `threshold <= 1.0` (that would advise refreshing a
    /// healthy directory).
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 1.0, "threshold must exceed 1.0");
        RefreshAdvisor {
            threshold,
            baseline: gray_toolbox::OnlineStats::new(),
            recent: gray_toolbox::Ewma::new(0.5),
            baseline_samples: Self::BASELINE_SAMPLES,
        }
    }

    /// Records one observed pass time (seconds, or any consistent unit).
    pub fn record(&mut self, seconds: f64) {
        if self.baseline.count() < self.baseline_samples {
            self.baseline.push(seconds);
        }
        self.recent.push(seconds);
    }

    /// Whether the historical record says the layout has decayed enough
    /// to be worth a refresh. Never true before the baseline is
    /// established.
    pub fn should_refresh(&self) -> bool {
        self.baseline.count() >= self.baseline_samples
            && self.recent.is_seeded()
            && self.recent.value() > self.baseline.mean() * self.threshold
    }

    /// Degradation ratio (recent / baseline); 1.0 before enough data.
    pub fn degradation(&self) -> f64 {
        if self.baseline.count() == 0 || !self.recent.is_seeded() {
            return 1.0;
        }
        let base = self.baseline.mean();
        if base <= 0.0 {
            return 1.0;
        }
        self.recent.value() / base
    }

    /// Starts a fresh baseline after the caller performed a refresh.
    pub fn reset_after_refresh(&mut self) {
        self.baseline = gray_toolbox::OnlineStats::new();
        self.recent = gray_toolbox::Ewma::new(0.5);
    }
}

/// The parent directory of a path (everything before the last `/`).
fn parent_dir(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) => "/",
        Some(i) => &path[..i],
        None => "",
    }
}

/// How FLDC maps onto the paper's technique taxonomy (Table 2).
pub fn techniques() -> TechniqueInventory {
    TechniqueInventory::new(
        "FLDC",
        &[
            (
                Technique::AlgorithmicKnowledge,
                "FFS: creation order ~ layout",
            ),
            (Technique::MonitorOutputs, "i-numbers from stat()"),
            (Technique::StatisticalMethods, "None"),
            (Technique::Microbenchmarks, "None"),
            (Technique::InsertProbes, "stat() of each file"),
            (Technique::KnownState, "Directory refresh"),
            (Technique::Feedback, "None"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockOs;

    fn populate(os: &MockOs, dir: &str, names: &[&str]) {
        os.mkdir(dir).unwrap();
        for name in names {
            os.write_file(&format!("{dir}/{name}"), name.as_bytes())
                .unwrap();
        }
    }

    #[test]
    fn inumber_order_matches_creation_order() {
        let os = MockOs::new(1 << 20, 16);
        populate(&os, "/d", &["z", "a", "m"]);
        let fldc = Fldc::new(&os);
        let ranks = fldc.order_directory("/d").unwrap();
        let order: Vec<&str> = ranks.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(order, vec!["/d/z", "/d/a", "/d/m"]);
    }

    #[test]
    fn missing_files_are_counted_not_fatal() {
        let os = MockOs::new(1 << 20, 16);
        populate(&os, "/d", &["a"]);
        let fldc = Fldc::new(&os);
        let (ranks, failed) = fldc.order_by_inumber(&["/d/a".to_string(), "/d/ghost".to_string()]);
        assert_eq!(ranks.len(), 1);
        assert_eq!(failed, 1);
    }

    #[test]
    fn directory_grouping_preserves_inner_order() {
        let os = MockOs::new(1 << 20, 16);
        let fldc = Fldc::new(&os);
        let paths = vec![
            "/b/1".to_string(),
            "/a/1".to_string(),
            "/b/2".to_string(),
            "/a/2".to_string(),
        ];
        let grouped = fldc.order_by_directory(&paths);
        assert_eq!(grouped, vec!["/a/1", "/a/2", "/b/1", "/b/2"]);
    }

    #[test]
    fn refresh_reassigns_inumbers_smallest_first() {
        let os = MockOs::new(1 << 20, 16);
        os.mkdir("/d").unwrap();
        os.write_file("/d/big", &[0u8; 1000]).unwrap();
        os.write_file("/d/small", &[0u8; 10]).unwrap();
        os.write_file("/d/mid", &[0u8; 100]).unwrap();
        let fldc = Fldc::new(&os);
        let n = fldc
            .refresh_directory("/d", RefreshOrder::SmallestFirst)
            .unwrap();
        assert_eq!(n, 3);
        let ranks = fldc.order_directory("/d").unwrap();
        let order: Vec<&str> = ranks.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(order, vec!["/d/small", "/d/mid", "/d/big"]);
    }

    #[test]
    fn refresh_preserves_contents_and_times() {
        use gray_toolbox::Nanos;
        let os = MockOs::new(1 << 20, 16);
        os.mkdir("/d").unwrap();
        os.write_file("/d/f", b"precious bytes").unwrap();
        os.set_times("/d/f", Nanos::from_secs(11), Nanos::from_secs(22))
            .unwrap();
        let fldc = Fldc::new(&os);
        fldc.refresh_directory("/d", RefreshOrder::SmallestFirst)
            .unwrap();
        assert_eq!(os.read_to_vec("/d/f").unwrap(), b"precious bytes");
        let st = os.stat("/d/f").unwrap();
        assert_eq!(st.atime, Nanos::from_secs(11));
        assert_eq!(st.mtime, Nanos::from_secs(22));
    }

    #[test]
    fn refresh_moves_subdirectories_intact() {
        let os = MockOs::new(1 << 20, 16);
        os.mkdir("/d").unwrap();
        os.mkdir("/d/sub").unwrap();
        os.write_file("/d/sub/x", b"deep").unwrap();
        os.write_file("/d/f", b"top").unwrap();
        let fldc = Fldc::new(&os);
        fldc.refresh_directory("/d", RefreshOrder::SmallestFirst)
            .unwrap();
        assert_eq!(os.read_to_vec("/d/sub/x").unwrap(), b"deep");
        assert_eq!(os.read_to_vec("/d/f").unwrap(), b"top");
    }

    #[test]
    fn refresh_leaves_no_temp_directory() {
        let os = MockOs::new(1 << 20, 16);
        populate(&os, "/d", &["a", "b"]);
        Fldc::new(&os)
            .refresh_directory("/d", RefreshOrder::ByName)
            .unwrap();
        let top = os.list_dir("/").unwrap();
        assert_eq!(top, vec!["d"]);
    }

    #[test]
    fn repair_completes_a_lost_rename() {
        let os = MockOs::new(1 << 20, 16);
        // Simulate the crash window: temp dir exists, original is gone.
        os.mkdir("/d.gbrefresh").unwrap();
        os.write_file("/d.gbrefresh/f", b"x").unwrap();
        let fldc = Fldc::new(&os);
        assert_eq!(fldc.repair_interrupted_refresh("/").unwrap(), 1);
        assert_eq!(os.read_to_vec("/d/f").unwrap(), b"x");
    }

    #[test]
    fn repair_discards_a_partial_copy() {
        let os = MockOs::new(1 << 20, 16);
        populate(&os, "/d", &["f"]);
        // Crash before the delete: both directories present.
        os.mkdir("/d.gbrefresh").unwrap();
        os.write_file("/d.gbrefresh/f", b"partial").unwrap();
        let fldc = Fldc::new(&os);
        assert_eq!(fldc.repair_interrupted_refresh("/").unwrap(), 1);
        assert_eq!(os.read_to_vec("/d/f").unwrap(), b"f");
        assert!(os.stat("/d.gbrefresh").is_err());
    }

    #[test]
    fn repair_ignores_unrelated_names() {
        let os = MockOs::new(1 << 20, 16);
        populate(&os, "/plain", &["f"]);
        let fldc = Fldc::new(&os);
        assert_eq!(fldc.repair_interrupted_refresh("/").unwrap(), 0);
    }

    #[test]
    fn techniques_include_known_state() {
        let inv = techniques();
        assert!(inv.uses(Technique::KnownState));
        assert!(!inv.uses(Technique::Feedback));
    }

    #[test]
    fn mtime_order_sorts_by_write_time() {
        use gray_toolbox::Nanos;
        let os = MockOs::new(1 << 20, 16);
        populate(&os, "/d", &["a", "b", "c"]);
        // Rewrite in the order c, a, b (mtimes via set_times for clarity).
        os.set_times("/d/c", Nanos::from_secs(1), Nanos::from_secs(10))
            .unwrap();
        os.set_times("/d/a", Nanos::from_secs(1), Nanos::from_secs(20))
            .unwrap();
        os.set_times("/d/b", Nanos::from_secs(1), Nanos::from_secs(30))
            .unwrap();
        let fldc = Fldc::new(&os);
        let paths = vec!["/d/a".to_string(), "/d/b".to_string(), "/d/c".to_string()];
        let (ranks, failed) = fldc.order_by_mtime(&paths);
        assert_eq!(failed, 0);
        let order: Vec<&str> = ranks.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(order, vec!["/d/c", "/d/a", "/d/b"]);
    }

    #[test]
    fn refresh_advisor_full_cycle() {
        let mut advisor = RefreshAdvisor::new(1.5);
        assert!(!advisor.should_refresh(), "no baseline yet");
        for _ in 0..3 {
            advisor.record(1.0);
        }
        assert!(!advisor.should_refresh());
        assert!((advisor.degradation() - 1.0).abs() < 0.01);
        for _ in 0..5 {
            advisor.record(2.0);
        }
        assert!(advisor.should_refresh());
        assert!(advisor.degradation() > 1.5);
        advisor.reset_after_refresh();
        assert!(!advisor.should_refresh());
        assert_eq!(advisor.degradation(), 1.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn refresh_advisor_rejects_trivial_threshold() {
        let _ = RefreshAdvisor::new(1.0);
    }

    #[test]
    fn parent_dir_cases() {
        assert_eq!(parent_dir("/a/b"), "/a");
        assert_eq!(parent_dir("/a"), "/");
        assert_eq!(parent_dir("plain"), "");
    }
}
