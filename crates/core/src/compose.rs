//! Composing FCCD and FLDC (paper Section 4.2.4).
//!
//! For the best ordering of a set of files, an application should first
//! access the files that are *in cache* (FCCD) and then access the rest in
//! their probable *on-disk order* (FLDC). The difficulty is that FCCD does
//! not natively identify which files are cached — it only ranks them by
//! probe time — so the composition applies two-means clustering to the
//! probe times, treats the fast cluster as cached, and sorts **both**
//! groups by i-number: the predictions may be wrong (e.g. everything is on
//! disk), and i-number order is a safe fallback either way.

use crate::fccd::Fccd;
use crate::fldc::Fldc;
use crate::os::{GrayBoxOs, OsResult};
use crate::technique::{Technique, TechniqueInventory};

/// One file in a composed ordering, with the evidence that placed it.
#[derive(Debug, Clone, PartialEq)]
pub struct ComposedRank {
    /// The file's path.
    pub path: String,
    /// Whether the probe-time clustering predicted this file cached.
    pub predicted_cached: bool,
    /// The file's i-number, if it could be stat'ed.
    pub ino: Option<u64>,
}

/// The composed FCCD + FLDC file orderer.
pub struct ComposedOrderer<'a, O: GrayBoxOs> {
    fccd: &'a Fccd<'a, O>,
    fldc: &'a Fldc<'a, O>,
}

impl<'a, O: GrayBoxOs> ComposedOrderer<'a, O> {
    /// Composes an existing detector pair.
    pub fn new(fccd: &'a Fccd<'a, O>, fldc: &'a Fldc<'a, O>) -> Self {
        ComposedOrderer { fccd, fldc }
    }

    /// Orders `paths` for access: predicted-cached files first, each group
    /// sorted by `(device, i-number)`.
    pub fn order_files(&self, paths: &[String]) -> OsResult<Vec<ComposedRank>> {
        let classified = self.fccd.classify_files(paths);
        let mut out = Vec::with_capacity(paths.len());
        for (group, cached) in [(classified.cached, true), (classified.uncached, false)] {
            let group_paths: Vec<String> = group.into_iter().map(|r| r.path).collect();
            let (ranked, _missing) = self.fldc.order_by_inumber(&group_paths);
            let mut seen: std::collections::HashSet<&String> = std::collections::HashSet::new();
            for rank in &ranked {
                out.push(ComposedRank {
                    path: rank.path.clone(),
                    predicted_cached: cached,
                    ino: Some(rank.stat.ino),
                });
            }
            let ranked_paths: std::collections::HashSet<String> =
                ranked.into_iter().map(|r| r.path).collect();
            // Files that vanished between probe and stat still belong in
            // the ordering (the open may yet succeed); they go last in the
            // group with no layout evidence.
            for path in &group_paths {
                if !ranked_paths.contains(path) && seen.insert(path) {
                    out.push(ComposedRank {
                        path: path.clone(),
                        predicted_cached: cached,
                        ino: None,
                    });
                }
            }
        }
        Ok(out)
    }
}

/// How the composed orderer maps onto the technique taxonomy.
pub fn techniques() -> TechniqueInventory {
    TechniqueInventory::new(
        "FCCD+FLDC",
        &[
            (Technique::AlgorithmicKnowledge, "LRU cache + FFS layout"),
            (Technique::MonitorOutputs, "Probe times + i-numbers"),
            (Technique::StatisticalMethods, "Two-means clustering"),
            (Technique::InsertProbes, "Reads and stat()s"),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fccd::FccdParams;
    use crate::mock::MockOs;
    use crate::os::GrayBoxOsExt;

    fn small_params() -> FccdParams {
        FccdParams {
            access_unit: 4 * 4096,
            prediction_unit: 4096,
            ..FccdParams::default()
        }
    }

    #[test]
    fn cached_first_then_inumber_order_within_groups() {
        let os = MockOs::new(1 << 20, 16);
        // Created (i-number) order: f0, f1, f2, f3.
        let paths: Vec<String> = (0..4).map(|i| format!("/f{i}")).collect();
        for p in &paths {
            os.write_file(p, &vec![0u8; 8 * 4096]).unwrap();
        }
        os.flush_cache();
        // Warm f3 and f1: cached group must come out in i-number order
        // (f1 before f3) even though probe order found them otherwise.
        os.warm("/f3", 0..8);
        os.warm("/f1", 0..8);
        let fccd = Fccd::new(&os, small_params());
        let fldc = Fldc::new(&os);
        let composed = ComposedOrderer::new(&fccd, &fldc);
        // Present the paths scrambled.
        let scrambled = vec![
            "/f2".to_string(),
            "/f3".to_string(),
            "/f0".to_string(),
            "/f1".to_string(),
        ];
        let order = composed.order_files(&scrambled).unwrap();
        let names: Vec<&str> = order.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(names, vec!["/f1", "/f3", "/f0", "/f2"]);
        assert!(order[0].predicted_cached && order[1].predicted_cached);
        assert!(!order[2].predicted_cached && !order[3].predicted_cached);
    }

    #[test]
    fn all_cold_falls_back_to_pure_inumber_order() {
        let os = MockOs::new(1 << 20, 16);
        let paths: Vec<String> = (0..3).map(|i| format!("/f{i}")).collect();
        for p in &paths {
            os.write_file(p, &vec![0u8; 8 * 4096]).unwrap();
        }
        os.flush_cache();
        let fccd = Fccd::new(&os, small_params());
        let fldc = Fldc::new(&os);
        let composed = ComposedOrderer::new(&fccd, &fldc);
        let scrambled = vec!["/f2".to_string(), "/f0".to_string(), "/f1".to_string()];
        let order = composed.order_files(&scrambled).unwrap();
        let names: Vec<&str> = order.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(names, vec!["/f0", "/f1", "/f2"]);
        assert!(order.iter().all(|r| !r.predicted_cached));
    }

    #[test]
    fn vanished_files_keep_a_place_in_the_ordering() {
        let os = MockOs::new(1 << 20, 16);
        os.write_file("/real", &vec![0u8; 8 * 4096]).unwrap();
        let fccd = Fccd::new(&os, small_params());
        let fldc = Fldc::new(&os);
        let composed = ComposedOrderer::new(&fccd, &fldc);
        let order = composed
            .order_files(&["/real".to_string(), "/ghost".to_string()])
            .unwrap();
        assert_eq!(order.len(), 2);
        assert!(order.iter().any(|r| r.path == "/ghost" && r.ino.is_none()));
    }
}
