//! Gray-box Information and Control Layers (ICLs).
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Information and Control in Gray-Box Systems* (Arpaci-Dusseau &
//! Arpaci-Dusseau, SOSP 2001): a library of services that acquire
//! information about, and exert control over, an operating system **without
//! modifying it**, by combining *algorithmic knowledge* of how the OS
//! probably behaves with run-time *observations* — chiefly the timing of
//! carefully chosen probes.
//!
//! # The ICLs
//!
//! - [`fccd`] — the **File-Cache Content Detector**: infers which parts of
//!   which files are resident in the OS file cache by timing one-byte read
//!   probes, so applications can access cached data first.
//! - [`fldc`] — the **File Layout Detector and Controller**: infers the
//!   probable on-disk order of files from their i-numbers (FFS-style
//!   allocation knowledge) and *controls* layout by refreshing directories
//!   to a known state.
//! - [`mac`] — the **Memory-based Admission Controller**: infers the amount
//!   of currently available physical memory by timed page-touch probing and
//!   admits memory allocations only when they fit.
//! - [`wbd`] — the **Writeback/Dirty-page Detector** (this reproduction's
//!   extension of the methodology to the write path): infers the dirty
//!   residue and writeback progress from the cost of timed `sync` calls.
//!
//! # The gray-box OS surface
//!
//! All ICLs are generic over the [`os::GrayBoxOs`] trait, which captures the
//! *black-box* interface of a UNIX-like OS — `open`/`read`/`stat`/memory
//! allocation plus a high-resolution clock. Crucially, the trait exposes
//! **no** internal OS state: everything the ICLs learn, they learn by
//! probing through this interface and measuring. Two backends exist in this
//! workspace: `simos` (a deterministic simulated OS, used for the paper's
//! experiments) and `hostos` (the real OS underneath, via `std`).
//!
//! # Quick start
//!
//! ```no_run
//! use graybox::os::GrayBoxOs;
//! use graybox::fccd::{Fccd, FccdParams};
//!
//! fn fastest_first<O: GrayBoxOs>(os: &O, paths: &[String]) -> Vec<String> {
//!     let fccd = Fccd::new(os, FccdParams::default());
//!     fccd.order_files(paths)
//!         .into_iter()
//!         .map(|rank| rank.path)
//!         .collect()
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compose;
pub mod fccd;
pub mod fldc;
pub mod mac;
pub mod microbench;
pub mod mock;
pub mod observe;
pub mod os;
pub mod technique;
pub mod wbd;

pub use compose::ComposedOrderer;
pub use fccd::{Fccd, FccdParams};
pub use fldc::{Fldc, RefreshAdvisor, RefreshOrder};
pub use mac::{GbAlloc, Mac, MacParams};
pub use observe::PassiveObserver;
pub use os::{GrayBoxOs, OsError, OsResult};
pub use technique::{Technique, TechniqueInventory};
pub use wbd::{Wbd, WbdCalibration, WbdParams};
