//! The deterministic process executor.
//!
//! Each simulated process runs on a real OS thread, but **exactly one
//! thread runs at a time**: every syscall atomically (a) mutates kernel
//! state at the process's local virtual time and (b) hands the baton to the
//! runnable process with the *smallest* local time. Running the minimum-
//! time process first makes state mutations apply in causal order — a
//! conservative sequential discrete-event simulation with threads providing
//! the control flow, so workload code is ordinary imperative Rust.
//!
//! Determinism: scheduling decisions depend only on virtual times and pids,
//! never on host timing, so a simulation with a fixed seed replays
//! identically.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use gray_toolbox::{GrayDuration, Nanos};
use graybox::os::{Fd, GrayBoxOs, MemRegion, OsResult, ProbeSample, ProbeSpec, Stat};

use crate::config::SimConfig;
use crate::kernel::Kernel;
use crate::oracle::Oracle;

/// A workload closure run as one simulated process.
pub type Workload<'env, R> = Box<dyn FnOnce(&SimProc) -> R + Send + 'env>;

#[derive(Debug)]
struct Sched {
    /// The pid currently holding the baton.
    running: usize,
    /// Pids participating in the current `run` call.
    active: Vec<usize>,
}

struct State {
    kernel: Kernel,
    sched: Sched,
}

pub(crate) struct SharedHandle {
    m: Mutex<State>,
    cv: Condvar,
}

impl SharedHandle {
    /// Locks the shared state, riding through poisoning: a panicking
    /// workload must not strand its siblings (the kernel state stays
    /// consistent because every mutation happens inside one `call`).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.lock().kernel)
    }
}

/// A simulation instance: one kernel plus the machinery to run processes
/// against it. Construct with [`Sim::new`], run workloads with
/// [`Sim::run_one`] (single process, zero thread overhead) or
/// [`Sim::run`] (multiprogramming), and inspect ground truth with
/// [`Sim::oracle`].
///
/// Kernel state (caches, file systems, clocks) **persists across runs**, so
/// warm-cache experiments are expressed as consecutive `run_one` calls.
pub struct Sim {
    shared: Arc<SharedHandle>,
}

impl Sim {
    /// Boots a simulation from a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Sim {
            shared: Arc::new(SharedHandle {
                m: Mutex::new(State {
                    kernel: Kernel::new(cfg),
                    sched: Sched {
                        running: usize::MAX,
                        active: Vec::new(),
                    },
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Runs a single process on the calling thread (no thread spawn, no
    /// baton passing) and returns its result. The process starts at the
    /// latest virtual time any previous process reached.
    pub fn run_one<R>(&mut self, f: impl FnOnce(&SimProc) -> R) -> R {
        let pid = {
            let mut st = self.shared.lock();
            let start = st.kernel.max_time();
            let pid = st.kernel.add_proc(start);
            st.sched.running = pid;
            st.sched.active = vec![pid];
            pid
        };
        let proc_handle = SimProc {
            shared: Arc::clone(&self.shared),
            pid,
        };
        let r = f(&proc_handle);
        let mut st = self.shared.lock();
        st.kernel.finish_proc(pid);
        st.sched.active.clear();
        r
    }

    /// Runs a set of processes concurrently (in virtual time) and returns
    /// their results in input order. All processes start at the same
    /// instant.
    pub fn run<'env, R: Send + 'env>(
        &mut self,
        workloads: Vec<(String, Workload<'env, R>)>,
    ) -> Vec<R> {
        if workloads.is_empty() {
            return Vec::new();
        }
        let pids: Vec<usize> = {
            let mut st = self.shared.lock();
            let start = st.kernel.max_time();
            let pids: Vec<usize> = workloads
                .iter()
                .map(|_| st.kernel.add_proc(start))
                .collect();
            st.sched.active = pids.clone();
            st.sched.running = pids[0];
            pids
        };
        let results: Vec<Mutex<Option<R>>> = workloads.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for ((_name, workload), (&pid, slot)) in
                workloads.into_iter().zip(pids.iter().zip(results.iter()))
            {
                let shared = Arc::clone(&self.shared);
                scope.spawn(move || {
                    let proc_handle = SimProc {
                        shared: Arc::clone(&shared),
                        pid,
                    };
                    // Wait for the baton before the first instruction.
                    {
                        let mut st = shared.lock();
                        while st.sched.running != pid {
                            st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                    }
                    // The finisher releases the baton even if the workload
                    // panics, so sibling processes are not stranded.
                    let _finisher = ProcFinisher {
                        shared: &shared,
                        pid,
                    };
                    let r = workload(&proc_handle);
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                });
            }
        });

        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("workload completed")
            })
            .collect()
    }

    /// Ground-truth inspection (never available to ICL code).
    pub fn oracle(&self) -> Oracle {
        Oracle::new(Arc::clone(&self.shared))
    }

    /// Drops all file pages from the cache — the between-runs experimental
    /// flush.
    pub fn flush_file_cache(&mut self) {
        self.shared.lock().kernel.flush_file_cache();
    }

    /// The latest virtual time any process reached.
    pub fn now(&self) -> Nanos {
        self.shared.lock().kernel.max_time()
    }
}

/// Marks a process finished and passes the baton onward, even on panic.
struct ProcFinisher<'a> {
    shared: &'a SharedHandle,
    pid: usize,
}

impl Drop for ProcFinisher<'_> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.kernel.finish_proc(self.pid);
        st.sched.active.retain(|&p| p != self.pid);
        if let Some(next) = choose_next(&st) {
            st.sched.running = next;
        } else {
            st.sched.running = usize::MAX;
        }
        drop(st);
        self.shared.cv.notify_all();
    }
}

/// The runnable process with the smallest (local time, pid).
fn choose_next(st: &State) -> Option<usize> {
    st.sched
        .active
        .iter()
        .copied()
        .filter(|&p| st.kernel.proc_live(p))
        .min_by_key(|&p| (st.kernel.proc_time(p), p))
}

/// A process's handle to the simulated kernel; implements the full
/// [`GrayBoxOs`] black-box surface.
pub struct SimProc {
    shared: Arc<SharedHandle>,
    pid: usize,
}

impl SimProc {
    /// The process id (for diagnostics).
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Runs one kernel operation, then yields the baton if another process
    /// now has the smallest local time.
    fn call<R>(&self, f: impl FnOnce(&mut Kernel, usize) -> R) -> R {
        let mut st = self.shared.lock();
        debug_assert_eq!(
            st.sched.running, self.pid,
            "process ran without holding the baton"
        );
        let r = f(&mut st.kernel, self.pid);
        if let Some(next) = choose_next(&st) {
            if next != self.pid {
                st.sched.running = next;
                self.shared.cv.notify_all();
                while st.sched.running != self.pid {
                    st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        r
    }
}

impl GrayBoxOs for SimProc {
    fn now(&self) -> Nanos {
        self.call(|k, pid| k.sys_now(pid))
    }

    fn page_size(&self) -> u64 {
        self.shared.lock().kernel.page_size()
    }

    fn open(&self, path: &str) -> OsResult<Fd> {
        self.call(|k, pid| k.sys_open(pid, path))
    }

    fn create(&self, path: &str) -> OsResult<Fd> {
        self.call(|k, pid| k.sys_create(pid, path))
    }

    fn close(&self, fd: Fd) -> OsResult<()> {
        self.call(|k, pid| k.sys_close(pid, fd))
    }

    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> OsResult<usize> {
        let len = buf.len() as u64;
        self.call(|k, pid| k.sys_read(pid, fd, offset, len, Some(buf)))
            .map(|n| n as usize)
    }

    fn read_discard(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64> {
        self.call(|k, pid| k.sys_read(pid, fd, offset, len, None))
    }

    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> OsResult<usize> {
        self.call(|k, pid| k.sys_write(pid, fd, offset, data.len() as u64, Some(data)))
            .map(|n| n as usize)
    }

    fn write_fill(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64> {
        self.call(|k, pid| k.sys_write(pid, fd, offset, len, None))
    }

    fn file_size(&self, fd: Fd) -> OsResult<u64> {
        self.call(|k, pid| k.sys_file_size(pid, fd))
    }

    fn sync(&self) -> OsResult<()> {
        self.call(|k, pid| k.sys_sync(pid))
    }

    fn stat(&self, path: &str) -> OsResult<Stat> {
        self.call(|k, pid| k.sys_stat(pid, path))
    }

    fn list_dir(&self, path: &str) -> OsResult<Vec<String>> {
        self.call(|k, pid| k.sys_list_dir(pid, path))
    }

    fn mkdir(&self, path: &str) -> OsResult<()> {
        self.call(|k, pid| k.sys_mkdir(pid, path))
    }

    fn rmdir(&self, path: &str) -> OsResult<()> {
        self.call(|k, pid| k.sys_rmdir(pid, path))
    }

    fn unlink(&self, path: &str) -> OsResult<()> {
        self.call(|k, pid| k.sys_unlink(pid, path))
    }

    fn rename(&self, from: &str, to: &str) -> OsResult<()> {
        self.call(|k, pid| k.sys_rename(pid, from, to))
    }

    fn set_times(&self, path: &str, atime: Nanos, mtime: Nanos) -> OsResult<()> {
        self.call(|k, pid| k.sys_set_times(pid, path, atime, mtime))
    }

    fn mem_alloc(&self, bytes: u64) -> OsResult<MemRegion> {
        self.call(|k, pid| k.sys_mem_alloc(pid, bytes))
            .map(MemRegion)
    }

    fn mem_free(&self, region: MemRegion) -> OsResult<()> {
        self.call(|k, pid| k.sys_mem_free(pid, region.0))
    }

    fn mem_touch_write(&self, region: MemRegion, page: u64) -> OsResult<()> {
        self.call(|k, pid| k.sys_mem_touch_write(pid, region.0, page))
    }

    fn mem_touch_read(&self, region: MemRegion, page: u64) -> OsResult<u8> {
        self.call(|k, pid| k.sys_mem_touch_read(pid, region.0, page))
    }

    /// The whole batch runs under one kernel lock acquisition, and the
    /// scheduler baton is considered for handoff once per batch (at the end
    /// of `call`) rather than three times per probe. Virtual time is
    /// unaffected — the kernel replays the exact scalar charging sequence
    /// per probe — so only host-side dispatch overhead is saved.
    fn probe_batch(&self, fd: Fd, specs: &[ProbeSpec]) -> Vec<ProbeSample> {
        self.call(|k, pid| k.sys_probe_batch(pid, fd, specs))
    }

    fn mem_probe_batch(&self, region: MemRegion, pages: &[u64]) -> Vec<ProbeSample> {
        self.call(|k, pid| k.sys_mem_probe_batch(pid, region.0, pages))
    }

    fn compute(&self, work: GrayDuration) {
        self.call(|k, pid| k.sys_compute(pid, work));
    }

    fn sleep(&self, d: GrayDuration) {
        self.call(|k, pid| k.sys_sleep(pid, d));
    }

    fn yield_now(&self) {
        self.call(|_k, _pid| ());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graybox::os::GrayBoxOsExt;

    #[test]
    fn run_one_executes_and_time_advances() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let elapsed = sim.run_one(|os| {
            let t0 = os.now();
            os.compute(GrayDuration::from_millis(3));
            os.now().since(t0)
        });
        assert!(elapsed >= GrayDuration::from_millis(3));
    }

    #[test]
    fn state_persists_across_runs() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| os.write_file("/f", b"persist").unwrap());
        let data = sim.run_one(|os| os.read_to_vec("/f").unwrap());
        assert_eq!(data, b"persist");
    }

    #[test]
    fn virtual_time_is_monotone_across_runs() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let t1 = sim.run_one(|os| {
            os.compute(GrayDuration::from_secs(1));
            os.now()
        });
        let t2 = sim.run_one(|os| os.now());
        assert!(t2 >= t1);
    }

    #[test]
    fn two_processes_share_one_cpu() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        // Two CPU-bound processes on one CPU: total elapsed ≈ 2x each.
        let results = sim.run::<Nanos>(vec![
            (
                "a".to_string(),
                Box::new(|os: &SimProc| {
                    for _ in 0..10 {
                        os.compute(GrayDuration::from_millis(10));
                    }
                    os.now()
                }),
            ),
            (
                "b".to_string(),
                Box::new(|os: &SimProc| {
                    for _ in 0..10 {
                        os.compute(GrayDuration::from_millis(10));
                    }
                    os.now()
                }),
            ),
        ]);
        let end = results.iter().max().unwrap();
        assert!(
            end.as_secs_f64() >= 0.19,
            "one CPU must serialize 200ms of work: ended at {end}"
        );
    }

    #[test]
    fn multi_process_runs_are_deterministic() {
        let run = || {
            let mut sim = Sim::new(SimConfig::small());
            sim.run::<u64>(vec![
                (
                    "w1".to_string(),
                    Box::new(|os: &SimProc| {
                        os.write_file("/a", &[1u8; 10_000]).unwrap();
                        os.now().as_nanos()
                    }),
                ),
                (
                    "w2".to_string(),
                    Box::new(|os: &SimProc| {
                        os.write_file("/b", &[2u8; 10_000]).unwrap();
                        os.now().as_nanos()
                    }),
                ),
            ])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disk_contention_slows_sharers() {
        let cfg = SimConfig::small().without_noise();
        // Alone:
        let mut sim = Sim::new(cfg.clone());
        let alone = sim.run_one(|os| {
            let fd = os.create("/solo").unwrap();
            let t0 = os.now();
            os.write_fill(fd, 0, 8 << 20).unwrap();
            os.now().since(t0)
        });
        // Two writers on the same disk:
        let mut sim = Sim::new(cfg);
        let make = |path: &'static str| -> Workload<'static, GrayDuration> {
            Box::new(move |os: &SimProc| {
                let fd = os.create(path).unwrap();
                let t0 = os.now();
                os.write_fill(fd, 0, 8 << 20).unwrap();
                os.now().since(t0)
            })
        };
        let both = Sim::run(
            &mut sim,
            vec![("a".to_string(), make("/a")), ("b".to_string(), make("/b"))],
        );
        let slowest = both.iter().max().unwrap();
        assert!(
            *slowest > alone,
            "sharing a disk must be slower: alone {alone}, shared {slowest}"
        );
    }

    #[test]
    fn results_return_in_input_order() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let r = sim.run::<usize>(vec![
            ("x".to_string(), Box::new(|_os: &SimProc| 1usize)),
            ("y".to_string(), Box::new(|_os: &SimProc| 2usize)),
            ("z".to_string(), Box::new(|_os: &SimProc| 3usize)),
        ]);
        assert_eq!(r, vec![1, 2, 3]);
    }
}
