//! The deterministic process executor.
//!
//! Exactly one simulated process runs at a time: every syscall atomically
//! (a) mutates kernel state at the process's local virtual time and (b)
//! yields if some other runnable process now has the *smallest* local
//! time. Running the minimum-time process first makes state mutations
//! apply in causal order — a conservative sequential discrete-event
//! simulation in which workload code is ordinary imperative Rust.
//!
//! Two backends provide the control flow ([`ExecBackend`]):
//!
//! - **Events** (default): every process is a stackful coroutine
//!   ([`crate::coro`]) and one driver loop resumes the minimum-time
//!   runnable one. One OS thread total, so fleets of thousands of
//!   processes are affordable.
//! - **Threads**: every process is a real OS thread and a condvar passes
//!   the baton. The original executor, kept for one release as the
//!   equivalence baseline.
//!
//! Both backends ask [`Kernel::next_runnable`] the same question at the
//! same points, so the kernel call sequence — and with it every charged
//! duration, noise draw, and final clock — is **bit-identical** between
//! them (`tests/exec_equivalence.rs` pins this).
//!
//! Determinism: scheduling decisions depend only on virtual times and
//! pids, never on host timing, so a simulation with a fixed seed replays
//! identically.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use gray_toolbox::trace;
use gray_toolbox::{GrayDuration, Nanos};
use graybox::os::{Fd, GrayBoxOs, MemRegion, OsResult, ProbeSample, ProbeSpec, Stat};

use crate::config::{ExecBackend, SimConfig};
use crate::coro;
use crate::kernel::Kernel;
use crate::oracle::Oracle;

/// A workload closure run as one simulated process.
pub type Workload<'env, R> = Box<dyn FnOnce(&SimProc) -> R + Send + 'env>;

/// What a finished process left behind: its result, or the payload of
/// the panic that killed it.
type Outcome<R> = Result<R, Box<dyn Any + Send + 'static>>;

/// A simulated process died by panic. Carries enough to name the culprit
/// — the old behavior was a second, uninformative `expect` panic on the
/// empty result slot.
#[derive(Debug)]
pub struct ProcPanic {
    /// Pid of the panicking process. When several processes panic in one
    /// run, the smallest pid is reported (deterministic in both
    /// backends).
    pub pid: usize,
    /// The workload name passed to [`Sim::run`].
    pub name: String,
    /// The panic payload rendered to text (`&str`/`String` payloads
    /// verbatim, anything else a placeholder).
    pub message: String,
}

impl std::fmt::Display for ProcPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated process {} (\"{}\") panicked: {}",
            self.pid, self.name, self.message
        )
    }
}

impl std::error::Error for ProcPanic {}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Incremental view of [`Kernel::next_runnable`]: a `(time, pid)` binary
/// min-heap with lazy invalidation.
///
/// The kernel's scan is the *semantic definition* of the resume rule —
/// the minimum `(local time, pid)` over live active processes — but it
/// is O(n) per context switch, which made the events driver O(n²) for
/// the 2048-process fleet. Only the **running** process's clock can
/// change per syscall, so the minimum is maintainable incrementally:
///
/// - [`RunQueue::touch`] pushes a `(time, pid)` entry when a pid's clock
///   actually changed (zero-cost syscalls like `yield_now` push
///   nothing, else the heap would grow without bound);
/// - superseded and retired entries stay in the heap and are discarded
///   lazily when they surface at the top ([`RunQueue::min`]);
/// - `pushed[pid]` records the single live entry per pid, so staleness
///   is one vector compare.
///
/// Equivalence with the scan is enforced by a `debug_assert` on every
/// scheduling decision (all tests run with it) and by a dedicated
/// property test below; `tests/exec_equivalence.rs` additionally pins
/// both backends' bit-identity end to end.
#[derive(Debug, Default)]
struct RunQueue {
    heap: BinaryHeap<Reverse<(Nanos, usize)>>,
    /// `pushed[pid]` is the time of pid's current (valid) heap entry;
    /// `None` means the pid is not schedulable (finished or inactive).
    pushed: Vec<Option<Nanos>>,
}

impl RunQueue {
    /// Rebuilds the queue for a fresh active set (start of a run).
    fn install(&mut self, active: &[usize], kernel: &Kernel) {
        self.heap.clear();
        self.pushed.iter_mut().for_each(|slot| *slot = None);
        for &pid in active {
            self.touch(pid, kernel.proc_time(pid));
        }
    }

    /// Records that `pid`'s clock is now `now`. No-op when unchanged, so
    /// heap growth is bounded by the number of *time-advancing* syscalls.
    fn touch(&mut self, pid: usize, now: Nanos) {
        if self.pushed.len() <= pid {
            self.pushed.resize(pid + 1, None);
        }
        if self.pushed[pid] != Some(now) {
            self.pushed[pid] = Some(now);
            self.heap.push(Reverse((now, pid)));
        }
    }

    /// Removes `pid` from scheduling (its heap entries die lazily).
    fn retire(&mut self, pid: usize) {
        if let Some(slot) = self.pushed.get_mut(pid) {
            *slot = None;
        }
    }

    /// The schedulable pid with the smallest `(time, pid)`, discarding
    /// stale heap entries on the way.
    fn min(&mut self) -> Option<usize> {
        while let Some(&Reverse((time, pid))) = self.heap.peek() {
            if self.pushed.get(pid).copied().flatten() == Some(time) {
                return Some(pid);
            }
            self.heap.pop();
        }
        None
    }
}

#[derive(Debug)]
struct Sched {
    /// The pid currently holding the baton.
    running: usize,
    /// Pids participating in the current `run` call.
    active: Vec<usize>,
    /// Incremental min-(time, pid) structure mirroring `active`.
    runq: RunQueue,
}

struct State {
    kernel: Kernel,
    sched: Sched,
}

pub(crate) struct SharedHandle {
    m: Mutex<State>,
    cv: Condvar,
}

impl SharedHandle {
    /// Locks the shared state, riding through poisoning: a panicking
    /// workload must not strand its siblings (the kernel state stays
    /// consistent because every mutation happens inside one `call`).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn with_kernel<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.lock().kernel)
    }
}

/// A simulation instance: one kernel plus the machinery to run processes
/// against it. Construct with [`Sim::new`], run workloads with
/// [`Sim::run_one`] (single process, zero scheduling overhead) or
/// [`Sim::run`]/[`Sim::try_run`] (multiprogramming), and inspect ground
/// truth with [`Sim::oracle`].
///
/// Kernel state (caches, file systems, clocks) **persists across runs**, so
/// warm-cache experiments are expressed as consecutive `run_one` calls.
pub struct Sim {
    shared: Arc<SharedHandle>,
    backend: ExecBackend,
    stack_bytes: usize,
}

impl Sim {
    /// Boots a simulation from a configuration. If the configuration
    /// asks for the events backend on an architecture without a context
    /// switch, the thread backend is substituted (semantics are
    /// identical, only scalability differs).
    pub fn new(cfg: SimConfig) -> Self {
        let backend = if cfg.exec == ExecBackend::Events && !coro::SUPPORTED {
            ExecBackend::Threads
        } else {
            cfg.exec
        };
        let stack_bytes = cfg.coro_stack_bytes;
        Sim {
            shared: Arc::new(SharedHandle {
                m: Mutex::new(State {
                    kernel: Kernel::new(cfg),
                    sched: Sched {
                        running: usize::MAX,
                        active: Vec::new(),
                        runq: RunQueue::default(),
                    },
                }),
                cv: Condvar::new(),
            }),
            backend,
            stack_bytes,
        }
    }

    /// The executor backend actually in use (after any architecture
    /// fallback).
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Runs a single process on the calling thread (no coroutine, no
    /// thread spawn, no baton passing) and returns its result. The
    /// process starts at the latest virtual time any previous process
    /// reached.
    pub fn run_one<R>(&mut self, f: impl FnOnce(&SimProc) -> R) -> R {
        let pid = {
            let mut st = self.shared.lock();
            let start = st.kernel.max_time();
            let pid = st.kernel.add_proc(start);
            st.sched.running = pid;
            st.sched.active = vec![pid];
            let State { kernel, sched } = &mut *st;
            sched.runq.install(&sched.active, kernel);
            pid
        };
        let proc_handle = SimProc {
            shared: Arc::clone(&self.shared),
            pid,
            yielder: None,
        };
        let r = f(&proc_handle);
        let mut st = self.shared.lock();
        st.kernel.finish_proc(pid);
        st.sched.active.clear();
        st.sched.runq.retire(pid);
        r
    }

    /// Runs a set of processes concurrently (in virtual time) and returns
    /// their results in input order. All processes start at the same
    /// instant.
    ///
    /// # Panics
    ///
    /// If any process panics, panics with the [`ProcPanic`] rendering
    /// (pid, workload name, original message) after every sibling has
    /// run to completion. Use [`Sim::try_run`] to handle it as a value.
    pub fn run<'env, R: Send + 'env>(
        &mut self,
        workloads: Vec<(String, Workload<'env, R>)>,
    ) -> Vec<R> {
        match self.try_run(workloads) {
            Ok(results) => results,
            Err(p) => panic!("{p}"),
        }
    }

    /// Like [`Sim::run`], but a panicking process becomes a structured
    /// [`ProcPanic`] error instead of a panic. Surviving siblings still
    /// run to completion (their results are discarded on error); kernel
    /// state remains consistent and the `Sim` stays usable.
    pub fn try_run<'env, R: Send + 'env>(
        &mut self,
        workloads: Vec<(String, Workload<'env, R>)>,
    ) -> Result<Vec<R>, ProcPanic> {
        if workloads.is_empty() {
            return Ok(Vec::new());
        }
        let names: Vec<String> = workloads.iter().map(|(name, _)| name.clone()).collect();
        let (pids, outcomes) = match self.backend {
            ExecBackend::Threads => self.run_threads(workloads),
            ExecBackend::Events => self.run_events(workloads),
        };
        let mut results = Vec::with_capacity(outcomes.len());
        for ((outcome, &pid), name) in outcomes.into_iter().zip(&pids).zip(names) {
            match outcome {
                Ok(r) => results.push(r),
                // Pids ascend in input order, so the first error is the
                // smallest panicking pid — the same one either backend
                // would report.
                Err(payload) => {
                    return Err(ProcPanic {
                        pid,
                        name,
                        message: panic_message(payload.as_ref()),
                    })
                }
            }
        }
        Ok(results)
    }

    /// Registers one kernel process per workload, all starting at the
    /// current maximum virtual time, and installs them as the active set.
    fn register_procs(&mut self, n: usize) -> Vec<usize> {
        let mut st = self.shared.lock();
        let start = st.kernel.max_time();
        let pids: Vec<usize> = (0..n).map(|_| st.kernel.add_proc(start)).collect();
        st.sched.active = pids.clone();
        st.sched.running = pids[0];
        let State { kernel, sched } = &mut *st;
        sched.runq.install(&sched.active, kernel);
        pids
    }

    /// Thread backend: one OS thread per process, condvar baton passing.
    fn run_threads<'env, R: Send + 'env>(
        &mut self,
        workloads: Vec<(String, Workload<'env, R>)>,
    ) -> (Vec<usize>, Vec<Outcome<R>>) {
        let pids = self.register_procs(workloads.len());
        let slots: Vec<Mutex<Option<Outcome<R>>>> =
            workloads.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for ((_name, workload), (&pid, slot)) in
                workloads.into_iter().zip(pids.iter().zip(slots.iter()))
            {
                let shared = Arc::clone(&self.shared);
                scope.spawn(move || {
                    let proc_handle = SimProc {
                        shared: Arc::clone(&shared),
                        pid,
                        yielder: None,
                    };
                    // Wait for the baton before the first instruction.
                    {
                        let mut st = shared.lock();
                        while st.sched.running != pid {
                            st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                    }
                    // The finisher releases the baton even if the workload
                    // panics, so sibling processes are not stranded.
                    let _finisher = ProcFinisher {
                        shared: &shared,
                        pid,
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| workload(&proc_handle)));
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                });
            }
        });

        let outcomes = slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("process ran to completion")
            })
            .collect();
        (pids, outcomes)
    }

    /// Events backend: every process is a coroutine; this (single)
    /// thread's loop always resumes the minimum-virtual-time runnable
    /// one — the moral equivalent of the baton, without the threads.
    fn run_events<'env, R: Send + 'env>(
        &mut self,
        workloads: Vec<(String, Workload<'env, R>)>,
    ) -> (Vec<usize>, Vec<Outcome<R>>) {
        let pids = self.register_procs(workloads.len());
        let base = pids[0];
        let stack_bytes = self.stack_bytes;
        let slots: Vec<Mutex<Option<Outcome<R>>>> =
            workloads.iter().map(|_| Mutex::new(None)).collect();
        {
            // Each process gets its own trace identity (open spans +
            // lane), swapped in around every resume: all coroutines share
            // this one driver thread, and without the swap a span opened
            // by one process would attach to records of the next.
            let mut trace_ctxs: Vec<trace::TraceCtx> =
                workloads.iter().map(|_| trace::TraceCtx::new()).collect();
            let mut coros: Vec<coro::Coro<'_>> = workloads
                .into_iter()
                .zip(pids.iter().zip(slots.iter()))
                .map(|((_name, workload), (&pid, slot))| {
                    let shared = Arc::clone(&self.shared);
                    coro::Coro::new(
                        stack_bytes,
                        Box::new(move |core| {
                            let proc_handle = SimProc {
                                shared: Arc::clone(&shared),
                                pid,
                                yielder: Some(core),
                            };
                            let outcome = catch_unwind(AssertUnwindSafe(|| workload(&proc_handle)));
                            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                            // Mirror ProcFinisher: retire the process so
                            // the driver's next_runnable moves past it,
                            // panic or no panic.
                            let mut st = shared.lock();
                            st.kernel.finish_proc(pid);
                            st.sched.active.retain(|&p| p != pid);
                            st.sched.runq.retire(pid);
                        }),
                    )
                })
                .collect();

            loop {
                let next = {
                    let mut st = self.shared.lock();
                    match choose_next(&mut st) {
                        Some(pid) => {
                            st.sched.running = pid;
                            pid
                        }
                        None => break,
                    }
                };
                // Pids from add_proc are dense and consecutive.
                let idx = next - base;
                trace::swap_ctx(&mut trace_ctxs[idx]);
                coros[idx].resume();
                trace::swap_ctx(&mut trace_ctxs[idx]);
            }
            let mut st = self.shared.lock();
            st.sched.running = usize::MAX;
            st.sched.active.clear();
        }

        let outcomes = slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("process ran to completion")
            })
            .collect();
        (pids, outcomes)
    }

    /// Ground-truth inspection (never available to ICL code).
    pub fn oracle(&self) -> Oracle {
        Oracle::new(Arc::clone(&self.shared))
    }

    /// Drops all file pages from the cache — the between-runs experimental
    /// flush.
    pub fn flush_file_cache(&mut self) {
        self.shared.lock().kernel.flush_file_cache();
    }

    /// The latest virtual time any process reached.
    pub fn now(&self) -> Nanos {
        self.shared.lock().kernel.max_time()
    }
}

/// Marks a process finished and passes the baton onward, even on panic
/// (thread backend only; the events driver re-derives the baton from
/// `next_runnable` on every iteration).
struct ProcFinisher<'a> {
    shared: &'a SharedHandle,
    pid: usize,
}

impl Drop for ProcFinisher<'_> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.kernel.finish_proc(self.pid);
        st.sched.active.retain(|&p| p != self.pid);
        st.sched.runq.retire(self.pid);
        if let Some(next) = choose_next(&mut st) {
            st.sched.running = next;
        } else {
            st.sched.running = usize::MAX;
        }
        drop(st);
        self.shared.cv.notify_all();
    }
}

/// The runnable process with the smallest (local time, pid) — one
/// definition shared by both backends. Answered in O(log n) by the
/// incremental [`RunQueue`]; the kernel's O(n) scan remains the semantic
/// definition and cross-checks every decision in debug builds.
fn choose_next(st: &mut State) -> Option<usize> {
    let State { kernel, sched } = &mut *st;
    let next = sched.runq.min();
    debug_assert_eq!(
        next,
        kernel.next_runnable(&sched.active),
        "incremental run queue diverged from the kernel scan"
    );
    next
}

/// A process's handle to the simulated kernel; implements the full
/// [`GrayBoxOs`] black-box surface.
pub struct SimProc {
    shared: Arc<SharedHandle>,
    pid: usize,
    /// Under the events backend, the coroutine to suspend when this
    /// process must wait; `None` under threads and `run_one`.
    yielder: Option<*mut coro::YieldCore>,
}

impl SimProc {
    /// The process id (for diagnostics).
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Runs one kernel operation, then yields if another process now has
    /// the smallest local time — by suspending this coroutine (events)
    /// or handing the condvar baton over and blocking (threads). The
    /// yield *decision* is identical in both backends; only the
    /// mechanism differs.
    fn call<R>(&self, f: impl FnOnce(&mut Kernel, usize) -> R) -> R {
        let mut st = self.shared.lock();
        debug_assert_eq!(
            st.sched.running, self.pid,
            "process ran without holding the baton"
        );
        let r = f(&mut st.kernel, self.pid);
        {
            // Only the running process's clock can change inside `f`, so
            // one touch keeps the run queue exact.
            let State { kernel, sched } = &mut *st;
            sched.runq.touch(self.pid, kernel.proc_time(self.pid));
        }
        if let Some(next) = choose_next(&mut st) {
            if next != self.pid {
                match self.yielder {
                    Some(core) => {
                        // The driver loop (same OS thread) re-locks the
                        // state, so the guard must drop before switching.
                        drop(st);
                        // SAFETY: `core` is this process's own coroutine
                        // state; the driver that resumed us is suspended
                        // in `resume` awaiting exactly this switch.
                        unsafe { coro::yield_to_driver(core) };
                    }
                    None => {
                        st.sched.running = next;
                        self.shared.cv.notify_all();
                        while st.sched.running != self.pid {
                            st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                    }
                }
            }
        }
        r
    }
}

impl GrayBoxOs for SimProc {
    fn now(&self) -> Nanos {
        self.call(|k, pid| k.sys_now(pid))
    }

    fn page_size(&self) -> u64 {
        self.shared.lock().kernel.page_size()
    }

    fn open(&self, path: &str) -> OsResult<Fd> {
        self.call(|k, pid| k.sys_open(pid, path))
    }

    fn create(&self, path: &str) -> OsResult<Fd> {
        self.call(|k, pid| k.sys_create(pid, path))
    }

    fn close(&self, fd: Fd) -> OsResult<()> {
        self.call(|k, pid| k.sys_close(pid, fd))
    }

    fn read_at(&self, fd: Fd, offset: u64, buf: &mut [u8]) -> OsResult<usize> {
        let len = buf.len() as u64;
        self.call(|k, pid| k.sys_read(pid, fd, offset, len, Some(buf)))
            .map(|n| n as usize)
    }

    fn read_discard(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64> {
        self.call(|k, pid| k.sys_read(pid, fd, offset, len, None))
    }

    fn write_at(&self, fd: Fd, offset: u64, data: &[u8]) -> OsResult<usize> {
        self.call(|k, pid| k.sys_write(pid, fd, offset, data.len() as u64, Some(data)))
            .map(|n| n as usize)
    }

    fn write_fill(&self, fd: Fd, offset: u64, len: u64) -> OsResult<u64> {
        self.call(|k, pid| k.sys_write(pid, fd, offset, len, None))
    }

    fn file_size(&self, fd: Fd) -> OsResult<u64> {
        self.call(|k, pid| k.sys_file_size(pid, fd))
    }

    fn sync(&self) -> OsResult<()> {
        self.call(|k, pid| k.sys_sync(pid))
    }

    fn stat(&self, path: &str) -> OsResult<Stat> {
        self.call(|k, pid| k.sys_stat(pid, path))
    }

    fn list_dir(&self, path: &str) -> OsResult<Vec<String>> {
        self.call(|k, pid| k.sys_list_dir(pid, path))
    }

    fn mkdir(&self, path: &str) -> OsResult<()> {
        self.call(|k, pid| k.sys_mkdir(pid, path))
    }

    fn rmdir(&self, path: &str) -> OsResult<()> {
        self.call(|k, pid| k.sys_rmdir(pid, path))
    }

    fn unlink(&self, path: &str) -> OsResult<()> {
        self.call(|k, pid| k.sys_unlink(pid, path))
    }

    fn rename(&self, from: &str, to: &str) -> OsResult<()> {
        self.call(|k, pid| k.sys_rename(pid, from, to))
    }

    fn set_times(&self, path: &str, atime: Nanos, mtime: Nanos) -> OsResult<()> {
        self.call(|k, pid| k.sys_set_times(pid, path, atime, mtime))
    }

    fn mem_alloc(&self, bytes: u64) -> OsResult<MemRegion> {
        self.call(|k, pid| k.sys_mem_alloc(pid, bytes))
            .map(MemRegion)
    }

    fn mem_free(&self, region: MemRegion) -> OsResult<()> {
        self.call(|k, pid| k.sys_mem_free(pid, region.0))
    }

    fn mem_touch_write(&self, region: MemRegion, page: u64) -> OsResult<()> {
        self.call(|k, pid| k.sys_mem_touch_write(pid, region.0, page))
    }

    fn mem_touch_read(&self, region: MemRegion, page: u64) -> OsResult<u8> {
        self.call(|k, pid| k.sys_mem_touch_read(pid, region.0, page))
    }

    /// The whole batch runs under one kernel lock acquisition, and the
    /// scheduler is consulted for a yield once per batch (at the end of
    /// `call`) rather than three times per probe. Virtual time is
    /// unaffected — the kernel replays the exact scalar charging sequence
    /// per probe — so only host-side dispatch overhead is saved.
    fn probe_batch(&self, fd: Fd, specs: &[ProbeSpec]) -> Vec<ProbeSample> {
        self.call(|k, pid| k.sys_probe_batch(pid, fd, specs))
    }

    fn mem_probe_batch(&self, region: MemRegion, pages: &[u64]) -> Vec<ProbeSample> {
        self.call(|k, pid| k.sys_mem_probe_batch(pid, region.0, pages))
    }

    fn compute(&self, work: GrayDuration) {
        self.call(|k, pid| k.sys_compute(pid, work));
    }

    fn sleep(&self, d: GrayDuration) {
        self.call(|k, pid| k.sys_sleep(pid, d));
    }

    fn yield_now(&self) {
        self.call(|_k, _pid| ());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graybox::os::GrayBoxOsExt;

    #[test]
    fn run_one_executes_and_time_advances() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let elapsed = sim.run_one(|os| {
            let t0 = os.now();
            os.compute(GrayDuration::from_millis(3));
            os.now().since(t0)
        });
        assert!(elapsed >= GrayDuration::from_millis(3));
    }

    #[test]
    fn state_persists_across_runs() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        sim.run_one(|os| os.write_file("/f", b"persist").unwrap());
        let data = sim.run_one(|os| os.read_to_vec("/f").unwrap());
        assert_eq!(data, b"persist");
    }

    #[test]
    fn virtual_time_is_monotone_across_runs() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let t1 = sim.run_one(|os| {
            os.compute(GrayDuration::from_secs(1));
            os.now()
        });
        let t2 = sim.run_one(|os| os.now());
        assert!(t2 >= t1);
    }

    #[test]
    fn two_processes_share_one_cpu() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        // Two CPU-bound processes on one CPU: total elapsed ≈ 2x each.
        let results = sim.run::<Nanos>(vec![
            (
                "a".to_string(),
                Box::new(|os: &SimProc| {
                    for _ in 0..10 {
                        os.compute(GrayDuration::from_millis(10));
                    }
                    os.now()
                }),
            ),
            (
                "b".to_string(),
                Box::new(|os: &SimProc| {
                    for _ in 0..10 {
                        os.compute(GrayDuration::from_millis(10));
                    }
                    os.now()
                }),
            ),
        ]);
        let end = results.iter().max().unwrap();
        assert!(
            end.as_secs_f64() >= 0.19,
            "one CPU must serialize 200ms of work: ended at {end}"
        );
    }

    #[test]
    fn multi_process_runs_are_deterministic() {
        let run = || {
            let mut sim = Sim::new(SimConfig::small());
            sim.run::<u64>(vec![
                (
                    "w1".to_string(),
                    Box::new(|os: &SimProc| {
                        os.write_file("/a", &[1u8; 10_000]).unwrap();
                        os.now().as_nanos()
                    }),
                ),
                (
                    "w2".to_string(),
                    Box::new(|os: &SimProc| {
                        os.write_file("/b", &[2u8; 10_000]).unwrap();
                        os.now().as_nanos()
                    }),
                ),
            ])
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disk_contention_slows_sharers() {
        let cfg = SimConfig::small().without_noise();
        // Alone:
        let mut sim = Sim::new(cfg.clone());
        let alone = sim.run_one(|os| {
            let fd = os.create("/solo").unwrap();
            let t0 = os.now();
            os.write_fill(fd, 0, 8 << 20).unwrap();
            os.now().since(t0)
        });
        // Two writers on the same disk:
        let mut sim = Sim::new(cfg);
        let make = |path: &'static str| -> Workload<'static, GrayDuration> {
            Box::new(move |os: &SimProc| {
                let fd = os.create(path).unwrap();
                let t0 = os.now();
                os.write_fill(fd, 0, 8 << 20).unwrap();
                os.now().since(t0)
            })
        };
        let both = Sim::run(
            &mut sim,
            vec![("a".to_string(), make("/a")), ("b".to_string(), make("/b"))],
        );
        let slowest = both.iter().max().unwrap();
        assert!(
            *slowest > alone,
            "sharing a disk must be slower: alone {alone}, shared {slowest}"
        );
    }

    #[test]
    fn results_return_in_input_order() {
        let mut sim = Sim::new(SimConfig::small().without_noise());
        let r = sim.run::<usize>(vec![
            ("x".to_string(), Box::new(|_os: &SimProc| 1usize)),
            ("y".to_string(), Box::new(|_os: &SimProc| 2usize)),
            ("z".to_string(), Box::new(|_os: &SimProc| 3usize)),
        ]);
        assert_eq!(r, vec![1, 2, 3]);
    }

    fn contention_workloads() -> Vec<(String, Workload<'static, u64>)> {
        ["a", "b", "c"]
            .iter()
            .map(|name| {
                let path = format!("/{name}");
                let wl: Workload<'static, u64> = Box::new(move |os: &SimProc| {
                    os.write_file(&path, &[7u8; 20_000]).unwrap();
                    os.compute(GrayDuration::from_micros(300));
                    os.read_to_vec(&path).unwrap();
                    os.now().as_nanos()
                });
                (name.to_string(), wl)
            })
            .collect()
    }

    #[test]
    fn backends_agree_on_virtual_time() {
        let run = |exec: ExecBackend| {
            let mut sim = Sim::new(SimConfig::small().with_exec(exec));
            assert_eq!(sim.backend(), exec);
            let r = sim.run(contention_workloads());
            (r, sim.now())
        };
        assert_eq!(
            run(ExecBackend::Events),
            run(ExecBackend::Threads),
            "noise-on clocks must match bit for bit"
        );
    }

    #[test]
    fn events_backend_runs_hundreds_of_processes() {
        let mut sim = Sim::new(
            SimConfig::small()
                .without_noise()
                .with_exec(ExecBackend::Events),
        );
        let workloads: Vec<(String, Workload<'static, usize>)> = (0..300)
            .map(|i| {
                let wl: Workload<'static, usize> = Box::new(move |os: &SimProc| {
                    os.compute(GrayDuration::from_micros(50));
                    os.yield_now();
                    os.compute(GrayDuration::from_micros(50));
                    i
                });
                (format!("p{i}"), wl)
            })
            .collect();
        let r = sim.run(workloads);
        assert_eq!(r, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn try_run_reports_pid_name_and_message() {
        for exec in [ExecBackend::Events, ExecBackend::Threads] {
            let mut sim = Sim::new(SimConfig::small().without_noise().with_exec(exec));
            let err = sim
                .try_run::<u64>(vec![
                    (
                        "survivor".to_string(),
                        Box::new(|os: &SimProc| {
                            os.compute(GrayDuration::from_millis(1));
                            7
                        }),
                    ),
                    (
                        "victim".to_string(),
                        Box::new(|_os: &SimProc| panic!("boom {}", 42)),
                    ),
                ])
                .unwrap_err();
            assert_eq!(err.name, "victim", "{exec:?}");
            assert!(err.message.contains("boom 42"), "{exec:?}: {}", err.message);
            assert!(err.to_string().contains(&format!("process {}", err.pid)));
            // The sim survives and runs follow-on work.
            let n = sim.run_one(|os| {
                os.compute(GrayDuration::from_micros(10));
                os.now()
            });
            assert!(n > Nanos::ZERO, "{exec:?}");
        }
    }

    #[test]
    fn run_queue_matches_kernel_scan_under_random_ops() {
        // Drive the kernel directly with the same op mix the executor
        // issues — clock advances on the scheduled minimum, zero-cost
        // touches, and retirements — and assert the incremental queue
        // answers every scheduling question exactly like the O(n) scan.
        gray_toolbox::prop::check("run_queue_matches_scan", 40, |g| {
            let mut kernel = Kernel::new(SimConfig::small().with_seed(g.u64(0..u64::MAX)));
            let n = g.usize(1..12);
            let mut active: Vec<usize> =
                (0..n).map(|_| kernel.add_proc(kernel.max_time())).collect();
            let mut rq = RunQueue::default();
            rq.install(&active, &kernel);
            for _ in 0..g.usize(5..80) {
                let scan = kernel.next_runnable(&active);
                assert_eq!(rq.min(), scan, "queue and scan disagree");
                let Some(pid) = scan else { break };
                match g.usize(0..10) {
                    0 => {
                        // Retirement (process finished).
                        kernel.finish_proc(pid);
                        active.retain(|&p| p != pid);
                        rq.retire(pid);
                    }
                    1 => {
                        // Zero-cost syscall: the clock does not move and
                        // the heap must not grow a duplicate entry.
                        let before = rq.heap.len();
                        rq.touch(pid, kernel.proc_time(pid));
                        assert_eq!(rq.heap.len(), before, "no-op touch grew the heap");
                    }
                    _ => {
                        // Time-advancing syscall on the scheduled pid —
                        // the only process whose clock may change.
                        kernel.sys_compute(pid, GrayDuration::from_nanos(g.u64(0..5_000)));
                        rq.touch(pid, kernel.proc_time(pid));
                    }
                }
            }
            // Drain: retire everything and the queue must empty out.
            for &pid in &active {
                kernel.finish_proc(pid);
                rq.retire(pid);
            }
            assert_eq!(rq.min(), None);
        });
    }

    #[test]
    fn panic_pid_selection_is_deterministic() {
        // Several panicking processes: both backends must blame the
        // smallest pid.
        let run = |exec: ExecBackend| {
            let mut sim = Sim::new(SimConfig::small().without_noise().with_exec(exec));
            let workloads: Vec<(String, Workload<'static, ()>)> = (0..4)
                .map(|i| {
                    let wl: Workload<'static, ()> = Box::new(move |os: &SimProc| {
                        os.compute(GrayDuration::from_micros(100 * (4 - i as u64)));
                        panic!("p{i} down");
                    });
                    (format!("p{i}"), wl)
                })
                .collect();
            let err = sim.try_run(workloads).unwrap_err();
            (err.pid, err.name, err.message)
        };
        let a = run(ExecBackend::Events);
        let b = run(ExecBackend::Threads);
        assert_eq!(a, b);
        assert_eq!(a.1, "p0");
    }
}
