//! `simos` — a deterministic simulated operating system substrate.
//!
//! The reproduced paper infers OS state from the *timing* of syscalls on
//! real Linux/NetBSD/Solaris boxes. Timing on shared CI hardware is not
//! reproducible, so this crate provides the substitute substrate: a
//! discrete-event simulated UNIX with
//!
//! - a mechanical **disk model** ([`disk`]): seek, rotation, transfer, and
//!   per-disk FCFS queuing, with sequential-stream detection;
//! - an **FFS-like file system** ([`fs`]): cylinder groups, i-number
//!   allocation, near-inode block placement, directories in creation order,
//!   aging and refresh semantics;
//! - a **page/buffer cache** ([`cache`]) with three replacement
//!   personalities modelling the paper's platforms (Linux 2.2 unified
//!   clock-LRU, NetBSD 1.4 fixed-size file cache, Solaris 7 "sticky"
//!   scan-resistant segmap);
//! - a **virtual-memory subsystem** ([`vm`]): demand-zero allocation,
//!   copy-on-write reads, synchronous-reclaim swap on a dedicated disk;
//! - a **deterministic process executor** ([`exec`]): simulated processes
//!   are resumable coroutines driven by one event loop (or, behind the
//!   `SIMOS_EXEC=threads` selector, one real thread each); exactly one
//!   runs at a time and all time is virtual, so multi-process experiments
//!   are exactly repeatable — and bit-identical across both backends;
//! - a virtual **clock with a seeded noise model** ([`clock`]), so the
//!   statistical machinery of the ICLs is genuinely exercised.
//!
//! Processes interact with the simulated kernel through
//! [`exec::SimProc`], which implements the `graybox::os::GrayBoxOs` trait —
//! the same black-box surface the real-OS backend implements. Ground truth
//! for scoring inferences (the equivalent of the paper's modified kernel
//! that dumped per-page presence bitmaps) is available *only* through
//! [`Sim::oracle`], which the ICLs never see.
//!
//! # Example
//!
//! ```
//! use simos::{Sim, SimConfig};
//! use graybox::os::{GrayBoxOs, GrayBoxOsExt};
//!
//! let mut sim = Sim::new(SimConfig::small());
//! let t = sim.run_one(|os| {
//!     os.write_file("/hello.txt", b"hi").unwrap();
//!     let t0 = os.now();
//!     let data = os.read_to_vec("/hello.txt").unwrap();
//!     assert_eq!(data, b"hi");
//!     os.now().since(t0)
//! });
//! assert!(t.as_nanos() > 0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod config;
mod coro;
pub mod disk;
pub mod exec;
pub mod fs;
pub mod kernel;
pub mod oracle;
pub mod scenario;
pub mod score;
pub mod vm;

pub use config::{
    CacheArch, CostParams, DiskParams, ExecBackend, FsParams, LayoutPolicy, NoiseParams, Platform,
    SimConfig, WritebackParams,
};
pub use exec::{ProcPanic, Sim, SimProc};
pub use oracle::Oracle;
