//! Inference-accuracy scoring: joining trace events against the oracle.
//!
//! The paper scored FCCD by comparing its cached/uncached calls against a
//! modified kernel's per-page presence bitmaps, and MAC by comparing its
//! availability estimate against known memory pressure. This module is the
//! reproduction's scorer: it consumes the [`gray_toolbox::trace`] records an
//! instrumented run produced (the `Classified` and `Estimated` events the
//! ICLs emit) and joins them against [`crate::Oracle`] ground truth.
//!
//! Scoring happens strictly *after* the inference ran — the ICLs never see
//! the oracle, so the join cannot leak truth back into the gray-box code.

use gray_toolbox::trace::{TraceEvent, TraceRecord, Verdict};

use crate::oracle::Oracle;

/// Confusion-matrix tally of FCCD cached/uncached verdicts against the
/// oracle's residency ground truth.
///
/// "Positive" means *predicted cached*; truth is "majority of the file's
/// pages resident" (`cached_fraction >= 0.5`), matching the two-means
/// split FCCD itself performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FccdScore {
    /// Predicted cached, actually cached.
    pub true_positives: u64,
    /// Predicted cached, actually uncached.
    pub false_positives: u64,
    /// Predicted uncached, actually cached.
    pub false_negatives: u64,
    /// Predicted uncached, actually uncached.
    pub true_negatives: u64,
    /// `Classified` events that could not be joined (unit not a path the
    /// oracle resolves, or a non-FCCD verdict such as `Present`/`Absent`).
    pub skipped: u64,
}

impl FccdScore {
    /// Verdicts that were joined against ground truth.
    pub fn scored(&self) -> u64 {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }

    /// Fraction of predicted-cached calls that were right. `1.0` when
    /// nothing was predicted cached (vacuous precision, so an all-cold
    /// run with correct verdicts still scores perfectly).
    pub fn precision(&self) -> f64 {
        let predicted = self.true_positives + self.false_positives;
        if predicted == 0 {
            return 1.0;
        }
        self.true_positives as f64 / predicted as f64
    }

    /// Fraction of actually-cached files that were called cached. `1.0`
    /// when nothing was actually cached.
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            return 1.0;
        }
        self.true_positives as f64 / actual as f64
    }

    /// Fraction of all joined verdicts that were right.
    pub fn accuracy(&self) -> f64 {
        let scored = self.scored();
        if scored == 0 {
            return 1.0;
        }
        (self.true_positives + self.true_negatives) as f64 / scored as f64
    }
}

/// Joins every FCCD `Classified` event in `records` against the oracle.
///
/// Only `Cached`/`Uncached` verdicts participate; `Present`/`Absent`
/// (fig1-style prediction units) and units the oracle cannot resolve are
/// counted in [`FccdScore::skipped`]. Truth for a file is
/// `oracle.cached_fraction(path) >= 0.5`.
///
/// Note the oracle reads *current* residency: score immediately after the
/// classification ran, before further workload perturbs the cache.
pub fn score_fccd(oracle: &Oracle, records: &[TraceRecord]) -> FccdScore {
    let mut score = FccdScore::default();
    for rec in records {
        let (unit, verdict) = match &rec.event {
            TraceEvent::Classified { unit, verdict } => (unit, *verdict),
            _ => continue,
        };
        let predicted_cached = match verdict {
            Verdict::Cached => true,
            Verdict::Uncached => false,
            Verdict::Present | Verdict::Absent => {
                score.skipped += 1;
                continue;
            }
        };
        tally(oracle, unit, predicted_cached, &mut score);
    }
    score
}

/// Joins `(path, predicted_cached)` verdicts directly against the
/// oracle — the tracer-free scoring path.
///
/// The global tracer serializes captures process-wide, so host-parallel
/// scenario cells cannot route verdicts through trace records. They
/// don't need to: a [`graybox::fccd::Classified`] already carries the
/// ranked verdicts, and this function scores them straight off the
/// result value. Semantics are identical to [`score_fccd`] (same truth
/// rule, same skip handling for unresolvable paths).
pub fn score_fccd_verdicts<'a>(
    oracle: &Oracle,
    verdicts: impl IntoIterator<Item = (&'a str, bool)>,
) -> FccdScore {
    let mut score = FccdScore::default();
    for (unit, predicted_cached) in verdicts {
        tally(oracle, unit, predicted_cached, &mut score);
    }
    score
}

/// Joins one verdict against ground truth and tallies it.
fn tally(oracle: &Oracle, unit: &str, predicted_cached: bool, score: &mut FccdScore) {
    let truth_cached = match oracle.cached_fraction(unit) {
        Ok(frac) => frac >= 0.5,
        Err(_) => {
            score.skipped += 1;
            return;
        }
    };
    match (predicted_cached, truth_cached) {
        (true, true) => score.true_positives += 1,
        (true, false) => score.false_positives += 1,
        (false, true) => score.false_negatives += 1,
        (false, false) => score.true_negatives += 1,
    }
}

/// MAC's final availability estimate joined against known free memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacScore {
    /// The last `Estimated { quantity: "mac.available_bytes" }` value.
    pub estimated_bytes: f64,
    /// Caller-supplied ground truth (e.g. free pages × page size at the
    /// moment the probe ran).
    pub truth_bytes: f64,
}

impl MacScore {
    /// `|estimate − truth| / truth`; `0.0` if truth is zero and the
    /// estimate agrees, `f64::INFINITY` if truth is zero and it doesn't.
    pub fn abs_error(&self) -> f64 {
        if self.truth_bytes == 0.0 {
            return if self.estimated_bytes == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.estimated_bytes - self.truth_bytes).abs() / self.truth_bytes
    }
}

/// Extracts MAC's most recent availability estimate from `records` and
/// pairs it with `truth_bytes`. Returns `None` if no MAC `Estimated`
/// event is present (MAC never ran, or tracing was off).
pub fn score_mac(records: &[TraceRecord], truth_bytes: f64) -> Option<MacScore> {
    let estimated_bytes = records.iter().rev().find_map(|rec| match rec.event {
        TraceEvent::Estimated {
            quantity: "mac.available_bytes",
            value,
        } => Some(value),
        _ => None,
    })?;
    Some(MacScore {
        estimated_bytes,
        truth_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gray_toolbox::time::Nanos;

    fn rec(event: TraceEvent) -> TraceRecord {
        TraceRecord {
            seq: 0,
            ts: Nanos(0),
            wave: None,
            span: String::new(),
            lane: 0,
            event,
        }
    }

    #[test]
    fn confusion_counts_and_rates() {
        let s = FccdScore {
            true_positives: 8,
            false_positives: 2,
            false_negatives: 1,
            true_negatives: 9,
            skipped: 3,
        };
        assert_eq!(s.scored(), 20);
        assert!((s.precision() - 0.8).abs() < 1e-12);
        assert!((s.recall() - 8.0 / 9.0).abs() < 1e-12);
        assert!((s.accuracy() - 17.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn vacuous_rates_are_one() {
        let s = FccdScore::default();
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.accuracy(), 1.0);
    }

    #[test]
    fn mac_score_uses_last_estimate() {
        let records = vec![
            rec(TraceEvent::Estimated {
                quantity: "mac.available_bytes",
                value: 100.0,
            }),
            rec(TraceEvent::Estimated {
                quantity: "other.thing",
                value: 5.0,
            }),
            rec(TraceEvent::Estimated {
                quantity: "mac.available_bytes",
                value: 90.0,
            }),
        ];
        let score = score_mac(&records, 100.0).unwrap();
        assert_eq!(score.estimated_bytes, 90.0);
        assert!((score.abs_error() - 0.1).abs() < 1e-12);
        assert!(score_mac(&[], 100.0).is_none());
    }

    #[test]
    fn zero_truth_edge_cases() {
        let exact = MacScore {
            estimated_bytes: 0.0,
            truth_bytes: 0.0,
        };
        assert_eq!(exact.abs_error(), 0.0);
        let wrong = MacScore {
            estimated_bytes: 1.0,
            truth_bytes: 0.0,
        };
        assert!(wrong.abs_error().is_infinite());
    }
}
