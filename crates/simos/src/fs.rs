//! An FFS-like file system: cylinder groups, i-numbers, near-inode block
//! placement, directories in creation order.
//!
//! This is the substrate FLDC's gray-box knowledge is *about* (paper
//! Section 4.2.1):
//!
//! - the disk is divided into **cylinder groups**, each with an inode table
//!   and a data area;
//! - a file's inode is allocated in its **parent directory's group**, using
//!   the **lowest free i-number** — so, on a clean file system, creation
//!   order within a directory matches i-number order;
//! - a file's **first data block** is allocated first-fit from its group's
//!   data area and subsequent blocks extend contiguously when possible — so
//!   i-number order also matches data-block layout until deletions punch
//!   holes that later creations refill (aging);
//! - **directories** are spread across groups (most-free-inodes first), so
//!   a refreshed directory lands in a fresh group and regains contiguity.
//!
//! The `Fs` type is a pure state machine over metadata: every operation
//! records the metadata blocks it touched in an [`IoLog`] (directory blocks
//! and inode-table blocks, identified both by cacheable page and by disk
//! block), and the kernel charges cache hits or disk I/O accordingly. File
//! *content* is kept only for explicitly written data; bulk synthetic data
//! is a per-block fill marker, so simulating gigabyte files costs megabytes.

use std::collections::{BTreeSet, HashMap};

use gray_toolbox::Nanos;
use graybox::os::{OsError, OsResult};

/// An i-number.
pub type Ino = u64;

/// The root directory's i-number (as on real UNIX).
pub const ROOT_INO: Ino = 2;

/// Pseudo-i-number under which inode-table blocks are cached.
pub const ITABLE_INO: Ino = 1;

/// Bytes per directory entry (name + i-number), FFS-flavored.
const DIRENT_BYTES: u64 = 32;

/// One metadata block access: the cacheable identity and the disk block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaAccess {
    /// I-number the cache page belongs to ([`ITABLE_INO`] for inode-table
    /// blocks, the directory's ino for directory blocks).
    pub ino: Ino,
    /// Page index within that owner.
    pub page: u64,
    /// Backing disk block.
    pub disk_block: u64,
}

/// The metadata I/O a file-system operation performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoLog {
    /// Blocks that were read.
    pub reads: Vec<MetaAccess>,
    /// Blocks that were dirtied.
    pub writes: Vec<MetaAccess>,
}

/// Content of one data block.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BlockContent {
    /// Explicitly written bytes.
    Data(Box<[u8]>),
    /// Synthetic fill: every byte equals the pattern.
    Fill(u8),
}

/// An in-core inode.
#[derive(Debug, Clone)]
pub struct Inode {
    /// The i-number.
    pub ino: Ino,
    /// Whether this is a directory.
    pub is_dir: bool,
    /// File size in bytes (0 for directories; their size is derived from
    /// the entry count).
    pub size: u64,
    /// Data blocks, one per page, in page order.
    pub blocks: Vec<u64>,
    /// Last access time.
    pub atime: Nanos,
    /// Last modification time.
    pub mtime: Nanos,
    /// Directory entries in creation order (`None` for regular files).
    pub entries: Option<Vec<(String, Ino)>>,
    /// Name → position in `entries`, so path resolution is a hash lookup
    /// instead of a linear scan. The *position* (not just the i-number) is
    /// what the cost model needs: `log_dir_read` charges the directory
    /// blocks a scan would have read to reach that entry, and that charge
    /// must not change just because the lookup got faster. Empty for
    /// regular files.
    name_index: HashMap<String, usize>,
    /// Home cylinder group.
    pub group: usize,
}

impl Inode {
    /// Position of `name` in `entries`, via the hash index.
    fn entry_position(&self, name: &str) -> Option<usize> {
        let idx = *self.name_index.get(name)?;
        debug_assert_eq!(
            self.entries
                .as_ref()
                .and_then(|e| e.get(idx))
                .map(|(n, _)| n.as_str()),
            Some(name),
            "name index and entries agree"
        );
        Some(idx)
    }

    /// Appends a directory entry, returning its position.
    fn push_entry(&mut self, name: String, ino: Ino) -> usize {
        let entries = self.entries.as_mut().expect("checked dir");
        let idx = entries.len();
        entries.push((name.clone(), ino));
        self.name_index.insert(name, idx);
        idx
    }

    /// Removes the entry at `idx`, keeping the name index consistent.
    /// `Vec::remove` shifts every later entry down one slot, so their
    /// indexed positions shift with them.
    fn remove_entry_at(&mut self, idx: usize) {
        let entries = self.entries.as_mut().expect("checked dir");
        let (name, _) = entries.remove(idx);
        self.name_index.remove(&name);
        for pos in self.name_index.values_mut() {
            if *pos > idx {
                *pos -= 1;
            }
        }
    }
}

/// One cylinder group.
#[derive(Debug, Clone)]
struct Group {
    /// Free i-numbers in this group.
    free_inos: BTreeSet<Ino>,
    /// Free data blocks (global disk block numbers).
    free_blocks: BTreeSet<u64>,
    /// First disk block of the inode table.
    itable_start: u64,
    /// Allocation rotor: the search for a free block starts here and
    /// wraps, as in FFS. The rotor is what makes aging *decorrelate*
    /// i-numbers from layout: freed holes are not refilled until the
    /// rotor comes back around, so files recreated after deletions get
    /// blocks far from their (reused, low) i-numbers.
    rotor: u64,
}

/// The file system over one disk.
#[derive(Debug)]
pub struct Fs {
    params: crate::config::FsParams,
    dev: u32,
    groups: Vec<Group>,
    inodes: HashMap<Ino, Inode>,
    content: HashMap<u64, BlockContent>,
    io: IoLog,
    next_fill: u8,
    /// LFS log head: the group index the log is currently writing into
    /// (the per-group rotor supplies the position within the group).
    log_group: usize,
}

impl Fs {
    /// Creates an empty file system covering `disk_blocks` blocks of device
    /// `dev`.
    pub fn new(params: crate::config::FsParams, dev: u32, disk_blocks: u64) -> Self {
        let itable_blocks = params.inodes_per_group.div_ceil(params.inodes_per_block);
        let group_span = itable_blocks + params.blocks_per_group;
        let n_groups = (disk_blocks / group_span).max(1) as usize;
        let mut groups = Vec::with_capacity(n_groups);
        for g in 0..n_groups as u64 {
            let base = g * group_span;
            let itable_start = base;
            let data_start = base + itable_blocks;
            let data_end = (data_start + params.blocks_per_group).min(disk_blocks);
            let first_ino = g * params.inodes_per_group;
            groups.push(Group {
                free_inos: (first_ino..first_ino + params.inodes_per_group).collect(),
                free_blocks: (data_start..data_end).collect(),
                itable_start,
                rotor: data_start,
            });
        }
        let mut fs = Fs {
            params,
            dev,
            groups,
            inodes: HashMap::new(),
            content: HashMap::new(),
            io: IoLog::default(),
            next_fill: 1,
            log_group: 0,
        };
        // Materialize the root directory. I-numbers 0..=2 are reserved;
        // claim them from group 0.
        for reserved in 0..=ROOT_INO {
            fs.groups[0].free_inos.remove(&reserved);
        }
        fs.inodes.insert(
            ROOT_INO,
            Inode {
                ino: ROOT_INO,
                is_dir: true,
                size: 0,
                blocks: Vec::new(),
                atime: Nanos::ZERO,
                mtime: Nanos::ZERO,
                entries: Some(Vec::new()),
                name_index: HashMap::new(),
                group: 0,
            },
        );
        fs
    }

    /// The device index this file system lives on.
    pub fn dev(&self) -> u32 {
        self.dev
    }

    /// Takes (and clears) the metadata I/O log of the operations performed
    /// since the last take.
    pub fn take_io(&mut self) -> IoLog {
        std::mem::take(&mut self.io)
    }

    /// Looks at an inode (oracle/tests; does not log I/O).
    pub fn inode(&self, ino: Ino) -> Option<&Inode> {
        self.inodes.get(&ino)
    }

    /// Number of cylinder groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    // --- Metadata I/O accounting ----------------------------------------

    /// The disk block holding `ino`'s on-disk inode.
    fn inode_disk_block(&self, ino: Ino) -> u64 {
        let g = (ino / self.params.inodes_per_group) as usize;
        let idx_in_group = ino % self.params.inodes_per_group;
        self.groups[g].itable_start + idx_in_group / self.params.inodes_per_block
    }

    fn log_inode_read(&mut self, ino: Ino) {
        let disk_block = self.inode_disk_block(ino);
        // Inode-table blocks are cached under the pseudo-file, paged by
        // their disk block so distinct groups do not collide.
        self.io.reads.push(MetaAccess {
            ino: ITABLE_INO,
            page: disk_block,
            disk_block,
        });
    }

    fn log_inode_write(&mut self, ino: Ino) {
        let disk_block = self.inode_disk_block(ino);
        self.io.writes.push(MetaAccess {
            ino: ITABLE_INO,
            page: disk_block,
            disk_block,
        });
    }

    /// Directory blocks holding entries `[0, upto)`.
    fn log_dir_read(&mut self, dir: Ino, upto_entry: usize) {
        let per_block = (self.params.block_size / DIRENT_BYTES).max(1);
        let nblocks = (upto_entry as u64).div_ceil(per_block).max(1);
        let dir_inode = &self.inodes[&dir];
        for page in 0..nblocks {
            let disk_block = match dir_inode.blocks.get(page as usize) {
                Some(&b) => b,
                None => break,
            };
            self.io.reads.push(MetaAccess {
                ino: dir,
                page,
                disk_block,
            });
        }
    }

    fn log_dir_write(&mut self, dir: Ino, entry_index: usize) {
        let per_block = (self.params.block_size / DIRENT_BYTES).max(1);
        let page = entry_index as u64 / per_block;
        if let Some(&disk_block) = self.inodes[&dir].blocks.get(page as usize) {
            self.io.writes.push(MetaAccess {
                ino: dir,
                page,
                disk_block,
            });
        }
    }

    /// Ensures the directory has enough data blocks for its entries.
    fn grow_dir(&mut self, dir: Ino) -> OsResult<()> {
        let per_block = (self.params.block_size / DIRENT_BYTES).max(1);
        let (needed, group, last) = {
            let inode = &self.inodes[&dir];
            let n = inode.entries.as_ref().map(|e| e.len()).unwrap_or(0) as u64;
            (
                n.div_ceil(per_block).max(1) as usize,
                inode.group,
                inode.blocks.last().copied(),
            )
        };
        while self.inodes[&dir].blocks.len() < needed {
            let near = last.map(|b| b + 1);
            let block = self.alloc_data_block(group, near)?;
            self.inodes
                .get_mut(&dir)
                .expect("dir exists")
                .blocks
                .push(block);
        }
        Ok(())
    }

    // --- Allocation ------------------------------------------------------

    /// Lowest free i-number, preferring `group` then scanning onward.
    fn alloc_ino(&mut self, group: usize) -> OsResult<(Ino, usize)> {
        let n = self.groups.len();
        for off in 0..n {
            let g = (group + off) % n;
            if let Some(&ino) = self.groups[g].free_inos.iter().next() {
                self.groups[g].free_inos.remove(&ino);
                return Ok((ino, g));
            }
        }
        Err(OsError::NoSpace)
    }

    /// A free data block, preferring `near` (for contiguity), then
    /// first-fit in `group`, then any group.
    ///
    /// Under [`crate::config::LayoutPolicy::Lfs`], all of that is ignored:
    /// every block comes from the global log head, so temporal write
    /// order *is* spatial order.
    fn alloc_data_block(&mut self, group: usize, near: Option<u64>) -> OsResult<u64> {
        if self.params.layout == crate::config::LayoutPolicy::Lfs {
            return self.alloc_log_block();
        }
        if let Some(want) = near {
            let g = &mut self.groups[group];
            if g.free_blocks.remove(&want) {
                return Ok(want);
            }
        }
        let n = self.groups.len();
        for off in 0..n {
            let gi = (group + off) % n;
            let g = &mut self.groups[gi];
            // Rotor search: first free block at or after the rotor, then
            // wrap to the start of the group's data area.
            let found = g
                .free_blocks
                .range(g.rotor..)
                .next()
                .or_else(|| g.free_blocks.iter().next())
                .copied();
            if let Some(b) = found {
                g.free_blocks.remove(&b);
                g.rotor = b + 1;
                return Ok(b);
            }
        }
        Err(OsError::NoSpace)
    }

    /// LFS: the next block at the log head, advancing through groups and
    /// wrapping (a trivial "cleaner": freed blocks become allocatable once
    /// the head wraps back around to them).
    fn alloc_log_block(&mut self) -> OsResult<u64> {
        let n = self.groups.len();
        for off in 0..=n {
            let gi = (self.log_group + off) % n;
            let g = &mut self.groups[gi];
            let found = g.free_blocks.range(g.rotor..).next().copied().or_else(|| {
                // Wrap within the group only when moving to it fresh.
                if off > 0 {
                    g.free_blocks.iter().next().copied()
                } else {
                    None
                }
            });
            if let Some(b) = found {
                g.free_blocks.remove(&b);
                g.rotor = b + 1;
                self.log_group = gi;
                return Ok(b);
            }
        }
        Err(OsError::NoSpace)
    }

    /// LFS: an overwrite relocates the block to the log head. Returns the
    /// new disk block (the old one is freed; its content moves).
    pub fn relocate_block(&mut self, ino: Ino, page: u64) -> OsResult<u64> {
        debug_assert_eq!(self.params.layout, crate::config::LayoutPolicy::Lfs);
        let old = {
            let inode = self.inodes.get(&ino).ok_or(OsError::NotFound)?;
            *inode
                .blocks
                .get(page as usize)
                .ok_or(OsError::InvalidArgument)?
        };
        let new = self.alloc_log_block()?;
        if let Some(content) = self.content.remove(&old) {
            self.content.insert(new, content);
        }
        self.free_data_block(old);
        let inode = self.inodes.get_mut(&ino).expect("checked above");
        inode.blocks[page as usize] = new;
        self.log_inode_write(ino);
        Ok(new)
    }

    /// The active layout policy.
    pub fn layout(&self) -> crate::config::LayoutPolicy {
        self.params.layout
    }

    fn group_of_block(&self, block: u64) -> usize {
        let itable_blocks = self
            .params
            .inodes_per_group
            .div_ceil(self.params.inodes_per_block);
        let span = itable_blocks + self.params.blocks_per_group;
        (block / span) as usize
    }

    fn free_data_block(&mut self, block: u64) {
        let g = self.group_of_block(block);
        self.groups[g].free_blocks.insert(block);
        self.content.remove(&block);
    }

    /// The group with the most free i-numbers (FFS spreads directories).
    fn emptiest_group(&self) -> usize {
        self.groups
            .iter()
            .enumerate()
            .max_by_key(|(i, g)| (g.free_inos.len(), usize::MAX - i))
            .map(|(i, _)| i)
            .expect("at least one group")
    }

    // --- Path walking ----------------------------------------------------

    fn split_path(path: &str) -> OsResult<Vec<&str>> {
        if !path.starts_with('/') {
            return Err(OsError::InvalidArgument);
        }
        Ok(path.split('/').filter(|c| !c.is_empty()).collect())
    }

    /// Resolves a path to an i-number, logging the directory and inode
    /// reads the walk performs.
    pub fn resolve(&mut self, path: &str) -> OsResult<Ino> {
        let components = Self::split_path(path)?;
        let mut cur = ROOT_INO;
        for comp in components {
            let inode = self.inodes.get(&cur).ok_or(OsError::NotFound)?;
            let entries = inode.entries.as_ref().ok_or(OsError::NotADirectory)?;
            let found = inode.entry_position(comp).ok_or(OsError::NotFound)?;
            let next = entries[found].1;
            self.log_dir_read(cur, found + 1);
            self.log_inode_read(next);
            cur = next;
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `path`, returning `(dir_ino,
    /// final_name)`.
    fn resolve_parent<'p>(&mut self, path: &'p str) -> OsResult<(Ino, &'p str)> {
        let components = Self::split_path(path)?;
        let Some((&name, parents)) = components.split_last() else {
            return Err(OsError::InvalidArgument);
        };
        let mut cur = ROOT_INO;
        for comp in parents {
            let inode = self.inodes.get(&cur).ok_or(OsError::NotFound)?;
            let entries = inode.entries.as_ref().ok_or(OsError::NotADirectory)?;
            let found = inode.entry_position(comp).ok_or(OsError::NotFound)?;
            let next = entries[found].1;
            self.log_dir_read(cur, found + 1);
            self.log_inode_read(next);
            cur = next;
        }
        if self
            .inodes
            .get(&cur)
            .and_then(|i| i.entries.as_ref())
            .is_none()
        {
            return Err(OsError::NotADirectory);
        }
        Ok((cur, name))
    }

    // --- Namespace operations ---------------------------------------------

    /// Creates a regular file; fails if the path exists.
    pub fn create(&mut self, path: &str, now: Nanos) -> OsResult<Ino> {
        let (dir, name) = self.resolve_parent(path)?;
        if self.inodes[&dir].entry_position(name).is_some() {
            return Err(OsError::AlreadyExists);
        }
        let group = self.inodes[&dir].group;
        let (ino, actual_group) = self.alloc_ino(group)?;
        self.inodes.insert(
            ino,
            Inode {
                ino,
                is_dir: false,
                size: 0,
                blocks: Vec::new(),
                atime: now,
                mtime: now,
                entries: None,
                name_index: HashMap::new(),
                group: actual_group,
            },
        );
        let name = name.to_string();
        let dir_inode = self.inodes.get_mut(&dir).expect("checked dir");
        let idx = dir_inode.push_entry(name, ino);
        dir_inode.mtime = now;
        self.grow_dir(dir)?;
        self.log_dir_write(dir, idx);
        self.log_inode_write(ino);
        self.log_inode_write(dir);
        Ok(ino)
    }

    /// Creates a directory (placed in the emptiest group).
    pub fn mkdir(&mut self, path: &str, now: Nanos) -> OsResult<Ino> {
        let (dir, name) = self.resolve_parent(path)?;
        if self.inodes[&dir].entry_position(name).is_some() {
            return Err(OsError::AlreadyExists);
        }
        let group = self.emptiest_group();
        let (ino, actual_group) = self.alloc_ino(group)?;
        self.inodes.insert(
            ino,
            Inode {
                ino,
                is_dir: true,
                size: 0,
                blocks: Vec::new(),
                atime: now,
                mtime: now,
                entries: Some(Vec::new()),
                name_index: HashMap::new(),
                group: actual_group,
            },
        );
        self.grow_dir(ino)?;
        let name = name.to_string();
        let dir_inode = self.inodes.get_mut(&dir).expect("checked dir");
        let idx = dir_inode.push_entry(name, ino);
        dir_inode.mtime = now;
        self.grow_dir(dir)?;
        self.log_dir_write(dir, idx);
        self.log_inode_write(ino);
        Ok(ino)
    }

    /// Lists a directory's names in creation (directory) order.
    pub fn list_dir(&mut self, path: &str) -> OsResult<Vec<String>> {
        let ino = self.resolve(path)?;
        let inode = self.inodes.get(&ino).ok_or(OsError::NotFound)?;
        let entries = inode.entries.as_ref().ok_or(OsError::NotADirectory)?;
        let names: Vec<String> = entries.iter().map(|(n, _)| n.clone()).collect();
        self.log_dir_read(ino, names.len());
        Ok(names)
    }

    /// Unlinks a regular file, freeing its inode and blocks. Returns its
    /// i-number so the kernel can purge cached pages.
    pub fn unlink(&mut self, path: &str, now: Nanos) -> OsResult<Ino> {
        let (dir, name) = self.resolve_parent(path)?;
        let idx = self.inodes[&dir]
            .entry_position(name)
            .ok_or(OsError::NotFound)?;
        let ino = self.inodes[&dir].entries.as_ref().expect("checked dir")[idx].1;
        if self.inodes[&ino].is_dir {
            return Err(OsError::IsADirectory);
        }
        let dir_inode = self.inodes.get_mut(&dir).expect("checked dir");
        dir_inode.remove_entry_at(idx);
        dir_inode.mtime = now;
        let inode = self.inodes.remove(&ino).expect("present");
        for block in inode.blocks {
            self.free_data_block(block);
        }
        let g = (ino / self.params.inodes_per_group) as usize;
        self.groups[g].free_inos.insert(ino);
        self.log_dir_write(dir, idx);
        self.log_inode_write(ino);
        Ok(ino)
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str, now: Nanos) -> OsResult<Ino> {
        let (dir, name) = self.resolve_parent(path)?;
        let idx = self.inodes[&dir]
            .entry_position(name)
            .ok_or(OsError::NotFound)?;
        let ino = self.inodes[&dir].entries.as_ref().expect("checked dir")[idx].1;
        {
            let target = self.inodes.get(&ino).ok_or(OsError::NotFound)?;
            let target_entries = target.entries.as_ref().ok_or(OsError::NotADirectory)?;
            if !target_entries.is_empty() {
                return Err(OsError::NotEmpty);
            }
        }
        let dir_inode = self.inodes.get_mut(&dir).expect("checked dir");
        dir_inode.remove_entry_at(idx);
        dir_inode.mtime = now;
        let inode = self.inodes.remove(&ino).expect("present");
        for block in inode.blocks {
            self.free_data_block(block);
        }
        let g = (ino / self.params.inodes_per_group) as usize;
        self.groups[g].free_inos.insert(ino);
        self.log_dir_write(dir, idx);
        Ok(ino)
    }

    /// Renames a file or directory. Layout (inode, blocks) is untouched —
    /// only directory entries move, matching UNIX `rename(2)`.
    pub fn rename(&mut self, from: &str, to: &str, now: Nanos) -> OsResult<()> {
        let (fdir, fname) = self.resolve_parent(from)?;
        let fidx = self.inodes[&fdir]
            .entry_position(fname)
            .ok_or(OsError::NotFound)?;
        let ino = self.inodes[&fdir].entries.as_ref().expect("checked dir")[fidx].1;
        let (tdir, tname) = self.resolve_parent(to)?;
        if self.inodes[&tdir].entry_position(tname).is_some() {
            return Err(OsError::AlreadyExists);
        }
        let tname = tname.to_string();
        {
            let fdir_inode = self.inodes.get_mut(&fdir).expect("checked dir");
            fdir_inode.remove_entry_at(fidx);
            fdir_inode.mtime = now;
        }
        let idx = {
            let tdir_inode = self.inodes.get_mut(&tdir).expect("checked dir");
            let idx = tdir_inode.push_entry(tname, ino);
            tdir_inode.mtime = now;
            idx
        };
        self.grow_dir(tdir)?;
        self.log_dir_write(fdir, fidx);
        self.log_dir_write(tdir, idx);
        Ok(())
    }

    /// Sets access/modification times.
    pub fn set_times(&mut self, path: &str, atime: Nanos, mtime: Nanos) -> OsResult<()> {
        let ino = self.resolve(path)?;
        let inode = self.inodes.get_mut(&ino).ok_or(OsError::NotFound)?;
        inode.atime = atime;
        inode.mtime = mtime;
        self.log_inode_write(ino);
        Ok(())
    }

    // --- Data paths --------------------------------------------------------

    /// The data block backing `page` of `ino`, if allocated.
    pub fn block_of(&self, ino: Ino, page: u64) -> Option<u64> {
        self.inodes
            .get(&ino)
            .and_then(|i| i.blocks.get(page as usize))
            .copied()
    }

    /// Allocates (if needed) the data block for `page` of `ino`, extending
    /// the file. Intervening holes are allocated too (no sparse files).
    pub fn ensure_block(&mut self, ino: Ino, page: u64) -> OsResult<u64> {
        let (group, mut last) = {
            let inode = self.inodes.get(&ino).ok_or(OsError::NotFound)?;
            if let Some(&b) = inode.blocks.get(page as usize) {
                return Ok(b);
            }
            (inode.group, inode.blocks.last().copied())
        };
        let mut allocated = Vec::new();
        let have = self.inodes[&ino].blocks.len() as u64;
        for _ in have..=page {
            let near = last.map(|b| b + 1);
            let b = self.alloc_data_block(group, near)?;
            allocated.push(b);
            last = Some(b);
        }
        let block = {
            let inode = self.inodes.get_mut(&ino).expect("checked above");
            inode.blocks.extend_from_slice(&allocated);
            *inode.blocks.get(page as usize).expect("just allocated")
        };
        self.log_inode_write(ino);
        Ok(block)
    }

    /// Updates file size and mtime after a write.
    pub fn note_write(&mut self, ino: Ino, end_offset: u64, now: Nanos) -> OsResult<()> {
        let inode = self.inodes.get_mut(&ino).ok_or(OsError::NotFound)?;
        if end_offset > inode.size {
            inode.size = end_offset;
        }
        inode.mtime = now;
        self.log_inode_write(ino);
        Ok(())
    }

    /// Updates atime after a read.
    pub fn note_read(&mut self, ino: Ino, now: Nanos) -> OsResult<()> {
        let inode = self.inodes.get_mut(&ino).ok_or(OsError::NotFound)?;
        inode.atime = now;
        Ok(())
    }

    /// Copies stored content of `disk_block` into `buf` (which must be
    /// positioned at `offset` within the block).
    pub fn read_content(&self, disk_block: u64, offset: u64, buf: &mut [u8]) {
        match self.content.get(&disk_block) {
            Some(BlockContent::Data(data)) => {
                let start = offset as usize;
                let end = (start + buf.len()).min(data.len());
                if start < end {
                    buf[..end - start].copy_from_slice(&data[start..end]);
                }
                if end - start < buf.len() {
                    for b in &mut buf[end - start..] {
                        *b = 0;
                    }
                }
            }
            Some(BlockContent::Fill(pattern)) => buf.fill(*pattern),
            None => buf.fill(0),
        }
    }

    /// Stores written bytes into `disk_block` at `offset`.
    pub fn write_content(&mut self, disk_block: u64, offset: u64, data: &[u8]) {
        let block_size = self.params.block_size as usize;
        let entry = self
            .content
            .entry(disk_block)
            .and_modify(|c| {
                if let BlockContent::Fill(p) = *c {
                    *c = BlockContent::Data(vec![p; block_size].into_boxed_slice());
                }
            })
            .or_insert_with(|| BlockContent::Data(vec![0; block_size].into_boxed_slice()));
        let BlockContent::Data(bytes) = entry else {
            unreachable!("fill was converted above");
        };
        let start = offset as usize;
        let end = (start + data.len()).min(block_size);
        bytes[start..end].copy_from_slice(&data[..end - start]);
    }

    /// Marks `disk_block` as synthetic fill (cheap bulk data).
    pub fn fill_content(&mut self, disk_block: u64) {
        let pattern = self.next_fill;
        self.next_fill = self.next_fill.wrapping_add(1).max(1);
        self.content.insert(disk_block, BlockContent::Fill(pattern));
    }

    /// Free space in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.free_blocks.len() as u64)
            .sum::<u64>()
            * self.params.block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FsParams;

    fn fs() -> Fs {
        // 2 groups of (32 itable + 4096 data) blocks.
        Fs::new(FsParams::default(), 0, 2 * (32 + 4096))
    }

    #[test]
    fn root_exists_and_reserved_inos_are_claimed() {
        let mut f = fs();
        assert_eq!(f.resolve("/").unwrap(), ROOT_INO);
        let ino = f.create("/a", Nanos::ZERO).unwrap();
        assert!(ino > ROOT_INO, "reserved i-numbers must not be reused");
    }

    #[test]
    fn creation_order_matches_inumber_order() {
        let mut f = fs();
        let a = f.create("/a", Nanos::ZERO).unwrap();
        let b = f.create("/b", Nanos::ZERO).unwrap();
        let c = f.create("/c", Nanos::ZERO).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn fresh_files_get_contiguous_blocks() {
        let mut f = fs();
        let a = f.create("/a", Nanos::ZERO).unwrap();
        for page in 0..4 {
            f.ensure_block(a, page).unwrap();
        }
        let blocks = &f.inode(a).unwrap().blocks;
        for w in blocks.windows(2) {
            assert_eq!(w[1], w[0] + 1, "blocks must be contiguous: {blocks:?}");
        }
    }

    #[test]
    fn consecutive_small_files_are_laid_out_in_order() {
        let mut f = fs();
        let mut last_block = 0;
        for i in 0..10 {
            let ino = f.create(&format!("/f{i}"), Nanos::ZERO).unwrap();
            let b = f.ensure_block(ino, 0).unwrap();
            assert!(b > last_block || last_block == 0, "layout order broken");
            last_block = b;
        }
    }

    #[test]
    fn deletion_and_recreation_decorrelates_layout() {
        let mut f = fs();
        let mut blocks = Vec::new();
        for i in 0..10 {
            let ino = f.create(&format!("/f{i}"), Nanos::ZERO).unwrap();
            f.ensure_block(ino, 0).unwrap();
            blocks.push(f.inode(ino).unwrap().blocks[0]);
        }
        // Delete an early file; a new file reuses its low i-number, but
        // the rotor places its data *after* the latest allocations — the
        // i-number/layout correlation breaks (FFS aging).
        f.unlink("/f2", Nanos::ZERO).unwrap();
        let ino_new = f.create("/fnew", Nanos::ZERO).unwrap();
        let b_new = f.ensure_block(ino_new, 0).unwrap();
        assert!(
            b_new > *blocks.last().unwrap(),
            "rotor must not immediately refill the hole: {b_new} vs {blocks:?}"
        );
    }

    #[test]
    fn directories_spread_to_emptiest_group() {
        let mut f = fs();
        f.mkdir("/d1", Nanos::ZERO).unwrap();
        let d1 = f.resolve("/d1").unwrap();
        // Group 0 hosts root + d1's entry load; a fresh directory should
        // land in group 1 (more free inodes).
        assert_eq!(f.inode(d1).unwrap().group, 1);
    }

    #[test]
    fn files_follow_their_directory_group() {
        let mut f = fs();
        f.mkdir("/d", Nanos::ZERO).unwrap();
        let d = f.resolve("/d").unwrap();
        let file = f.create("/d/x", Nanos::ZERO).unwrap();
        assert_eq!(f.inode(file).unwrap().group, f.inode(d).unwrap().group);
    }

    #[test]
    fn list_dir_is_creation_order() {
        let mut f = fs();
        for name in ["z", "a", "m"] {
            f.create(&format!("/{name}"), Nanos::ZERO).unwrap();
        }
        assert_eq!(f.list_dir("/").unwrap(), vec!["z", "a", "m"]);
    }

    #[test]
    fn unlink_frees_ino_and_blocks() {
        let mut f = fs();
        let a = f.create("/a", Nanos::ZERO).unwrap();
        let block = f.ensure_block(a, 0).unwrap();
        f.write_content(block, 0, b"data");
        f.unlink("/a", Nanos::ZERO).unwrap();
        assert!(f.resolve("/a").is_err());
        // The freed i-number is reused by the next creation.
        let b = f.create("/b", Nanos::ZERO).unwrap();
        assert_eq!(a, b);
        // Content of the freed block is gone.
        let mut buf = [1u8; 4];
        f.read_content(block, 0, &mut buf);
        assert_eq!(buf, [0u8; 4]);
    }

    #[test]
    fn rename_preserves_ino_and_blocks() {
        let mut f = fs();
        let a = f.create("/a", Nanos::ZERO).unwrap();
        let block = f.ensure_block(a, 0).unwrap();
        f.rename("/a", "/b", Nanos::ZERO).unwrap();
        assert_eq!(f.resolve("/b").unwrap(), a);
        assert_eq!(f.block_of(a, 0), Some(block));
        assert!(f.resolve("/a").is_err());
    }

    #[test]
    fn rmdir_rejects_nonempty() {
        let mut f = fs();
        f.mkdir("/d", Nanos::ZERO).unwrap();
        f.create("/d/x", Nanos::ZERO).unwrap();
        assert_eq!(f.rmdir("/d", Nanos::ZERO), Err(OsError::NotEmpty));
        f.unlink("/d/x", Nanos::ZERO).unwrap();
        f.rmdir("/d", Nanos::ZERO).unwrap();
        assert!(f.resolve("/d").is_err());
    }

    #[test]
    fn content_round_trips_partial_writes() {
        let mut f = fs();
        let a = f.create("/a", Nanos::ZERO).unwrap();
        let block = f.ensure_block(a, 0).unwrap();
        f.write_content(block, 10, b"hello");
        let mut buf = [0u8; 5];
        f.read_content(block, 10, &mut buf);
        assert_eq!(&buf, b"hello");
        let mut head = [9u8; 10];
        f.read_content(block, 0, &mut head);
        assert_eq!(head, [0u8; 10]);
    }

    #[test]
    fn fill_then_partial_write_preserves_pattern() {
        let mut f = fs();
        let a = f.create("/a", Nanos::ZERO).unwrap();
        let block = f.ensure_block(a, 0).unwrap();
        f.fill_content(block);
        let mut before = [0u8; 2];
        f.read_content(block, 100, &mut before);
        f.write_content(block, 0, b"X");
        let mut buf = [0u8; 2];
        f.read_content(block, 100, &mut buf);
        assert_eq!(buf, before, "fill must survive an unrelated write");
        let mut x = [0u8; 1];
        f.read_content(block, 0, &mut x);
        assert_eq!(&x, b"X");
    }

    #[test]
    fn resolve_logs_metadata_reads() {
        let mut f = fs();
        f.mkdir("/d", Nanos::ZERO).unwrap();
        f.create("/d/x", Nanos::ZERO).unwrap();
        f.take_io();
        f.resolve("/d/x").unwrap();
        let io = f.take_io();
        assert!(
            io.reads.iter().any(|m| m.ino == ITABLE_INO),
            "inode reads must be logged: {io:?}"
        );
        assert!(
            io.reads.iter().any(|m| m.ino != ITABLE_INO),
            "directory reads must be logged: {io:?}"
        );
    }

    #[test]
    fn adjacent_inodes_share_an_itable_block() {
        let mut f = fs();
        let a = f.create("/a", Nanos::ZERO).unwrap();
        let b = f.create("/b", Nanos::ZERO).unwrap();
        assert_eq!(
            f.inode_disk_block(a),
            f.inode_disk_block(b),
            "32 inodes per block means consecutive files share one"
        );
    }

    #[test]
    fn no_space_is_reported() {
        // Tiny FS: 1 group, 8 data blocks.
        let params = FsParams {
            blocks_per_group: 8,
            inodes_per_group: 32,
            ..FsParams::default()
        };
        let mut f = Fs::new(params, 0, 9);
        let a = f.create("/a", Nanos::ZERO).unwrap();
        let mut page = 0;
        let err = loop {
            match f.ensure_block(a, page) {
                Ok(_) => page += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(err, OsError::NoSpace);
    }

    #[test]
    fn ensure_block_fills_holes_densely() {
        let mut f = fs();
        let a = f.create("/a", Nanos::ZERO).unwrap();
        f.ensure_block(a, 3).unwrap();
        assert_eq!(f.inode(a).unwrap().blocks.len(), 4);
    }

    #[test]
    fn free_bytes_decreases_on_allocation() {
        let mut f = fs();
        let before = f.free_bytes();
        let a = f.create("/a", Nanos::ZERO).unwrap();
        f.ensure_block(a, 0).unwrap();
        assert!(f.free_bytes() < before);
    }
}
