//! The mechanical disk model.
//!
//! Service time for a request decomposes classically into **seek** (a
//! min-plus-square-root curve over cylinder distance), **rotational
//! latency** (the head waits for the target block's angular position, which
//! is derived from absolute virtual time, so rotational delays come out
//! deterministic yet realistically spread), and **transfer** (media
//! bandwidth). A request that starts exactly where the head stopped streams
//! at media rate with neither seek nor rotation — this is what rewards
//! FFS-contiguous allocation and sequential readahead, and ultimately what
//! FLDC's i-number ordering harvests.
//!
//! Requests on one disk are serialized FCFS through `busy_until`;
//! contention from competing processes (or from swap sharing a data disk)
//! emerges from the queue.

use gray_toolbox::{GrayDuration, Nanos};

use crate::config::DiskParams;

/// Running counters for one disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of I/O requests served.
    pub requests: u64,
    /// Blocks transferred.
    pub blocks: u64,
    /// Requests that streamed (no seek, no rotation).
    pub sequential_requests: u64,
    /// Total time the disk was busy.
    pub busy: GrayDuration,
}

/// One simulated disk.
#[derive(Debug, Clone)]
pub struct Disk {
    params: DiskParams,
    blocks: u64,
    blocks_per_cylinder: u64,
    rot_period: GrayDuration,
    block_time: GrayDuration,
    /// Seek curve: `seek_min + coef * sqrt(cylinder_distance)` ns.
    seek_coef_ns: f64,
    head_block: u64,
    busy_until: Nanos,
    stats: DiskStats,
}

impl Disk {
    /// Builds a disk from its mechanical parameters, using `block_size`
    /// bytes per block.
    pub fn new(params: DiskParams, block_size: u64) -> Self {
        let blocks = params.capacity / block_size;
        let blocks_per_cylinder = (params.blocks_per_track * params.heads) as u64;
        let cylinders = (blocks / blocks_per_cylinder).max(1);
        let rot_period = GrayDuration::from_secs_f64(60.0 / params.rpm as f64);
        let block_time = GrayDuration::from_secs_f64(block_size as f64 / params.bandwidth as f64);
        // Fit the curve so that the average seek (distance ≈ cylinders/3)
        // matches `seek_avg`.
        let avg_dist = (cylinders as f64 / 3.0).max(1.0);
        let seek_coef_ns = (params.seek_avg.as_nanos() as f64 - params.seek_min.as_nanos() as f64)
            .max(0.0)
            / avg_dist.sqrt();
        Disk {
            params,
            blocks,
            blocks_per_cylinder,
            rot_period,
            block_time,
            seek_coef_ns,
            head_block: 0,
            busy_until: Nanos::ZERO,
            stats: DiskStats::default(),
        }
    }

    /// Total number of blocks on the disk.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// The running counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The instant the disk becomes idle.
    pub fn busy_until(&self) -> Nanos {
        self.busy_until
    }

    /// Serves a contiguous transfer of `nblocks` starting at `block`,
    /// issued at process-local time `now`. Returns the completion instant.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn transfer(&mut self, now: Nanos, block: u64, nblocks: u64) -> Nanos {
        assert!(nblocks > 0, "empty transfer");
        assert!(
            block + nblocks <= self.blocks,
            "transfer beyond end of disk: {}+{} > {}",
            block,
            nblocks,
            self.blocks
        );
        let start = now.max(self.busy_until);
        let positioned = if block == self.head_block {
            self.stats.sequential_requests += 1;
            start
        } else {
            let seek = self.seek_time(block);
            let after_seek = start + seek;
            after_seek + self.rotation_wait(after_seek, block)
        };
        let done = positioned + self.block_time * nblocks;
        self.head_block = block + nblocks;
        self.busy_until = done;
        self.stats.requests += 1;
        self.stats.blocks += nblocks;
        self.stats.busy += done.since(start);
        done
    }

    /// Seek time from the current head position to `block`'s cylinder.
    fn seek_time(&self, block: u64) -> GrayDuration {
        let from = self.head_block / self.blocks_per_cylinder;
        let to = block / self.blocks_per_cylinder;
        let dist = from.abs_diff(to);
        if dist == 0 {
            // Same cylinder: at most a head switch, folded into seek_min.
            self.params.seek_min / 2
        } else {
            self.params.seek_min
                + GrayDuration::from_nanos((self.seek_coef_ns * (dist as f64).sqrt()) as u64)
        }
    }

    /// Time until the platter rotates to `block`'s angular position,
    /// starting from the absolute instant `t`.
    fn rotation_wait(&self, t: Nanos, block: u64) -> GrayDuration {
        let period = self.rot_period.as_nanos();
        let current = t.as_nanos() % period;
        let target_frac = (block % self.params.blocks_per_track as u64) as f64
            / self.params.blocks_per_track as f64;
        let target = (target_frac * period as f64) as u64;
        let wait = if target >= current {
            target - current
        } else {
            period - current + target
        };
        GrayDuration::from_nanos(wait)
    }

    /// Resets head position and queue (new experiment), keeping stats.
    pub fn reset_position(&mut self) {
        self.head_block = 0;
        self.busy_until = Nanos::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskParams::default(), 4096)
    }

    #[test]
    fn geometry_is_derived() {
        let d = disk();
        assert_eq!(d.blocks(), (9u64 << 30) / 4096);
        assert_eq!(d.blocks_per_cylinder, 640);
    }

    #[test]
    fn sequential_transfers_stream_at_bandwidth() {
        let mut d = disk();
        // Position the head at block 100 first.
        let t1 = d.transfer(Nanos::ZERO, 100, 1);
        let t2 = d.transfer(t1, 101, 256);
        let streaming = t2.since(t1);
        let expected = GrayDuration::from_secs_f64(256.0 * 4096.0 / (20u64 << 20) as f64);
        let ratio = streaming.as_nanos() as f64 / expected.as_nanos() as f64;
        assert!((0.99..=1.01).contains(&ratio), "streamed in {streaming}");
        assert_eq!(d.stats().sequential_requests, 1);
    }

    #[test]
    fn random_access_pays_seek_and_rotation() {
        let mut d = disk();
        let far = d.blocks() / 2;
        let t = d.transfer(Nanos::ZERO, far, 1);
        // Must cost at least the minimum seek plus one block transfer.
        assert!(t.since(Nanos::ZERO) > GrayDuration::from_micros(600));
        // And no more than full stroke + full rotation + transfer.
        assert!(t.since(Nanos::ZERO) < GrayDuration::from_millis(25));
    }

    #[test]
    fn average_random_read_is_milliseconds() {
        // Sanity-check the 9LZX-flavored service time: ~5-15 ms random.
        let mut d = disk();
        let mut now = Nanos::ZERO;
        let mut total = GrayDuration::ZERO;
        let n = 200u64;
        let mut block = 7919u64; // pseudo-random walk via a prime stride
        for _ in 0..n {
            block = (block
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
                % d.blocks();
            let done = d.transfer(now, block, 1);
            total += done.since(now);
            now = done;
        }
        let avg = total / n;
        assert!(
            (GrayDuration::from_millis(4)..GrayDuration::from_millis(16)).contains(&avg),
            "average random read {avg}"
        );
    }

    #[test]
    fn queueing_serializes_requests() {
        let mut d = disk();
        let t1 = d.transfer(Nanos::ZERO, 1000, 1);
        // A request issued earlier in process time still waits for the disk.
        let t2 = d.transfer(Nanos::ZERO, 2000, 1);
        assert!(t2 > t1);
    }

    #[test]
    fn rotation_wait_is_bounded_by_period() {
        let d = disk();
        let period = d.rot_period;
        for t in [0u64, 123_456, 999_999_937] {
            for b in [0u64, 13, 63, 64, 1000] {
                let w = d.rotation_wait(Nanos(t), b);
                assert!(w < period, "wait {w} >= period {period}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "beyond end of disk")]
    fn out_of_range_transfer_panics() {
        let mut d = disk();
        let end = d.blocks();
        let _ = d.transfer(Nanos::ZERO, end, 1);
    }

    #[test]
    fn same_cylinder_seek_is_cheap() {
        let mut d = disk();
        let _ = d.transfer(Nanos::ZERO, 0, 1);
        // Block 10 is on the same cylinder (640 blocks per cylinder).
        let seek = d.seek_time(10);
        assert!(seek <= GrayDuration::from_micros(300), "seek {seek}");
    }
}
