//! The simulated kernel: syscall semantics, cost charging, and the glue
//! between file systems, the page cache, the VM, and the disks.
//!
//! Each mounted disk hosts one FFS-like file system: disk 0 at `/`, disk
//! *i* at `/d<i>`. The swap area occupies the top quarter of the configured
//! swap disk (the file system on that disk gets the rest), so swap I/O
//! contends with file I/O exactly when the configuration says it should.
//!
//! Costs are charged to the calling process's local clock: CPU work runs on
//! the [`crate::clock::CpuBank`] (with seeded noise), disk work queues FCFS
//! on the owning [`crate::disk::Disk`]. Dirty evictions are charged
//! *synchronously* to the process that forced them — the direct-reclaim
//! behavior that makes memory pressure visible to MAC's probes.

use std::collections::HashMap;

use gray_toolbox::profile;
use gray_toolbox::{GrayDuration, Nanos};
use graybox::os::{Fd, OsError, OsResult, ProbeSample, ProbeSpec, Stat};

use crate::cache::{Evicted, Owner, PageCache, PageId};
use crate::clock::{CpuBank, Noise};
use crate::config::SimConfig;
use crate::disk::Disk;
use crate::fs::{Fs, Ino, ITABLE_INO};
use crate::vm::{TouchKind, Vm};

/// Cost of reading the high-resolution timer.
const TIMER_READ: GrayDuration = GrayDuration(40);

/// Initial readahead window in pages.
const RA_INITIAL: u64 = 4;

/// Kernel-wide event counters (oracle / debugging).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Demand-zero page faults.
    pub zero_faults: u64,
    /// Pages read back from swap.
    pub swap_ins: u64,
    /// Pages written to swap.
    pub swap_outs: u64,
    /// File pages read from disk.
    pub file_page_reads: u64,
    /// File pages written to disk.
    pub file_page_writes: u64,
    /// File-cache hits.
    pub cache_hits: u64,
    /// File-cache misses.
    pub cache_misses: u64,
    /// Flusher epochs that have fired (including no-op epochs).
    pub flusher_runs: u64,
    /// Dirty file pages written back by the flusher.
    pub flusher_pages: u64,
}

/// Per-open-file state.
#[derive(Debug, Clone, Copy)]
struct OpenFile {
    dev: usize,
    ino: Ino,
    /// Next page a sequential reader would touch.
    next_seq_page: u64,
    /// Current readahead window in pages.
    ra_window: u64,
}

/// One process's clock.
#[derive(Debug, Clone, Copy)]
struct ProcClock {
    now: Nanos,
    live: bool,
}

/// The simulated kernel. Use through [`crate::Sim`]; the methods here take
/// an explicit `pid` because the executor hands each process a handle bound
/// to one.
#[derive(Debug)]
pub struct Kernel {
    cfg: SimConfig,
    cpus: CpuBank,
    noise: Noise,
    disks: Vec<Disk>,
    fss: Vec<Fs>,
    cache: PageCache,
    vm: Vm,
    /// First disk block of the swap area on the swap disk.
    swap_base: u64,
    /// Which disk swap lives on.
    swap_disk: usize,
    procs: Vec<ProcClock>,
    fdt: Vec<HashMap<u32, OpenFile>>,
    next_fd: Vec<u32>,
    stats: KernelStats,
    /// Virtual instant of the next flusher epoch (meaningful only when
    /// `cfg.writeback.enabled`).
    next_flush: Nanos,
}

impl Kernel {
    /// Boots a kernel from a validated configuration.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate();
        let mut disks: Vec<Disk> = cfg
            .disks
            .iter()
            .map(|d| Disk::new(*d, cfg.page_size))
            .collect();
        let mut fss = Vec::with_capacity(disks.len());
        let mut swap_base = 0;
        for (i, disk) in disks.iter_mut().enumerate() {
            let blocks = if i == cfg.swap_disk {
                let fs_blocks = disk.blocks() / 4 * 3;
                swap_base = fs_blocks;
                fs_blocks
            } else {
                disk.blocks()
            };
            fss.push(Fs::new(cfg.fs, i as u32, blocks));
        }
        let swap_slots = disks[cfg.swap_disk].blocks() - swap_base;
        let cache = PageCache::new(cfg.cache_arch(), cfg.usable_pages(), cfg.page_size);
        Kernel {
            cpus: CpuBank::new(cfg.cpus),
            noise: Noise::new(cfg.noise, cfg.seed),
            disks,
            fss,
            cache,
            vm: Vm::new(swap_slots),
            swap_base,
            swap_disk: cfg.swap_disk,
            procs: Vec::new(),
            fdt: Vec::new(),
            next_fd: Vec::new(),
            stats: KernelStats::default(),
            next_flush: Nanos::ZERO + cfg.writeback.interval,
            cfg,
        }
    }

    /// The configuration the kernel was booted with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Event counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    // --- Process lifecycle (used by the executor) -----------------------

    /// Registers a process starting at `start`; returns its pid.
    pub fn add_proc(&mut self, start: Nanos) -> usize {
        self.procs.push(ProcClock {
            now: start,
            live: true,
        });
        self.fdt.push(HashMap::new());
        self.next_fd.push(3);
        self.procs.len() - 1
    }

    /// Marks a process finished.
    pub fn finish_proc(&mut self, pid: usize) {
        self.procs[pid].live = false;
        self.fdt[pid].clear();
    }

    /// A process's local clock (exact, unquantized).
    pub fn proc_time(&self, pid: usize) -> Nanos {
        self.procs[pid].now
    }

    /// Whether the process is live.
    pub fn proc_live(&self, pid: usize) -> bool {
        self.procs[pid].live
    }

    /// The conservative-DES resume rule: among `active` pids that are
    /// still live, the one with the smallest `(local time, pid)`. Both
    /// executor backends defer to this single definition, which is what
    /// makes their schedules — and therefore every charged duration and
    /// noise draw — bit-identical.
    pub fn next_runnable(&self, active: &[usize]) -> Option<usize> {
        active
            .iter()
            .copied()
            .filter(|&p| self.proc_live(p))
            .min_by_key(|&p| (self.proc_time(p), p))
    }

    /// The latest local time across all processes (experiment epilogue).
    pub fn max_time(&self) -> Nanos {
        self.procs
            .iter()
            .map(|p| p.now)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    // --- Charging helpers -------------------------------------------------

    fn charge_cpu(&mut self, pid: usize, d: GrayDuration) {
        let d = self.noise.apply(d);
        let before = self.procs[pid].now;
        self.procs[pid].now = self.cpus.run(before, d);
        // Observation only: the delta was already committed above, so the
        // profiler cannot perturb virtual time (pinned by a tier-1 test).
        profile::charge(
            pid as u64,
            "cpu",
            self.procs[pid].now.as_nanos() - before.as_nanos(),
        );
    }

    /// Synchronous disk transfer charged to `pid`.
    fn disk_io(&mut self, pid: usize, dev: usize, block: u64, nblocks: u64) {
        let now = self.procs[pid].now;
        let done = self.disks[dev].transfer(now, block, nblocks);
        self.procs[pid].now = done;
        profile::charge(pid as u64, "disk", done.as_nanos() - now.as_nanos());
    }

    /// Handles cache evictions: dirty file pages are written back to their
    /// homes, dirty anonymous pages to swap; clean pages just vanish.
    fn handle_evictions(&mut self, pid: usize, evicted: Vec<Evicted>) -> OsResult<()> {
        for e in evicted {
            if !e.dirty {
                continue;
            }
            match e.id.owner {
                Owner::File { dev, ino } => {
                    let dev = dev as usize;
                    let block = if ino == ITABLE_INO {
                        // Inode-table pages are cached by disk block.
                        Some(e.id.page)
                    } else {
                        self.fss[dev].block_of(ino, e.id.page)
                    };
                    if let Some(block) = block {
                        self.disk_io(pid, dev, block, 1);
                        self.stats.file_page_writes += 1;
                    }
                }
                Owner::Anon { region } => {
                    if !self.vm.region_exists(region) {
                        continue; // Region died; drop the page.
                    }
                    let slot = self.vm.ensure_slot(region, e.id.page)?;
                    self.disk_io(pid, self.swap_disk, self.swap_base + slot, 1);
                    self.stats.swap_outs += 1;
                }
            }
        }
        Ok(())
    }

    /// Fires any flusher epochs the calling process's clock has crossed.
    ///
    /// Called at every kernel entry. The conservative executor always
    /// resumes the minimum-(time, pid) runnable process, so the identity
    /// of the first process to cross an epoch — and therefore the cache
    /// state the flusher sees — is a pure function of virtual time:
    /// bit-identical across backends and worker counts.
    ///
    /// The daemon's cost lands on the *disk* timelines, not on the
    /// innocent crossing process: each writeback occupies its disk's
    /// FCFS queue starting at the epoch instant, so foreground I/O
    /// issued afterwards waits behind it. That queueing delay is the
    /// side effect WBD observes.
    fn poll_flusher(&mut self, pid: usize) {
        if !self.cfg.writeback.enabled {
            return;
        }
        let now = self.procs[pid].now;
        let interval = self.cfg.writeback.interval;
        while self.next_flush <= now {
            let epoch = self.next_flush;
            self.next_flush += interval;
            self.stats.flusher_runs += 1;
            let dirty = self.cache.dirty_pages();
            if dirty.is_empty() {
                // Nothing dirty, and nothing changes between the epochs
                // inside one poll: fast-forward past the remaining no-ops.
                if self.next_flush <= now {
                    let behind =
                        (now.as_nanos() - self.next_flush.as_nanos()) / interval.as_nanos() + 1;
                    self.stats.flusher_runs += behind;
                    self.next_flush += GrayDuration::from_nanos(behind * interval.as_nanos());
                }
                continue;
            }
            let mut budget = self.cfg.writeback.max_pages_per_epoch;
            for id in dirty {
                if budget == 0 {
                    break;
                }
                let Owner::File { dev, ino } = id.owner else {
                    continue; // Anonymous pages belong to the swap path.
                };
                let dev = dev as usize;
                let block = if ino == ITABLE_INO {
                    Some(id.page)
                } else {
                    self.fss[dev].block_of(ino, id.page)
                };
                if let Some(block) = block {
                    // On the disk's own timeline; the return (completion
                    // instant) is deliberately not charged to `pid`.
                    self.disks[dev].transfer(epoch, block, 1);
                    self.stats.file_page_writes += 1;
                    self.stats.flusher_pages += 1;
                }
                self.cache.clean(id);
                budget -= 1;
            }
        }
    }

    /// Charges the metadata I/O a file-system operation performed.
    fn charge_meta(&mut self, pid: usize, dev: usize) -> OsResult<()> {
        let io = self.fss[dev].take_io();
        for r in io.reads {
            let id = PageId {
                owner: Owner::File {
                    dev: dev as u32,
                    ino: r.ino,
                },
                page: r.page,
            };
            if self.cache.lookup_touch(id) {
                self.charge_cpu(pid, self.cfg.costs.page_lookup);
            } else {
                self.disk_io(pid, dev, r.disk_block, 1);
                let ev = self.cache.insert(id, false);
                self.handle_evictions(pid, ev)?;
                self.charge_cpu(pid, self.cfg.costs.page_lookup);
            }
        }
        for w in io.writes {
            let id = PageId {
                owner: Owner::File {
                    dev: dev as u32,
                    ino: w.ino,
                },
                page: w.page,
            };
            let ev = self.cache.insert(id, true);
            self.handle_evictions(pid, ev)?;
            self.charge_cpu(pid, self.cfg.costs.page_lookup);
        }
        Ok(())
    }

    // --- Mount resolution ---------------------------------------------------

    /// Splits a path into `(disk index, fs-local path)`.
    fn mount_of(&self, path: &str) -> OsResult<(usize, String)> {
        if !path.starts_with('/') {
            return Err(OsError::InvalidArgument);
        }
        if self.disks.len() > 1 {
            if let Some(rest) = path.strip_prefix("/d") {
                let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                if !digits.is_empty() {
                    let after = &rest[digits.len()..];
                    if after.is_empty() || after.starts_with('/') {
                        let idx: usize = digits.parse().map_err(|_| OsError::InvalidArgument)?;
                        if idx == 0 || idx >= self.disks.len() {
                            return Err(OsError::NotFound);
                        }
                        let local = if after.is_empty() { "/" } else { after };
                        return Ok((idx, local.to_string()));
                    }
                }
            }
        }
        Ok((0, path.to_string()))
    }

    // --- Syscalls -------------------------------------------------------------

    /// The high-resolution clock, with read cost and quantization.
    pub fn sys_now(&mut self, pid: usize) -> Nanos {
        let _op = profile::op_scope("sys_now");
        self.poll_flusher(pid);
        self.charge_cpu(pid, TIMER_READ);
        self.noise.quantize(self.procs[pid].now)
    }

    /// The VM page size.
    pub fn page_size(&self) -> u64 {
        self.cfg.page_size
    }

    /// Opens an existing file.
    pub fn sys_open(&mut self, pid: usize, path: &str) -> OsResult<Fd> {
        let _op = profile::op_scope("sys_open");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let (dev, local) = self.mount_of(path)?;
        let ino = {
            let r = self.fss[dev].resolve(&local);
            self.charge_meta(pid, dev)?;
            r?
        };
        if self.fss[dev].inode(ino).is_some_and(|i| i.is_dir) {
            return Err(OsError::IsADirectory);
        }
        let fd = self.alloc_fd(pid, dev, ino);
        Ok(fd)
    }

    /// Creates and opens a new file.
    pub fn sys_create(&mut self, pid: usize, path: &str) -> OsResult<Fd> {
        let _op = profile::op_scope("sys_create");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let (dev, local) = self.mount_of(path)?;
        let now = self.procs[pid].now;
        let ino = {
            let r = self.fss[dev].create(&local, now);
            self.charge_meta(pid, dev)?;
            r?
        };
        Ok(self.alloc_fd(pid, dev, ino))
    }

    fn alloc_fd(&mut self, pid: usize, dev: usize, ino: Ino) -> Fd {
        let fd = self.next_fd[pid];
        self.next_fd[pid] += 1;
        self.fdt[pid].insert(
            fd,
            OpenFile {
                dev,
                ino,
                next_seq_page: 0,
                ra_window: RA_INITIAL,
            },
        );
        Fd(fd)
    }

    /// Closes a descriptor.
    pub fn sys_close(&mut self, pid: usize, fd: Fd) -> OsResult<()> {
        let _op = profile::op_scope("sys_close");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        self.fdt[pid]
            .remove(&fd.0)
            .map(|_| ())
            .ok_or(OsError::BadFd)
    }

    /// `pread`-style read. When `buf` is `None`, behaves identically
    /// (including cache effects and CPU copy charges) but discards data.
    pub fn sys_read(
        &mut self,
        pid: usize,
        fd: Fd,
        offset: u64,
        len: u64,
        mut buf: Option<&mut [u8]>,
    ) -> OsResult<u64> {
        let _op = profile::op_scope("sys_read");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let of = *self.fdt[pid].get(&fd.0).ok_or(OsError::BadFd)?;
        let size = self.fss[of.dev]
            .inode(of.ino)
            .ok_or(OsError::NotFound)?
            .size;
        if offset >= size || len == 0 {
            return Ok(0);
        }
        let len = len.min(size - offset);
        let page_size = self.cfg.page_size;
        let first_page = offset / page_size;
        let last_page = (offset + len - 1) / page_size;

        // Sequential-read detection feeds the readahead window.
        let mut window = if first_page == of.next_seq_page {
            (of.ra_window * 2).min(self.cfg.readahead_pages)
        } else {
            RA_INITIAL
        };

        let file_pages = size.div_ceil(page_size);
        let mut cpu = GrayDuration::ZERO;
        let mut page = first_page;
        // Pages below `run_end` were fetched by this call's own readahead:
        // consuming them is part of the same logical access, so they are
        // *not* re-referenced (otherwise a single sequential scan would
        // mark everything referenced and scan-resistant policies could
        // never tell streams from reuse).
        let mut run_end = first_page;
        while page <= last_page {
            let id = PageId {
                owner: Owner::File {
                    dev: of.dev as u32,
                    ino: of.ino,
                },
                page,
            };
            // Pages below `run_end` came from this call's own readahead
            // and are not re-referenced (one sequential access = one
            // reference); genuine hits bump the LRU position.
            if page < run_end || self.cache.lookup_touch(id) {
                self.stats.cache_hits += 1;
                cpu += self.cfg.costs.page_lookup;
            } else {
                self.stats.cache_misses += 1;
                // Fetch a readahead run: contiguous on disk, not cached,
                // within the file and the window.
                let run = self.plan_fetch_run(of.dev, of.ino, page, file_pages, window);
                let start_block = self.fss[of.dev].ensure_block(of.ino, page)?;
                // Metadata I/O from block mapping (indirect blocks are
                // folded into the inode cost model).
                self.fss[of.dev].take_io();
                self.disk_io(pid, of.dev, start_block, run);
                for k in 0..run {
                    let rid = PageId {
                        owner: Owner::File {
                            dev: of.dev as u32,
                            ino: of.ino,
                        },
                        page: page + k,
                    };
                    let ev = self.cache.insert(rid, false);
                    self.handle_evictions(pid, ev)?;
                }
                self.stats.file_page_reads += run;
                run_end = page + run;
                window = (window * 2).min(self.cfg.readahead_pages);
                cpu += self.cfg.costs.page_lookup;
            }
            // Copy the requested fraction of this page to the user.
            let page_start = page * page_size;
            let copy_from = offset.max(page_start);
            let copy_to = (offset + len).min(page_start + page_size);
            let bytes = copy_to - copy_from;
            cpu += self
                .cfg
                .costs
                .copy_per_page
                .mul_f64(bytes as f64 / page_size as f64);
            if let Some(out) = buf.as_deref_mut() {
                if let Some(disk_block) = self.fss[of.dev].block_of(of.ino, page) {
                    let dst_start = (copy_from - offset) as usize;
                    let dst = &mut out[dst_start..dst_start + bytes as usize];
                    self.fss[of.dev].read_content(disk_block, copy_from - page_start, dst);
                }
            }
            page += 1;
        }
        self.charge_cpu(pid, cpu);
        let now = self.procs[pid].now;
        self.fss[of.dev].note_read(of.ino, now)?;
        // Update sequential state.
        let entry = self.fdt[pid].get_mut(&fd.0).expect("checked above");
        entry.ra_window = window;
        entry.next_seq_page = last_page + 1;
        Ok(len)
    }

    /// Services a whole batch of timed 1-byte read probes in one kernel
    /// entry.
    ///
    /// Each probe replays the exact scalar sequence — `sys_now`, 1-byte
    /// `sys_read`, `sys_now` — so the charged costs, the noise/quantization
    /// stream, the readahead state machine, and the cache side effects are
    /// bit-identical to a loop of individually dispatched probes. What the
    /// batch elides is purely executor overhead: the caller holds the
    /// kernel lock (and the scheduler baton) once for the whole batch
    /// instead of three times per probe.
    pub fn sys_probe_batch(&mut self, pid: usize, fd: Fd, specs: &[ProbeSpec]) -> Vec<ProbeSample> {
        let _op = profile::op_scope("sys_probe_batch");
        let mut out = Vec::with_capacity(specs.len());
        // Hoist the per-call fd-table and inode lookups: the batch holds
        // the kernel lock throughout, so no other process can close the
        // fd, resize the file, or perturb the readahead state mid-batch.
        // Each probe still pays exactly the scalar charging sequence —
        // timer read, syscall dispatch, per-page CPU, timer read — in the
        // same order, so virtual times and the noise stream stay
        // bit-identical to a loop of individually dispatched probes.
        let hoisted = self.fdt[pid]
            .get(&fd.0)
            .copied()
            .and_then(|of| self.fss[of.dev].inode(of.ino).map(|i| (of, i.size)));
        let Some((mut of, size)) = hoisted else {
            // Bad fd (or vanished inode): replay the scalar loop so every
            // probe is charged its failed dispatch identically.
            for spec in specs {
                let t0 = self.sys_now(pid);
                let res = self.sys_read(pid, fd, spec.offset, 1, None);
                let t1 = self.sys_now(pid);
                let elapsed = t1.since(t0);
                gray_toolbox::trace::emit_with_at(t1, || {
                    gray_toolbox::trace::TraceEvent::ProbeIssued {
                        offset: spec.offset,
                        latency_ns: elapsed.as_nanos(),
                    }
                });
                out.push(ProbeSample {
                    offset: spec.offset,
                    elapsed,
                    ok: matches!(res, Ok(n) if n > 0),
                });
            }
            return out;
        };
        let page_size = self.cfg.page_size;
        let file_pages = size.div_ceil(page_size);
        let owner = Owner::File {
            dev: of.dev as u32,
            ino: of.ino,
        };
        // atime is written once with the last successful probe's clock —
        // the same final state the scalar loop's per-call updates leave.
        let mut last_read_at = None;
        for spec in specs {
            let t0 = self.sys_now(pid);
            self.poll_flusher(pid);
            self.charge_cpu(pid, self.cfg.costs.syscall);
            let mut ok = false;
            if spec.offset < size {
                // The 1-byte read path of `sys_read`, single page.
                let page = spec.offset / page_size;
                let mut window = if page == of.next_seq_page {
                    (of.ra_window * 2).min(self.cfg.readahead_pages)
                } else {
                    RA_INITIAL
                };
                let id = PageId { owner, page };
                let mut err = false;
                let mut cpu = self.cfg.costs.page_lookup;
                if self.cache.lookup_touch(id) {
                    self.stats.cache_hits += 1;
                } else {
                    self.stats.cache_misses += 1;
                    let run = self.plan_fetch_run(of.dev, of.ino, page, file_pages, window);
                    match self.fss[of.dev].ensure_block(of.ino, page) {
                        Ok(start_block) => {
                            self.fss[of.dev].take_io();
                            self.disk_io(pid, of.dev, start_block, run);
                            for k in 0..run {
                                let rid = PageId {
                                    owner,
                                    page: page + k,
                                };
                                let ev = self.cache.insert(rid, false);
                                if self.handle_evictions(pid, ev).is_err() {
                                    err = true;
                                    break;
                                }
                            }
                            self.stats.file_page_reads += run;
                            window = (window * 2).min(self.cfg.readahead_pages);
                        }
                        Err(_) => err = true,
                    }
                }
                if !err {
                    cpu += self.cfg.costs.copy_per_page.mul_f64(1.0 / page_size as f64);
                    self.charge_cpu(pid, cpu);
                    last_read_at = Some(self.procs[pid].now);
                    of.ra_window = window;
                    of.next_seq_page = page + 1;
                    ok = true;
                }
            }
            let t1 = self.sys_now(pid);
            let elapsed = t1.since(t0);
            // Virtual-time probe event: the simulated clock, not the host
            // clock, is what a timeline of this run must be drawn in.
            gray_toolbox::trace::emit_with_at(t1, || {
                gray_toolbox::trace::TraceEvent::ProbeIssued {
                    offset: spec.offset,
                    latency_ns: elapsed.as_nanos(),
                }
            });
            out.push(ProbeSample {
                offset: spec.offset,
                elapsed,
                ok,
            });
        }
        if let Some(at) = last_read_at {
            let _ = self.fss[of.dev].note_read(of.ino, at);
            let entry = self.fdt[pid].get_mut(&fd.0).expect("checked above");
            *entry = of;
        }
        out
    }

    /// Longest run of pages starting at `page` that is contiguous on disk,
    /// uncached, within the file, and at most `window` long.
    fn plan_fetch_run(
        &mut self,
        dev: usize,
        ino: Ino,
        page: u64,
        file_pages: u64,
        window: u64,
    ) -> u64 {
        let mut run = 1u64;
        let Some(first) = self.fss[dev].block_of(ino, page) else {
            return 1;
        };
        while run < window && page + run < file_pages {
            let id = PageId {
                owner: Owner::File {
                    dev: dev as u32,
                    ino,
                },
                page: page + run,
            };
            if self.cache.contains(id) {
                break;
            }
            match self.fss[dev].block_of(ino, page + run) {
                Some(b) if b == first + run => run += 1,
                _ => break,
            }
        }
        run
    }

    /// `pwrite`-style write; `data` of `None` means "fill with synthetic
    /// bytes" (bulk data that costs no host memory).
    pub fn sys_write(
        &mut self,
        pid: usize,
        fd: Fd,
        offset: u64,
        len: u64,
        data: Option<&[u8]>,
    ) -> OsResult<u64> {
        let _op = profile::op_scope("sys_write");
        if let Some(d) = data {
            debug_assert_eq!(d.len() as u64, len);
        }
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        if len == 0 {
            return Ok(0);
        }
        let of = *self.fdt[pid].get(&fd.0).ok_or(OsError::BadFd)?;
        let page_size = self.cfg.page_size;
        let first_page = offset / page_size;
        let last_page = (offset + len - 1) / page_size;
        let mut cpu = GrayDuration::ZERO;
        for page in first_page..=last_page {
            let disk_block = {
                let existed = self.fss[of.dev].block_of(of.ino, page).is_some();
                let r = if existed && self.fss[of.dev].layout() == crate::config::LayoutPolicy::Lfs
                {
                    // LFS: overwrites append at the log head.
                    self.fss[of.dev].relocate_block(of.ino, page)
                } else {
                    self.fss[of.dev].ensure_block(of.ino, page)
                };
                self.charge_meta(pid, of.dev)?;
                r?
            };
            let page_start = page * page_size;
            let copy_from = offset.max(page_start);
            let copy_to = (offset + len).min(page_start + page_size);
            let bytes = copy_to - copy_from;
            // A partial overwrite of an uncached page must read it first
            // (read-modify-write).
            let id = PageId {
                owner: Owner::File {
                    dev: of.dev as u32,
                    ino: of.ino,
                },
                page,
            };
            let whole_page = bytes == page_size;
            if !self.cache.lookup_touch(id) && !whole_page {
                let within_old_size =
                    page_start < self.fss[of.dev].inode(of.ino).map(|i| i.size).unwrap_or(0);
                if within_old_size {
                    self.disk_io(pid, of.dev, disk_block, 1);
                    self.stats.file_page_reads += 1;
                }
            }
            let ev = self.cache.insert(id, true);
            self.handle_evictions(pid, ev)?;
            match data {
                Some(d) => {
                    let src_start = (copy_from - offset) as usize;
                    let src = &d[src_start..src_start + bytes as usize];
                    self.fss[of.dev].write_content(disk_block, copy_from - page_start, src);
                }
                None => {
                    self.fss[of.dev].fill_content(disk_block);
                }
            }
            cpu += self
                .cfg
                .costs
                .copy_per_page
                .mul_f64(bytes as f64 / page_size as f64);
        }
        self.charge_cpu(pid, cpu);
        let now = self.procs[pid].now;
        self.fss[of.dev].note_write(of.ino, offset + len, now)?;
        self.charge_meta(pid, of.dev)?;
        Ok(len)
    }

    /// Size of an open file.
    pub fn sys_file_size(&mut self, pid: usize, fd: Fd) -> OsResult<u64> {
        let _op = profile::op_scope("sys_file_size");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let of = self.fdt[pid].get(&fd.0).ok_or(OsError::BadFd)?;
        Ok(self.fss[of.dev]
            .inode(of.ino)
            .ok_or(OsError::NotFound)?
            .size)
    }

    /// Writes back every dirty page (`sync(2)`), charged to the caller.
    pub fn sys_sync(&mut self, pid: usize) -> OsResult<()> {
        let _op = profile::op_scope("sys_sync");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let dirty = self.cache.dirty_pages();
        for id in dirty {
            match id.owner {
                Owner::File { dev, ino } => {
                    let dev = dev as usize;
                    let block = if ino == ITABLE_INO {
                        Some(id.page)
                    } else {
                        self.fss[dev].block_of(ino, id.page)
                    };
                    if let Some(block) = block {
                        self.disk_io(pid, dev, block, 1);
                        self.stats.file_page_writes += 1;
                    }
                    self.cache.clean(id);
                }
                Owner::Anon { .. } => {
                    // sync(2) does not touch anonymous memory.
                }
            }
        }
        Ok(())
    }

    /// `stat(2)`.
    pub fn sys_stat(&mut self, pid: usize, path: &str) -> OsResult<Stat> {
        let _op = profile::op_scope("sys_stat");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let (dev, local) = self.mount_of(path)?;
        let ino = {
            let r = self.fss[dev].resolve(&local);
            self.charge_meta(pid, dev)?;
            r?
        };
        let inode = self.fss[dev].inode(ino).ok_or(OsError::NotFound)?;
        Ok(Stat {
            ino,
            dev: dev as u64,
            size: inode.size,
            is_dir: inode.is_dir,
            atime: inode.atime,
            mtime: inode.mtime,
        })
    }

    /// Lists a directory in creation order.
    pub fn sys_list_dir(&mut self, pid: usize, path: &str) -> OsResult<Vec<String>> {
        let _op = profile::op_scope("sys_list_dir");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let (dev, local) = self.mount_of(path)?;
        let r = self.fss[dev].list_dir(&local);
        self.charge_meta(pid, dev)?;
        r
    }

    /// Creates a directory.
    pub fn sys_mkdir(&mut self, pid: usize, path: &str) -> OsResult<()> {
        let _op = profile::op_scope("sys_mkdir");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let (dev, local) = self.mount_of(path)?;
        let now = self.procs[pid].now;
        let r = self.fss[dev].mkdir(&local, now).map(|_| ());
        self.charge_meta(pid, dev)?;
        r
    }

    /// Removes an empty directory.
    pub fn sys_rmdir(&mut self, pid: usize, path: &str) -> OsResult<()> {
        let _op = profile::op_scope("sys_rmdir");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let (dev, local) = self.mount_of(path)?;
        let now = self.procs[pid].now;
        let r = self.fss[dev].rmdir(&local, now);
        self.charge_meta(pid, dev)?;
        let ino = r?;
        self.purge_file_pages(dev, ino);
        Ok(())
    }

    /// Unlinks a file.
    pub fn sys_unlink(&mut self, pid: usize, path: &str) -> OsResult<()> {
        let _op = profile::op_scope("sys_unlink");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let (dev, local) = self.mount_of(path)?;
        let now = self.procs[pid].now;
        let r = self.fss[dev].unlink(&local, now);
        self.charge_meta(pid, dev)?;
        let ino = r?;
        self.purge_file_pages(dev, ino);
        Ok(())
    }

    fn purge_file_pages(&mut self, dev: usize, ino: Ino) {
        // Dropped pages of a deleted file are never written back.
        let _ = self.cache.remove_owner(Owner::File {
            dev: dev as u32,
            ino,
        });
    }

    /// Renames within one file system.
    pub fn sys_rename(&mut self, pid: usize, from: &str, to: &str) -> OsResult<()> {
        let _op = profile::op_scope("sys_rename");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let (fdev, flocal) = self.mount_of(from)?;
        let (tdev, tlocal) = self.mount_of(to)?;
        if fdev != tdev {
            return Err(OsError::Unsupported);
        }
        let now = self.procs[pid].now;
        let r = self.fss[fdev].rename(&flocal, &tlocal, now);
        self.charge_meta(pid, fdev)?;
        r
    }

    /// Sets file times.
    pub fn sys_set_times(
        &mut self,
        pid: usize,
        path: &str,
        atime: Nanos,
        mtime: Nanos,
    ) -> OsResult<()> {
        let _op = profile::op_scope("sys_set_times");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        let (dev, local) = self.mount_of(path)?;
        let r = self.fss[dev].set_times(&local, atime, mtime);
        self.charge_meta(pid, dev)?;
        r
    }

    /// Allocates an anonymous region (address space only).
    pub fn sys_mem_alloc(&mut self, pid: usize, bytes: u64) -> OsResult<u64> {
        let _op = profile::op_scope("sys_mem_alloc");
        if bytes == 0 {
            return Err(OsError::InvalidArgument);
        }
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        Ok(self.vm.alloc(bytes.div_ceil(self.cfg.page_size)))
    }

    /// Frees a region and purges its pages.
    pub fn sys_mem_free(&mut self, pid: usize, region: u64) -> OsResult<()> {
        let _op = profile::op_scope("sys_mem_free");
        self.poll_flusher(pid);
        self.charge_cpu(pid, self.cfg.costs.syscall);
        self.vm.free(region)?;
        let _ = self.cache.remove_owner(Owner::Anon { region });
        Ok(())
    }

    /// Write-touches one page of a region.
    pub fn sys_mem_touch_write(&mut self, pid: usize, region: u64, page: u64) -> OsResult<()> {
        let _op = profile::op_scope("sys_mem_touch_write");
        self.poll_flusher(pid);
        self.vm.check(region, page)?;
        let id = PageId {
            owner: Owner::Anon { region },
            page,
        };
        if self.cache.lookup_touch(id) {
            self.cache.mark_dirty(id);
            self.charge_cpu(pid, self.cfg.costs.mem_touch);
            return Ok(());
        }
        match self.vm.touch_kind(region, page)? {
            TouchKind::Untouched => {
                self.stats.zero_faults += 1;
                self.vm.mark_touched(region, page)?;
                let ev = self.cache.insert(id, true);
                self.handle_evictions(pid, ev)?;
                self.charge_cpu(
                    pid,
                    self.cfg.costs.fault_overhead + self.cfg.costs.page_zero,
                );
            }
            TouchKind::Swapped(slot) => {
                self.stats.swap_ins += 1;
                self.disk_io(pid, self.swap_disk, self.swap_base + slot, 1);
                let ev = self.cache.insert(id, true);
                self.handle_evictions(pid, ev)?;
                self.charge_cpu(
                    pid,
                    self.cfg.costs.fault_overhead + self.cfg.costs.mem_touch,
                );
            }
            TouchKind::Materialized => {
                unreachable!("materialized page missing from cache and swap")
            }
        }
        Ok(())
    }

    /// Services a batch of timed page write-touches in one kernel entry —
    /// the memory-side sibling of [`Kernel::sys_probe_batch`], with the
    /// same per-probe replay of the scalar `sys_now` / touch / `sys_now`
    /// sequence (the sample's `offset` carries the page index).
    pub fn sys_mem_probe_batch(
        &mut self,
        pid: usize,
        region: u64,
        pages: &[u64],
    ) -> Vec<ProbeSample> {
        let _op = profile::op_scope("sys_mem_probe_batch");
        let mut out = Vec::with_capacity(pages.len());
        for &page in pages {
            let t0 = self.sys_now(pid);
            let res = self.sys_mem_touch_write(pid, region, page);
            let t1 = self.sys_now(pid);
            out.push(ProbeSample {
                offset: page,
                elapsed: t1.since(t0),
                ok: res.is_ok(),
            });
        }
        out
    }

    /// Read-touches one page of a region.
    pub fn sys_mem_touch_read(&mut self, pid: usize, region: u64, page: u64) -> OsResult<u8> {
        let _op = profile::op_scope("sys_mem_touch_read");
        self.poll_flusher(pid);
        self.vm.check(region, page)?;
        let id = PageId {
            owner: Owner::Anon { region },
            page,
        };
        if self.cache.lookup_touch(id) {
            self.charge_cpu(pid, self.cfg.costs.mem_touch);
            return Ok(0);
        }
        match self.vm.touch_kind(region, page)? {
            TouchKind::Untouched => {
                // Copy-on-write zero page: reads allocate nothing.
                self.charge_cpu(pid, self.cfg.costs.mem_touch);
            }
            TouchKind::Swapped(slot) => {
                self.stats.swap_ins += 1;
                self.disk_io(pid, self.swap_disk, self.swap_base + slot, 1);
                let ev = self.cache.insert(id, false);
                self.handle_evictions(pid, ev)?;
                self.charge_cpu(
                    pid,
                    self.cfg.costs.fault_overhead + self.cfg.costs.mem_touch,
                );
            }
            TouchKind::Materialized => {
                unreachable!("materialized page missing from cache and swap")
            }
        }
        Ok(0)
    }

    /// Burns CPU time.
    pub fn sys_compute(&mut self, pid: usize, work: GrayDuration) {
        let _op = profile::op_scope("sys_compute");
        self.poll_flusher(pid);
        self.charge_cpu(pid, work);
    }

    /// Advances the process clock without consuming CPU.
    pub fn sys_sleep(&mut self, pid: usize, d: GrayDuration) {
        let _op = profile::op_scope("sys_sleep");
        self.poll_flusher(pid);
        self.procs[pid].now += d;
        profile::charge(pid as u64, "sleep", d.as_nanos());
    }

    // --- Experiment scaffolding (not part of the gray-box surface) --------

    /// Drops all file pages from the cache — the "flush the file cache"
    /// step between experimental runs. Dirty pages are written back for
    /// free (no time charged; this models a quiescent flush between runs).
    pub fn flush_file_cache(&mut self) {
        let _ = self.cache.drop_file_pages();
    }

    /// Direct access to cache state (oracle).
    pub fn cache(&self) -> &PageCache {
        &self.cache
    }

    /// Direct access to a mounted file system (oracle).
    pub fn fs(&self, dev: usize) -> &Fs {
        &self.fss[dev]
    }

    /// Direct access to the VM (oracle).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// Direct access to a disk (oracle).
    pub fn disk(&self, dev: usize) -> &Disk {
        &self.disks[dev]
    }

    /// Resolves a path for oracle use (mount + ino), without charging.
    pub fn oracle_resolve(&mut self, path: &str) -> OsResult<(usize, Ino)> {
        let (dev, local) = self.mount_of(path)?;
        let ino = self.fss[dev].resolve(&local)?;
        self.fss[dev].take_io();
        Ok((dev, ino))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn kernel() -> (Kernel, usize) {
        let mut k = Kernel::new(SimConfig::small().without_noise());
        let pid = k.add_proc(Nanos::ZERO);
        (k, pid)
    }

    #[test]
    fn create_write_read_round_trip() {
        let (mut k, pid) = kernel();
        let fd = k.sys_create(pid, "/f").unwrap();
        k.sys_write(pid, fd, 0, 5, Some(b"hello")).unwrap();
        let mut buf = [0u8; 5];
        let n = k.sys_read(pid, fd, 0, 5, Some(&mut buf)).unwrap();
        assert_eq!(n, 5);
        assert_eq!(&buf, b"hello");
        assert_eq!(k.sys_file_size(pid, fd).unwrap(), 5);
    }

    #[test]
    fn cached_read_is_microseconds_uncached_is_milliseconds() {
        let (mut k, pid) = kernel();
        let fd = k.sys_create(pid, "/f").unwrap();
        k.sys_write(pid, fd, 0, 8192, None).unwrap();
        k.flush_file_cache();
        let t0 = k.proc_time(pid);
        k.sys_read(pid, fd, 0, 1, None).unwrap();
        let cold = k.proc_time(pid).since(t0);
        let t1 = k.proc_time(pid);
        k.sys_read(pid, fd, 1, 1, None).unwrap();
        let warm = k.proc_time(pid).since(t1);
        assert!(
            cold > GrayDuration::from_millis(1),
            "cold 1-byte read {cold}"
        );
        assert!(
            warm < GrayDuration::from_micros(20),
            "warm 1-byte read {warm}"
        );
    }

    #[test]
    fn sequential_scan_approaches_disk_bandwidth() {
        let (mut k, pid) = kernel();
        let mb = 16u64 << 20;
        let fd = k.sys_create(pid, "/big").unwrap();
        let mut off = 0;
        while off < mb {
            k.sys_write(pid, fd, off, 1 << 20, None).unwrap();
            off += 1 << 20;
        }
        k.flush_file_cache();
        let t0 = k.proc_time(pid);
        let mut off = 0;
        while off < mb {
            k.sys_read(pid, fd, off, 1 << 20, None).unwrap();
            off += 1 << 20;
        }
        let elapsed = k.proc_time(pid).since(t0).as_secs_f64();
        let rate = mb as f64 / elapsed / (1 << 20) as f64;
        // 20 MB/s media rate; allow head-positioning and copy overheads.
        assert!(
            (10.0..=20.5).contains(&rate),
            "sequential rate {rate:.1} MB/s"
        );
    }

    #[test]
    fn warm_rescan_is_memory_speed() {
        let (mut k, pid) = kernel();
        let mb = 4u64 << 20;
        let fd = k.sys_create(pid, "/f").unwrap();
        k.sys_write(pid, fd, 0, mb, None).unwrap();
        // First scan warms (writes already did); second is all hits.
        let t0 = k.proc_time(pid);
        k.sys_read(pid, fd, 0, mb, None).unwrap();
        let warm = k.proc_time(pid).since(t0).as_secs_f64();
        let rate_mb = mb as f64 / warm / (1 << 20) as f64;
        assert!(rate_mb > 200.0, "warm rate {rate_mb:.0} MB/s");
    }

    #[test]
    fn memory_pressure_triggers_swap_and_slow_touches() {
        let (mut k, pid) = kernel();
        let pages = k.config().usable_pages();
        let region = k.sys_mem_alloc(pid, (pages + 100) * 4096).unwrap();
        // Touch more pages than exist: must swap.
        for p in 0..pages + 100 {
            k.sys_mem_touch_write(pid, region, p).unwrap();
        }
        assert!(k.stats().swap_outs > 0, "no swap-outs under overcommit");
        // Touch the first page again: it was evicted, so this is a swap-in.
        let t0 = k.proc_time(pid);
        k.sys_mem_touch_write(pid, region, 0).unwrap();
        let t = k.proc_time(pid).since(t0);
        assert!(t > GrayDuration::from_millis(1), "swap-in touch {t}");
    }

    #[test]
    fn within_memory_touches_stay_fast() {
        let (mut k, pid) = kernel();
        let region = k.sys_mem_alloc(pid, 1000 * 4096).unwrap();
        for p in 0..1000 {
            k.sys_mem_touch_write(pid, region, p).unwrap();
        }
        let t0 = k.proc_time(pid);
        for p in 0..1000 {
            k.sys_mem_touch_write(pid, region, p).unwrap();
        }
        let per_touch = k.proc_time(pid).since(t0) / 1000;
        assert!(
            per_touch < GrayDuration::from_micros(2),
            "resident touch {per_touch}"
        );
        assert_eq!(k.stats().swap_outs, 0);
    }

    #[test]
    fn cow_read_allocates_nothing() {
        let (mut k, pid) = kernel();
        let region = k.sys_mem_alloc(pid, 100 * 4096).unwrap();
        let before = k.cache().resident_pages();
        for p in 0..100 {
            k.sys_mem_touch_read(pid, region, p).unwrap();
        }
        assert_eq!(k.cache().resident_pages(), before);
    }

    #[test]
    fn mem_free_releases_and_invalidates() {
        let (mut k, pid) = kernel();
        let region = k.sys_mem_alloc(pid, 10 * 4096).unwrap();
        for p in 0..10 {
            k.sys_mem_touch_write(pid, region, p).unwrap();
        }
        k.sys_mem_free(pid, region).unwrap();
        assert_eq!(
            k.sys_mem_touch_write(pid, region, 0),
            Err(OsError::BadRegion)
        );
    }

    #[test]
    fn stat_reports_ino_and_times() {
        let (mut k, pid) = kernel();
        let fd = k.sys_create(pid, "/f").unwrap();
        k.sys_write(pid, fd, 0, 100, None).unwrap();
        let st = k.sys_stat(pid, "/f").unwrap();
        assert_eq!(st.size, 100);
        assert!(!st.is_dir);
        assert!(st.ino > 2);
    }

    #[test]
    fn second_mount_is_a_separate_tree() {
        let (mut k, pid) = kernel();
        k.sys_mkdir(pid, "/d1/dir").unwrap();
        let fd = k.sys_create(pid, "/d1/dir/f").unwrap();
        k.sys_write(pid, fd, 0, 4, Some(b"dat!")).unwrap();
        assert!(k.sys_stat(pid, "/dir").is_err());
        let st = k.sys_stat(pid, "/d1/dir/f").unwrap();
        assert_eq!(st.dev, 1);
    }

    #[test]
    fn bad_mount_is_not_found() {
        let (mut k, pid) = kernel();
        assert_eq!(k.sys_stat(pid, "/d7/x"), Err(OsError::NotFound));
    }

    #[test]
    fn rename_across_mounts_is_unsupported() {
        let (mut k, pid) = kernel();
        k.sys_create(pid, "/f").unwrap();
        assert_eq!(k.sys_rename(pid, "/f", "/d1/f"), Err(OsError::Unsupported));
    }

    #[test]
    fn read_discard_matches_read_semantics() {
        let (mut k, pid) = kernel();
        let fd = k.sys_create(pid, "/f").unwrap();
        k.sys_write(pid, fd, 0, 8192, None).unwrap();
        k.flush_file_cache();
        k.sys_read(pid, fd, 0, 8192, None).unwrap();
        // Both pages must now be cached.
        let (dev, ino) = k.oracle_resolve("/f").unwrap();
        let resident = k.cache().resident_of(Owner::File {
            dev: dev as u32,
            ino,
        });
        assert_eq!(resident, vec![0, 1]);
    }

    #[test]
    fn timer_reads_cost_time_and_quantize() {
        let mut k = Kernel::new(SimConfig::small());
        let pid = k.add_proc(Nanos::ZERO);
        let a = k.sys_now(pid);
        let b = k.sys_now(pid);
        assert!(b >= a);
    }

    #[test]
    fn partial_overwrite_of_cold_page_reads_it_first() {
        let (mut k, pid) = kernel();
        let fd = k.sys_create(pid, "/f").unwrap();
        k.sys_write(pid, fd, 0, 4096, None).unwrap();
        k.flush_file_cache();
        let reads_before = k.stats().file_page_reads;
        k.sys_write(pid, fd, 10, 4, Some(b"abcd")).unwrap();
        assert_eq!(
            k.stats().file_page_reads,
            reads_before + 1,
            "read-modify-write must fetch the cold page"
        );
    }

    #[test]
    fn mount_parsing_edge_cases() {
        let (k, _pid) = kernel(); // Two disks: "/" and "/d1".
        assert_eq!(k.mount_of("/plain").unwrap().0, 0);
        assert_eq!(k.mount_of("/d1").unwrap(), (1, "/".to_string()));
        assert_eq!(k.mount_of("/d1/x").unwrap(), (1, "/x".to_string()));
        // "/d1abc" is a root file, not a mount.
        assert_eq!(k.mount_of("/d1abc").unwrap().0, 0);
        // "/d0" and out-of-range indices are not mounts.
        assert_eq!(k.mount_of("/d0/x"), Err(OsError::NotFound));
        assert_eq!(k.mount_of("/d9/x"), Err(OsError::NotFound));
        assert_eq!(k.mount_of("relative"), Err(OsError::InvalidArgument));
    }

    #[test]
    fn file_descriptors_are_process_local() {
        let mut k = Kernel::new(SimConfig::small().without_noise());
        let p1 = k.add_proc(Nanos::ZERO);
        let p2 = k.add_proc(Nanos::ZERO);
        let fd = k.sys_create(p1, "/shared").unwrap();
        k.sys_write(p1, fd, 0, 3, Some(b"abc")).unwrap();
        // The raw fd number means nothing in another process.
        assert_eq!(k.sys_file_size(p2, fd), Err(OsError::BadFd));
        // And a finished process's descriptors are gone.
        k.finish_proc(p1);
        let p3 = k.add_proc(Nanos::ZERO);
        assert_eq!(k.sys_file_size(p3, fd), Err(OsError::BadFd));
    }

    #[test]
    fn eof_reads_return_zero() {
        let (mut k, pid) = kernel();
        let fd = k.sys_create(pid, "/f").unwrap();
        k.sys_write(pid, fd, 0, 10, None).unwrap();
        assert_eq!(k.sys_read(pid, fd, 10, 5, None).unwrap(), 0);
        assert_eq!(k.sys_read(pid, fd, 8, 100, None).unwrap(), 2);
    }

    fn flusher_kernel(interval_ms: u64) -> (Kernel, usize) {
        let cfg = SimConfig::small()
            .without_noise()
            .with_writeback(GrayDuration::from_millis(interval_ms));
        let mut k = Kernel::new(cfg);
        let pid = k.add_proc(Nanos::ZERO);
        (k, pid)
    }

    #[test]
    fn flusher_cleans_dirty_residue_across_epochs() {
        let (mut k, pid) = flusher_kernel(10);
        let fd = k.sys_create(pid, "/f").unwrap();
        k.sys_write(pid, fd, 0, 64 << 10, None).unwrap();
        assert!(
            !k.cache().dirty_pages().is_empty(),
            "writes must leave dirty pages"
        );
        k.sys_sleep(pid, GrayDuration::from_millis(25));
        k.sys_now(pid); // Entry crosses the epochs; the flusher fires.
        let stats = k.stats();
        assert!(stats.flusher_runs >= 1, "no flusher epoch fired");
        assert!(stats.flusher_pages >= 16, "flusher wrote {stats:?}");
        // Data pages are clean; at most freshly-dirtied metadata remains.
        let (dev, ino) = k.oracle_resolve("/f").unwrap();
        let owner = Owner::File {
            dev: dev as u32,
            ino,
        };
        assert!(
            k.cache().dirty_pages().iter().all(|id| id.owner != owner),
            "file data pages survived the flusher dirty"
        );
    }

    #[test]
    fn flusher_off_by_default_leaves_residue() {
        let (mut k, pid) = kernel();
        let fd = k.sys_create(pid, "/f").unwrap();
        k.sys_write(pid, fd, 0, 64 << 10, None).unwrap();
        k.sys_sleep(pid, GrayDuration::from_secs(5));
        k.sys_now(pid);
        assert_eq!(k.stats().flusher_runs, 0);
        assert!(
            !k.cache().dirty_pages().is_empty(),
            "residue must persist without a flusher"
        );
    }

    #[test]
    fn flusher_writeback_occupies_the_disk_timeline() {
        // Identical op sequences; the only difference is the flusher.
        // Its epoch writebacks occupy disk 0's FCFS queue, so the cold
        // foreground read issued just after the epoch waits behind them.
        let run = |writeback: bool| -> GrayDuration {
            let mut cfg = SimConfig::small().without_noise();
            if writeback {
                cfg = cfg.with_writeback(GrayDuration::from_millis(10));
            }
            let mut k = Kernel::new(cfg);
            let pid = k.add_proc(Nanos::ZERO);
            let fa = k.sys_create(pid, "/a").unwrap();
            let fb = k.sys_create(pid, "/b").unwrap();
            k.sys_write(pid, fa, 0, 256 << 10, None).unwrap();
            k.sys_write(pid, fb, 0, 64 << 10, None).unwrap();
            k.flush_file_cache(); // Quiescent point: everything clean+cold.
            k.sys_write(pid, fa, 0, 256 << 10, None).unwrap(); // Re-dirty.
            k.sys_sleep(pid, GrayDuration::from_millis(11));
            let t0 = k.proc_time(pid);
            k.sys_read(pid, fb, 0, 4096, None).unwrap(); // Cold read.
            k.proc_time(pid).since(t0)
        };
        let quiet = run(false);
        let contended = run(true);
        assert!(
            contended > quiet,
            "flusher contention missing: quiet {quiet} vs contended {contended}"
        );
    }

    #[test]
    fn flusher_epoch_bound_limits_pages_per_epoch() {
        let cfg = SimConfig::small().without_noise();
        let mut cfg = cfg.with_writeback(GrayDuration::from_millis(10));
        cfg.writeback.max_pages_per_epoch = 4;
        let mut k = Kernel::new(cfg);
        let pid = k.add_proc(Nanos::ZERO);
        let fd = k.sys_create(pid, "/f").unwrap();
        k.sys_write(pid, fd, 0, 64 << 10, None).unwrap(); // 16 dirty pages.
        let dirty_before = k.cache().dirty_pages().len();
        k.sys_sleep(pid, GrayDuration::from_millis(11));
        k.sys_now(pid); // Exactly one epoch crossed.
        let swept = dirty_before - k.cache().dirty_pages().len();
        assert!(
            (1..=4).contains(&swept),
            "epoch sweep must respect the page bound, swept {swept}"
        );
    }
}
