//! Anonymous memory: regions, demand-zero pages, and swap-slot management.
//!
//! Residency itself is tracked by the unified [`crate::cache`] (anonymous
//! pages compete with file pages for frames under the Linux-like
//! personality — the paper's "shared virtual memory/file cache"); this
//! module tracks what the cache does not: which pages of a region have ever
//! been touched (untouched pages are copy-on-write zero pages: *reads* of
//! them cost nothing and allocate nothing, which is why MAC's probes must
//! write), and which swap slot holds a page that was paged out.
//!
//! Swap slots are sticky: once a page gets a slot it keeps it until the
//! region dies, so evicting a *clean* swapped-in page costs no I/O while a
//! dirty page pays one slot write. Slots are allocated lowest-first, which
//! clusters swap traffic — pageout streams, as real swap code strives for.

use std::collections::{BTreeSet, HashMap, HashSet};

use graybox::os::{OsError, OsResult};

/// State of one anonymous region.
#[derive(Debug)]
pub struct Region {
    /// Size in pages.
    pub pages: u64,
    /// Pages that have ever been written (materialized).
    touched: HashSet<u64>,
    /// Swap slot per page (allocated at first page-out, kept until free).
    slots: HashMap<u64, u64>,
}

/// The VM subsystem.
#[derive(Debug)]
pub struct Vm {
    regions: HashMap<u64, Region>,
    next_region: u64,
    free_slots: BTreeSet<u64>,
    total_slots: u64,
}

/// What the kernel must know about a page on touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchKind {
    /// Never written: a write is a demand-zero fault, a read is a free
    /// copy-on-write zero-page read.
    Untouched,
    /// Written before and currently paged out to this swap slot.
    Swapped(u64),
    /// Written before and not in swap — if it is not in the cache either,
    /// that is a kernel bug.
    Materialized,
}

impl Vm {
    /// Creates a VM with `swap_slots` pages of swap space.
    pub fn new(swap_slots: u64) -> Self {
        Vm {
            regions: HashMap::new(),
            next_region: 1,
            free_slots: (0..swap_slots).collect(),
            total_slots: swap_slots,
        }
    }

    /// Allocates a region of `pages` pages (address space only).
    pub fn alloc(&mut self, pages: u64) -> u64 {
        let id = self.next_region;
        self.next_region += 1;
        self.regions.insert(
            id,
            Region {
                pages,
                touched: HashSet::new(),
                slots: HashMap::new(),
            },
        );
        id
    }

    /// Frees a region, returning its swap slots to the pool. The caller
    /// must separately purge the region's cached pages.
    pub fn free(&mut self, region: u64) -> OsResult<()> {
        let r = self.regions.remove(&region).ok_or(OsError::BadRegion)?;
        for (_, slot) in r.slots {
            self.free_slots.insert(slot);
        }
        Ok(())
    }

    /// Validates a (region, page) pair.
    pub fn check(&self, region: u64, page: u64) -> OsResult<()> {
        let r = self.regions.get(&region).ok_or(OsError::BadRegion)?;
        if page >= r.pages {
            return Err(OsError::InvalidArgument);
        }
        Ok(())
    }

    /// Classifies a page that was *not* found resident in the cache.
    pub fn touch_kind(&self, region: u64, page: u64) -> OsResult<TouchKind> {
        let r = self.regions.get(&region).ok_or(OsError::BadRegion)?;
        if page >= r.pages {
            return Err(OsError::InvalidArgument);
        }
        if let Some(&slot) = r.slots.get(&page) {
            return Ok(TouchKind::Swapped(slot));
        }
        if r.touched.contains(&page) {
            return Ok(TouchKind::Materialized);
        }
        Ok(TouchKind::Untouched)
    }

    /// Records that a page has been materialized (first write).
    pub fn mark_touched(&mut self, region: u64, page: u64) -> OsResult<()> {
        let r = self.regions.get_mut(&region).ok_or(OsError::BadRegion)?;
        if page >= r.pages {
            return Err(OsError::InvalidArgument);
        }
        r.touched.insert(page);
        Ok(())
    }

    /// Returns the page's swap slot, allocating one if needed (called when
    /// a dirty anonymous page is evicted).
    pub fn ensure_slot(&mut self, region: u64, page: u64) -> OsResult<u64> {
        let r = self.regions.get_mut(&region).ok_or(OsError::BadRegion)?;
        if let Some(&slot) = r.slots.get(&page) {
            return Ok(slot);
        }
        let Some(&slot) = self.free_slots.iter().next() else {
            return Err(OsError::OutOfMemory); // Swap space exhausted.
        };
        self.free_slots.remove(&slot);
        r.slots.insert(page, slot);
        Ok(slot)
    }

    /// Whether a region is live.
    pub fn region_exists(&self, region: u64) -> bool {
        self.regions.contains_key(&region)
    }

    /// The size of a region in pages.
    pub fn region_pages(&self, region: u64) -> OsResult<u64> {
        self.regions
            .get(&region)
            .map(|r| r.pages)
            .ok_or(OsError::BadRegion)
    }

    /// Swap slots currently in use.
    pub fn slots_in_use(&self) -> u64 {
        self.total_slots - self.free_slots.len() as u64
    }

    /// Number of pages of `region` that live in swap *and* may not be
    /// resident (oracle helper: the cache decides actual residency).
    pub fn swapped_pages(&self, region: u64) -> u64 {
        self.regions
            .get(&region)
            .map(|r| r.slots.len() as u64)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_then_materialized_then_swapped() {
        let mut vm = Vm::new(8);
        let r = vm.alloc(4);
        assert_eq!(vm.touch_kind(r, 0).unwrap(), TouchKind::Untouched);
        vm.mark_touched(r, 0).unwrap();
        assert_eq!(vm.touch_kind(r, 0).unwrap(), TouchKind::Materialized);
        let slot = vm.ensure_slot(r, 0).unwrap();
        assert_eq!(vm.touch_kind(r, 0).unwrap(), TouchKind::Swapped(slot));
    }

    #[test]
    fn slots_are_sticky_and_reused() {
        let mut vm = Vm::new(8);
        let r = vm.alloc(4);
        vm.mark_touched(r, 1).unwrap();
        let s1 = vm.ensure_slot(r, 1).unwrap();
        let s2 = vm.ensure_slot(r, 1).unwrap();
        assert_eq!(s1, s2, "a page keeps its slot");
        assert_eq!(vm.slots_in_use(), 1);
    }

    #[test]
    fn free_returns_slots() {
        let mut vm = Vm::new(2);
        let r = vm.alloc(4);
        vm.mark_touched(r, 0).unwrap();
        vm.mark_touched(r, 1).unwrap();
        vm.ensure_slot(r, 0).unwrap();
        vm.ensure_slot(r, 1).unwrap();
        assert_eq!(vm.slots_in_use(), 2);
        vm.free(r).unwrap();
        assert_eq!(vm.slots_in_use(), 0);
        assert!(!vm.region_exists(r));
    }

    #[test]
    fn swap_exhaustion_is_out_of_memory() {
        let mut vm = Vm::new(1);
        let r = vm.alloc(4);
        vm.mark_touched(r, 0).unwrap();
        vm.mark_touched(r, 1).unwrap();
        vm.ensure_slot(r, 0).unwrap();
        assert_eq!(vm.ensure_slot(r, 1), Err(OsError::OutOfMemory));
    }

    #[test]
    fn bounds_are_checked() {
        let mut vm = Vm::new(8);
        let r = vm.alloc(2);
        assert_eq!(vm.check(r, 2), Err(OsError::InvalidArgument));
        assert_eq!(vm.check(r + 99, 0), Err(OsError::BadRegion));
        assert_eq!(vm.mark_touched(r, 5), Err(OsError::InvalidArgument));
    }

    #[test]
    fn region_ids_are_never_reused() {
        let mut vm = Vm::new(8);
        let a = vm.alloc(1);
        vm.free(a).unwrap();
        let b = vm.alloc(1);
        assert_ne!(a, b);
    }
}
