//! Ground-truth inspection of the simulated OS.
//!
//! The paper scored FCCD's inferences by *modifying the Linux kernel* to
//! return a bitmap of presence bits per page of a file (their footnote: "if
//! this interface existed across all platforms, we would not require a
//! gray-box FCCD!"). The `Oracle` is this reproduction's equivalent: it
//! reads simulator internals for tests and experiment scoring. ICL code
//! never receives an `Oracle` — everything the ICLs know arrives through
//! the `GrayBoxOs` trait.

use std::sync::Arc;

use graybox::os::OsResult;

use crate::cache::Owner;
use crate::kernel::KernelStats;

/// Ground-truth accessor for a [`crate::Sim`]. Obtain via
/// [`crate::Sim::oracle`].
pub struct Oracle {
    shared: Arc<super::exec::SharedHandle>,
}

impl Oracle {
    pub(crate) fn new(shared: Arc<super::exec::SharedHandle>) -> Self {
        Oracle { shared }
    }

    /// Presence bitmap for each page of the file at `path` (the paper's
    /// modified-kernel interface).
    pub fn file_presence(&self, path: &str) -> OsResult<Vec<bool>> {
        self.shared.with_kernel(|k| {
            let (dev, ino) = k.oracle_resolve(path)?;
            let size = k.fs(dev).inode(ino).map(|i| i.size).unwrap_or(0);
            let pages = size.div_ceil(k.page_size());
            let resident = k.cache().resident_of(Owner::File {
                dev: dev as u32,
                ino,
            });
            let mut bitmap = vec![false; pages as usize];
            for p in resident {
                if (p as usize) < bitmap.len() {
                    bitmap[p as usize] = true;
                }
            }
            Ok(bitmap)
        })
    }

    /// Fraction of the file's pages that are resident.
    pub fn cached_fraction(&self, path: &str) -> OsResult<f64> {
        let bitmap = self.file_presence(path)?;
        if bitmap.is_empty() {
            return Ok(0.0);
        }
        Ok(bitmap.iter().filter(|&&b| b).count() as f64 / bitmap.len() as f64)
    }

    /// Dirty bitmap for each page of the file at `path` — the writeback
    /// analogue of [`Oracle::file_presence`]: which pages hold
    /// modifications not yet written back to disk.
    pub fn file_dirty(&self, path: &str) -> OsResult<Vec<bool>> {
        self.shared.with_kernel(|k| {
            let (dev, ino) = k.oracle_resolve(path)?;
            let size = k.fs(dev).inode(ino).map(|i| i.size).unwrap_or(0);
            let pages = size.div_ceil(k.page_size());
            let owner = Owner::File {
                dev: dev as u32,
                ino,
            };
            let mut bitmap = vec![false; pages as usize];
            for id in k.cache().dirty_pages() {
                if id.owner == owner && (id.page as usize) < bitmap.len() {
                    bitmap[id.page as usize] = true;
                }
            }
            Ok(bitmap)
        })
    }

    /// Total dirty pages in the cache (file and anonymous).
    pub fn dirty_pages(&self) -> usize {
        self.shared.with_kernel(|k| k.cache().dirty_pages().len())
    }

    /// The disk blocks backing the file, in page order.
    pub fn file_blocks(&self, path: &str) -> OsResult<Vec<u64>> {
        self.shared.with_kernel(|k| {
            let (dev, ino) = k.oracle_resolve(path)?;
            Ok(k.fs(dev)
                .inode(ino)
                .map(|i| i.blocks.clone())
                .unwrap_or_default())
        })
    }

    /// The file's i-number and device.
    pub fn file_identity(&self, path: &str) -> OsResult<(u64, u64)> {
        self.shared
            .with_kernel(|k| k.oracle_resolve(path).map(|(dev, ino)| (dev as u64, ino)))
    }

    /// Total resident pages (file + anonymous).
    pub fn resident_pages(&self) -> usize {
        self.shared.with_kernel(|k| k.cache().resident_pages())
    }

    /// Usable physical pages.
    pub fn total_pages(&self) -> u64 {
        self.shared.with_kernel(|k| k.config().usable_pages())
    }

    /// Kernel event counters.
    pub fn stats(&self) -> KernelStats {
        self.shared.with_kernel(|k| k.stats())
    }

    /// Swap slots in use.
    pub fn swap_slots_in_use(&self) -> u64 {
        self.shared.with_kernel(|k| k.vm().slots_in_use())
    }

    /// Per-disk statistics.
    pub fn disk_stats(&self, dev: usize) -> crate::disk::DiskStats {
        self.shared.with_kernel(|k| k.disk(dev).stats())
    }
}
