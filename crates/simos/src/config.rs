//! Simulation configuration: platform personalities, cost model, disk
//! geometry, file-system parameters, and noise.
//!
//! The defaults model the paper's testbed — two Pentium-III processors,
//! 896 MB of RAM, and five IBM 9LZX (10k RPM) disks — under Linux 2.2-era
//! software costs. [`SimConfig::small`] provides a scaled-down
//! configuration (64 MB RAM, 1 GB disks) that keeps every ratio intact
//! while letting the test suite run in milliseconds.

use gray_toolbox::GrayDuration;

/// Which operating-system *personality* the cache subsystem emulates
/// (paper Section 4.1.3, "Multiple-Platform Tests").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Linux 2.2: a unified page/buffer cache over nearly all physical
    /// memory, clock (LRU-like) replacement shared by file and anonymous
    /// pages.
    LinuxLike,
    /// NetBSD 1.4/1.5 (pre-UVM-merge): a *fixed-size* file buffer cache (the
    /// paper's machine used only 64 MB of its 896 MB for file caching),
    /// separate from anonymous memory.
    NetBsdLike,
    /// Solaris 7: file pages are cached "stickily" — a portion of the
    /// first-scanned file is retained and is hard to dislodge, so repeated
    /// scans partially hit even without gray-box help, and scans of other
    /// files mostly recycle their own pages.
    SolarisLike,
}

impl Platform {
    /// The paper's display name for the platform.
    pub fn name(self) -> &'static str {
        match self {
            Platform::LinuxLike => "Linux 2.2",
            Platform::NetBsdLike => "NetBSD 1.5",
            Platform::SolarisLike => "Solaris 7",
        }
    }
}

/// How physical memory is divided between the file cache and anonymous
/// memory (derived from [`Platform`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheArch {
    /// One pool, one replacement policy, file + anon pages together.
    Unified,
    /// A fixed-size file-cache pool; anonymous memory gets the rest.
    SplitFixed {
        /// File-cache pool size in bytes.
        file_cache_bytes: u64,
    },
    /// Unified accounting, but file pages use the sticky scan-resistant
    /// policy.
    UnifiedSticky,
}

/// CPU-side cost model (Pentium-III-era defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostParams {
    /// Fixed syscall entry/exit overhead.
    pub syscall: GrayDuration,
    /// Kernel-to-user copy cost for one full page (≈ 400 MB/s).
    pub copy_per_page: GrayDuration,
    /// Cost of touching (writing a byte to) a resident mapped page.
    pub mem_touch: GrayDuration,
    /// Cost of allocating and zeroing a fresh page on first touch.
    pub page_zero: GrayDuration,
    /// Page-fault handling overhead (added to zero/swap costs).
    pub fault_overhead: GrayDuration,
    /// Cost of a cache-resident page lookup inside read/write paths.
    pub page_lookup: GrayDuration,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            syscall: GrayDuration::from_nanos(1_500),
            copy_per_page: GrayDuration::from_nanos(9_000),
            mem_touch: GrayDuration::from_nanos(250),
            page_zero: GrayDuration::from_nanos(4_000),
            fault_overhead: GrayDuration::from_nanos(1_500),
            page_lookup: GrayDuration::from_nanos(400),
        }
    }
}

/// Timing-noise model, applied by the kernel to every charged duration.
///
/// Real probe times are polluted by interrupts and daemon wakeups; the ICLs
/// are supposed to survive that, so the simulator reproduces it — but from
/// a seeded generator, so runs are exactly repeatable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Multiplicative jitter: each duration is scaled by
    /// `1 ± uniform(0, jitter_frac)`.
    pub jitter_frac: f64,
    /// Probability that an operation is hit by an "interrupt" spike.
    pub spike_prob: f64,
    /// Mean extra latency of a spike (exponentially distributed).
    pub spike_mean: GrayDuration,
    /// Clock read granularity in nanoseconds (1 = rdtsc-like; 1000 =
    /// microsecond gettimeofday-like).
    pub timer_quantum_ns: u64,
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams {
            jitter_frac: 0.05,
            spike_prob: 0.0005,
            spike_mean: GrayDuration::from_micros(150),
            timer_quantum_ns: 1,
        }
    }
}

impl NoiseParams {
    /// A completely noise-free model (useful for exact-invariant tests).
    pub fn none() -> Self {
        NoiseParams {
            jitter_frac: 0.0,
            spike_prob: 0.0,
            spike_mean: GrayDuration::ZERO,
            timer_quantum_ns: 1,
        }
    }
}

/// Mechanical parameters of one disk (IBM 9LZX-flavored defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskParams {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Spindle speed, revolutions per minute.
    pub rpm: u32,
    /// Minimum (track-to-track) seek time.
    pub seek_min: GrayDuration,
    /// Average seek time (used to fit the seek curve).
    pub seek_avg: GrayDuration,
    /// Media transfer bandwidth, bytes per second.
    pub bandwidth: u64,
    /// Blocks per track.
    pub blocks_per_track: u32,
    /// Tracks per cylinder (number of recording surfaces).
    pub heads: u32,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            capacity: 9 << 30,
            rpm: 10_000,
            seek_min: GrayDuration::from_micros(600),
            seek_avg: GrayDuration::from_micros(6_500),
            bandwidth: 20 << 20,
            blocks_per_track: 64,
            heads: 10,
        }
    }
}

impl DiskParams {
    /// A small disk for fast tests (1 GB, same mechanics).
    pub fn small() -> Self {
        DiskParams {
            capacity: 1 << 30,
            ..DiskParams::default()
        }
    }
}

/// On-disk allocation discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayoutPolicy {
    /// FFS-style: cylinder groups, near-inode placement, rotor within a
    /// group. Creation order ~ i-number order ~ layout order.
    #[default]
    Ffs,
    /// LFS-style: all writes append at the log head, so *time of write*
    /// (not i-number) predicts proximity on disk, and overwriting a block
    /// relocates it to the head. This is the paper's §4.2.5 porting note
    /// made concrete.
    Lfs,
}

/// Which executor backend drives multiprogrammed [`crate::Sim::run`]
/// calls. Both produce **bit-identical** virtual time: scheduling
/// decisions depend only on virtual clocks and pids, and the yield
/// points are the same (`tests/exec_equivalence.rs` pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// One event loop, one OS thread: each simulated process is a
    /// resumable coroutine and the driver always resumes the
    /// minimum-virtual-time runnable one. Scales to thousands of
    /// processes; the default.
    #[default]
    Events,
    /// One OS thread per simulated process with condvar baton passing —
    /// the original executor, retained for one release as the
    /// equivalence baseline. Practical up to tens of processes.
    Threads,
}

impl ExecBackend {
    /// Backend name as used by the `SIMOS_EXEC` environment variable.
    pub fn name(self) -> &'static str {
        match self {
            ExecBackend::Events => "events",
            ExecBackend::Threads => "threads",
        }
    }

    /// Reads `SIMOS_EXEC` (`events` or `threads`); `None` when unset.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set to an unrecognized value — a silent
    /// fallback would make an equivalence CI matrix vacuous.
    pub fn from_env() -> Option<Self> {
        match std::env::var("SIMOS_EXEC") {
            Ok(v) if v == "events" => Some(ExecBackend::Events),
            Ok(v) if v == "threads" => Some(ExecBackend::Threads),
            Ok(v) => panic!("SIMOS_EXEC must be `events` or `threads`, got `{v}`"),
            Err(_) => None,
        }
    }

    /// The default for fresh configurations: `SIMOS_EXEC` if set (so a
    /// CI matrix can steer a whole test run), otherwise [`Events`].
    /// Explicit `cfg.exec = …` assignments always win over the
    /// environment because they happen after construction.
    ///
    /// [`Events`]: ExecBackend::Events
    pub fn env_default() -> Self {
        Self::from_env().unwrap_or_default()
    }
}

/// Periodic writeback ("flusher daemon") parameters.
///
/// Real kernels run a background daemon (Linux's `bdflush`/`kupdate`,
/// BSD's `syncer`) that walks dirty pages and writes them back on a
/// fixed period. The simulated flusher is charged **on the virtual
/// clock**: its I/O occupies the disks' own FCFS timelines (so
/// foreground requests queue behind it — the observable side effect),
/// and epochs fire deterministically when the first process whose local
/// clock has crossed an epoch boundary enters the kernel. Disabled by
/// default so existing scenarios are byte-for-byte unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritebackParams {
    /// Whether the periodic flusher runs at all.
    pub enabled: bool,
    /// Flush period: one epoch every `interval` of virtual time.
    pub interval: GrayDuration,
    /// Maximum dirty *file* pages written back per epoch (kupdate-style
    /// bounded sweep). Anonymous pages are the swap path's business.
    pub max_pages_per_epoch: u64,
}

impl Default for WritebackParams {
    fn default() -> Self {
        WritebackParams::disabled()
    }
}

impl WritebackParams {
    /// No flusher: dirty pages persist until `gb_sync` or eviction.
    pub fn disabled() -> Self {
        WritebackParams {
            enabled: false,
            interval: GrayDuration::from_millis(500),
            max_pages_per_epoch: 64,
        }
    }

    /// A flusher with the given period and the default per-epoch bound.
    pub fn every(interval: GrayDuration) -> Self {
        WritebackParams {
            enabled: true,
            interval,
            max_pages_per_epoch: 64,
        }
    }
}

/// File-system layout parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsParams {
    /// Allocation discipline.
    pub layout: LayoutPolicy,
    /// Block size in bytes; must equal the VM page size.
    pub block_size: u64,
    /// Data blocks per cylinder group (FFS groups a few cylinders; 4096
    /// blocks = 16 MB per group at 4 KB blocks).
    pub blocks_per_group: u64,
    /// Inodes per cylinder group.
    pub inodes_per_group: u64,
    /// Inodes stored per on-disk block (128-byte inodes in 4 KB blocks).
    pub inodes_per_block: u64,
}

impl Default for FsParams {
    fn default() -> Self {
        FsParams {
            layout: LayoutPolicy::default(),
            block_size: 4096,
            blocks_per_group: 4096,
            inodes_per_group: 1024,
            inodes_per_block: 32,
        }
    }
}

/// Top-level simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Cache personality.
    pub platform: Platform,
    /// Physical memory in bytes.
    pub mem_bytes: u64,
    /// Memory reserved for the kernel itself (not available to the cache
    /// or to processes). The paper's 896 MB machine exposes ~830 MB.
    pub kernel_reserve_bytes: u64,
    /// VM page size in bytes.
    pub page_size: u64,
    /// Number of CPUs (the paper's machine had two).
    pub cpus: u32,
    /// Data disks; disk *i* is mounted at `/` (i = 0) or `/d<i>`.
    pub disks: Vec<DiskParams>,
    /// Index of the disk used for swap. It may coincide with a data disk
    /// (contention included) or be dedicated, as in the paper's Figure 7.
    pub swap_disk: usize,
    /// Software cost model.
    pub costs: CostParams,
    /// Timing-noise model.
    pub noise: NoiseParams,
    /// File-system parameters (shared by all mounted file systems).
    pub fs: FsParams,
    /// Maximum readahead window, in pages.
    pub readahead_pages: u64,
    /// Periodic dirty-page writeback (off by default).
    pub writeback: WritebackParams,
    /// Master RNG seed (noise, procedural content).
    pub seed: u64,
    /// Executor backend for multiprogrammed runs (virtual time is
    /// bit-identical either way; see [`ExecBackend`]).
    pub exec: ExecBackend,
    /// Stack size per simulated process under the events backend.
    /// Heap-allocated and lazily committed by the host, so a generous
    /// default costs little real memory.
    pub coro_stack_bytes: usize,
}

impl SimConfig {
    /// The paper's testbed at full scale: 896 MB RAM, two CPUs, five 9 GB
    /// disks with swap on the last one, Linux 2.2 personality.
    pub fn paper() -> Self {
        SimConfig {
            platform: Platform::LinuxLike,
            mem_bytes: 896 << 20,
            kernel_reserve_bytes: 66 << 20,
            page_size: 4096,
            cpus: 2,
            disks: vec![DiskParams::default(); 5],
            swap_disk: 4,
            costs: CostParams::default(),
            noise: NoiseParams::default(),
            fs: FsParams::default(),
            readahead_pages: 32,
            writeback: WritebackParams::disabled(),
            seed: 0xA5A5_5A5A,
            exec: ExecBackend::env_default(),
            coro_stack_bytes: 512 << 10,
        }
    }

    /// A scaled-down configuration for tests: 64 MB RAM, one CPU, two 1 GB
    /// disks (swap on the second), same cost model and ratios.
    pub fn small() -> Self {
        SimConfig {
            platform: Platform::LinuxLike,
            mem_bytes: 64 << 20,
            kernel_reserve_bytes: 8 << 20,
            page_size: 4096,
            cpus: 1,
            disks: vec![DiskParams::small(), DiskParams::small()],
            swap_disk: 1,
            costs: CostParams::default(),
            noise: NoiseParams::default(),
            fs: FsParams::default(),
            readahead_pages: 32,
            writeback: WritebackParams::disabled(),
            seed: 0xA5A5_5A5A,
            exec: ExecBackend::env_default(),
            coro_stack_bytes: 512 << 10,
        }
    }

    /// Switches the platform personality (builder style).
    pub fn with_platform(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }

    /// Switches off timing noise (builder style).
    pub fn without_noise(mut self) -> Self {
        self.noise = NoiseParams::none();
        self
    }

    /// Overrides the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches every mounted file system to LFS-style allocation
    /// (builder style).
    pub fn with_lfs(mut self) -> Self {
        self.fs.layout = LayoutPolicy::Lfs;
        self
    }

    /// Pins the executor backend, overriding `SIMOS_EXEC` (builder
    /// style). Equivalence tests use this to run both backends in one
    /// process regardless of the environment.
    pub fn with_exec(mut self, exec: ExecBackend) -> Self {
        self.exec = exec;
        self
    }

    /// Enables the periodic flusher with the given epoch interval
    /// (builder style). The per-epoch page bound stays at the default;
    /// assign `writeback` directly for full control.
    pub fn with_writeback(mut self, interval: GrayDuration) -> Self {
        self.writeback = WritebackParams::every(interval);
        self
    }

    /// The cache architecture implied by the platform.
    pub fn cache_arch(&self) -> CacheArch {
        match self.platform {
            Platform::LinuxLike => CacheArch::Unified,
            // The paper's NetBSD box used a fixed 64 MB file cache out of
            // 896 MB; scale that ratio (1/14) to the configured memory.
            Platform::NetBsdLike => CacheArch::SplitFixed {
                file_cache_bytes: (self.mem_bytes / 14).max(4 * self.page_size),
            },
            Platform::SolarisLike => CacheArch::UnifiedSticky,
        }
    }

    /// Usable physical pages (total minus kernel reserve).
    pub fn usable_pages(&self) -> u64 {
        (self.mem_bytes - self.kernel_reserve_bytes) / self.page_size
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a description if the configuration is inconsistent.
    pub fn validate(&self) {
        assert!(self.page_size.is_power_of_two(), "page size must be 2^k");
        assert_eq!(
            self.fs.block_size, self.page_size,
            "FS block size must equal the page size"
        );
        assert!(
            self.kernel_reserve_bytes < self.mem_bytes,
            "kernel reserve exceeds memory"
        );
        assert!(!self.disks.is_empty(), "at least one disk is required");
        assert!(self.swap_disk < self.disks.len(), "swap disk out of range");
        assert!(self.cpus >= 1, "at least one CPU");
        assert!(self.usable_pages() >= 16, "too little usable memory");
        for d in &self.disks {
            assert!(d.capacity >= self.page_size * 1024, "disk too small");
            assert!(d.bandwidth > 0 && d.rpm > 0, "disk parameters degenerate");
        }
        if self.writeback.enabled {
            assert!(
                self.writeback.interval > GrayDuration::ZERO,
                "flusher interval must be positive"
            );
            assert!(
                self.writeback.max_pages_per_epoch > 0,
                "flusher epoch page bound must be positive"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        SimConfig::paper().validate();
        assert_eq!(SimConfig::paper().usable_pages(), (830u64 << 20) / 4096);
    }

    #[test]
    fn small_config_validates() {
        SimConfig::small().validate();
    }

    #[test]
    fn netbsd_cache_is_fixed_fraction() {
        let cfg = SimConfig::paper().with_platform(Platform::NetBsdLike);
        match cfg.cache_arch() {
            CacheArch::SplitFixed { file_cache_bytes } => {
                assert_eq!(file_cache_bytes, (896u64 << 20) / 14);
            }
            other => panic!("unexpected arch {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "swap disk out of range")]
    fn bad_swap_disk_panics() {
        let mut cfg = SimConfig::small();
        cfg.swap_disk = 9;
        cfg.validate();
    }

    #[test]
    fn exec_backend_defaults_and_builder() {
        // Never sets SIMOS_EXEC (tests share a process); only the
        // explicit paths are exercised here.
        assert_eq!(ExecBackend::default(), ExecBackend::Events);
        assert_eq!(ExecBackend::Events.name(), "events");
        assert_eq!(ExecBackend::Threads.name(), "threads");
        let cfg = SimConfig::small().with_exec(ExecBackend::Threads);
        assert_eq!(cfg.exec, ExecBackend::Threads);
        cfg.validate();
    }

    #[test]
    fn platform_names() {
        assert_eq!(Platform::LinuxLike.name(), "Linux 2.2");
        assert_eq!(Platform::NetBsdLike.name(), "NetBSD 1.5");
        assert_eq!(Platform::SolarisLike.name(), "Solaris 7");
    }
}
