//! Virtual time, CPU resources, and the seeded noise model.
//!
//! Every simulated process carries its own virtual clock; shared resources
//! (CPUs here, disks in [`crate::disk`]) serialize access by tracking when
//! they next become free. The executor always runs the process with the
//! smallest local time, so state mutations are applied in causal order —
//! this is a conservative sequential discrete-event simulation.

use gray_toolbox::rng::StdRng;
use gray_toolbox::rng::{RngExt, SeedableRng};
use gray_toolbox::{GrayDuration, Nanos};

use crate::config::NoiseParams;

/// Deterministic latency noise generator.
#[derive(Debug)]
pub struct Noise {
    params: NoiseParams,
    rng: StdRng,
}

impl Noise {
    /// Creates a noise source with the given parameters and seed.
    pub fn new(params: NoiseParams, seed: u64) -> Self {
        Noise {
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies jitter and occasional spikes to a duration.
    pub fn apply(&mut self, d: GrayDuration) -> GrayDuration {
        let mut out = d;
        if self.params.jitter_frac > 0.0 && d > GrayDuration::ZERO {
            let f = self
                .rng
                .random_range(-self.params.jitter_frac..=self.params.jitter_frac);
            out = d.mul_f64(1.0 + f);
        }
        if self.params.spike_prob > 0.0 && self.rng.random_bool(self.params.spike_prob) {
            // Exponentially distributed spike via inverse transform.
            let u: f64 = self.rng.random_range(f64::EPSILON..1.0);
            let extra = self.params.spike_mean.mul_f64(-u.ln());
            out += extra;
        }
        out
    }

    /// Quantizes a clock reading to the configured timer granularity.
    pub fn quantize(&self, t: Nanos) -> Nanos {
        let q = self.params.timer_quantum_ns.max(1);
        Nanos(t.0 / q * q)
    }
}

/// A bank of CPUs, each free from some instant onward.
#[derive(Debug, Clone)]
pub struct CpuBank {
    free_at: Vec<Nanos>,
}

impl CpuBank {
    /// Creates `n` idle CPUs.
    pub fn new(n: u32) -> Self {
        assert!(n >= 1, "need at least one CPU");
        CpuBank {
            free_at: vec![Nanos::ZERO; n as usize],
        }
    }

    /// Runs `work` for a process whose local clock reads `now`, returning
    /// the completion instant. Picks the earliest-free CPU; the work starts
    /// when both the process and the CPU are ready.
    pub fn run(&mut self, now: Nanos, work: GrayDuration) -> Nanos {
        let slot = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .map(|(i, _)| i)
            .expect("at least one CPU");
        let start = now.max(self.free_at[slot]);
        let end = start + work;
        self.free_at[slot] = end;
        end
    }

    /// The number of CPUs.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Whether the bank is empty (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_is_identity() {
        let mut n = Noise::new(NoiseParams::none(), 7);
        let d = GrayDuration::from_micros(10);
        for _ in 0..100 {
            assert_eq!(n.apply(d), d);
        }
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut n = Noise::new(
            NoiseParams {
                jitter_frac: 0.1,
                spike_prob: 0.0,
                ..NoiseParams::none()
            },
            7,
        );
        let d = GrayDuration::from_micros(100);
        for _ in 0..1000 {
            let out = n.apply(d);
            assert!(out >= d.mul_f64(0.9) && out <= d.mul_f64(1.1), "{out}");
        }
    }

    #[test]
    fn spikes_occur_at_roughly_configured_rate() {
        let mut n = Noise::new(
            NoiseParams {
                jitter_frac: 0.0,
                spike_prob: 0.05,
                spike_mean: GrayDuration::from_micros(100),
                timer_quantum_ns: 1,
            },
            7,
        );
        let d = GrayDuration::from_micros(1);
        let spikes = (0..10_000).filter(|_| n.apply(d) > d * 2).count();
        assert!((300..=800).contains(&spikes), "spike count {spikes}");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let params = NoiseParams::default();
        let mut a = Noise::new(params, 42);
        let mut b = Noise::new(params, 42);
        let d = GrayDuration::from_micros(5);
        for _ in 0..100 {
            assert_eq!(a.apply(d), b.apply(d));
        }
    }

    #[test]
    fn quantization_truncates() {
        let n = Noise::new(
            NoiseParams {
                timer_quantum_ns: 1000,
                ..NoiseParams::none()
            },
            0,
        );
        assert_eq!(n.quantize(Nanos(1999)), Nanos(1000));
        assert_eq!(n.quantize(Nanos(2000)), Nanos(2000));
    }

    #[test]
    fn single_cpu_serializes_work() {
        let mut bank = CpuBank::new(1);
        let e1 = bank.run(Nanos::ZERO, GrayDuration::from_micros(10));
        assert_eq!(e1, Nanos::from_micros(10));
        // A second process at time 0 must queue behind the first.
        let e2 = bank.run(Nanos::ZERO, GrayDuration::from_micros(5));
        assert_eq!(e2, Nanos::from_micros(15));
    }

    #[test]
    fn two_cpus_run_in_parallel() {
        let mut bank = CpuBank::new(2);
        let e1 = bank.run(Nanos::ZERO, GrayDuration::from_micros(10));
        let e2 = bank.run(Nanos::ZERO, GrayDuration::from_micros(10));
        assert_eq!(e1, Nanos::from_micros(10));
        assert_eq!(e2, Nanos::from_micros(10));
    }

    #[test]
    fn late_process_does_not_wait_for_idle_cpu() {
        let mut bank = CpuBank::new(1);
        let _ = bank.run(Nanos::ZERO, GrayDuration::from_micros(1));
        let end = bank.run(Nanos::from_micros(100), GrayDuration::from_micros(1));
        assert_eq!(end, Nanos::from_micros(101));
    }
}
