//! Deterministic multi-client scenario scaffolding.
//!
//! Daemon-scale experiments (the `gbd` inference daemon, its benchmark
//! suite, and the staleness tests) all need the same setup: a machine
//! with several independent disks, a corpus of files spread across them,
//! a chosen subset resident in the file cache, and a way to *churn* that
//! residency behind an observer's back. This module packages those steps
//! so every caller builds the same machine the same way — the scenarios
//! stay comparable and the virtual-time numbers stay reproducible.

use graybox::os::GrayBoxOs;

use crate::{DiskParams, ExecBackend, Sim, SimConfig};

pub mod matrix;

/// Builds a quiet (no timing noise) machine with `disks` independent
/// small disks and enough CPU slack that `workers` concurrent probe
/// workers genuinely overlap their disk waits (two slots per worker, the
/// same proportioning as the scheduler benchmarks).
pub fn daemon_machine(disks: usize, workers: usize) -> Sim {
    assert!(disks >= 1, "need at least one disk");
    let mut cfg = SimConfig::small().without_noise();
    cfg.disks = vec![DiskParams::small(); disks.max(2)];
    cfg.swap_disk = 1;
    cfg.cpus = (2 * workers.max(1)) as u32;
    Sim::new(cfg)
}

/// Builds a quiet machine sized for *fleet* experiments: hundreds-to-
/// thousands of short-lived probe processes sharing `disks` data disks
/// and `cpus` CPU slots, under an explicitly pinned executor backend.
/// Both backends build the bit-identical machine — the backend only
/// decides how the host drives it — which is what lets the fleet bench
/// and the equivalence suite compare them directly.
pub fn fleet_machine(disks: usize, cpus: u32, exec: ExecBackend) -> Sim {
    assert!(disks >= 1, "need at least one disk");
    let mut cfg = SimConfig::small().without_noise().with_exec(exec);
    cfg.disks = vec![DiskParams::small(); disks.max(2)];
    cfg.swap_disk = 1;
    cfg.cpus = cpus.max(1);
    Sim::new(cfg)
}

/// Creates `files_per_disk` files of `bytes` each on the first `disks`
/// data disks (disk 0 is mounted at `/`, disk `i` at `/d<i>`), flushes
/// the file cache, and returns `(path, bytes)` pairs in creation order.
///
/// Every file starts cold; warm a subset with [`warm`].
pub fn spread_corpus(
    sim: &mut Sim,
    disks: usize,
    files_per_disk: usize,
    bytes: u64,
) -> Vec<(String, u64)> {
    let mut files = Vec::with_capacity(disks * files_per_disk);
    for d in 0..disks {
        for f in 0..files_per_disk {
            let path = if d == 0 {
                format!("/sc{f:02}")
            } else {
                format!("/d{d}/sc{f:02}")
            };
            files.push((path, bytes));
        }
    }
    let setup = files.clone();
    sim.run_one(move |os| {
        for (path, bytes) in &setup {
            let fd = os.create(path).unwrap();
            os.write_fill(fd, 0, *bytes).unwrap();
            os.close(fd).unwrap();
        }
    });
    sim.flush_file_cache();
    files
}

/// Reads each file end to end so it becomes resident — the ground truth
/// a cache-content detector should observe. One simulated process does
/// all the reading (sequentially, deterministically).
pub fn warm(sim: &mut Sim, files: &[(String, u64)]) {
    let files = files.to_vec();
    sim.run_one(move |os| {
        for (path, bytes) in &files {
            let fd = os.open(path).unwrap();
            os.read_discard(fd, 0, *bytes).unwrap();
            os.close(fd).unwrap();
        }
    });
}

/// Flips residency behind any observer's back: evicts everything, then
/// re-warms only `keep`. After this, a classification taken before the
/// churn is stale for every file whose membership in `keep` changed.
pub fn churn(sim: &mut Sim, keep: &[(String, u64)]) {
    sim.flush_file_cache();
    if !keep.is_empty() {
        warm(sim, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_spreads_and_warm_subset_is_resident() {
        let mut sim = daemon_machine(3, 2);
        let files = spread_corpus(&mut sim, 3, 2, 256 << 10);
        assert_eq!(files.len(), 6);
        assert!(files.iter().any(|(p, _)| p.starts_with("/d2/")));
        let oracle = sim.oracle();
        for (path, _) in &files {
            assert_eq!(
                oracle.cached_fraction(path).unwrap(),
                0.0,
                "{path} starts cold"
            );
        }
        drop(oracle);
        warm(&mut sim, &files[..2]);
        let oracle = sim.oracle();
        assert!(oracle.cached_fraction(&files[0].0).unwrap() > 0.9);
        assert_eq!(oracle.cached_fraction(&files[3].0).unwrap(), 0.0);
    }

    #[test]
    fn churn_flips_residency() {
        let mut sim = daemon_machine(2, 1);
        let files = spread_corpus(&mut sim, 2, 2, 128 << 10);
        warm(&mut sim, &files[..1]);
        churn(&mut sim, &files[1..2]);
        let oracle = sim.oracle();
        assert_eq!(oracle.cached_fraction(&files[0].0).unwrap(), 0.0, "evicted");
        assert!(
            oracle.cached_fraction(&files[1].0).unwrap() > 0.9,
            "re-warmed"
        );
    }
}
