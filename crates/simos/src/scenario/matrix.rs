//! The scenario matrix: a seeded sweep of platform × aging × noise ×
//! workload mix × fleet size, each cell a self-contained scored
//! simulation.
//!
//! The figures exercise a handful of fixed configurations; the matrix
//! turns "handles as many scenarios as you can imagine" into an
//! enumerable artifact. [`MatrixConfig::expand`] deterministically
//! expands the axes into [`ScenarioSpec`]s, each carrying its own seed
//! (derived from the grid seed and the cell index by splitmix64), and
//! [`ScenarioSpec::run`] boots a fresh machine, ages it if asked, runs a
//! contended probe fleet, classifies the corpus with FCCD, estimates
//! availability with MAC, and scores everything against the cell's own
//! oracle.
//!
//! **Parallelism contract.** A cell shares *nothing* mutable with its
//! siblings: its own `Sim` (kernel, disks, caches, RNG), its own oracle,
//! its own result struct. Scoring deliberately bypasses the global
//! tracer ([`crate::score::score_fccd_verdicts`]) because trace capture
//! is process-wide and would serialize — or interleave — concurrent
//! cells. That is what makes [`run_grid`] safe to fan across host cores:
//! the grid is bit-identical for 1 worker or N, and only wall-clock time
//! changes with the worker count.

use gray_toolbox::pool::{JobPanic, Pool};
use gray_toolbox::rng::splitmix64;
use graybox::fccd::{Fccd, FccdParams};
use graybox::mac::{Mac, MacParams};
use graybox::os::GrayBoxOs;

use crate::scenario::{spread_corpus, warm};
use crate::score::{score_fccd_verdicts, FccdScore, MacScore};
use crate::{DiskParams, NoiseParams, Platform, Sim, SimConfig, SimProc};

/// What the fleet processes of a cell actually do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadMix {
    /// Read-only probing: every process probes its corpus file. The
    /// cache stays as the warm-up left it.
    ProbeHeavy,
    /// Probing under churn: every process rewrites a slice of its file
    /// before probing, and residency is churned again (flush + re-warm a
    /// different seeded subset) before classification.
    ChurnHeavy,
}

impl WorkloadMix {
    /// Short tag for labels and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadMix::ProbeHeavy => "probe",
            WorkloadMix::ChurnHeavy => "churn",
        }
    }
}

/// The axes of the sweep plus the shared sizing knobs. `expand` takes
/// the cross product in a fixed axis order, so cell indices — and with
/// them the per-cell seeds — are stable for a given config.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Platform cache policies to sweep.
    pub platforms: Vec<Platform>,
    /// File-system aging on/off.
    pub aging: Vec<bool>,
    /// Noise amplitudes (jitter fractions; `0.0` = the quiet machine).
    pub noise_amps: Vec<f64>,
    /// Workload mixes.
    pub mixes: Vec<WorkloadMix>,
    /// Concurrent probe processes per cell.
    pub fleet_sizes: Vec<usize>,
    /// Grid seed; each cell derives its own seed from this and its index.
    pub seed: u64,
    /// Data disks per cell machine.
    pub disks: usize,
    /// Corpus files per disk.
    pub files_per_disk: usize,
    /// Bytes per corpus file.
    pub file_bytes: u64,
}

impl MatrixConfig {
    /// The full baseline grid: 3 platforms × aging on/off × 3 noise
    /// amplitudes × 2 mixes × 2 fleet sizes = 72 cells.
    pub fn full() -> Self {
        MatrixConfig {
            platforms: vec![
                Platform::LinuxLike,
                Platform::NetBsdLike,
                Platform::SolarisLike,
            ],
            aging: vec![false, true],
            noise_amps: vec![0.0, 0.05, 0.15],
            mixes: vec![WorkloadMix::ProbeHeavy, WorkloadMix::ChurnHeavy],
            fleet_sizes: vec![4, 12],
            seed: 0x6D61_7472_6978, // "matrix"
            disks: 3,
            files_per_disk: 4,
            file_bytes: 128 << 10,
        }
    }

    /// A small grid for CI smoke runs: all three platforms, both aging
    /// states, two noise amplitudes, one mix, one fleet size (12 cells).
    pub fn smoke() -> Self {
        MatrixConfig {
            platforms: vec![
                Platform::LinuxLike,
                Platform::NetBsdLike,
                Platform::SolarisLike,
            ],
            aging: vec![false, true],
            noise_amps: vec![0.0, 0.1],
            mixes: vec![WorkloadMix::ProbeHeavy],
            fleet_sizes: vec![4],
            seed: 0x6D61_7472_6978,
            disks: 2,
            files_per_disk: 3,
            file_bytes: 64 << 10,
        }
    }

    /// Number of cells the config expands to.
    pub fn cells(&self) -> usize {
        self.platforms.len()
            * self.aging.len()
            * self.noise_amps.len()
            * self.mixes.len()
            * self.fleet_sizes.len()
    }

    /// Expands the cross product into self-contained cell specs, in a
    /// fixed axis order (platform outermost, fleet size innermost).
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut specs = Vec::with_capacity(self.cells());
        for &platform in &self.platforms {
            for &aging in &self.aging {
                for &noise_amp in &self.noise_amps {
                    for &mix in &self.mixes {
                        for &fleet_size in &self.fleet_sizes {
                            let index = specs.len();
                            let mut state = self.seed ^ (index as u64).wrapping_mul(0x9E37);
                            let seed = splitmix64(&mut state);
                            specs.push(ScenarioSpec {
                                index,
                                platform,
                                aging,
                                noise_amp,
                                mix,
                                fleet_size,
                                seed,
                                disks: self.disks,
                                files_per_disk: self.files_per_disk,
                                file_bytes: self.file_bytes,
                            });
                        }
                    }
                }
            }
        }
        specs
    }
}

/// One fully-specified cell of the matrix. Self-contained: everything a
/// worker needs to build, run, and score the cell without touching any
/// shared state.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Position in the expanded grid (also the result's slot).
    pub index: usize,
    /// Platform cache policy.
    pub platform: Platform,
    /// Whether the file system is aged before the corpus is built.
    pub aging: bool,
    /// Jitter fraction (0.0 = quiet machine).
    pub noise_amp: f64,
    /// Fleet workload mix.
    pub mix: WorkloadMix,
    /// Concurrent probe processes.
    pub fleet_size: usize,
    /// The cell's own seed (derived; drives machine noise and warm-set
    /// selection).
    pub seed: u64,
    /// Data disks.
    pub disks: usize,
    /// Corpus files per disk.
    pub files_per_disk: usize,
    /// Bytes per corpus file.
    pub file_bytes: u64,
}

/// Scores and fingerprints from one executed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Human-readable cell coordinates.
    pub label: String,
    /// FCCD confusion tally against the cell's oracle.
    pub fccd: FccdScore,
    /// FCCD cluster separation at classification time.
    pub separation: f64,
    /// MAC availability estimate's relative error against the oracle.
    pub mac_abs_err: f64,
    /// Virtual-time makespan of the whole cell (deterministic).
    pub virtual_ns: u64,
    /// FNV fingerprint of the cell's observable behavior: fleet probe
    /// digests, verdicts, MAC numbers, and the makespan.
    pub digest: u64,
}

fn platform_tag(platform: Platform) -> &'static str {
    match platform {
        Platform::LinuxLike => "linux",
        Platform::NetBsdLike => "netbsd",
        Platform::SolarisLike => "solaris",
    }
}

/// Noise parameters for an amplitude: jitter scales directly, spike
/// probability scales proportionally off the default profile.
fn noise_for(amp: f64) -> NoiseParams {
    if amp <= 0.0 {
        return NoiseParams::none();
    }
    let base = NoiseParams::default();
    NoiseParams {
        jitter_frac: amp,
        spike_prob: base.spike_prob * (amp / base.jitter_frac),
        ..base
    }
}

/// FNV-1a fold helper shared by the cell digest.
fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

impl ScenarioSpec {
    /// Cell coordinates as a stable label, e.g.
    /// `linux/aged/n0.05/probe/f12`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/n{:.2}/{}/f{}",
            platform_tag(self.platform),
            if self.aging { "aged" } else { "fresh" },
            self.noise_amp,
            self.mix.name(),
            self.fleet_size
        )
    }

    /// Builds, runs, and scores this cell. Deterministic: depends only
    /// on the spec (virtual time throughout, no host state, no global
    /// tracer).
    pub fn run(&self) -> CellResult {
        let mut cfg = SimConfig::small()
            .with_platform(self.platform)
            .with_seed(self.seed);
        cfg.disks = vec![DiskParams::small(); self.disks.max(2)];
        cfg.swap_disk = 1;
        // Fewer CPU slots than processes, so the fleet genuinely contends.
        cfg.cpus = (self.fleet_size as u32 / 2).max(2);
        cfg.noise = noise_for(self.noise_amp);
        let mut sim = Sim::new(cfg);
        let t0 = sim.now();

        if self.aging {
            // FFS-style aging: create/unlink churn before the corpus is
            // built decorrelates i-numbers from layout (the allocator
            // rotor has moved), which is exactly the structure aging
            // destroys on real machines.
            sim.run_one(|os| {
                for i in 0..24 {
                    let path = format!("/age{i:02}");
                    let fd = os.create(&path).unwrap();
                    os.write_fill(fd, 0, 16 << 10).unwrap();
                    os.close(fd).unwrap();
                }
                for i in (0..24).step_by(2) {
                    os.unlink(&format!("/age{i:02}")).unwrap();
                }
            });
        }

        let files = spread_corpus(&mut sim, self.disks, self.files_per_disk, self.file_bytes);
        let warm_set = self.pick_subset(&files, 0x7761_726D); // "warm"
        warm(&mut sim, &warm_set);

        // Fleet phase: `fleet_size` concurrent probe processes.
        let fccd_params = || FccdParams {
            access_unit: 1 << 20,
            prediction_unit: 256 << 10,
            ..FccdParams::default()
        };
        let mix = self.mix;
        let workloads: Vec<(String, crate::exec::Workload<'_, u64>)> = (0..self.fleet_size)
            .map(|i| {
                let (path, bytes) = files[i % files.len()].clone();
                let w: crate::exec::Workload<'_, u64> = Box::new(move |os: &SimProc| {
                    let fd = os.open(&path).unwrap();
                    if mix == WorkloadMix::ChurnHeavy {
                        // Rewrite the first quarter: dirties cache pages
                        // and perturbs residency under the siblings.
                        os.write_fill(fd, 0, bytes / 4).unwrap();
                    }
                    let fccd = Fccd::with_fixed_seed(os, fccd_params());
                    let report = fccd.probe_file(fd, bytes);
                    os.close(fd).unwrap();
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for unit in &report.units {
                        for v in [unit.offset, unit.probe_time.as_nanos(), unit.probes as u64] {
                            h = fnv(h, v);
                        }
                    }
                    h ^ os.now().as_nanos()
                });
                (format!("cell{}-p{i}", self.index), w)
            })
            .collect();
        let fleet_digests = sim.run(workloads);

        if self.mix == WorkloadMix::ChurnHeavy {
            // Churn residency behind the fleet's back before inference.
            let keep = self.pick_subset(&files, 0x6B65_6570); // "keep"
            crate::scenario::churn(&mut sim, &keep);
        }

        // Inference phase: classify the whole corpus, then join the
        // verdicts straight off the result value (tracer-free).
        let paths: Vec<String> = files.iter().map(|(p, _)| p.clone()).collect();
        let classified = sim.run_one(move |os| {
            let fccd = Fccd::with_fixed_seed(os, fccd_params());
            fccd.classify_files(&paths)
        });
        let verdicts: Vec<(String, bool)> = classified
            .cached
            .iter()
            .map(|r| (r.path.clone(), true))
            .chain(classified.uncached.iter().map(|r| (r.path.clone(), false)))
            .collect();
        let fccd_score = score_fccd_verdicts(
            &sim.oracle(),
            verdicts.iter().map(|(p, v)| (p.as_str(), *v)),
        );

        // MAC phase: estimate availability; truth is read the instant
        // before the probe allocates anything.
        let oracle = sim.oracle();
        let truth_bytes = (oracle
            .total_pages()
            .saturating_sub(oracle.resident_pages() as u64)
            * 4096) as f64;
        let ceiling = oracle.total_pages() * 4096 * 2;
        let estimate = sim.run_one(move |os| {
            let mac = Mac::new(
                os,
                MacParams {
                    initial_increment: 1 << 20,
                    max_increment: 4 << 20,
                    ..MacParams::default()
                },
            );
            mac.available_estimate(ceiling).unwrap()
        });
        let mac = MacScore {
            estimated_bytes: estimate as f64,
            truth_bytes,
        };

        let virtual_ns = sim.now().since(t0).as_nanos();
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for d in &fleet_digests {
            digest = fnv(digest, *d);
        }
        for (path, verdict) in &verdicts {
            for b in path.bytes() {
                digest = fnv(digest, b as u64);
            }
            digest = fnv(digest, *verdict as u64);
        }
        digest = fnv(digest, classified.separation.to_bits());
        digest = fnv(digest, estimate);
        digest = fnv(digest, truth_bytes.to_bits());
        digest = fnv(digest, virtual_ns);

        CellResult {
            label: self.label(),
            fccd: fccd_score,
            separation: classified.separation,
            mac_abs_err: mac.abs_error(),
            virtual_ns,
            digest,
        }
    }

    /// Seeded ~half subset of `files` (deterministic per cell and salt).
    fn pick_subset(&self, files: &[(String, u64)], salt: u64) -> Vec<(String, u64)> {
        files
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let mut state = self.seed ^ salt ^ (*i as u64).wrapping_mul(0xA5A5);
                splitmix64(&mut state) & 1 == 0
            })
            .map(|(_, f)| f.clone())
            .collect()
    }
}

/// Runs every cell of `cfg` through `pool`, returning results in grid
/// order. A panicking cell yields a structured [`JobPanic`] in its own
/// slot; sibling cells are unaffected. Output is worker-count-invariant.
pub fn run_grid(cfg: &MatrixConfig, pool: &Pool) -> Vec<Result<CellResult, JobPanic>> {
    pool.map(cfg.expand(), |_idx, spec| spec.run())
}

/// One fingerprint for a whole grid run — what the bench baseline pins
/// across worker counts. Panicked cells fold in their index and message,
/// so even failure modes are compared deterministically.
pub fn grid_digest(cells: &[Result<CellResult, JobPanic>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for cell in cells {
        match cell {
            Ok(c) => h = fnv(h, c.digest),
            Err(p) => {
                h = fnv(h, p.index as u64);
                for b in p.message.bytes() {
                    h = fnv(h, b as u64);
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MatrixConfig {
        MatrixConfig {
            platforms: vec![Platform::LinuxLike],
            aging: vec![false, true],
            noise_amps: vec![0.05],
            mixes: vec![WorkloadMix::ProbeHeavy, WorkloadMix::ChurnHeavy],
            fleet_sizes: vec![3],
            seed: 7,
            disks: 2,
            files_per_disk: 2,
            file_bytes: 32 << 10,
        }
    }

    #[test]
    fn expansion_is_stable_and_complete() {
        let cfg = MatrixConfig::full();
        let specs = cfg.expand();
        assert_eq!(specs.len(), cfg.cells());
        assert!(specs.len() >= 36, "acceptance floor");
        let labels: std::collections::BTreeSet<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len(), "labels must be unique");
        assert_eq!(cfg.expand(), specs, "expansion must be deterministic");
        // Cell seeds differ (splitmix64 decorrelation).
        let seeds: std::collections::BTreeSet<u64> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), specs.len());
    }

    #[test]
    fn cell_run_is_deterministic() {
        let spec = &tiny().expand()[1];
        let a = spec.run();
        let b = spec.run();
        assert_eq!(a, b);
        assert!(a.virtual_ns > 0, "cell must consume virtual time");
        assert!(a.fccd.scored() > 0, "verdicts must join against truth");
    }

    #[test]
    fn grid_is_worker_count_invariant() {
        let cfg = tiny();
        let one = run_grid(&cfg, &Pool::with_workers(1));
        let four = run_grid(&cfg, &Pool::with_workers(4));
        assert_eq!(one, four);
        assert_eq!(grid_digest(&one), grid_digest(&four));
        assert_eq!(one.len(), cfg.cells());
    }

    #[test]
    fn aging_and_mix_change_the_cell() {
        let specs = tiny().expand();
        // Same platform/noise/fleet; aging or mix differs => digests differ.
        let results: Vec<CellResult> = specs.iter().map(|s| s.run()).collect();
        let digests: std::collections::BTreeSet<u64> = results.iter().map(|r| r.digest).collect();
        assert_eq!(digests.len(), results.len(), "axes must matter");
    }
}
