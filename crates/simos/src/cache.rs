//! The page/buffer cache, with three platform personalities.
//!
//! Physical memory not reserved for the kernel is a pool of frames shared
//! by **file pages** (the buffer cache) and **anonymous pages** (process
//! memory). Three architectures model the paper's platforms:
//!
//! - **Unified** (Linux 2.2): one pool, true LRU over file and anon pages
//!   together. LRU evicts a scanned file in file order ("significantly
//!   long chunks"), which is the stated premise of sparse probing, and
//!   gives the
//!   paper's "LRU worst case" for repeated scans and the shared VM/file
//!   cache behavior MAC has to cope with.
//! - **SplitFixed** (NetBSD 1.4/1.5): the file cache is a *fixed-size*
//!   pool with its own clock; anonymous memory gets all remaining frames.
//! - **UnifiedSticky** (Solaris 7): unified accounting, but eviction is
//!   *scan-resistant*: an inserting stream preferentially recycles its own
//!   most-recently-inserted unreferenced page, so the first-cached portion
//!   of a file is retained ("once placed in the Solaris file cache, it is
//!   quite difficult to dislodge") while later scans churn in place.

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// What a cached page belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Owner {
    /// A file page: device (mount) index and i-number.
    File {
        /// Mount/device index.
        dev: u32,
        /// I-number on that device.
        ino: u64,
    },
    /// An anonymous region page.
    Anon {
        /// Globally unique region id.
        region: u64,
    },
}

impl Owner {
    /// Whether this owner is a file (as opposed to anonymous memory).
    pub fn is_file(&self) -> bool {
        matches!(self, Owner::File { .. })
    }
}

/// Identity of one cached page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Who the page belongs to.
    pub owner: Owner,
    /// Page index within the owner.
    pub page: u64,
}

/// A page pushed out of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted page.
    pub id: PageId,
    /// Whether it was dirty (the kernel must write it back).
    pub dirty: bool,
}

/// Replacement policy of a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// True LRU: a hit moves the page to MRU; eviction takes the oldest.
    /// Sequential scans therefore evict in file order --- the "long
    /// chunks" behavior the paper's FCCD relies on.
    Lru,
    /// Scan-resistant sticky policy (see module docs).
    Sticky,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Position in the LRU order (key into `order`).
    seq: u64,
    /// Whether the page has been referenced since insertion (used by the
    /// sticky policy to protect established pages).
    referenced: bool,
    dirty: bool,
}

/// One replacement pool.
#[derive(Debug)]
struct Pool {
    capacity: usize,
    policy: Policy,
    /// Prefer evicting (clean or dirty) *file* pages before anonymous
    /// pages, as real kernels do for streaming file I/O: the page cache is
    /// reclaimable, process memory much less so. Set for the unified
    /// architectures; pools that hold only one kind of page don't care.
    prefer_file_eviction: bool,
    entries: HashMap<PageId, Entry>,
    /// LRU order of file pages: ascending seq = least recently used.
    order_file: BTreeMap<u64, PageId>,
    /// LRU order of anonymous pages.
    order_anon: BTreeMap<u64, PageId>,
    next_seq: u64,
    /// Sticky policy: per-owner stack of inserted-and-not-yet-referenced
    /// pages (lazily cleaned).
    own_stacks: HashMap<Owner, Vec<PageId>>,
    /// Sticky policy: global insertion order of unreferenced pages.
    global_stack: Vec<PageId>,
    /// Per-owner residency index: which pages of each owner are resident.
    /// Kept exactly in sync with `entries`, so owner-scoped operations
    /// (purge, flush, residency listing) are lookups instead of scans over
    /// the whole pool. A sorted set, so listings come out in page order
    /// deterministically.
    by_owner: HashMap<Owner, BTreeSet<u64>>,
}

impl Pool {
    fn new(capacity: usize, policy: Policy, prefer_file_eviction: bool) -> Self {
        Pool {
            capacity,
            policy,
            prefer_file_eviction,
            entries: HashMap::new(),
            order_file: BTreeMap::new(),
            order_anon: BTreeMap::new(),
            next_seq: 0,
            own_stacks: HashMap::new(),
            global_stack: Vec::new(),
            by_owner: HashMap::new(),
        }
    }

    fn index_insert(&mut self, id: PageId) {
        self.by_owner.entry(id.owner).or_default().insert(id.page);
    }

    fn index_remove(&mut self, id: PageId) {
        if let Some(set) = self.by_owner.get_mut(&id.owner) {
            set.remove(&id.page);
            if set.is_empty() {
                self.by_owner.remove(&id.owner);
            }
        }
    }

    fn order_for<'o>(
        order_file: &'o mut BTreeMap<u64, PageId>,
        order_anon: &'o mut BTreeMap<u64, PageId>,
        owner: Owner,
    ) -> &'o mut BTreeMap<u64, PageId> {
        if owner.is_file() {
            order_file
        } else {
            order_anon
        }
    }

    fn bump(&mut self, id: PageId) {
        let Some(e) = self.entries.get_mut(&id) else {
            return;
        };
        let order = Self::order_for(&mut self.order_file, &mut self.order_anon, id.owner);
        order.remove(&e.seq);
        e.seq = self.next_seq;
        self.next_seq += 1;
        order.insert(e.seq, id);
    }

    fn lookup_touch(&mut self, id: PageId) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.referenced = true;
                self.bump(id);
                true
            }
            None => false,
        }
    }

    fn mark_dirty(&mut self, id: PageId) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.dirty = true;
                e.referenced = true;
                self.bump(id);
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, id: PageId, dirty: bool) -> Vec<Evicted> {
        if let Some(e) = self.entries.get_mut(&id) {
            e.dirty |= dirty;
            e.referenced = true;
            self.bump(id);
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.entries.len() >= self.capacity.max(1) {
            match self.evict_one(id.owner) {
                Some(v) => evicted.push(v),
                None => break,
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            id,
            Entry {
                seq,
                referenced: false,
                dirty,
            },
        );
        Self::order_for(&mut self.order_file, &mut self.order_anon, id.owner).insert(seq, id);
        self.index_insert(id);
        if self.policy == Policy::Sticky {
            self.own_stacks.entry(id.owner).or_default().push(id);
            self.global_stack.push(id);
        }
        evicted
    }

    fn evict_one(&mut self, inserting_owner: Owner) -> Option<Evicted> {
        match self.policy {
            Policy::Lru => self.evict_lru(),
            Policy::Sticky => self
                .evict_sticky(inserting_owner)
                .or_else(|| self.evict_lru()),
        }
    }

    /// Evicts the least recently used page, preferring file pages when
    /// configured (anonymous memory is only reclaimed once the file cache
    /// is exhausted — the streaming-I/O protection real kernels apply).
    fn evict_lru(&mut self) -> Option<Evicted> {
        let from_file = match (self.order_file.iter().next(), self.order_anon.iter().next()) {
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
            (Some((&fs, _)), Some((&asq, _))) => self.prefer_file_eviction || fs < asq,
        };
        let order = if from_file {
            &mut self.order_file
        } else {
            &mut self.order_anon
        };
        let (&seq, &id) = order.iter().next()?;
        order.remove(&seq);
        let entry = self.entries.remove(&id).expect("order and entries agree");
        self.index_remove(id);
        Some(Evicted {
            id,
            dirty: entry.dirty,
        })
    }

    /// Sticky victim selection: the inserting owner's own most recently
    /// inserted unreferenced page, else the globally most recently
    /// inserted unreferenced page.
    fn evict_sticky(&mut self, inserting: Owner) -> Option<Evicted> {
        if let Some(stack) = self.own_stacks.get_mut(&inserting) {
            while let Some(id) = stack.pop() {
                match self.entries.get(&id) {
                    Some(e) if !e.referenced => {
                        let e = self.entries.remove(&id).expect("present");
                        Self::order_for(&mut self.order_file, &mut self.order_anon, id.owner)
                            .remove(&e.seq);
                        self.index_remove(id);
                        return Some(Evicted { id, dirty: e.dirty });
                    }
                    _ => continue, // Referenced since insertion, or stale.
                }
            }
        }
        while let Some(id) = self.global_stack.pop() {
            match self.entries.get(&id) {
                Some(e) if !e.referenced => {
                    let e = self.entries.remove(&id).expect("present");
                    Self::order_for(&mut self.order_file, &mut self.order_anon, id.owner)
                        .remove(&e.seq);
                    self.index_remove(id);
                    return Some(Evicted { id, dirty: e.dirty });
                }
                _ => continue,
            }
        }
        None
    }

    fn remove(&mut self, id: PageId) -> bool {
        // Sticky stacks are cleaned lazily.
        match self.entries.remove(&id) {
            Some(e) => {
                Self::order_for(&mut self.order_file, &mut self.order_anon, id.owner)
                    .remove(&e.seq);
                self.index_remove(id);
                true
            }
            None => false,
        }
    }

    fn clean(&mut self, id: PageId) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.dirty = false;
        }
    }

    fn compact_if_bloated(&mut self) {
        // Lazy sticky stacks can accumulate stale ids after heavy churn;
        // compact when they exceed 4x the live population.
        let live = self.entries.len();
        if self.global_stack.len() > live * 4 + 64 {
            let entries = &self.entries;
            self.global_stack
                .retain(|id| entries.get(id).is_some_and(|e| !e.referenced));
        }
        for stack in self.own_stacks.values_mut() {
            if stack.len() > live * 4 + 64 {
                let entries = &self.entries;
                stack.retain(|id| entries.get(id).is_some_and(|e| !e.referenced));
            }
        }
    }
}

/// Which pool a page belongs to under a given architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolSel {
    Single,
    FilePool,
    AnonPool,
}

/// The machine-wide page cache.
#[derive(Debug)]
pub struct PageCache {
    pools: Vec<Pool>,
    select: fn(Owner) -> PoolSel,
    file_pool_idx: usize,
    anon_pool_idx: usize,
}

fn select_unified(_o: Owner) -> PoolSel {
    PoolSel::Single
}

fn select_split(o: Owner) -> PoolSel {
    if o.is_file() {
        PoolSel::FilePool
    } else {
        PoolSel::AnonPool
    }
}

impl PageCache {
    /// Builds the cache for the given architecture over `total_pages`
    /// usable frames.
    pub fn new(arch: crate::config::CacheArch, total_pages: u64, page_size: u64) -> Self {
        match arch {
            crate::config::CacheArch::Unified => PageCache {
                pools: vec![Pool::new(total_pages as usize, Policy::Lru, true)],
                select: select_unified,
                file_pool_idx: 0,
                anon_pool_idx: 0,
            },
            crate::config::CacheArch::UnifiedSticky => PageCache {
                pools: vec![Pool::new(total_pages as usize, Policy::Sticky, true)],
                select: select_unified,
                file_pool_idx: 0,
                anon_pool_idx: 0,
            },
            crate::config::CacheArch::SplitFixed { file_cache_bytes } => {
                let file_pages = (file_cache_bytes / page_size).min(total_pages.saturating_sub(1));
                let anon_pages = total_pages - file_pages;
                PageCache {
                    pools: vec![
                        Pool::new(file_pages as usize, Policy::Lru, false),
                        Pool::new(anon_pages as usize, Policy::Lru, false),
                    ],
                    select: select_split,
                    file_pool_idx: 0,
                    anon_pool_idx: 1,
                }
            }
        }
    }

    fn pool_mut(&mut self, owner: Owner) -> &mut Pool {
        let idx = match (self.select)(owner) {
            PoolSel::Single => 0,
            PoolSel::FilePool => self.file_pool_idx,
            PoolSel::AnonPool => self.anon_pool_idx,
        };
        &mut self.pools[idx]
    }

    fn pool(&self, owner: Owner) -> &Pool {
        let idx = match (self.select)(owner) {
            PoolSel::Single => 0,
            PoolSel::FilePool => self.file_pool_idx,
            PoolSel::AnonPool => self.anon_pool_idx,
        };
        &self.pools[idx]
    }

    /// Whether the page is resident; on a hit, sets its reference bit.
    pub fn lookup_touch(&mut self, id: PageId) -> bool {
        self.pool_mut(id.owner).lookup_touch(id)
    }

    /// Whether the page is resident, without touching reference bits.
    pub fn contains(&self, id: PageId) -> bool {
        self.pool(id.owner).entries.contains_key(&id)
    }

    /// Inserts a page, evicting as needed; returns the eviction list (the
    /// kernel charges write-backs for dirty ones).
    pub fn insert(&mut self, id: PageId, dirty: bool) -> Vec<Evicted> {
        let pool = self.pool_mut(id.owner);
        let out = pool.insert(id, dirty);
        pool.compact_if_bloated();
        out
    }

    /// Marks a resident page dirty; false if it was not resident.
    pub fn mark_dirty(&mut self, id: PageId) -> bool {
        self.pool_mut(id.owner).mark_dirty(id)
    }

    /// Clears the dirty bit after a write-back.
    pub fn clean(&mut self, id: PageId) {
        self.pool_mut(id.owner).clean(id);
    }

    /// Removes one page (truncate/unlink/free paths).
    pub fn remove(&mut self, id: PageId) -> bool {
        self.pool_mut(id.owner).remove(id)
    }

    /// Removes every page of an owner, returning how many were dropped and
    /// which of them were dirty.
    pub fn remove_owner(&mut self, owner: Owner) -> Vec<Evicted> {
        let pool = self.pool_mut(owner);
        let Some(pages) = pool.by_owner.remove(&owner) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(pages.len());
        for page in pages {
            let id = PageId { owner, page };
            let e = pool.entries.remove(&id).expect("index and entries agree");
            Pool::order_for(&mut pool.order_file, &mut pool.order_anon, owner).remove(&e.seq);
            out.push(Evicted { id, dirty: e.dirty });
        }
        out
    }

    /// Drops **all file pages** (the experimental "flush the file cache"
    /// between runs), returning the dirty ones for write-back accounting.
    pub fn drop_file_pages(&mut self) -> Vec<Evicted> {
        let mut out = Vec::new();
        for pool in &mut self.pools {
            let mut owners: Vec<Owner> = pool
                .by_owner
                .keys()
                .filter(|o| o.is_file())
                .copied()
                .collect();
            // The index is a HashMap; sort so the write-back list (and any
            // cost charged from it) is deterministic.
            owners.sort_unstable();
            for owner in owners {
                let pages = pool.by_owner.remove(&owner).expect("listed above");
                for page in pages {
                    let id = PageId { owner, page };
                    let e = pool.entries.remove(&id).expect("index and entries agree");
                    pool.order_file.remove(&e.seq);
                    out.push(Evicted { id, dirty: e.dirty });
                }
            }
            pool.own_stacks.clear();
            pool.global_stack.retain(|id| pool.entries.contains_key(id));
        }
        out
    }

    /// All dirty pages currently resident (for `sync` and the flusher).
    /// Sorted: the entry table is a HashMap, and the write-back order
    /// decides seek-dependent disk costs, which must be deterministic.
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut out: Vec<PageId> = self
            .pools
            .iter()
            .flat_map(|p| p.entries.iter().filter(|(_, e)| e.dirty).map(|(id, _)| *id))
            .collect();
        out.sort_unstable();
        out
    }

    /// Total resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pools.iter().map(|p| p.entries.len()).sum()
    }

    /// Resident pages belonging to `owner`.
    pub fn resident_of(&self, owner: Owner) -> Vec<u64> {
        self.pool(owner)
            .by_owner
            .get(&owner)
            .map(|pages| pages.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Free frames in the pool that would host `owner`.
    pub fn free_pages_for(&self, owner: Owner) -> u64 {
        let pool = self.pool(owner);
        pool.capacity.saturating_sub(pool.entries.len()) as u64
    }

    /// Capacity of the pool that hosts `owner`.
    pub fn capacity_for(&self, owner: Owner) -> u64 {
        self.pool(owner).capacity as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheArch;

    fn file_page(ino: u64, page: u64) -> PageId {
        PageId {
            owner: Owner::File { dev: 0, ino },
            page,
        }
    }

    fn anon_page(region: u64, page: u64) -> PageId {
        PageId {
            owner: Owner::Anon { region },
            page,
        }
    }

    #[test]
    fn lru_evicts_in_insertion_order_without_references() {
        let mut c = PageCache::new(CacheArch::Unified, 3, 4096);
        for p in 0..3 {
            assert!(c.insert(file_page(1, p), false).is_empty());
        }
        let evicted = c.insert(file_page(1, 3), false);
        assert_eq!(
            evicted,
            vec![Evicted {
                id: file_page(1, 0),
                dirty: false
            }]
        );
    }

    #[test]
    fn referenced_pages_get_a_second_chance() {
        let mut c = PageCache::new(CacheArch::Unified, 3, 4096);
        for p in 0..3 {
            c.insert(file_page(1, p), false);
        }
        assert!(c.lookup_touch(file_page(1, 0)));
        let evicted = c.insert(file_page(1, 3), false);
        // Page 0 was referenced, so page 1 goes instead.
        assert_eq!(evicted[0].id, file_page(1, 1));
        assert!(c.contains(file_page(1, 0)));
    }

    #[test]
    fn dirty_flag_travels_with_eviction() {
        let mut c = PageCache::new(CacheArch::Unified, 1, 4096);
        c.insert(file_page(1, 0), true);
        let evicted = c.insert(file_page(1, 1), false);
        assert!(evicted[0].dirty);
    }

    #[test]
    fn reinsert_is_a_refresh_not_a_duplicate() {
        let mut c = PageCache::new(CacheArch::Unified, 2, 4096);
        c.insert(file_page(1, 0), false);
        c.insert(file_page(1, 0), true);
        assert_eq!(c.resident_pages(), 1);
        let dirty = c.dirty_pages();
        assert_eq!(dirty, vec![file_page(1, 0)]);
    }

    #[test]
    fn split_pools_do_not_steal_from_each_other() {
        let arch = CacheArch::SplitFixed {
            file_cache_bytes: 2 * 4096,
        };
        let mut c = PageCache::new(arch, 10, 4096);
        assert_eq!(c.capacity_for(Owner::File { dev: 0, ino: 1 }), 2);
        assert_eq!(c.capacity_for(Owner::Anon { region: 1 }), 8);
        // Fill the file pool; anon stays untouched.
        for p in 0..4 {
            c.insert(file_page(1, p), false);
        }
        c.insert(anon_page(1, 0), true);
        assert_eq!(c.resident_of(Owner::File { dev: 0, ino: 1 }).len(), 2);
        assert_eq!(c.resident_of(Owner::Anon { region: 1 }).len(), 1);
    }

    #[test]
    fn sticky_scan_retains_head_of_file() {
        let mut c = PageCache::new(CacheArch::UnifiedSticky, 4, 4096);
        // Scan 8 pages of one file through a 4-page cache.
        for p in 0..8 {
            c.insert(file_page(1, p), false);
        }
        let resident = c.resident_of(Owner::File { dev: 0, ino: 1 });
        // The head of the file must survive; the tail churned in place.
        assert!(resident.contains(&0), "resident: {resident:?}");
        assert!(resident.contains(&1), "resident: {resident:?}");
        assert!(resident.contains(&2), "resident: {resident:?}");
    }

    #[test]
    fn sticky_second_file_does_not_dislodge_first() {
        let mut c = PageCache::new(CacheArch::UnifiedSticky, 4, 4096);
        for p in 0..4 {
            c.insert(file_page(1, p), false);
        }
        // Re-reference file 1 so its pages are protected.
        for p in 0..4 {
            assert!(c.lookup_touch(file_page(1, p)));
        }
        // Scan a second file through.
        for p in 0..8 {
            c.insert(file_page(2, p), false);
        }
        let f1 = c.resident_of(Owner::File { dev: 0, ino: 1 });
        assert!(
            f1.len() >= 3,
            "file 1 should survive a foreign scan: {f1:?}"
        );
    }

    #[test]
    fn unified_clock_scan_evicts_everything() {
        // Contrast with sticky: a 2x-cache scan under pure clock leaves
        // only the most recent pages.
        let mut c = PageCache::new(CacheArch::Unified, 4, 4096);
        for p in 0..8 {
            c.insert(file_page(1, p), false);
        }
        let resident = c.resident_of(Owner::File { dev: 0, ino: 1 });
        assert_eq!(resident, vec![4, 5, 6, 7]);
    }

    #[test]
    fn remove_owner_purges_only_that_owner() {
        let mut c = PageCache::new(CacheArch::Unified, 8, 4096);
        c.insert(file_page(1, 0), false);
        c.insert(file_page(2, 0), true);
        let dropped = c.remove_owner(Owner::File { dev: 0, ino: 2 });
        assert_eq!(dropped.len(), 1);
        assert!(dropped[0].dirty);
        assert!(c.contains(file_page(1, 0)));
        assert!(!c.contains(file_page(2, 0)));
    }

    #[test]
    fn drop_file_pages_keeps_anon() {
        let mut c = PageCache::new(CacheArch::Unified, 8, 4096);
        c.insert(file_page(1, 0), false);
        c.insert(anon_page(1, 0), true);
        c.drop_file_pages();
        assert!(!c.contains(file_page(1, 0)));
        assert!(c.contains(anon_page(1, 0)));
    }

    #[test]
    fn clean_clears_dirty() {
        let mut c = PageCache::new(CacheArch::Unified, 8, 4096);
        c.insert(file_page(1, 0), true);
        c.clean(file_page(1, 0));
        assert!(c.dirty_pages().is_empty());
    }

    #[test]
    fn heavy_churn_keeps_order_and_entries_in_sync() {
        let mut c = PageCache::new(CacheArch::Unified, 16, 4096);
        for round in 0..100u64 {
            for p in 0..16 {
                c.insert(file_page(round % 3, p), false);
            }
            c.remove_owner(Owner::File {
                dev: 0,
                ino: round % 3,
            });
        }
        assert_eq!(
            c.pools[0].order_file.len() + c.pools[0].order_anon.len(),
            c.pools[0].entries.len()
        );
        let indexed: usize = c.pools[0].by_owner.values().map(|s| s.len()).sum();
        assert_eq!(indexed, c.pools[0].entries.len());
        for (owner, pages) in &c.pools[0].by_owner {
            for &page in pages {
                assert!(c.pools[0].entries.contains_key(&PageId {
                    owner: *owner,
                    page
                }));
            }
        }
    }

    #[test]
    fn free_pages_accounting() {
        let mut c = PageCache::new(CacheArch::Unified, 4, 4096);
        let owner = Owner::File { dev: 0, ino: 1 };
        assert_eq!(c.free_pages_for(owner), 4);
        c.insert(file_page(1, 0), false);
        assert_eq!(c.free_pages_for(owner), 3);
    }
}
