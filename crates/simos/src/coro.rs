//! Minimal in-tree stackful coroutines for the event-driven executor.
//!
//! The events backend multiplexes every simulated process onto the one
//! driver thread, so a process that must wait (another process now holds
//! the smaller virtual time) has to *suspend mid-call* and resume later
//! exactly where it left off. Rust has no stable stackful-coroutine
//! primitive and the zero-new-dependencies rule rules out `corosensei`
//! et al., so this module implements the smallest thing that works: a
//! heap-allocated stack per process plus a hand-written context switch
//! that saves and restores exactly the callee-saved register set of the
//! platform C ABI.
//!
//! Only two operations exist. [`Coro::resume`] switches from the driver
//! onto the coroutine's stack; [`yield_to_driver`] switches back. Both
//! are plain symmetric context switches through the same assembly
//! routine, so the whole scheduler state is two saved stack pointers in
//! a [`YieldCore`].
//!
//! Safety story, in one place:
//!
//! - **Unwinding never crosses the assembly frame.** The coroutine entry
//!   wrapper catches every panic ([`std::panic::catch_unwind`]) before
//!   the final switch back, and aborts the process if the impossible
//!   happens and the entry returns without switching.
//! - **Stacks are plain heap allocations** (16-byte aligned, default
//!   512 KiB, lazily committed by the host kernel) with no guard pages:
//!   a runaway simulated workload can overflow into the heap. Simulated
//!   workloads are shallow probe loops; the size is configurable via
//!   `SimConfig::coro_stack_bytes` for anything deeper.
//! - **Dropping a suspended (started, unfinished) coroutine leaks** the
//!   live frames on its stack — their destructors never run. The
//!   executor always drives every coroutine to completion, so this only
//!   occurs if the driver itself panics mid-run.
//!
//! Supported: x86_64 (SysV) and aarch64 (AAPCS64). Other architectures
//! compile but report [`SUPPORTED`]` == false`, and the executor falls
//! back to the thread backend.

use std::alloc::{alloc, dealloc, Layout};
use std::marker::PhantomData;
use std::ptr;

/// Whether this build has a context-switch implementation. When false
/// the executor silently uses the thread backend instead.
pub(crate) const SUPPORTED: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

/// Smallest stack the executor will fabricate. Probe workloads use a few
/// KiB; 64 KiB leaves generous headroom for formatting machinery in
/// panic paths.
pub(crate) const MIN_STACK_BYTES: usize = 64 << 10;

/// The two saved stack pointers a suspended coroutine consists of, plus
/// its completion flag. Lives in a `Box` so its address is stable across
/// switches; the executor hands raw pointers to it into workload
/// closures (via `SimProc`) so a kernel call can yield mid-call.
pub(crate) struct YieldCore {
    /// The coroutine's stack pointer while it is suspended.
    coro_sp: *mut u8,
    /// The driver's stack pointer while the coroutine runs.
    sched_sp: *mut u8,
    /// Set just before the final switch back to the driver.
    finished: bool,
}

/// Start-of-life context handed to the trampoline in a callee-saved
/// register: the entry closure plus the core to report into.
struct StartCtx {
    core: *mut YieldCore,
    entry: Option<Box<dyn FnOnce(*mut YieldCore) + 'static>>,
}

/// First Rust frame on every coroutine stack. Never returns normally:
/// the tail context switch hands control back to the driver for good.
extern "C" fn coro_start(ctx: *mut StartCtx) -> ! {
    // SAFETY: `ctx` points into the owning `Coro`, which outlives the
    // coroutine's whole execution (the driver borrows it to resume).
    let (core, entry) = unsafe { ((*ctx).core, (*ctx).entry.take().expect("entry present")) };
    // Backstop: the executor already wraps workloads in catch_unwind,
    // but *nothing* may ever unwind through the fabricated assembly
    // frame below this one.
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| entry(core)));
    // SAFETY: `core` outlives the coroutine; the driver resumed us, so
    // `sched_sp` holds its valid suspended stack pointer.
    unsafe {
        (*core).finished = true;
        arch::switch(ptr::addr_of_mut!((*core).coro_sp), (*core).sched_sp);
    }
    // The driver never resumes a finished coroutine, so the switch above
    // cannot return. Unwinding or falling through here would run off the
    // fabricated frame — make it a hard stop instead.
    std::process::abort();
}

/// Suspends the currently running coroutine and switches to the driver.
/// The next [`Coro::resume`] returns control to just after this call.
///
/// # Safety
/// `core` must point at the [`YieldCore`] of the coroutine whose stack
/// the caller is executing on, and the driver that resumed it must still
/// be suspended in `resume` (always true under the executor's
/// one-runnable-at-a-time discipline).
pub(crate) unsafe fn yield_to_driver(core: *mut YieldCore) {
    // SAFETY: forwarded from the caller.
    unsafe {
        arch::switch(ptr::addr_of_mut!((*core).coro_sp), (*core).sched_sp);
    }
}

/// A heap-allocated coroutine stack. 16-byte alignment satisfies both
/// supported ABIs; the usable top is the highest 16-aligned address.
struct Stack {
    base: *mut u8,
    layout: Layout,
}

impl Stack {
    fn new(bytes: usize) -> Stack {
        let bytes = bytes.max(MIN_STACK_BYTES);
        let layout = Layout::from_size_align(bytes, 16).expect("stack layout");
        // SAFETY: layout has non-zero size.
        let base = unsafe { alloc(layout) };
        assert!(!base.is_null(), "coroutine stack allocation failed");
        Stack { base, layout }
    }

    fn top(&self) -> *mut u8 {
        // SAFETY: one-past-the-end of the allocation.
        let top = unsafe { self.base.add(self.layout.size()) };
        ((top as usize) & !15) as *mut u8
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        // SAFETY: allocated with this exact layout in `Stack::new`.
        unsafe { dealloc(self.base, self.layout) }
    }
}

/// One resumable simulated process: its stack, its saved-stack-pointer
/// pair, and the boxed start context the trampoline reads. The `'env`
/// lifetime ties the coroutine to the borrows its entry closure
/// captures (workload references, result slots).
pub(crate) struct Coro<'env> {
    core: Box<YieldCore>,
    _ctx: Box<StartCtx>,
    _stack: Stack,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Coro<'env> {
    /// Fabricates a suspended coroutine that, on first resume, calls
    /// `entry` with a pointer to its own [`YieldCore`].
    pub(crate) fn new(
        stack_bytes: usize,
        entry: Box<dyn FnOnce(*mut YieldCore) + 'env>,
    ) -> Coro<'env> {
        // `Sim::new` falls back to the thread backend on unsupported
        // architectures, so reaching this constructor there is a bug.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(SUPPORTED, "stackful coroutines unsupported on this arch");
        }
        let stack = Stack::new(stack_bytes);
        let mut core = Box::new(YieldCore {
            coro_sp: ptr::null_mut(),
            sched_sp: ptr::null_mut(),
            finished: false,
        });
        // SAFETY: lifetime erasure only. `Coro<'env>` carries `'env` in
        // PhantomData, so the coroutine (and therefore the closure) cannot
        // outlive the borrows the closure captures.
        let entry: Box<dyn FnOnce(*mut YieldCore) + 'static> =
            unsafe { std::mem::transmute(entry) };
        let mut ctx = Box::new(StartCtx {
            core: ptr::addr_of_mut!(*core),
            entry: Some(entry),
        });
        // SAFETY: `stack.top()` is the 16-aligned top of a fresh
        // allocation large enough for the initial frame; `ctx` is boxed
        // and owned by the returned Coro, so its address is stable.
        core.coro_sp = unsafe { arch::fabricate(stack.top(), ptr::addr_of_mut!(*ctx)) };
        Coro {
            core,
            _ctx: ctx,
            _stack: stack,
            _env: PhantomData,
        }
    }

    /// Whether the entry closure has run to completion (or panicked and
    /// been caught). A finished coroutine must not be resumed.
    #[allow(dead_code)] // the executor tracks liveness in the kernel; tests use this
    pub(crate) fn finished(&self) -> bool {
        self.core.finished
    }

    /// Switches onto the coroutine's stack until it yields or finishes.
    /// Returns `finished()` for the driver's convenience.
    pub(crate) fn resume(&mut self) -> bool {
        assert!(!self.core.finished, "resumed a finished coroutine");
        let core: *mut YieldCore = ptr::addr_of_mut!(*self.core);
        // SAFETY: `coro_sp` is either the fabricated initial frame or the
        // pointer saved by the coroutine's last yield; both are valid
        // suspension points on the coroutine's own (live) stack.
        unsafe {
            arch::switch(ptr::addr_of_mut!((*core).sched_sp), (*core).coro_sp);
        }
        self.core.finished
    }
}

#[cfg(target_arch = "x86_64")]
mod arch {
    use super::StartCtx;

    // Symmetric context switch, SysV x86_64. Saves the callee-saved
    // register set on the current stack, publishes the stack pointer
    // through `save`, then adopts `restore` and unwinds the same frame
    // shape. A fabricated initial frame (below) restores into the
    // trampoline instead, which forwards r12 (the StartCtx) to
    // `coro_start` in rbx. rsp is 8 mod 16 at every save point (post
    // call-push plus six pushes), so a restored frame re-enters Rust
    // with standard ABI alignment.
    core::arch::global_asm!(
        ".text",
        ".globl graybox_simos_ctx_switch",
        ".p2align 4",
        "graybox_simos_ctx_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".globl graybox_simos_coro_tramp",
        ".p2align 4",
        "graybox_simos_coro_tramp:",
        "mov rdi, r12",
        "call rbx",
        "ud2",
    );

    extern "C" {
        fn graybox_simos_ctx_switch(save: *mut *mut u8, restore: *mut u8);
        fn graybox_simos_coro_tramp();
    }

    pub(super) unsafe fn switch(save: *mut *mut u8, restore: *mut u8) {
        // SAFETY: forwarded from callers in the parent module.
        unsafe { graybox_simos_ctx_switch(save, restore) }
    }

    /// Builds the initial 7-slot frame `ctx_switch` will restore:
    /// r15 r14 r13 r12=ctx rbx=coro_start rbp=0 ret=trampoline.
    pub(super) unsafe fn fabricate(top: *mut u8, ctx: *mut StartCtx) -> *mut u8 {
        // SAFETY: caller guarantees `top` is the 16-aligned top of an
        // allocation with ≥ 7 usize slots below it.
        unsafe {
            let sp = top.cast::<usize>().sub(7);
            sp.add(0).write(0); // r15
            sp.add(1).write(0); // r14
            sp.add(2).write(0); // r13
            sp.add(3).write(ctx as usize); // r12 → StartCtx
            let start: extern "C" fn(*mut StartCtx) -> ! = super::coro_start;
            sp.add(4).write(start as usize); // rbx → entry fn
            sp.add(5).write(0); // rbp
            let tramp: unsafe extern "C" fn() = graybox_simos_coro_tramp;
            sp.add(6).write(tramp as usize); // return address
            sp.cast()
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    use super::StartCtx;

    // Symmetric context switch, AAPCS64. The saved frame is 160 bytes:
    // x19–x28, the frame pair x29/x30, and the callee-saved low halves
    // d8–d15. A fabricated frame restores x19=StartCtx, x20=coro_start
    // and returns (via x30) into the trampoline.
    core::arch::global_asm!(
        ".text",
        ".globl graybox_simos_ctx_switch",
        ".p2align 4",
        "graybox_simos_ctx_switch:",
        "sub sp, sp, #160",
        "stp x19, x20, [sp, #0]",
        "stp x21, x22, [sp, #16]",
        "stp x23, x24, [sp, #32]",
        "stp x25, x26, [sp, #48]",
        "stp x27, x28, [sp, #64]",
        "stp x29, x30, [sp, #80]",
        "stp d8, d9, [sp, #96]",
        "stp d10, d11, [sp, #112]",
        "stp d12, d13, [sp, #128]",
        "stp d14, d15, [sp, #144]",
        "mov x9, sp",
        "str x9, [x0]",
        "mov sp, x1",
        "ldp x19, x20, [sp, #0]",
        "ldp x21, x22, [sp, #16]",
        "ldp x23, x24, [sp, #32]",
        "ldp x25, x26, [sp, #48]",
        "ldp x27, x28, [sp, #64]",
        "ldp x29, x30, [sp, #80]",
        "ldp d8, d9, [sp, #96]",
        "ldp d10, d11, [sp, #112]",
        "ldp d12, d13, [sp, #128]",
        "ldp d14, d15, [sp, #144]",
        "add sp, sp, #160",
        "ret",
        ".globl graybox_simos_coro_tramp",
        ".p2align 4",
        "graybox_simos_coro_tramp:",
        "mov x0, x19",
        "blr x20",
        "brk #1",
    );

    extern "C" {
        fn graybox_simos_ctx_switch(save: *mut *mut u8, restore: *mut u8);
        fn graybox_simos_coro_tramp();
    }

    pub(super) unsafe fn switch(save: *mut *mut u8, restore: *mut u8) {
        // SAFETY: forwarded from callers in the parent module.
        unsafe { graybox_simos_ctx_switch(save, restore) }
    }

    /// Builds the initial 160-byte frame `ctx_switch` will restore:
    /// x19=ctx, x20=coro_start, x30=trampoline, everything else zero.
    pub(super) unsafe fn fabricate(top: *mut u8, ctx: *mut StartCtx) -> *mut u8 {
        // SAFETY: caller guarantees `top` is the 16-aligned top of an
        // allocation with ≥ 160 bytes below it.
        unsafe {
            let sp = top.sub(160);
            core::ptr::write_bytes(sp, 0, 160);
            let slots = sp.cast::<usize>();
            slots.add(0).write(ctx as usize); // x19 → StartCtx
            let start: extern "C" fn(*mut StartCtx) -> ! = super::coro_start;
            slots.add(1).write(start as usize); // x20 → entry fn
            let tramp: unsafe extern "C" fn() = graybox_simos_coro_tramp;
            slots.add(11).write(tramp as usize); // x30 (offset 88)
            sp
        }
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod arch {
    use super::StartCtx;

    // No context switch on this architecture; `SUPPORTED` is false and
    // the executor routes everything to the thread backend, so these are
    // unreachable.
    pub(super) unsafe fn switch(_save: *mut *mut u8, _restore: *mut u8) {
        unreachable!("events executor unsupported on this architecture")
    }

    pub(super) unsafe fn fabricate(_top: *mut u8, _ctx: *mut StartCtx) -> *mut u8 {
        unreachable!("events executor unsupported on this architecture")
    }
}

#[cfg(all(test, any(target_arch = "x86_64", target_arch = "aarch64")))]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn resume_yield_ping_pong() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let inner = Rc::clone(&log);
        let mut c = Coro::new(
            MIN_STACK_BYTES,
            Box::new(move |core| {
                inner.borrow_mut().push("a");
                unsafe { yield_to_driver(core) };
                inner.borrow_mut().push("b");
                unsafe { yield_to_driver(core) };
                inner.borrow_mut().push("c");
            }),
        );
        assert!(!c.resume());
        log.borrow_mut().push("driver1");
        assert!(!c.resume());
        log.borrow_mut().push("driver2");
        assert!(c.resume());
        assert_eq!(
            *log.borrow(),
            vec!["a", "driver1", "b", "driver2", "c"],
            "interleaving must be exactly resume/yield alternation"
        );
    }

    #[test]
    fn many_coroutines_round_robin() {
        const N: usize = 64;
        const ROUNDS: usize = 10;
        let tally = Rc::new(RefCell::new(vec![0usize; N]));
        let mut coros: Vec<Coro<'_>> = (0..N)
            .map(|i| {
                let tally = Rc::clone(&tally);
                Coro::new(
                    MIN_STACK_BYTES,
                    Box::new(move |core| {
                        for _ in 0..ROUNDS {
                            tally.borrow_mut()[i] += 1;
                            unsafe { yield_to_driver(core) };
                        }
                    }),
                )
            })
            .collect();
        while coros.iter().any(|c| !c.finished()) {
            for c in coros.iter_mut().filter(|c| !c.finished()) {
                c.resume();
            }
        }
        assert!(tally.borrow().iter().all(|&n| n == ROUNDS));
    }

    #[test]
    fn deep_stack_use_survives_switches() {
        fn burn(depth: usize, core: *mut YieldCore) -> u64 {
            let frame = [depth as u64; 8];
            if depth == 0 {
                unsafe { yield_to_driver(core) };
                return 1;
            }
            frame.iter().sum::<u64>() % 7 + burn(depth - 1, core)
        }
        let mut c = Coro::new(
            256 << 10,
            Box::new(|core| {
                let n = burn(500, core);
                assert!(n >= 500);
            }),
        );
        assert!(!c.resume(), "suspended at the bottom of the recursion");
        assert!(c.resume(), "ran back up and finished");
    }

    #[test]
    fn panicking_entry_is_contained() {
        let mut c = Coro::new(
            MIN_STACK_BYTES,
            Box::new(|core| {
                unsafe { yield_to_driver(core) };
                panic!("inside coroutine");
            }),
        );
        assert!(!c.resume());
        // The panic unwinds to coro_start's backstop, which marks the
        // coroutine finished and switches back here.
        assert!(c.resume());
    }

    #[test]
    fn captures_environment_borrows() {
        let mut out = 0u64;
        {
            let mut c = Coro::new(MIN_STACK_BYTES, Box::new(|_| out = 41 + 1));
            assert!(c.resume());
        }
        assert_eq!(out, 42);
    }
}
