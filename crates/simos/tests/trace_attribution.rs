//! Span-and-lane attribution across coroutine resumes.
//!
//! The event-driven executor multiplexes every simulated process onto
//! one host thread, so thread-local span stacks and lane bindings would
//! interleave garbage without `trace::TraceCtx` swapping around each
//! resume. These tests pin the contract end to end through the
//! profiler: a span opened inside a process's workload stays attached
//! to *that process's* charges across arbitrarily many suspensions, and
//! each process keeps its own lane.

use gray_toolbox::{profile, trace, GrayDuration};
use graybox::os::{GrayBoxOs, GrayBoxOsExt};
use simos::exec::Workload;
use simos::{ExecBackend, Sim, SimConfig, SimProc};

/// Milliseconds, as virtual nanoseconds.
const MS: u64 = 1_000_000;

fn attribution_sim() -> Sim {
    Sim::new(
        SimConfig::small()
            .without_noise()
            .with_exec(ExecBackend::Events),
    )
}

#[test]
fn spans_stay_with_their_process_across_resumes() {
    let guard = profile::capture();
    let mut sim = attribution_sim();
    // Both processes open a named span, then alternate compute and
    // sleep. Every sleep suspends the coroutine and resumes the sibling,
    // so the span stacks swap many times mid-span; distinct durations
    // make the two processes' charge totals distinguishable.
    let workloads: Vec<(String, Workload<'_, ()>)> = vec![
        (
            "alpha".to_string(),
            Box::new(|os: &SimProc| {
                let _span = trace::span("proc", || "alpha".to_string());
                for _ in 0..3 {
                    os.compute(GrayDuration::from_millis(1));
                    os.sleep(GrayDuration::from_millis(2));
                }
            }),
        ),
        (
            "beta".to_string(),
            Box::new(|os: &SimProc| {
                let _span = trace::span("proc", || "beta".to_string());
                for _ in 0..2 {
                    os.compute(GrayDuration::from_millis(3));
                    os.sleep(GrayDuration::from_millis(5));
                }
            }),
        ),
    ];
    sim.run(workloads);
    let snap = profile::snapshot();
    drop(guard);

    // Every charge landed under exactly one process's span — a single
    // leaked frame would produce a path with both labels or neither.
    for path in snap.nodes.keys() {
        let alpha = path.contains("proc:alpha");
        let beta = path.contains("proc:beta");
        assert!(
            alpha ^ beta,
            "path must carry exactly one process span: {path}"
        );
    }
    let under = |label: &str, kind: &str| -> u64 {
        snap.nodes
            .iter()
            .filter(|(p, _)| p.contains(label) && p.ends_with(kind))
            .map(|(_, a)| a.ns)
            .sum()
    };
    // Sleep charges are exact (a sleep costs its duration, nothing
    // else); CPU charges are at least the requested work — the kernel
    // also attributes time the process spent contending for a CPU slot,
    // which is precisely what a where-did-virtual-time-go tree is for.
    assert_eq!(under("proc:alpha", ";sleep"), 6 * MS);
    assert_eq!(under("proc:beta", ";sleep"), 10 * MS);
    let alpha_cpu = under("proc:alpha", ";cpu");
    let beta_cpu = under("proc:beta", ";cpu");
    assert!(alpha_cpu >= 3 * MS, "alpha cpu under-charged: {alpha_cpu}");
    assert!(beta_cpu >= 6 * MS, "beta cpu under-charged: {beta_cpu}");
    // Per-pid attribution agrees with the per-span totals exactly
    // (pids are assigned in spawn order).
    assert_eq!(snap.by_pid[&0], alpha_cpu + 6 * MS);
    assert_eq!(snap.by_pid[&1], beta_cpu + 10 * MS);
    // Each process kept its own lane across every swap.
    assert!(
        snap.by_lane.len() >= 2,
        "two processes must occupy two lanes, got {:?}",
        snap.by_lane
    );
}

#[test]
fn op_frames_nest_under_swapped_spans() {
    let guard = profile::capture();
    let mut sim = attribution_sim();
    // A process that does real syscalls inside its span: the op stack
    // (sys_write / sys_read frames pushed by the kernel) must nest
    // *under* the span that survives the resume boundary.
    sim.run_one(|os: &SimProc| {
        let _span = trace::span("plan", || "/data".to_string());
        os.write_file("/data", &[7u8; 4096]).unwrap();
        let fd = os.open("/data").unwrap();
        let mut buf = [0u8; 4096];
        os.read_at(fd, 0, &mut buf).unwrap();
        os.close(fd).unwrap();
    });
    let snap = profile::snapshot();
    drop(guard);

    assert!(snap.total_ns > 0, "syscalls must charge virtual time");
    let keys: Vec<&String> = snap.nodes.keys().collect();
    assert!(
        keys.iter()
            .any(|p| p.starts_with("sim;plan:/data;sys_write;")),
        "sys_write frame must nest under the plan span: {keys:?}"
    );
    assert!(
        keys.iter()
            .any(|p| p.starts_with("sim;plan:/data;sys_read;")),
        "sys_read frame must nest under the plan span: {keys:?}"
    );
}
